// Figure 14a: running time vs dataset size, for exhaustive and greedy
// search. Paper shape: structure identification time is flat once sampling
// kicks in (<20s small files); total time grows linearly with size and is
// dominated by the final LL(1) extraction pass for large files.

#include <cstdio>

#include "bench_common.h"
#include "core/datamaran.h"
#include "datagen/manual_datasets.h"
#include "util/timer.h"

int main() {
  using namespace datamaran;
  bench::Header("Figure 14a", "running time vs dataset size (VCF workload)");

  int max_mb = bench::EnvInt("DM_FIG14A_MAX_MB", bench::QuickMode() ? 4 : 32);
  std::printf("%8s | %10s %10s %10s | %10s %10s\n", "size", "exh.disc(s)",
              "greedy(s)", "extract(s)", "exh.total", "greedy.tot");
  for (int mb = 1; mb <= max_mb; mb *= 2) {
    GeneratedDataset ds =
        BuildVcfDataset(static_cast<size_t>(mb) * 1024 * 1024);

    DatamaranOptions ex_opts;
    ex_opts.search = CharsetSearch::kExhaustive;
    Datamaran ex(ex_opts);
    Timer t1;
    PipelineResult ex_result = ex.ExtractText(std::string(ds.text));
    double ex_total = t1.Seconds();
    double ex_discovery = ex_result.timings.generation_s +
                          ex_result.timings.pruning_s +
                          ex_result.timings.evaluation_s;

    DatamaranOptions gr_opts;
    gr_opts.search = CharsetSearch::kGreedy;
    Datamaran gr(gr_opts);
    Timer t2;
    PipelineResult gr_result = gr.ExtractText(std::string(ds.text));
    double gr_total = t2.Seconds();
    double gr_discovery = gr_result.timings.generation_s +
                          gr_result.timings.pruning_s +
                          gr_result.timings.evaluation_s;

    std::printf("%6d MB | %10.2f %10.2f %10.2f | %10.2f %10.2f\n", mb,
                ex_discovery, gr_discovery, ex_result.timings.extraction_s,
                ex_total, gr_total);
    (void)gr_discovery;
  }
  std::printf(
      "\nshape check: discovery time is sample-bounded (flat); extraction\n"
      "grows linearly and dominates for large files, as in the paper.\n");
  return 0;
}
