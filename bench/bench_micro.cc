// Micro-benchmarks (google-benchmark) for the pipeline's hot paths:
// record-template extraction, reduction, LL(1) matching, hashing-based
// generation, and MDL scoring. These back the engineering claims in
// DESIGN.md (generation cost per charset, parse-bound extraction).

#include <benchmark/benchmark.h>

#include <string>

#include "core/dataset.h"
#include "core/options.h"
#include "generation/generator.h"
#include "scoring/mdl.h"
#include "template/matcher.h"
#include "template/record_template.h"
#include "template/template.h"
#include "util/rng.h"

namespace {

using namespace datamaran;

std::string MakeCsv(int rows) {
  Rng rng(1);
  std::string text;
  for (int i = 0; i < rows; ++i) {
    text += std::to_string(rng.Uniform(0, 999)) + "," +
            std::to_string(rng.Uniform(0, 999)) + "," +
            std::to_string(rng.Uniform(0, 999)) + "," +
            std::to_string(rng.Uniform(0, 999)) + "\n";
  }
  return text;
}

void BM_ExtractRecordTemplate(benchmark::State& state) {
  std::string text = MakeCsv(1);
  CharSet cs = CharSet::Of(",\n");
  std::string out;
  for (auto _ : state) {
    out.clear();
    AppendRecordTemplate(text, cs, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ExtractRecordTemplate);

void BM_ReduceToCanonical(benchmark::State& state) {
  std::string rt = "F,F,F,F,F,F,F,F\n";
  ReduceWorkspace ws;
  std::string out;
  for (auto _ : state) {
    ReduceToCanonical(rt, &ws, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReduceToCanonical);

void BM_ReduceNested(benchmark::State& state) {
  std::string rt = "F,F,F;F,F,F;F,F,F;F,F,F\n";
  ReduceWorkspace ws;
  std::string out;
  for (auto _ : state) {
    ReduceToCanonical(rt, &ws, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReduceNested);

void BM_Ll1Match(benchmark::State& state) {
  auto st = StructureTemplate::FromCanonical("(F,)*F\n");
  TemplateMatcher matcher(&st.value());
  std::string text = MakeCsv(100);
  Dataset data(std::move(text));
  for (auto _ : state) {
    size_t total = 0;
    for (size_t li = 0; li < data.line_count(); ++li) {
      auto m = matcher.TryMatch(data.text(), data.line_begin(li));
      if (m.has_value()) total += m->end;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_Ll1Match);

void BM_Ll1Parse(benchmark::State& state) {
  auto st = StructureTemplate::FromCanonical("(F,)*F\n");
  TemplateMatcher matcher(&st.value());
  Dataset data(MakeCsv(100));
  for (auto _ : state) {
    for (size_t li = 0; li < data.line_count(); ++li) {
      auto v = matcher.Parse(data.text(), data.line_begin(li));
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_Ll1Parse);

void BM_GenerationCharsetPass(benchmark::State& state) {
  Dataset data(MakeCsv(2000));
  DatamaranOptions opts;
  CandidateGenerator gen(&data, &opts);
  CharSet cs = CharSet::Of(",");
  for (auto _ : state) {
    std::vector<CandidateTemplate> out;
    gen.RunCharset(cs, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_GenerationCharsetPass);

void BM_MdlEvaluate(benchmark::State& state) {
  Dataset data(MakeCsv(2000));
  auto st = StructureTemplate::FromCanonical("F,F,F,F\n");
  MdlScorer scorer;
  for (auto _ : state) {
    double score = scorer.Score(data, st.value());
    benchmark::DoNotOptimize(score);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_MdlEvaluate);

}  // namespace

BENCHMARK_MAIN();
