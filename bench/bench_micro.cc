// Micro-benchmarks (google-benchmark) for the pipeline's hot paths:
// record-template extraction, reduction, LL(1) matching (tree and flat),
// hashing-based generation, and MDL scoring. These back the engineering
// claims in DESIGN.md (generation cost per charset, parse-bound
// extraction).
//
// In addition to the google-benchmark micro suite, main() first runs the
// end-to-end pipeline over a GitHub-corpus workload at num_threads=1 and
// num_threads=max(4, hardware) and writes machine-readable results to
// BENCH_micro.json (override the path with DM_BENCH_OUT, the thread count
// with DM_BENCH_THREADS): per-stage wall seconds, MB/s, the speedup,
// whether the two configurations produced byte-identical output, the
// process peak RSS, and the bytes the index-only residual transitions
// materialized (cross-gap windows only — the old per-round string rebuild
// is gone). A second section extracts one large synthetic file through
// both backings (mmap vs owned read) and checks they are byte-identical.
// A third section compares the two match engines (reference tree walker vs
// compiled bytecode + TemplateSetIndex dispatch) on the discovered
// templates: records/s each, the speedup, and an engine-parity bit; parity
// failure or a speedup below 1.2x fails the process, which is what gates
// the CI smoke job. A fourth section extracts one large synthetic file
// through the collecting sink (O(file): one ParsedValue tree per record)
// and the streaming columnar sink (O(wave): flat events straight to CSV),
// isolating per-phase peak RSS; streaming peak RSS at or above 50% of the
// collecting peak also fails the process. A fifth section runs the same
// gate for the normalized layout: NormalizedWriteSink streaming root +
// child-table CSVs vs collecting into NormalizedTables and rendering
// ToCsv. A sixth section ("charset_engine") compares generation's
// charset-trial tokenization under the scalar reference engine vs the
// resolved SIMD engine (candidate-set parity gates the process). A seventh
// section ("evaluation") runs the single-thread pipeline with MDL
// bound-based pruning on vs off: byte-identical output and a
// candidate-evaluation speedup (evaluation_s; the shared top-K
// refinement is timed separately as refinement_s) of at least 1.3x gate
// the process. An eighth section ("catalog") crawls a synthetic
// multi-format lake warm (template catalog: discover each format once,
// fingerprint + extract every repeat) vs cold per-file discovery: every
// repeat file must hit, hit extraction must be signature-identical to the
// cold run, and the warm crawl must be at least 5x faster. Every
// best-of-rounds section reports its round count plus best and median so
// the JSON carries run-to-run variance, not a bare point estimate. Future
// PRs track the perf trajectory from that file.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.h"
#include "core/datamaran.h"
#include "core/stream.h"
#include "extraction/extractor.h"
#include "extraction/sinks.h"
#include "template/catalog.h"
#include "util/file_io.h"
#include "core/dataset.h"
#include "core/input.h"
#include "core/options.h"
#include "datagen/github_corpus.h"
#include "generation/generator.h"
#include "scoring/mdl.h"
#include "template/compiled.h"
#include "template/dispatch.h"
#include "template/matcher.h"
#include "template/record_template.h"
#include "template/template.h"
#include "util/hashing.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace datamaran;

std::string MakeCsv(int rows) {
  Rng rng(1);
  std::string text;
  for (int i = 0; i < rows; ++i) {
    text += std::to_string(rng.Uniform(0, 999)) + "," +
            std::to_string(rng.Uniform(0, 999)) + "," +
            std::to_string(rng.Uniform(0, 999)) + "," +
            std::to_string(rng.Uniform(0, 999)) + "\n";
  }
  return text;
}

void BM_ExtractRecordTemplate(benchmark::State& state) {
  std::string text = MakeCsv(1);
  CharSet cs = CharSet::Of(",\n");
  std::string out;
  for (auto _ : state) {
    out.clear();
    AppendRecordTemplate(text, cs, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
}
BENCHMARK(BM_ExtractRecordTemplate);

void BM_ReduceToCanonical(benchmark::State& state) {
  std::string rt = "F,F,F,F,F,F,F,F\n";
  ReduceWorkspace ws;
  std::string out;
  for (auto _ : state) {
    ReduceToCanonical(rt, &ws, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReduceToCanonical);

void BM_ReduceNested(benchmark::State& state) {
  std::string rt = "F,F,F;F,F,F;F,F,F;F,F,F\n";
  ReduceWorkspace ws;
  std::string out;
  for (auto _ : state) {
    ReduceToCanonical(rt, &ws, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ReduceNested);

void BM_Ll1Match(benchmark::State& state) {
  auto st = StructureTemplate::FromCanonical("(F,)*F\n");
  TemplateMatcher matcher(&st.value());
  std::string text = MakeCsv(100);
  Dataset data(std::move(text));
  for (auto _ : state) {
    size_t total = 0;
    for (size_t li = 0; li < data.line_count(); ++li) {
      auto m = matcher.TryMatch(data.text(), data.line_begin(li));
      if (m.has_value()) total += m->end;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_Ll1Match);

void BM_Ll1Parse(benchmark::State& state) {
  auto st = StructureTemplate::FromCanonical("(F,)*F\n");
  TemplateMatcher matcher(&st.value());
  Dataset data(MakeCsv(100));
  for (auto _ : state) {
    for (size_t li = 0; li < data.line_count(); ++li) {
      auto v = matcher.Parse(data.text(), data.line_begin(li));
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_Ll1Parse);

// The allocation-free flat parse used by the MDL scoring loop; compare
// against BM_Ll1Parse to see the cost of materializing ParsedValue trees.
void BM_Ll1ParseFlat(benchmark::State& state) {
  auto st = StructureTemplate::FromCanonical("(F,)*F\n");
  TemplateMatcher matcher(&st.value());
  Dataset data(MakeCsv(100));
  std::vector<MatchEvent> events;
  for (auto _ : state) {
    for (size_t li = 0; li < data.line_count(); ++li) {
      auto v = matcher.ParseFlat(data.text(), data.line_begin(li), &events);
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_Ll1ParseFlat);

// The compiled bytecode counterpart of BM_Ll1Match: same template, same
// text, matching through CompiledTemplate instead of the tree walker.
void BM_CompiledMatch(benchmark::State& state) {
  auto st = StructureTemplate::FromCanonical("(F,)*F\n");
  CompiledTemplate compiled(&st.value());
  std::string text = MakeCsv(100);
  Dataset data(std::move(text));
  for (auto _ : state) {
    size_t total = 0;
    for (size_t li = 0; li < data.line_count(); ++li) {
      auto m = compiled.TryMatch(data.text(), data.line_begin(li));
      if (m.has_value()) total += m->end;
    }
    benchmark::DoNotOptimize(total);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_CompiledMatch);

// Compiled flat parse (events emitted), vs BM_Ll1ParseFlat.
void BM_CompiledParseFlat(benchmark::State& state) {
  auto st = StructureTemplate::FromCanonical("(F,)*F\n");
  CompiledTemplate compiled(&st.value());
  Dataset data(MakeCsv(100));
  std::vector<MatchEvent> events;
  for (auto _ : state) {
    for (size_t li = 0; li < data.line_count(); ++li) {
      auto v = compiled.ParseFlat(data.text(), data.line_begin(li), &events);
      benchmark::DoNotOptimize(v);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_CompiledParseFlat);

void BM_GenerationCharsetPass(benchmark::State& state) {
  Dataset data(MakeCsv(2000));
  DatamaranOptions opts;
  CandidateGenerator gen(&data, &opts);
  CharSet cs = CharSet::Of(",");
  for (auto _ : state) {
    std::vector<CandidateTemplate> out;
    gen.RunCharset(cs, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_GenerationCharsetPass);

void BM_MdlEvaluate(benchmark::State& state) {
  Dataset data(MakeCsv(2000));
  auto st = StructureTemplate::FromCanonical("F,F,F,F\n");
  MdlScorer scorer;
  for (auto _ : state) {
    double score = scorer.Score(data, st.value());
    benchmark::DoNotOptimize(score);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size_bytes()));
}
BENCHMARK(BM_MdlEvaluate);

// ---------------------------------------------------------------------------
// End-to-end pipeline: single- vs multi-thread throughput on the GitHub
// corpus workload, emitted as BENCH_micro.json.
// ---------------------------------------------------------------------------

struct PipelineRun {
  StepTimings timings;    // summed over all datasets
  size_t bytes = 0;       // total input bytes
  size_t residual_copy_bytes = 0;  // text materialized by residual rounds
  size_t candidates_evaluated = 0;
  size_t candidates_pruned = 0;
  uint64_t signature = kFnvOffset;  // fingerprint of templates + extraction
};

/// Median of a sample (0 when empty). Reported next to the best-of value so
/// BENCH_micro.json carries run-to-run variance, not just a point estimate.
double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Process peak resident set size in bytes (0 when unavailable).
size_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<size_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<size_t>(usage.ru_maxrss) * 1024;  // KB on Linux
#endif
#else
  return 0;
#endif
}

/// Resets the kernel's per-process peak-RSS watermark (Linux: writing "5"
/// to /proc/self/clear_refs resets VmHWM to the current VmRSS). Returns
/// false when unsupported — per-phase peaks can then not be isolated.
bool ResetPeakRss() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite("5", 1, 1, f) == 1;
  return (std::fclose(f) == 0) && wrote;
#else
  return false;
#endif
}

/// Peak RSS since the last ResetPeakRss (Linux VmHWM); falls back to the
/// monotone getrusage peak elsewhere.
size_t ReadPeakRssBytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f != nullptr) {
    char line[256];
    size_t kb = 0;
    bool found = false;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) {
        found = true;
        break;
      }
    }
    std::fclose(f);
    if (found) return kb * 1024;
  }
#endif
  return PeakRssBytes();
}

void HashSizeT(uint64_t* h, size_t v) {
  for (int b = 0; b < 8; ++b) {
    *h = Fnv1aByte(*h, static_cast<unsigned char>(v >> (b * 8)));
  }
}

PipelineRun RunPipelineWorkload(
    const std::vector<std::string>& texts, int num_threads,
    std::vector<std::vector<StructureTemplate>>* templates_out = nullptr,
    const DatamaranOptions* base_options = nullptr) {
  DatamaranOptions opts =
      base_options != nullptr ? *base_options : DatamaranOptions();
  opts.num_threads = num_threads;
  Datamaran dm(opts);
  PipelineRun run;
  for (const std::string& text : texts) {
    run.bytes += text.size();
    PipelineResult r = dm.ExtractText(text);
    if (templates_out != nullptr) templates_out->push_back(r.templates);
    run.residual_copy_bytes += r.stats.residual_copy_bytes;
    run.candidates_evaluated += r.stats.candidates_evaluated;
    run.candidates_pruned += r.stats.candidates_pruned;
    run.timings.generation_s += r.timings.generation_s;
    run.timings.pruning_s += r.timings.pruning_s;
    run.timings.evaluation_s += r.timings.evaluation_s;
    run.timings.refinement_s += r.timings.refinement_s;
    run.timings.extraction_s += r.timings.extraction_s;
    run.timings.total_s += r.timings.total_s;
    // Fingerprint everything downstream consumers would see: the accepted
    // templates and the full record/noise segmentation.
    for (const StructureTemplate& st : r.templates) {
      run.signature = Fnv1a(st.canonical(), run.signature);
    }
    for (const ExtractedRecord& rec : r.extraction.records) {
      HashSizeT(&run.signature, static_cast<size_t>(rec.template_id));
      HashSizeT(&run.signature, rec.begin);
      HashSizeT(&run.signature, rec.end);
      HashSizeT(&run.signature, rec.first_line);
    }
    for (size_t noise : r.extraction.noise_lines) {
      HashSizeT(&run.signature, noise);
    }
  }
  return run;
}

// ---------------------------------------------------------------------------
// Match-engine microbench: the extraction-style greedy first-match scan over
// the GitHub-corpus workload, tree walker (try every template in priority
// order) vs compiled bytecode with first-byte TemplateSetIndex dispatch —
// the before/after of the compiled-matching PR. Records/s, speedup, and an
// identical-output parity bit land in BENCH_micro.json; parity failure or a
// speedup below 1.2x fails the process (the CI smoke gate).
// ---------------------------------------------------------------------------

struct EngineScan {
  uint64_t signature = kFnvOffset;
  size_t records = 0;
  size_t lines = 0;
};

/// One workload dataset with both engines' matchers prebuilt — setup cost
/// (template lowering, index construction) is paid once, like the pipeline
/// pays it once per stage, so the timed loops measure pure matching.
struct PreparedDataset {
  Dataset data;
  std::vector<StructureTemplate> templates;
  std::vector<int> spans;
  std::vector<TemplateMatcher> tree;
  std::vector<RecordMatcher> compiled;
  TemplateSetIndex index;

  PreparedDataset(std::string text, std::vector<StructureTemplate> ts)
      : data(std::move(text)), templates(std::move(ts)) {
    for (const StructureTemplate& st : templates) {
      spans.push_back(std::max(1, st.line_span()));
      tree.emplace_back(&st);
    }
    compiled = BuildMatchers(templates, MatchEngine::kCompiled);
    index = TemplateSetIndex(compiled);
  }
  PreparedDataset(PreparedDataset&&) = delete;  // matchers point into *this
};

/// `with_signature` folds every outcome into a parity fingerprint; the
/// timed throughput passes turn it off so both engines are measured on
/// matching alone.
EngineScan ScanOnce(const PreparedDataset& ds, bool use_compiled,
                    bool with_signature = false) {
  EngineScan out;
  const std::string_view text = ds.data.text();
  const size_t n = ds.data.line_count();
  out.lines = n;

  auto emit = [&](int hit, size_t end, size_t* li) {
    if (hit >= 0) {
      out.records++;
      if (with_signature) {
        HashSizeT(&out.signature, static_cast<size_t>(hit));
        HashSizeT(&out.signature, end);
      }
      *li += static_cast<size_t>(ds.spans[static_cast<size_t>(hit)]);
    } else {
      ++*li;
    }
  };

  if (use_compiled) {
    // Same dispatch policy as Extractor::MatchAt: singleton sets answer
    // from the matcher's FIRST set, larger sets go through the index.
    const bool singleton = ds.compiled.size() == 1;
    size_t li = 0;
    while (li < n) {
      const unsigned char first =
          static_cast<unsigned char>(text[ds.data.line_begin(li)]);
      int hit = -1;
      size_t end = 0;
      if (singleton) {
        if (ds.compiled[0].CanStartWith(first)) {
          auto m = ds.compiled[0].TryMatch(text, ds.data.line_begin(li));
          if (m.has_value()) {
            hit = 0;
            end = m->end;
          }
        }
      } else {
        for (uint16_t t : ds.index.Candidates(first)) {
          auto m = ds.compiled[t].TryMatch(text, ds.data.line_begin(li));
          if (m.has_value()) {
            hit = static_cast<int>(t);
            end = m->end;
            break;
          }
        }
      }
      emit(hit, end, &li);
    }
  } else {
    size_t li = 0;
    while (li < n) {
      int hit = -1;
      size_t end = 0;
      for (size_t t = 0; t < ds.tree.size(); ++t) {
        auto m = ds.tree[t].TryMatch(text, ds.data.line_begin(li));
        if (m.has_value()) {
          hit = static_cast<int>(t);
          end = m->end;
          break;
        }
      }
      emit(hit, end, &li);
    }
  }
  return out;
}

/// One timed block: `reps` full-workload scans. Returns records/second.
double TimeScanBlock(
    const std::vector<std::unique_ptr<PreparedDataset>>& datasets,
    bool use_compiled, int reps) {
  size_t records = 0;
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    for (const auto& ds : datasets) {
      records += ScanOnce(*ds, use_compiled).records;
    }
  }
  const double s = timer.Seconds();
  return s > 0 ? static_cast<double>(records) / s : 0;
}

/// Per-round records/second for both engines, measured in alternating
/// rounds: background load only ever slows a round down, so the fastest
/// round is the cleanest throughput estimate, the median shows the spread,
/// and alternation keeps cache/frequency drift from favoring whichever
/// engine runs last.
void MeasureEngines(
    const std::vector<std::unique_ptr<PreparedDataset>>& datasets,
    double min_seconds, std::vector<double>* tree_rates,
    std::vector<double>* compiled_rates) {
  constexpr int kRounds = 3;
  // Calibrate block size on the tree engine so each round carries
  // comparable, non-trivial work.
  Timer calibrate;
  (void)TimeScanBlock(datasets, /*use_compiled=*/false, 1);
  const double once = calibrate.Seconds();
  const double per_block = min_seconds / kRounds;
  const int reps =
      once > 0 ? std::max(1, static_cast<int>(per_block / once)) : 1;
  for (int round = 0; round < kRounds; ++round) {
    tree_rates->push_back(
        TimeScanBlock(datasets, /*use_compiled=*/false, reps));
    compiled_rates->push_back(
        TimeScanBlock(datasets, /*use_compiled=*/true, reps));
  }
}

/// Runs the engine comparison; writes the "match_engine" JSON object to `f`
/// (preceded by a comma) and returns true when output parity holds and the
/// compiled engine is not a >20% regression against the 1.5x target.
bool RunMatchEngineBench(FILE* f, const std::vector<std::string>& texts,
                         std::vector<std::vector<StructureTemplate>> templates,
                         bool quick) {
  std::vector<std::unique_ptr<PreparedDataset>> datasets;
  for (size_t i = 0; i < texts.size() && i < templates.size(); ++i) {
    if (templates[i].empty()) continue;  // nothing to match against
    datasets.push_back(std::make_unique<PreparedDataset>(
        texts[i], std::move(templates[i])));
  }
  if (datasets.empty()) {
    std::fprintf(f, ",\n  \"match_engine\": {\"skipped\": true}");
    return true;
  }

  // Parity first: one scan per engine must segment every dataset
  // identically.
  bool identical = true;
  size_t lines = 0;
  for (const auto& ds : datasets) {
    EngineScan tree = ScanOnce(*ds, /*use_compiled=*/false,
                               /*with_signature=*/true);
    EngineScan comp = ScanOnce(*ds, /*use_compiled=*/true,
                               /*with_signature=*/true);
    identical = identical && tree.signature == comp.signature &&
                tree.records == comp.records;
    lines += tree.lines;
  }

  const double min_seconds = quick ? 0.3 : 1.0;
  std::vector<double> tree_rates, compiled_rates;
  MeasureEngines(datasets, min_seconds, &tree_rates, &compiled_rates);
  const double tree_rate =
      *std::max_element(tree_rates.begin(), tree_rates.end());
  const double compiled_rate =
      *std::max_element(compiled_rates.begin(), compiled_rates.end());
  const double speedup = tree_rate > 0 ? compiled_rate / tree_rate : 0;

  std::printf("match engines: tree %.0f records/s, compiled %.0f records/s "
              "(%.2fx over %zu rounds), identical: %s\n",
              tree_rate, compiled_rate, speedup, tree_rates.size(),
              identical ? "yes" : "NO — ENGINE PARITY BUG");

  std::fprintf(f,
               ",\n"
               "  \"match_engine\": {\n"
               "    \"datasets\": %zu,\n"
               "    \"lines\": %zu,\n"
               "    \"rounds\": %zu,\n"
               "    \"tree_records_per_s\": %.1f,\n"
               "    \"tree_records_per_s_median\": %.1f,\n"
               "    \"compiled_records_per_s\": %.1f,\n"
               "    \"compiled_records_per_s_median\": %.1f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical_output\": %s\n"
               "  }",
               datasets.size(), lines, tree_rates.size(), tree_rate,
               Median(tree_rates), compiled_rate, Median(compiled_rates),
               speedup, identical ? "true" : "false");
  // 1.5x is the target; below 1.2x counts as a >20% throughput regression.
  return identical && speedup >= 1.2;
}

double MbPerSec(size_t bytes, double seconds) {
  return seconds <= 0 ? 0 : static_cast<double>(bytes) / (1024.0 * 1024.0) /
                                seconds;
}

// ---------------------------------------------------------------------------
// Streaming-sink memory case: the collecting sink materializes one
// ParsedValue tree per record (O(file) memory); the columnar streaming sink
// consumes the flat event stream and flushes per wave (O(wave) memory).
// Both paths extract the same large synthetic file; per-phase peak RSS is
// isolated with ResetPeakRss. Streaming peak RSS >= 50% of the collecting
// peak — or a record-count mismatch — fails the process (the CI smoke
// gate). Runs first, before other workloads can pre-grow the allocator
// arena and mask the collecting balloon.
// ---------------------------------------------------------------------------

struct SinkCase {
  size_t bytes = 0;
  size_t records = 0;
  size_t streaming_peak = 0;   // bytes, per-phase when gated
  size_t collecting_peak = 0;  // bytes, per-phase when gated
  double streaming_s = 0;
  double collecting_s = 0;
  bool counts_match = false;
  bool rss_gated = false;  // per-phase peaks available (clear_refs worked)
  bool ok = false;
};

/// The shared corpus for both sink memory cases (denormalized and
/// normalized gates must measure the same workload shape): comma lists
/// of 3-7 fields matching "(F,)*F\n", plus ~2% noise. A line starting
/// with the separator cannot parse (fields are non-empty), so the noise
/// lines are genuine noise for that template.
std::string MakeSinkCorpus(uint64_t seed, bool quick) {
  const size_t target_bytes = quick ? 6 * 1024 * 1024 : 16 * 1024 * 1024;
  Rng rng(seed);
  std::string big;
  big.reserve(target_bytes + 128);
  while (big.size() < target_bytes) {
    const int reps = static_cast<int>(rng.Uniform(3, 7));
    for (int r = 0; r < reps; ++r) {
      big += std::to_string(rng.Uniform(0, 99999));
      if (r + 1 < reps) big += ",";
    }
    big += "\n";
    if (rng.Bernoulli(0.02)) big += ",noise\n";
  }
  return big;
}

/// The shared gate and report of both sink memory cases: streaming peak
/// RSS at or above 50% of the collecting peak — or a count mismatch —
/// clears `ok`, which fails the process (the CI smoke gate).
void FinishSinkCase(const char* label, SinkCase* out) {
  const double ratio =
      out->collecting_peak > 0
          ? static_cast<double>(out->streaming_peak) /
                static_cast<double>(out->collecting_peak)
          : 1.0;
  std::printf("%s sink (%zu MB, %zu records): streamed %.3fs "
              "(%.2f MB/s) peak %zu MB, collecting %.3fs peak %zu MB "
              "(%.2fx)%s, counts %s\n",
              label, out->bytes >> 20, out->records, out->streaming_s,
              MbPerSec(out->bytes, out->streaming_s),
              out->streaming_peak >> 20, out->collecting_s,
              out->collecting_peak >> 20, ratio,
              out->rss_gated ? "" : " [peaks not isolated; gate skipped]",
              out->counts_match ? "match" : "MISMATCH — SINK BUG");
  out->ok = out->counts_match && (!out->rss_gated || ratio < 0.5);
}

SinkCase RunStreamingSinkCase(int threads, bool quick) {
  SinkCase out;
  Dataset data(MakeSinkCorpus(7, quick));
  out.bytes = data.size_bytes();

  std::vector<StructureTemplate> templates;
  templates.push_back(std::move(
      StructureTemplate::FromCanonical("(F,)*F\n").value()));
  ThreadPool pool(threads);
  Extractor extractor(&templates, &pool);
  const std::string out_dir = "bench_micro_sink_out.tmp";

  // Streaming first: its peak is the phase baseline, so even without
  // per-phase isolation the comparison errs against us, never for us.
  const bool reset_ok = ResetPeakRss();
  size_t streamed_records = 0;
  size_t streamed_covered = 0;
  {
    Timer timer;
    DatasetView view(data);
    ColumnarWriteSink sink(&templates, view, out_dir);
    ExtractionResult stats = extractor.ExtractEvents(view, &sink);
    const Status finished = sink.Finish();
    if (!finished.ok()) {
      std::fprintf(stderr, "streaming sink: %s\n",
                   finished.ToString().c_str());
      std::error_code cleanup;
      std::filesystem::remove_all(out_dir, cleanup);
      return out;
    }
    out.streaming_s = timer.Seconds();
    streamed_records = sink.stats().total_records;
    streamed_covered = stats.covered_chars;
  }
  out.streaming_peak = ReadPeakRssBytes();

  out.rss_gated = reset_ok && ResetPeakRss();
  {
    Timer timer;
    ExtractionResult collected = extractor.Extract(data);
    out.collecting_s = timer.Seconds();
    out.records = collected.records.size();
    out.counts_match = collected.records.size() == streamed_records &&
                       collected.covered_chars == streamed_covered;
  }
  out.collecting_peak = ReadPeakRssBytes();
  std::error_code ec;
  std::filesystem::remove_all(out_dir, ec);

  FinishSinkCase("streaming", &out);
  return out;
}

/// Normalized-layout counterpart of RunStreamingSinkCase: the streaming
/// NormalizedWriteSink (O(wave): flat events to root + child-table CSVs,
/// per-table row-id counters rebased at flush) against what the collecting
/// path used to do — Extract() into ParsedValue trees, materialize the
/// NormalizedTables tree, render ToCsv (all O(file)). Same corpus shape
/// and the same 50% RSS gate.
SinkCase RunNormalizedSinkCase(int threads, bool quick) {
  SinkCase out;
  Dataset data(MakeSinkCorpus(11, quick));
  out.bytes = data.size_bytes();

  std::vector<StructureTemplate> templates;
  templates.push_back(std::move(
      StructureTemplate::FromCanonical("(F,)*F\n").value()));
  ThreadPool pool(threads);
  Extractor extractor(&templates, &pool);
  const std::string out_dir = "bench_micro_norm_out.tmp";

  const bool reset_ok = ResetPeakRss();
  size_t streamed_records = 0;
  size_t streamed_covered = 0;
  size_t streamed_child_rows = 0;
  {
    Timer timer;
    DatasetView view(data);
    NormalizedWriteSink sink(&templates, view, out_dir);
    ExtractionResult stats = extractor.ExtractEvents(view, &sink);
    const Status finished = sink.Finish();
    if (!finished.ok()) {
      std::fprintf(stderr, "normalized sink: %s\n",
                   finished.ToString().c_str());
      std::error_code cleanup;
      std::filesystem::remove_all(out_dir, cleanup);
      return out;
    }
    out.streaming_s = timer.Seconds();
    streamed_records = sink.stats().total_records;
    streamed_covered = stats.covered_chars;
    streamed_child_rows = sink.rows_in_table(0, 1);
  }
  out.streaming_peak = ReadPeakRssBytes();

  out.rss_gated = reset_ok && ResetPeakRss();
  {
    Timer timer;
    ExtractionResult collected = extractor.Extract(data);
    auto tables = NormalizedTables(templates[0], collected.records,
                                   data.text(), 0, "type0");
    size_t collected_bytes = 0;
    for (const Table& table : tables) {
      collected_bytes += table.ToCsv().size();
    }
    out.collecting_s = timer.Seconds();
    out.records = collected.records.size();
    out.counts_match = collected.records.size() == streamed_records &&
                       collected.covered_chars == streamed_covered &&
                       tables[0].row_count() == streamed_records &&
                       tables[1].row_count() == streamed_child_rows &&
                       collected_bytes > 0;
  }
  out.collecting_peak = ReadPeakRssBytes();
  std::error_code ec;
  std::filesystem::remove_all(out_dir, ec);

  FinishSinkCase("normalized", &out);
  return out;
}

// ---------------------------------------------------------------------------
// Charset-engine microbench: one generation charset trial (tokenize every
// line against an RT-CharSet, reduce, hash candidate boundaries) under the
// scalar reference engine vs the resolved vectorized engine (SWAR/SSE2/AVX2
// by runtime CPU detection, via the hoisted special-position index). The
// candidate sets must be identical field for field — a mismatch fails the
// process; throughput is reported best-of-rounds with median and round
// count.
// ---------------------------------------------------------------------------

bool RunCharsetEngineBench(FILE* f, bool quick) {
  Dataset data(MakeSinkCorpus(13, quick));
  DatamaranOptions scalar_opts;
  scalar_opts.charset_engine = CharsetEngine::kScalar;
  DatamaranOptions simd_opts;  // default kSimd: resolves by CPU detection
  CandidateGenerator scalar_gen(&data, &scalar_opts);
  CandidateGenerator simd_gen(&data, &simd_opts);
  const CharSet cs = CharSet::Of(",");

  // Parity first: both engines must accumulate identical candidate bins
  // (this also builds the vectorized generator's special-position index,
  // so the timed rounds below measure the steady state both engines reach
  // across a real search's many trials).
  std::vector<CandidateTemplate> scalar_cands, simd_cands;
  scalar_gen.RunCharset(cs, &scalar_cands);
  simd_gen.RunCharset(cs, &simd_cands);
  bool identical = scalar_cands.size() == simd_cands.size();
  for (size_t i = 0; identical && i < scalar_cands.size(); ++i) {
    identical =
        scalar_cands[i].canonical == simd_cands[i].canonical &&
        scalar_cands[i].coverage == simd_cands[i].coverage &&
        scalar_cands[i].non_field_coverage ==
            simd_cands[i].non_field_coverage &&
        scalar_cands[i].span == simd_cands[i].span &&
        scalar_cands[i].count == simd_cands[i].count &&
        scalar_cands[i].first_line == simd_cands[i].first_line &&
        scalar_cands[i].field_count == simd_cands[i].field_count;
  }

  auto time_block = [&](CandidateGenerator* gen, int reps) {
    std::vector<CandidateTemplate> out;
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      out.clear();
      gen->RunCharset(cs, &out);
    }
    const double s = timer.Seconds();
    return s > 0 ? static_cast<double>(data.size_bytes()) *
                       static_cast<double>(reps) / (1024.0 * 1024.0) / s
                 : 0;
  };
  // Calibrate block size on the scalar engine so each round carries
  // comparable, non-trivial work; alternate engines across rounds.
  Timer calibrate;
  (void)time_block(&scalar_gen, 1);
  const double once = calibrate.Seconds();
  const double per_block = quick ? 0.2 : 0.5;
  const int reps =
      once > 0 ? std::max(1, static_cast<int>(per_block / once)) : 1;
  const int kRounds = quick ? 3 : 5;
  std::vector<double> scalar_rates, simd_rates;
  for (int round = 0; round < kRounds; ++round) {
    scalar_rates.push_back(time_block(&scalar_gen, reps));
    simd_rates.push_back(time_block(&simd_gen, reps));
  }
  const double scalar_best =
      *std::max_element(scalar_rates.begin(), scalar_rates.end());
  const double simd_best =
      *std::max_element(simd_rates.begin(), simd_rates.end());
  const double speedup = scalar_best > 0 ? simd_best / scalar_best : 0;

  const CharsetEngine resolved =
      ResolveCharsetEngine(simd_opts.charset_engine);
  const char* resolved_name = CharsetEngineName(resolved);
  std::printf("charset engines: scalar %.1f MB/s, %s%s%s%s %.1f MB/s "
              "(%.2fx over %d rounds), identical: %s\n",
              scalar_best, resolved_name,
              resolved == CharsetEngine::kSimd ? " (" : "",
              resolved == CharsetEngine::kSimd ? CharsetSimdLevel() : "",
              resolved == CharsetEngine::kSimd ? ")" : "", simd_best,
              speedup, kRounds,
              identical ? "yes" : "NO — CHARSET ENGINE PARITY BUG");

  std::fprintf(f,
               ",\n"
               "  \"charset_engine\": {\n"
               "    \"bytes\": %zu,\n"
               "    \"resolved_engine\": \"%s\",\n"
               "    \"simd_level\": \"%s\",\n"
               "    \"rounds\": %d,\n"
               "    \"scalar_mb_per_s\": %.3f,\n"
               "    \"scalar_mb_per_s_median\": %.3f,\n"
               "    \"vectorized_mb_per_s\": %.3f,\n"
               "    \"vectorized_mb_per_s_median\": %.3f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical_candidates\": %s\n"
               "  }",
               data.size_bytes(), resolved_name, CharsetSimdLevel(), kRounds,
               scalar_best, Median(scalar_rates), simd_best,
               Median(simd_rates), speedup, identical ? "true" : "false");
  return identical;
}

// ---------------------------------------------------------------------------
// Evaluation fast-path bench: the single-thread pipeline with MDL
// bound-based pruning (waved bounded scoring + canonical batching +
// bounded refinement) vs brute force (every retained candidate scored to
// completion). The outputs must be byte-identical — pruning is provably
// exact — and the candidate-evaluation phase (evaluation_s, which times
// candidate scoring only; the top-K refinement that both runs share is
// reported separately as refinement_s) must be at least 1.3x faster, or
// the process fails (the CI smoke gate).
// ---------------------------------------------------------------------------

bool RunEvaluationBench(FILE* f, const std::vector<std::string>& texts,
                        bool quick) {
  DatamaranOptions pruned_opts;  // default: enable_mdl_pruning = true
  DatamaranOptions brute_opts;
  brute_opts.enable_mdl_pruning = false;
  const int kRounds = quick ? 2 : 3;
  std::vector<double> pruned_eval, brute_eval, pruned_total, brute_total;
  std::vector<double> pruned_refine, brute_refine;
  PipelineRun pruned_run, brute_run;
  bool identical = true;
  for (int round = 0; round < kRounds; ++round) {
    pruned_run = RunPipelineWorkload(texts, 1, nullptr, &pruned_opts);
    brute_run = RunPipelineWorkload(texts, 1, nullptr, &brute_opts);
    identical = identical && pruned_run.signature == brute_run.signature;
    pruned_eval.push_back(pruned_run.timings.evaluation_s);
    brute_eval.push_back(brute_run.timings.evaluation_s);
    pruned_refine.push_back(pruned_run.timings.refinement_s);
    brute_refine.push_back(brute_run.timings.refinement_s);
    pruned_total.push_back(pruned_run.timings.total_s);
    brute_total.push_back(brute_run.timings.total_s);
  }
  const double pruned_best =
      *std::min_element(pruned_eval.begin(), pruned_eval.end());
  const double brute_best =
      *std::min_element(brute_eval.begin(), brute_eval.end());
  const double speedup = pruned_best > 0 ? brute_best / pruned_best : 0;

  std::printf("evaluation: pruned %.3fs vs brute %.3fs (%.2fx over %d "
              "rounds); %zu scored + %zu pruned of %zu; identical: %s\n",
              pruned_best, brute_best, speedup, kRounds,
              pruned_run.candidates_evaluated, pruned_run.candidates_pruned,
              brute_run.candidates_evaluated,
              identical ? "yes" : "NO — PRUNING EXACTNESS BUG");

  std::fprintf(f,
               ",\n"
               "  \"evaluation\": {\n"
               "    \"rounds\": %d,\n"
               "    \"pruned_evaluation_s\": %.6f,\n"
               "    \"pruned_evaluation_s_median\": %.6f,\n"
               "    \"brute_evaluation_s\": %.6f,\n"
               "    \"brute_evaluation_s_median\": %.6f,\n"
               "    \"pruned_refinement_s\": %.6f,\n"
               "    \"brute_refinement_s\": %.6f,\n"
               "    \"pruned_total_s\": %.6f,\n"
               "    \"brute_total_s\": %.6f,\n"
               "    \"candidates_evaluated\": %zu,\n"
               "    \"candidates_pruned\": %zu,\n"
               "    \"brute_candidates_evaluated\": %zu,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical_output\": %s\n"
               "  }",
               kRounds, pruned_best, Median(pruned_eval), brute_best,
               Median(brute_eval),
               *std::min_element(pruned_refine.begin(), pruned_refine.end()),
               *std::min_element(brute_refine.begin(), brute_refine.end()),
               *std::min_element(pruned_total.begin(), pruned_total.end()),
               *std::min_element(brute_total.begin(), brute_total.end()),
               pruned_run.candidates_evaluated, pruned_run.candidates_pruned,
               brute_run.candidates_evaluated, speedup,
               identical ? "true" : "false");
  // 1.3x is the gate: below it the fast path is not paying for itself.
  return identical && speedup >= 1.3;
}

// ---------------------------------------------------------------------------
// Catalog fast path ("catalog" section): a warm crawl over a synthetic lake
// — discover each format once on first miss, fingerprint + compiled-match
// extract every later file of that format — against the cold baseline that
// pays full per-file discovery. The gate is threefold: every repeat file
// must hit the catalog, hit extraction must be signature-identical to the
// cold run's, and the warm crawl must finish at least 5x faster.
// ---------------------------------------------------------------------------

/// One synthetic lake file of the given format (0..2: key-value log, CSV,
/// pipe-delimited), with ~1% comment noise lines.
std::string MakeLakeFile(int format, uint64_t seed, size_t target_bytes) {
  Rng rng(seed);
  std::string out;
  out.reserve(target_bytes + 64);
  while (out.size() < target_bytes) {
    switch (format) {
      case 0:
        out += "host" + std::to_string(rng.Uniform(0, 999)) + "=" +
               std::to_string(rng.Uniform(0, 9999)) +
               ";lat=" + std::to_string(rng.Uniform(1, 500)) + ";\n";
        break;
      case 1:
        out += std::to_string(rng.Uniform(0, 999999)) + "," +
               std::to_string(rng.Uniform(0, 999)) + "," +
               std::to_string(rng.Uniform(0, 999)) + "\n";
        break;
      default:
        out += "u" + std::to_string(rng.Uniform(0, 99)) + "|op" +
               std::to_string(rng.Uniform(0, 9)) + "|" +
               std::to_string(rng.Uniform(0, 99999)) + "|ok\n";
        break;
    }
    // Comment noise only in the key-value format: a periodic noise line
    // makes the winning template set content-dependent in the other two
    // (multi-line candidates ending at the comment flip in and out of
    // acceptance), and this gate needs per-format discovery to be stable
    // so warm extraction can be signature-compared to cold.
    if (format == 0 && rng.Bernoulli(0.01)) out += "## maintenance note\n";
  }
  return out;
}

uint64_t ExtractionSignature(const std::vector<StructureTemplate>& templates,
                             const ExtractionResult& extraction) {
  uint64_t sig = kFnvOffset;
  for (const StructureTemplate& st : templates) {
    sig = Fnv1a(st.canonical(), sig);
  }
  for (const ExtractedRecord& rec : extraction.records) {
    HashSizeT(&sig, static_cast<size_t>(rec.template_id));
    HashSizeT(&sig, rec.begin);
    HashSizeT(&sig, rec.end);
  }
  for (size_t noise : extraction.noise_lines) HashSizeT(&sig, noise);
  return sig;
}

/// Streaming equivalent of ExtractionSignature: hashes records as they
/// arrive (scan order == collected order) and defers the noise lines to
/// Finish() so the digest matches the collecting form records-then-noise.
/// This is the O(wave) path the crawler runs, so the warm side of the gate
/// times what the product actually does — no per-record tree allocation.
class SignatureSink : public EventSink {
 public:
  explicit SignatureSink(const std::vector<StructureTemplate>* templates) {
    for (const StructureTemplate& st : *templates) {
      sig_ = Fnv1a(st.canonical(), sig_);
    }
  }

  void OnRecord(int template_id, size_t /*first_line*/,
                std::string_view /*text*/, size_t pos, size_t end,
                const MatchEvent* /*events*/,
                size_t /*num_events*/) override {
    HashSizeT(&sig_, static_cast<size_t>(template_id));
    HashSizeT(&sig_, pos);
    HashSizeT(&sig_, end);
  }

  void OnNoiseLine(size_t line_index) override {
    noise_lines_.push_back(line_index);
  }

  uint64_t Finish() {
    for (size_t noise : noise_lines_) HashSizeT(&sig_, noise);
    return sig_;
  }

 private:
  uint64_t sig_ = kFnvOffset;
  std::vector<size_t> noise_lines_;
};

bool RunCatalogBench(FILE* f, bool quick) {
  constexpr int kFormats = 3;
  const int files_per_format = quick ? 3 : 6;
  const size_t file_bytes = quick ? 96 * 1024 : 192 * 1024;

  // Interleave the formats so the warm crawl grows its catalog mid-stream
  // (miss, fold, then hit) rather than format by format.
  std::vector<Dataset> lake;
  for (int i = 0; i < files_per_format; ++i) {
    for (int fmt = 0; fmt < kFormats; ++fmt) {
      lake.emplace_back(
          MakeLakeFile(fmt, 1000 + static_cast<uint64_t>(i) * kFormats + fmt,
                       file_bytes));
    }
  }

  DatamaranOptions opts;
  opts.num_threads = 1;
  const Datamaran dm(opts);

  // Cold baseline: every file pays full discovery + extraction.
  std::vector<uint64_t> cold_sigs(lake.size());
  double cold_discovery_s = 0;
  Timer cold_timer;
  for (size_t i = 0; i < lake.size(); ++i) {
    const PipelineResult r = dm.ExtractDataset(lake[i]);
    cold_sigs[i] = ExtractionSignature(r.templates, r.extraction);
    cold_discovery_s += r.timings.total_s - r.timings.extraction_s;
  }
  const double cold_s = cold_timer.Seconds();

  // Catalog build (the amortized, once-per-format cost, reported but not
  // part of the warm per-file path): discover one exemplar of each format
  // and fold it in — exactly what a crawl's first miss of the format does.
  TemplateCatalog catalog;
  Timer build_timer;
  for (int fmt = 0; fmt < kFormats; ++fmt) {
    StepTimings discover_timings;
    PipelineStats discover_stats;
    std::vector<TemplateReport> reports;
    CatalogEntry entry;
    entry.templates = dm.DiscoverTemplates(lake[static_cast<size_t>(fmt)],
                                           &discover_timings, &discover_stats,
                                           &reports);
    for (const TemplateReport& report : reports) {
      CatalogTemplateMeta meta;
      meta.mdl_bits = report.mdl_bits;
      meta.noise_only_bits = report.noise_only_bits;
      meta.sample_records = report.sample_records;
      meta.sample_coverage = report.sample_coverage;
      entry.meta.push_back(meta);
    }
    catalog.AddEntry(std::move(entry));
  }
  const double build_s = build_timer.Seconds();

  // Warm pass: every file served from the catalog — fingerprint + extract,
  // no discovery.
  CatalogMatchOptions match_opts;
  // A fingerprint decides accept/reject, it does not rank candidates — a
  // 32 KB spread sample is plenty and keeps the warm path's fixed cost
  // well under one discovery sample scan.
  match_opts.max_sample_bytes = 32 * 1024;
  size_t hits = 0;
  bool parity = true;
  double fingerprint_s = 0;
  Timer warm_timer;
  for (size_t i = 0; i < lake.size(); ++i) {
    Timer fp;
    const CatalogMatch m = MatchCatalog(catalog, lake[i], match_opts);
    fingerprint_s += fp.Seconds();
    if (!m.hit()) continue;
    ++hits;
    const std::vector<StructureTemplate>& templates =
        catalog.entry(static_cast<size_t>(m.entry)).templates;
    const Extractor extractor(&templates);
    SignatureSink sink(&templates);
    extractor.ExtractEvents(DatasetView(lake[i]), &sink);
    parity = parity && sink.Finish() == cold_sigs[i];
  }
  const double warm_s = warm_timer.Seconds();

  const size_t total = lake.size();
  const bool all_hit = hits == total;
  const double speedup = warm_s > 0 ? cold_s / warm_s : 0;
  std::printf("catalog: cold %.3fs (%.3fs discovery) vs warm %.3fs "
              "(%zu/%zu hits, fingerprint %.3fs; build %.3fs amortized) "
              "= %.2fx; identical: %s\n",
              cold_s, cold_discovery_s, warm_s, hits, total, fingerprint_s,
              build_s, speedup, parity ? "yes" : "NO — CATALOG PARITY BUG");

  std::fprintf(f,
               ",\n"
               "  \"catalog\": {\n"
               "    \"formats\": %d,\n"
               "    \"files\": %zu,\n"
               "    \"file_bytes\": %zu,\n"
               "    \"cold_s\": %.6f,\n"
               "    \"cold_discovery_s\": %.6f,\n"
               "    \"build_s\": %.6f,\n"
               "    \"warm_s\": %.6f,\n"
               "    \"fingerprint_s\": %.6f,\n"
               "    \"hits\": %zu,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical_output\": %s\n"
               "  }",
               kFormats, total, file_bytes, cold_s, cold_discovery_s, build_s,
               warm_s, fingerprint_s, hits, speedup,
               parity ? "true" : "false");
  // 5x is the gate: with discovery amortized into the catalog, serving a
  // file must cost fingerprint + compiled-match extraction, a small
  // fraction of rediscovering its structure.
  return all_hit && parity && speedup >= 5.0;
}

// ---------------------------------------------------------------------------
// Precompiled-program load microbench: a warm catalog load hands the
// extractor persisted SerializeProgram blobs, and FromSerialized
// (parse + checksum + structural validation) replaces Compile (AST
// lowering + peephole fusion). Both are microsecond-scale and share the
// dominant cost (scan-table derivation), so the gate is a cost-class
// guard, not a speedup claim: every blob must load, and deserialize +
// validate must stay within 1.5x of a fresh compile — catching a
// validation pass turning quadratic on larger programs, the failure mode
// that would make catalogs with programs slower to serve than without.
// ---------------------------------------------------------------------------
bool RunProgramLoadBench(FILE* f, bool quick) {
  // Shapes mirroring the committed catalog fixture plus array-heavy forms.
  const char* kCanonicals[] = {
      "F=F;F=F;\n", "F /F/F F\n", "F:(F,)*F;\n", "(F,)*F\n",
      "F F F (F;)*F\n",
  };
  std::vector<StructureTemplate> templates;
  for (const char* canonical : kCanonicals) {
    auto st = StructureTemplate::FromCanonical(canonical);
    if (st.ok()) templates.push_back(std::move(st.value()));
  }
  std::vector<std::string> blobs;
  for (const StructureTemplate& st : templates) {
    const CompiledTemplate ct(&st);
    blobs.push_back(ct.ok() ? ct.SerializeProgram() : std::string());
  }

  const int rounds = quick ? 100 : 300;
  const int reps = 50;  // batch per timing so Timer resolution cannot dominate
  double compile_best = 1e30, load_best = 1e30;
  size_t compiled_ok = 0, loaded_ok = 0;
  for (int r = 0; r < rounds; ++r) {
    Timer compile_timer;
    for (int k = 0; k < reps; ++k) {
      for (const StructureTemplate& st : templates) {
        compiled_ok += CompiledTemplate(&st).ok() ? 1 : 0;
      }
    }
    compile_best = std::min(compile_best, compile_timer.Seconds());
    Timer load_timer;
    for (int k = 0; k < reps; ++k) {
      for (size_t i = 0; i < templates.size(); ++i) {
        loaded_ok +=
            CompiledTemplate::FromSerialized(&templates[i], blobs[i])
                    .has_value()
                ? 1
                : 0;
      }
    }
    load_best = std::min(load_best, load_timer.Seconds());
  }
  const size_t per_round =
      static_cast<size_t>(reps) * templates.size();
  const size_t total = static_cast<size_t>(rounds) * per_round;
  const bool all_ok = compiled_ok == total && loaded_ok == total;
  const double relative = load_best > 0 ? compile_best / load_best : 0;
  const double compile_us =
      compile_best * 1e6 / static_cast<double>(per_round);
  const double load_us = load_best * 1e6 / static_cast<double>(per_round);
  std::printf("program load: compile %.2fus vs deserialize %.2fus per "
              "template (best of %d rounds, %.2fx); all loaded: %s\n",
              compile_us, load_us, rounds, relative, all_ok ? "yes" : "NO");

  std::fprintf(f,
               ",\n"
               "  \"program_load\": {\n"
               "    \"templates\": %zu,\n"
               "    \"rounds\": %d,\n"
               "    \"compile_us_per_template\": %.3f,\n"
               "    \"deserialize_us_per_template\": %.3f,\n"
               "    \"compile_over_deserialize\": %.3f,\n"
               "    \"all_loaded\": %s\n"
               "  }",
               templates.size(), rounds, compile_us, load_us, relative,
               all_ok ? "true" : "false");
  return all_ok && load_best <= compile_best * 1.5;
}

// ---------------------------------------------------------------------------
// Streaming section ("streaming"): the --follow memory and recovery
// contract as a gate. A deterministic drifting stream (format A, an
// alternating transition band, then format B) is fed to a StreamingSession
// in 64 KiB chunks at two lengths, 1x and 4x. Two gates: (1) peak RSS is
// independent of stream length — peak(4x) must stay within 1.5x of
// peak(1x) + 8 MB slack, catching any path that starts buffering history;
// (2) drift recovery — after the evolution the B-phase tail must match at
// >= 90%, catching a monitor or splice regression that leaves the evolved
// format as noise. Peaks are isolated with ResetPeakRss like the sink
// cases; when the watermark reset is unavailable the RSS gate is skipped
// (reported as rss_gated=false), the recovery gate always runs.
// ---------------------------------------------------------------------------

/// Counting sink for streaming runs: records, noise, and noise in the
/// tail region [tail_from, end) of the stream.
class StreamCountSink : public EventSink {
 public:
  void OnRecord(int /*template_id*/, size_t /*first_line*/,
                std::string_view /*text*/, size_t /*pos*/, size_t /*end*/,
                const MatchEvent* /*events*/,
                size_t /*num_events*/) override {
    ++records;
  }
  void OnNoiseText(size_t line_index,
                   std::string_view /*line_with_newline*/) override {
    ++noise;
    if (line_index >= tail_from) ++tail_noise;
  }
  size_t records = 0, noise = 0, tail_noise = 0;
  size_t tail_from = 0;
};

/// Deterministic drifting stream: ~45% format A ("n,n,n"), 10%
/// alternating A/B, then format B ("n|n|n|n"); counter-driven, no RNG.
/// Returns the bytes and the total line count via `lines`.
std::string DriftingStream(size_t total_bytes, size_t* lines) {
  std::string bytes;
  bytes.reserve(total_bytes + 64);
  size_t i = 0;
  *lines = 0;
  char buf[64];
  while (bytes.size() < total_bytes) {
    const size_t b = bytes.size();
    const bool fmt_a = b < total_bytes * 9 / 20
                           ? true
                           : (b < total_bytes * 11 / 20 ? i % 2 == 0 : false);
    int n;
    if (fmt_a) {
      n = std::snprintf(buf, sizeof(buf), "%zu,%zu,%zu\n", i, i * 7 % 1000,
                        i % 97);
    } else {
      n = std::snprintf(buf, sizeof(buf), "%zu|%zu|%zu|%zu\n", i, i % 89,
                        i * 3 % 1000, i % 7);
    }
    bytes.append(buf, static_cast<size_t>(n));
    ++i;
    ++*lines;
  }
  return bytes;
}

struct StreamingCase {
  size_t bytes = 0;
  size_t lines = 0;
  size_t records = 0;
  size_t noise = 0;
  size_t evolutions = 0;
  size_t peak_rss = 0;     // bytes, isolated when rss_gated
  double seconds = 0;
  double tail_match_rate = 0;
  bool finished = false;
};

StreamingCase RunStreamingCase(size_t total_bytes) {
  StreamingCase out;
  size_t lines = 0;
  const std::string bytes = DriftingStream(total_bytes, &lines);
  out.bytes = bytes.size();
  out.lines = lines;

  DatamaranOptions options;
  options.num_threads = 1;
  StreamOptions stream_options;
  StreamCountSink sink;
  // Tail = the stable B region, past the transition band and the drift
  // trigger: the last third of the stream.
  sink.tail_from = lines - lines / 3;

  Timer timer;
  StreamingSession session(options, stream_options, &sink);
  const std::string_view view(bytes);
  for (size_t off = 0; off < view.size(); off += 64 * 1024) {
    session.FeedBytes(view.substr(off, 64 * 1024));
  }
  out.finished = session.Finish().ok();
  out.seconds = timer.Seconds();
  out.records = sink.records;
  out.noise = sink.noise;
  out.evolutions = session.stats().evolutions;
  const size_t tail_lines = lines / 3;
  out.tail_match_rate =
      tail_lines > 0
          ? 1.0 - static_cast<double>(sink.tail_noise) / tail_lines
          : 0.0;
  return out;
}

bool RunStreamingBench(FILE* f, bool quick) {
  const size_t short_bytes = quick ? 1 * 1024 * 1024 : 4 * 1024 * 1024;
  const bool reset_short = ResetPeakRss();
  StreamingCase small = RunStreamingCase(short_bytes);
  small.peak_rss = ReadPeakRssBytes();
  const bool reset_long = ResetPeakRss();
  StreamingCase large = RunStreamingCase(short_bytes * 4);
  large.peak_rss = ReadPeakRssBytes();
  const bool rss_gated = reset_short && reset_long;

  const size_t budget =
      static_cast<size_t>(small.peak_rss * 1.5) + (8u << 20);
  const bool rss_ok = !rss_gated || large.peak_rss <= budget;
  const bool recovery_ok = large.finished && small.finished &&
                           large.evolutions >= 1 &&
                           large.tail_match_rate >= 0.9 &&
                           small.tail_match_rate >= 0.9;
  std::printf(
      "streaming: %zu MB %.3fs (%.2f MB/s) peak %zu KB; 4x stream peak "
      "%zu KB (budget %zu KB)%s; evolutions=%zu tail match %.1f%%: %s\n",
      small.bytes >> 20, small.seconds, MbPerSec(small.bytes, small.seconds),
      small.peak_rss >> 10, large.peak_rss >> 10, budget >> 10,
      rss_gated ? "" : " [peaks not isolated; RSS gate skipped]",
      large.evolutions, large.tail_match_rate * 100,
      rss_ok && recovery_ok ? "ok" : "NO — STREAMING GATE FAILED");

  std::fprintf(f,
               ",\n"
               "  \"streaming\": {\n"
               "    \"short_bytes\": %zu,\n"
               "    \"long_bytes\": %zu,\n"
               "    \"short_s\": %.6f,\n"
               "    \"long_s\": %.6f,\n"
               "    \"mb_per_s\": %.3f,\n"
               "    \"short_peak_rss_bytes\": %zu,\n"
               "    \"long_peak_rss_bytes\": %zu,\n"
               "    \"rss_gated\": %s,\n"
               "    \"evolutions\": %zu,\n"
               "    \"tail_match_rate\": %.4f\n"
               "  }",
               small.bytes, large.bytes, small.seconds, large.seconds,
               MbPerSec(large.bytes, large.seconds), small.peak_rss,
               large.peak_rss, rss_gated ? "true" : "false", large.evolutions,
               large.tail_match_rate);
  return rss_ok && recovery_ok;
}

// ---------------------------------------------------------------------------
// Rotated-stitch memory case: OpenInputs pre-sizes the combined buffer from
// the on-disk member sizes and adopts the first member's buffer wholesale,
// so stitching N members peaks near combined + one member — not 2x combined
// from geometric reallocation growth plus a copied first member. The case
// writes a newline-aligned rotated set, stitches it, and gates the phase's
// RSS delta against the stitched size.
// ---------------------------------------------------------------------------
struct StitchedPeakCase {
  size_t bytes = 0;
  size_t members = 0;
  double stitch_s = 0;
  size_t peak_delta = 0;
  bool rss_gated = false;
  bool bytes_match = false;
  bool ok = false;
};

StitchedPeakCase RunStitchedPeakCase(bool quick) {
  StitchedPeakCase out;
  const std::string text = MakeSinkCorpus(13, quick);
  constexpr size_t kMembers = 4;
  std::vector<std::string> paths;
  size_t begin = 0;
  for (size_t m = 0; m < kMembers; ++m) {
    size_t end = m + 1 < kMembers
                     ? text.find('\n', (m + 1) * (text.size() / kMembers)) + 1
                     : text.size();
    const std::string path =
        "bench_micro_stitch_" + std::to_string(m) + ".tmp";
    if (!WriteStringToFile(path, std::string_view(text).substr(
                                     begin, end - begin))
             .ok()) {
      return out;
    }
    paths.push_back(path);
    begin = end;
  }
  out.bytes = text.size();
  out.members = kMembers;

  const bool reset_ok = ResetPeakRss();
  const size_t baseline = ReadPeakRssBytes();
  {
    Timer timer;
    auto stitched = OpenInputs(paths, InputOptions{});
    out.stitch_s = timer.Seconds();
    // Members end on line boundaries, so the stitch adds no terminators
    // and the combined dataset is byte-for-byte the original corpus.
    out.bytes_match =
        stitched.ok() && stitched.value().size_bytes() == text.size();
    const size_t peak = ReadPeakRssBytes();
    out.peak_delta = peak > baseline ? peak - baseline : 0;
  }
  out.rss_gated = reset_ok;
  for (const std::string& path : paths) std::remove(path.c_str());

  const double ratio =
      out.bytes > 0
          ? static_cast<double>(out.peak_delta) / static_cast<double>(out.bytes)
          : 0;
  // Expected ~1.3x (combined buffer + one member in flight); geometric
  // growth without the reserve lands at 2x+. 8 MB of slack absorbs
  // allocator noise at the quick corpus size.
  const bool under_budget =
      out.peak_delta <= out.bytes + out.bytes / 2 + (8u << 20);
  std::printf("stitched open (%zu members, %zu MB): %.3fs, peak delta "
              "%zu MB (%.2fx)%s, bytes %s\n",
              out.members, out.bytes >> 20, out.stitch_s,
              out.peak_delta >> 20, ratio,
              out.rss_gated ? "" : " [peak not isolated; gate skipped]",
              out.bytes_match ? "match" : "MISMATCH — STITCH BUG");
  out.ok = out.bytes_match && (!out.rss_gated || under_budget);
  return out;
}

void PrintRunJson(FILE* f, const char* key, const PipelineRun& run,
                  int threads) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"threads\": %d,\n"
               "    \"generation_s\": %.6f,\n"
               "    \"pruning_s\": %.6f,\n"
               "    \"evaluation_s\": %.6f,\n"
               "    \"refinement_s\": %.6f,\n"
               "    \"extraction_s\": %.6f,\n"
               "    \"total_s\": %.6f,\n"
               "    \"mb_per_s\": %.3f\n"
               "  }",
               key, threads, run.timings.generation_s, run.timings.pruning_s,
               run.timings.evaluation_s, run.timings.refinement_s,
               run.timings.extraction_s, run.timings.total_s,
               MbPerSec(run.bytes, run.timings.total_s));
}

int RunPipelineBench() {
  const bool quick = bench::QuickMode();
  const int datasets = bench::EnvInt("DM_BENCH_DATASETS", quick ? 4 : 16);
  const size_t bytes = quick ? 24 * 1024 : 48 * 1024;
  const int hw = ThreadPool::DefaultThreadCount();
  const int multi = bench::EnvInt("DM_BENCH_THREADS", std::max(4, hw));

  // Streaming-vs-collecting sink memory cases first (fresh allocator),
  // one per output layout.
  // The stitch case measures an RSS *delta*, which freed-then-reused
  // allocator pages would hide — it must run before anything grows the
  // arena. The sink cases compare two absolute peaks measured the same
  // way, so the stitch case's modest retained arena cancels out of their
  // ratio.
  const StitchedPeakCase stitch_case = RunStitchedPeakCase(quick);
  const SinkCase sink_case = RunStreamingSinkCase(multi, quick);
  const SinkCase norm_case = RunNormalizedSinkCase(multi, quick);

  std::vector<std::string> texts;
  texts.reserve(static_cast<size_t>(datasets));
  for (int i = 0; static_cast<int>(texts.size()) < datasets; ++i) {
    // Skip pure-noise corpus entries: they exercise nothing downstream.
    GeneratedDataset ds = BuildGithubDataset(i % kGithubCorpusSize, bytes);
    if (ds.label == DatasetLabel::kNoStructure) continue;
    texts.push_back(std::move(ds.text));
  }

  std::printf("pipeline workload: %d GitHub-corpus datasets, %.1f MB total\n",
              datasets,
              static_cast<double>(bytes) * datasets / (1024.0 * 1024.0));
  PipelineRun single = RunPipelineWorkload(texts, 1);
  std::printf("  threads=1:  total %.3fs  (gen %.3fs, eval %.3fs, "
              "extract %.3fs)  %.2f MB/s\n",
              single.timings.total_s, single.timings.generation_s,
              single.timings.evaluation_s, single.timings.extraction_s,
              MbPerSec(single.bytes, single.timings.total_s));
  std::vector<std::vector<StructureTemplate>> workload_templates;
  PipelineRun parallel =
      RunPipelineWorkload(texts, multi, &workload_templates);
  std::printf("  threads=%d:  total %.3fs  (gen %.3fs, eval %.3fs, "
              "extract %.3fs)  %.2f MB/s\n",
              multi, parallel.timings.total_s, parallel.timings.generation_s,
              parallel.timings.evaluation_s, parallel.timings.extraction_s,
              MbPerSec(parallel.bytes, parallel.timings.total_s));

  const bool identical = single.signature == parallel.signature;
  const double speedup = parallel.timings.total_s > 0
                             ? single.timings.total_s / parallel.timings.total_s
                             : 0;
  std::printf("  speedup %.2fx, output identical: %s\n", speedup,
              identical ? "yes" : "NO — DETERMINISM BUG");

  const char* out_path = std::getenv("DM_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_micro.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"workload\": \"github_corpus\",\n"
               "  \"datasets\": %d,\n"
               "  \"bytes\": %zu,\n"
               "  \"hardware_threads\": %d,\n",
               datasets, single.bytes, hw);
  PrintRunJson(f, "single_thread", single, 1);
  std::fprintf(f, ",\n");
  PrintRunJson(f, "multi_thread", parallel, multi);
  const bool match_ok =
      RunMatchEngineBench(f, texts, std::move(workload_templates), quick);
  const bool charset_ok = RunCharsetEngineBench(f, quick);
  const bool eval_ok = RunEvaluationBench(f, texts, quick);
  const bool catalog_ok = RunCatalogBench(f, quick);
  const bool program_load_ok = RunProgramLoadBench(f, quick);
  const bool streaming_ok = RunStreamingBench(f, quick);
  // --- Large-file extraction through both backings (the mmap path). ---
  const size_t big_bytes = quick ? 2 * 1024 * 1024 : 16 * 1024 * 1024;
  Rng rng(5);
  std::string big;
  big.reserve(big_bytes + 128);
  while (big.size() < big_bytes) {
    big += std::to_string(rng.Uniform(0, 999999)) + "," +
           std::to_string(rng.Uniform(0, 999)) + "," +
           std::to_string(rng.Uniform(0, 999)) + "\n";
    if (rng.Bernoulli(0.02)) big += "## unstructured comment line\n";
  }
  const std::string big_path = "bench_micro_mmap_input.tmp";
  double mapped_s = 0, read_s = 0;
  bool mmap_identical = false;
  size_t resident = 0;
  if (WriteStringToFile(big_path, big).ok()) {
    auto run_mode = [&](MapMode mode, double* seconds,
                        bool* used_map) -> uint64_t {
      DatamaranOptions opts;
      opts.num_threads = multi;
      opts.mmap_mode = mode;
      Datamaran dm(opts);
      auto r = dm.ExtractFile(big_path);
      if (!r.ok()) return 0;
      *seconds = r->timings.total_s;
      *used_map = r->stats.input_mapped;
      if (mode == MapMode::kAlways) resident = r->stats.input_resident_bytes;
      uint64_t sig = kFnvOffset;
      for (const StructureTemplate& st : r->templates) {
        sig = Fnv1a(st.canonical(), sig);
      }
      for (const ExtractedRecord& rec : r->extraction.records) {
        HashSizeT(&sig, static_cast<size_t>(rec.template_id));
        HashSizeT(&sig, rec.begin);
        HashSizeT(&sig, rec.end);
      }
      for (size_t noise : r->extraction.noise_lines) HashSizeT(&sig, noise);
      return sig;
    };
    bool mapped_used = false, read_used = false;
    const uint64_t sig_map = run_mode(MapMode::kAlways, &mapped_s,
                                      &mapped_used);
    const uint64_t sig_read = run_mode(MapMode::kNever, &read_s, &read_used);
    mmap_identical = sig_map != 0 && sig_map == sig_read && mapped_used &&
                     !read_used;
    std::printf("large-file (%zu MB): mmap %.3fs (%.2f MB/s, ~%zu KB "
                "resident), read %.3fs, identical: %s\n",
                big.size() >> 20, mapped_s, MbPerSec(big.size(), mapped_s),
                resident >> 10, read_s,
                mmap_identical ? "yes" : "NO — BACKING BUG");
    std::remove(big_path.c_str());
  }

  std::fprintf(f,
               ",\n"
               "  \"speedup\": %.3f,\n"
               "  \"identical_output\": %s,\n"
               "  \"residual_copy_bytes\": %zu,\n"
               "  \"peak_rss_bytes\": %zu,\n"
               "  \"mmap_case\": {\n"
               "    \"bytes\": %zu,\n"
               "    \"mapped_s\": %.6f,\n"
               "    \"read_s\": %.6f,\n"
               "    \"mapped_mb_per_s\": %.3f,\n"
               "    \"resident_bytes\": %zu,\n"
               "    \"identical\": %s\n"
               "  },\n"
               "  \"streaming_sink\": {\n"
               "    \"bytes\": %zu,\n"
               "    \"records\": %zu,\n"
               "    \"streaming_s\": %.6f,\n"
               "    \"collecting_s\": %.6f,\n"
               "    \"streaming_peak_rss_bytes\": %zu,\n"
               "    \"collecting_peak_rss_bytes\": %zu,\n"
               "    \"rss_gated\": %s,\n"
               "    \"counts_match\": %s\n"
               "  },\n"
               "  \"normalized_sink\": {\n"
               "    \"bytes\": %zu,\n"
               "    \"records\": %zu,\n"
               "    \"streaming_s\": %.6f,\n"
               "    \"collecting_s\": %.6f,\n"
               "    \"streaming_peak_rss_bytes\": %zu,\n"
               "    \"collecting_peak_rss_bytes\": %zu,\n"
               "    \"rss_gated\": %s,\n"
               "    \"counts_match\": %s\n"
               "  },\n"
               "  \"stitched_peak\": {\n"
               "    \"bytes\": %zu,\n"
               "    \"members\": %zu,\n"
               "    \"stitch_s\": %.6f,\n"
               "    \"peak_delta_bytes\": %zu,\n"
               "    \"rss_gated\": %s,\n"
               "    \"bytes_match\": %s\n"
               "  }\n"
               "}\n",
               speedup, identical ? "true" : "false",
               single.residual_copy_bytes + parallel.residual_copy_bytes,
               PeakRssBytes(), big.size(), mapped_s, read_s,
               MbPerSec(big.size(), mapped_s), resident,
               mmap_identical ? "true" : "false", sink_case.bytes,
               sink_case.records, sink_case.streaming_s,
               sink_case.collecting_s, sink_case.streaming_peak,
               sink_case.collecting_peak,
               sink_case.rss_gated ? "true" : "false",
               sink_case.counts_match ? "true" : "false", norm_case.bytes,
               norm_case.records, norm_case.streaming_s,
               norm_case.collecting_s, norm_case.streaming_peak,
               norm_case.collecting_peak,
               norm_case.rss_gated ? "true" : "false",
               norm_case.counts_match ? "true" : "false", stitch_case.bytes,
               stitch_case.members, stitch_case.stitch_s,
               stitch_case.peak_delta,
               stitch_case.rss_gated ? "true" : "false",
               stitch_case.bytes_match ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n\n", out_path);
  return identical && mmap_identical && match_ok && charset_ok && eval_ok &&
                 catalog_ok && program_load_ok && streaming_ok &&
                 sink_case.ok && norm_case.ok && stitch_case.ok
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // The pipeline section takes seconds and writes BENCH_micro.json; skip
  // it for google-benchmark introspection/filter invocations (and on
  // DM_BENCH_SKIP_PIPELINE=1) so the standard bench CLI stays snappy and
  // side-effect free. Scan argv before Initialize — it consumes the flags
  // it recognizes.
  bool pipeline = std::getenv("DM_BENCH_SKIP_PIPELINE") == nullptr;
  for (int i = 1; i < argc && pipeline; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark_list_tests", 0) == 0 ||
        arg.rfind("--benchmark_filter", 0) == 0 || arg == "--help") {
      pipeline = false;
    }
  }
  benchmark::Initialize(&argc, argv);
  const int rc = pipeline ? RunPipelineBench() : 0;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return rc;
}
