// Figure 18 / Section 6: user-study surrogate. For five representative
// datasets (one single-line, two regular multi-line, two noisy multi-line),
// plan the wrangling-operation sequence that reaches the target extraction
// from (R) the raw file, (A) Datamaran output, (B) RecordBreaker output.
// Plan length stands in for participant effort; an infeasible plan stands
// in for the participants' failures (black circles in Figure 18).
//
// Paper shape: A needs the fewest ops and never fails; B and R need more
// and fail exactly on the noisy multi-line datasets.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "core/datamaran.h"
#include "datagen/manual_datasets.h"
#include "evalharness/wrangle_search.h"
#include "extraction/relational.h"
#include "recordbreaker/recordbreaker.h"

namespace {

using namespace datamaran;

/// Target table: one row per (majority-type) record, one column per target.
Table TargetTable(const GeneratedDataset& ds) {
  // The study's extraction target: prefer the multi-line record type (the
  // interesting one), then the most frequent.
  std::map<int, std::pair<int, int>> stats;  // type -> (max span, count)
  for (const auto& r : ds.records()) {
    auto& s = stats[r.type];
    s.first = std::max(s.first, r.line_count);
    s.second++;
  }
  int type = 0;
  std::pair<int, int> best{0, 0};
  for (auto [t, s] : stats) {
    if (s > best) {
      best = s;
      type = t;
    }
  }
  Table target;
  target.name = "target";
  bool first = true;
  for (const auto& rec : ds.records()) {
    if (rec.type != type) continue;
    std::vector<std::string> row;
    for (const auto& t : rec.targets) {
      if (first) target.columns.push_back(t.name);
      row.push_back(std::string(
          std::string_view(ds.text).substr(t.begin, t.end - t.begin)));
    }
    first = false;
    target.rows.push_back(std::move(row));
  }
  return target;
}

/// R condition: the raw file as a one-column table of lines.
std::vector<Table> RawTables(const Dataset& data) {
  Table t;
  t.name = "raw";
  t.columns = {"line"};
  for (size_t li = 0; li < data.line_count(); ++li) {
    t.rows.push_back({std::string(data.line(li))});
  }
  return {t};
}

/// A condition: Datamaran's denormalized tables.
std::vector<Table> DatamaranTables(const GeneratedDataset& ds) {
  DatamaranOptions opts;
  Datamaran dm(opts);
  PipelineResult result = dm.ExtractText(std::string(ds.text));
  Dataset data{std::string(ds.text)};
  Extractor extractor(&result.templates);
  ExtractionResult extraction = extractor.Extract(data);
  std::vector<Table> tables;
  for (size_t t = 0; t < result.templates.size(); ++t) {
    tables.push_back(DenormalizedTable(result.templates[t],
                                       extraction.records, data.text(),
                                       static_cast<int>(t),
                                       "dm" + std::to_string(t)));
  }
  return tables;
}

/// B condition: RecordBreaker's per-branch token tables (its "multiple
/// output files").
std::vector<Table> RecordBreakerTables(const GeneratedDataset& ds) {
  Dataset data{std::string(ds.text)};
  RecordBreaker rb;
  RecordBreakerResult result = rb.Extract(data);
  std::vector<Table> tables(static_cast<size_t>(result.branch_count));
  for (int b = 0; b < result.branch_count; ++b) {
    tables[static_cast<size_t>(b)].name = "rb" + std::to_string(b);
  }
  for (const RbRecord& rec : result.records) {
    Table& t = tables[static_cast<size_t>(rec.branch)];
    std::vector<std::string> row;
    for (const auto& [fb, fe] : rec.fields) {
      row.push_back(std::string(data.text().substr(fb, fe - fb)));
    }
    while (t.columns.size() < row.size()) {
      t.columns.push_back("tok" + std::to_string(t.columns.size()));
    }
    t.rows.push_back(std::move(row));
  }
  // Pad ragged rows.
  for (Table& t : tables) {
    for (auto& row : t.rows) row.resize(t.columns.size());
  }
  return tables;
}

void Report(const char* cond, const WranglePlan& plan) {
  if (plan.feasible) {
    std::printf("  %-2s ops=%-3d", cond, plan.ops);
    for (size_t s = 0; s < plan.steps.size() && s < 3; ++s) {
      std::printf("  %s;", plan.steps[s].c_str());
    }
    std::printf("\n");
  } else {
    std::printf("  %-2s FAIL (%s)\n", cond, plan.failure_reason.c_str());
  }
}

}  // namespace

int main() {
  bench::Header("Figure 18 / Section 6",
                "wrangling ops to reach the target from R / A / B");

  // The study's five datasets: single-line; multi-line regular (x3);
  // multi-line with noise/incomplete records.
  const int indices[5] = {2, 15, 21, 19, 24};
  const char* kinds[5] = {"single-line", "multi-line regular",
                          "multi-line regular", "multi-line regular",
                          "multi-line noisy"};
  int a_fail = 0, b_fail = 0, r_fail = 0;
  for (int d = 0; d < 5; ++d) {
    GeneratedDataset ds = BuildManualDataset(indices[d], 24 * 1024);
    Dataset data{std::string(ds.text)};
    Table target = TargetTable(ds);
    std::printf("\ndataset %d: %s (%s; %zu records, %zu target cols)\n",
                d + 1, ds.name.c_str(), kinds[d], target.rows.size(),
                target.columns.size());

    WranglePlan a = PlanTransformation(DatamaranTables(ds), target);
    WranglePlan b = PlanTransformation(RecordBreakerTables(ds), target);
    WranglePlan r = PlanTransformation(RawTables(data), target);
    Report("A", a);
    Report("B", b);
    Report("R", r);
    a_fail += a.feasible ? 0 : 1;
    b_fail += b.feasible ? 0 : 1;
    r_fail += r.feasible ? 0 : 1;
    if (a.feasible && b.feasible) {
      std::printf("  -> A needs %s ops than B\n",
                  a.ops <= b.ops ? "fewer/equal" : "MORE");
    }
  }
  std::printf("\nfailures: A=%d B=%d R=%d (paper: A never fails; B and R "
              "fail on noisy multi-line data)\n",
              a_fail, b_fail, r_fail);
  return 0;
}
