// Table 5 + Section 5.2.1: the 25 manually collected datasets — their
// characteristics and Datamaran's extraction success on every one of them
// (the paper reports success on all 25 under the Section 5.1 criterion).

#include <cstdio>

#include "bench_common.h"
#include "datagen/manual_datasets.h"
#include "evalharness/accuracy.h"
#include "util/strings.h"

int main() {
  using namespace datamaran;
  bench::Header("Table 5 / Section 5.2.1",
                "25 manual datasets: characteristics + extraction success");

  std::printf("%-22s %-28s %9s %6s %5s | %5s %6s  %s\n", "dataset",
              "models (Table 5 row)", "bytes", "types", "span", "exh.",
              "greedy", "time(s)");
  int ok_ex = 0, ok_gr = 0;
  double scale = bench::QuickMode() ? 0.4 : 1.0;
  DatamaranOptions base;
  EvalTools tools;
  tools.run_exhaustive = true;
  tools.run_greedy = true;
  tools.run_recordbreaker = false;
  for (int i = 0; i < kManualDatasetCount; ++i) {
    const ManualDatasetInfo& info = GetManualDatasetInfo(i);
    GeneratedDataset ds = BuildManualDataset(
        i, static_cast<size_t>(DefaultManualBytes(i) * scale));
    DatasetOutcome out = EvaluateDataset(ds, base, tools);
    ok_ex += out.dm_exhaustive ? 1 : 0;
    ok_gr += out.dm_greedy ? 1 : 0;
    std::printf("%-22s %-28s %9zu %6d %5s | %5s %6s  %.2f\n", ds.name.c_str(),
                info.paper_source, ds.text.size(), info.record_types,
                info.max_span, out.dm_exhaustive ? "ok" : "FAIL",
                out.dm_greedy ? "ok" : "FAIL", out.dm_exhaustive_seconds);
    if (!out.dm_exhaustive) {
      std::printf("    exhaustive failure: %s\n",
                  out.dm_exhaustive_reason.c_str());
    }
    if (!out.dm_greedy) {
      std::printf("    greedy failure: %s\n", out.dm_greedy_reason.c_str());
    }
  }
  std::printf("\nsuccessful extractions: exhaustive %d/25, greedy %d/25\n",
              ok_ex, ok_gr);
  std::printf("paper: 25/25 successful (Section 5.2.1)\n");
  return 0;
}
