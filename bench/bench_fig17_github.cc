// Figure 17a/17b + headline numbers: GitHub corpus characteristics and the
// extraction accuracy of Datamaran (exhaustive & greedy) vs RecordBreaker.
// Paper: DM-exhaustive 95.5% overall (excl. NS) with 100% / 92.3% / 85.7% /
// 94.4% on S(NI)/S(I)/M(NI)/M(I); RecordBreaker 29.2% overall with 56.8% /
// 7.1% / 0% / 0%.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "datagen/github_corpus.h"
#include "evalharness/accuracy.h"

int main() {
  using namespace datamaran;
  bench::Header("Figure 17a/17b",
                "GitHub corpus characteristics and per-label accuracy");

  const size_t bytes = bench::QuickMode() ? 24 * 1024 : 48 * 1024;
  const int n = bench::QuickMode() ? 40 : kGithubCorpusSize;

  DatamaranOptions base;
  EvalTools tools;
  tools.run_exhaustive = true;
  tools.run_greedy = true;
  tools.run_recordbreaker = true;

  std::vector<DatasetOutcome> outcomes;
  std::vector<GeneratedDataset> failures_to_report;
  for (int i = 0; i < n; ++i) {
    GeneratedDataset ds = BuildGithubDataset(i, bytes);
    DatasetOutcome out = EvaluateDataset(ds, base, tools);
    outcomes.push_back(out);
    if (!out.dm_exhaustive &&
        ds.label != DatasetLabel::kNoStructure) {
      std::printf("  [exhaustive miss] %-10s %-6s %s%s\n", out.name.c_str(),
                  DatasetLabelName(out.label),
                  out.dm_exhaustive_reason.c_str(),
                  out.expect_hard ? "  (designed-hard)" : "");
    }
  }

  auto agg = Aggregate(outcomes);

  std::printf("\n--- Figure 17a: corpus characteristics ---\n");
  for (int l = 0; l < 5; ++l) {
    std::printf("  %-6s %3d datasets\n",
                DatasetLabelName(static_cast<DatasetLabel>(l)), agg[l].total);
  }

  std::printf("\n--- Figure 17b: extraction accuracy (%%) ---\n");
  std::printf("  %-6s %12s %9s %13s   (paper: exh / RB)\n", "label",
              "exhaustive", "greedy", "RecordBreaker");
  const char* paper[4] = {"100 / 56.8", "92.3 / 7.1", "85.7 / 0",
                          "94.4 / 0"};
  int tot = 0, ex = 0, gr = 0, rb = 0;
  for (int l = 0; l < 4; ++l) {  // NS excluded, as in the paper
    const LabelAccuracy& a = agg[l];
    if (a.total == 0) continue;
    std::printf("  %-6s %11.1f%% %8.1f%% %12.1f%%   (%s)\n",
                DatasetLabelName(static_cast<DatasetLabel>(l)),
                100.0 * a.dm_exhaustive / a.total, 100.0 * a.dm_greedy / a.total,
                100.0 * a.rb / a.total, paper[l]);
    tot += a.total;
    ex += a.dm_exhaustive;
    gr += a.dm_greedy;
    rb += a.rb;
  }
  std::printf("  %-6s %11.1f%% %8.1f%% %12.1f%%   (95.5 / 29.2)\n", "all",
              100.0 * ex / tot, 100.0 * gr / tot, 100.0 * rb / tot);
  std::printf("\n(NS datasets: %d, excluded from accuracy, as in the paper)\n",
              agg[4].total);
  return 0;
}
