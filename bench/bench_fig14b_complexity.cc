// Figure 14b: running time vs structural complexity, where complexity is
// the number of structure templates with >= 10% coverage (the paper's
// x-axis). Shape: more complex datasets take longer; greedy's advantage
// grows with complexity.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/datamaran.h"
#include "datagen/github_corpus.h"
#include "datagen/manual_datasets.h"
#include "generation/generator.h"
#include "util/sampler.h"
#include "util/timer.h"

int main() {
  using namespace datamaran;
  bench::Header("Figure 14b",
                "running time vs structural complexity "
                "(#templates with >=10%% coverage)");

  struct Row {
    std::string name;
    size_t complexity;
    double ex_seconds;
    double gr_seconds;
  };
  std::vector<Row> rows;

  const int n = bench::QuickMode() ? 16 : 60;
  for (int i = 0; i < n; ++i) {
    GeneratedDataset ds = BuildGithubDataset(i * (kGithubCorpusSize / n),
                                             32 * 1024);
    if (ds.label == DatasetLabel::kNoStructure) continue;

    // Complexity: candidates meeting the 10% threshold under exhaustive
    // generation on the sample.
    DatamaranOptions opts;
    Dataset data{std::string(ds.text)};
    DatasetView sample = SampleView(data, SamplerOptions());
    CandidateGenerator gen(sample, &opts);
    size_t complexity = gen.Run().candidates.size();

    Timer t1;
    Datamaran ex(opts);
    ex.ExtractText(std::string(ds.text));
    double ex_seconds = t1.Seconds();

    DatamaranOptions gr_opts;
    gr_opts.search = CharsetSearch::kGreedy;
    Timer t2;
    Datamaran gr(gr_opts);
    gr.ExtractText(std::string(ds.text));
    double gr_seconds = t2.Seconds();

    rows.push_back({ds.name, complexity, ex_seconds, gr_seconds});
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) {
              return a.complexity < b.complexity;
            });
  std::printf("%-12s %12s %14s %12s\n", "dataset", "complexity",
              "exhaustive(s)", "greedy(s)");
  for (const Row& r : rows) {
    std::printf("%-12s %12zu %14.2f %12.2f\n", r.name.c_str(), r.complexity,
                r.ex_seconds, r.gr_seconds);
  }

  // Bucketed averages (the paper's series).
  std::printf("\nbucketed averages:\n%-24s %14s %12s\n", "complexity bucket",
              "exhaustive(s)", "greedy(s)");
  size_t buckets[4][2] = {{0, 25}, {25, 75}, {75, 200}, {200, 1u << 30}};
  for (auto& b : buckets) {
    double ex_sum = 0, gr_sum = 0;
    int count = 0;
    for (const Row& r : rows) {
      if (r.complexity >= b[0] && r.complexity < b[1]) {
        ex_sum += r.ex_seconds;
        gr_sum += r.gr_seconds;
        ++count;
      }
    }
    if (count == 0) continue;
    std::printf("[%4zu, %4zu)  n=%-3d      %14.2f %12.2f\n", b[0],
                std::min(b[1], size_t{9999}), count, ex_sum / count,
                gr_sum / count);
  }
  return 0;
}
