// Ablation study for the implementation's design choices (DESIGN.md §4):
//
//   A1  assimilation score: G = Cov x NonFieldCov  vs  coverage alone
//       (the paper's §4.2 motivation for the non-field term)
//   A2  refinement on/off (array unfolding + shifting + auto-unfold)
//   A3  retained-candidate budget M (10 vs 200)
//   A4  greedy vs exhaustive charset search
//
// Each variant runs over a slice of the GitHub corpus; the metric is the
// §5.1 success rate (NS excluded).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/datamaran.h"
#include "datagen/github_corpus.h"
#include "evalharness/criterion.h"
#include "generation/generator.h"
#include "pruning/pruner.h"
#include "refinement/refiner.h"
#include "scoring/mdl.h"
#include "util/sampler.h"

namespace {

using namespace datamaran;

/// Success rate of the standard pipeline under `opts`.
double RunPipelineVariant(const std::vector<GeneratedDataset>& corpus,
                          const DatamaranOptions& opts) {
  int ok = 0, total = 0;
  for (const auto& ds : corpus) {
    if (ds.label == DatasetLabel::kNoStructure) continue;
    Datamaran dm(opts);
    PipelineResult result = dm.ExtractText(std::string(ds.text));
    SuccessReport report =
        CheckExtraction(ds, UnitsFromPipeline(result, ds.text));
    ++total;
    if (report.success) ++ok;
  }
  return total == 0 ? 0 : 100.0 * ok / total;
}

/// A1: how often does the top-1 candidate under each ranking match the
/// best-MDL candidate? (the pruning step's job is to not lose it)
void AblateAssimilation(const std::vector<GeneratedDataset>& corpus) {
  int g_hits = 0, cov_hits = 0, total = 0;
  for (const auto& ds : corpus) {
    if (ds.label == DatasetLabel::kNoStructure) continue;
    Dataset data{std::string(ds.text)};
    DatasetView sample = SampleView(data, SamplerOptions());
    DatamaranOptions opts;
    CandidateGenerator gen(sample, &opts);
    auto candidates = gen.Run().candidates;
    if (candidates.empty()) continue;
    // Reference: best MDL among all candidates.
    MdlScorer scorer;
    std::string best;
    double best_score = 0;
    for (const auto& c : candidates) {
      auto st = StructureTemplate::FromCanonical(c.canonical);
      if (!st.ok() || !st->Validate().ok()) continue;
      double s = scorer.Score(sample, st.value());
      if (best.empty() || s < best_score) {
        best = c.canonical;
        best_score = s;
      }
    }
    // Rank by G and by coverage alone; does the top-25 contain the best?
    auto by_g = PruneCandidates(candidates, 25);
    auto by_cov = candidates;
    std::sort(by_cov.begin(), by_cov.end(),
              [](const CandidateTemplate& a, const CandidateTemplate& b) {
                return a.coverage > b.coverage;
              });
    if (by_cov.size() > 25) by_cov.resize(25);
    auto contains = [&](const std::vector<CandidateTemplate>& v) {
      for (const auto& c : v) {
        if (c.canonical == best) return true;
      }
      return false;
    };
    ++total;
    if (contains(by_g)) ++g_hits;
    if (contains(by_cov)) ++cov_hits;
  }
  std::printf(
      "A1  top-25 retains the best-MDL template: G=Cov*NonFieldCov %d/%d, "
      "coverage-only %d/%d\n",
      g_hits, total, cov_hits, total);
}

}  // namespace

int main() {
  bench::Header("Ablations", "design-choice ablations on a corpus slice");

  const int n = bench::QuickMode() ? 16 : 40;
  std::vector<GeneratedDataset> corpus;
  for (int i = 0; i < n; ++i) {
    corpus.push_back(
        BuildGithubDataset(i * (kGithubCorpusSize / n), 32 * 1024));
  }

  AblateAssimilation(corpus);

  DatamaranOptions base;
  std::printf("A2  refinement on : %5.1f%% success\n",
              RunPipelineVariant(corpus, base));
  {
    DatamaranOptions off = base;
    off.refine_top_k = 1;
    off.max_unfold_tries = 0;
    std::printf("A2  refinement off: %5.1f%% success (top-1 only, no "
                "unfolding)\n",
                RunPipelineVariant(corpus, off));
  }
  {
    DatamaranOptions m = base;
    m.num_retained = 10;
    std::printf("A3  M=10          : %5.1f%% success\n",
                RunPipelineVariant(corpus, m));
    m.num_retained = 200;
    std::printf("A3  M=200         : %5.1f%% success\n",
                RunPipelineVariant(corpus, m));
  }
  {
    DatamaranOptions g = base;
    g.search = CharsetSearch::kGreedy;
    std::printf("A4  greedy        : %5.1f%% success\n",
                RunPipelineVariant(corpus, g));
    std::printf("A4  exhaustive    : %5.1f%% success\n",
                RunPipelineVariant(corpus, base));
  }
  return 0;
}
