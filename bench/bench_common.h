#ifndef DATAMARAN_BENCH_BENCH_COMMON_H_
#define DATAMARAN_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>

/// Shared helpers for the table/figure reproduction benches. Every bench is
/// a standalone binary that prints the rows/series of one paper exhibit;
/// absolute numbers differ from the paper's 2016 hardware, the *shape* is
/// the claim (see EXPERIMENTS.md).

namespace datamaran::bench {

/// True when DM_BENCH_QUICK=1: benches shrink their workloads (used by CI
/// smoke runs; the recorded outputs use the full defaults).
inline bool QuickMode() {
  const char* v = std::getenv("DM_BENCH_QUICK");
  return v != nullptr && v[0] == '1';
}

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

inline void Header(const char* exhibit, const char* description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", exhibit, description);
  std::printf("==============================================================\n");
}

}  // namespace datamaran::bench

#endif  // DATAMARAN_BENCH_BENCH_COMMON_H_
