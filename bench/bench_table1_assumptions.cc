// Table 1: the assumption comparison chart, plus the paper's empirical
// claim that ~31% of GitHub log datasets violate RecordBreaker's extra
// assumptions (Boundary: one record per line; Tokenization: a fixed lexer
// can split records up front).

#include <cstdio>

#include "bench_common.h"
#include "datagen/github_corpus.h"

int main() {
  using namespace datamaran;
  bench::Header("Table 1", "assumption comparison + violation rates");

  std::printf("%-22s %-14s %-10s\n", "Assumption", "RecordBreaker",
              "Datamaran");
  std::printf("%-22s %-14s %-10s\n", "Coverage Threshold", "No", "Yes");
  std::printf("%-22s %-14s %-10s\n", "Non-overlapping", "Yes", "Yes");
  std::printf("%-22s %-14s %-10s\n", "Structural Form", "Yes", "Yes");
  std::printf("%-22s %-14s %-10s\n", "Boundary", "Yes", "No");
  std::printf("%-22s %-14s %-10s\n", "Tokenization", "Yes", "No");

  // Measured on the generated corpus: any dataset with multi-line records
  // violates Boundary outright (the paper's ">= 31%" lower bound).
  auto corpus = BuildGithubCorpus(8 * 1024);
  int multiline = 0, structured = 0;
  for (const auto& ds : corpus) {
    if (ds.label == DatasetLabel::kNoStructure) continue;
    ++structured;
    if (ds.max_record_span > 1) ++multiline;
  }
  std::printf(
      "\ncorpus check: %d/100 datasets contain multi-line records and so\n"
      "violate RecordBreaker's Boundary assumption (paper: at least 31%%,\n"
      "an underestimate since Tokenization violations add more).\n",
      multiline);
  std::printf("structured datasets: %d/100 follow Section 3's assumptions "
              "(paper: 89%%).\n",
              structured);
  return 0;
}
