// Table 3: time complexity of the pipeline steps, validated empirically.
//   Generation  O(S_data * L * 2^c) exhaustive / O(S_data * L * c^2) greedy
//   Pruning     O(K log K)
//   Evaluation  O(M * S_data)
//   Extraction  O(T_data)
// The bench measures each step while scaling exactly one driver and prints
// the observed ratios (expected ratio in parentheses).

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/datamaran.h"
#include "datagen/manual_datasets.h"
#include "generation/generator.h"
#include "util/sampler.h"
#include "util/strings.h"
#include "util/timer.h"

namespace {

using namespace datamaran;

double GenerationSeconds(const DatasetView& sample, DatamaranOptions opts) {
  CandidateGenerator gen(sample, &opts);
  Timer timer;
  gen.Run();
  return timer.Seconds();
}

}  // namespace

int main() {
  bench::Header("Table 3", "empirical step scaling");

  GeneratedDataset base = BuildManualDataset(2, 512 * 1024);  // web log
  Dataset base_data{std::string(base.text)};

  std::printf("--- generation vs S_data (expect ~2x per doubling) ---\n");
  double prev = 0;
  for (size_t kb : {64, 128, 256}) {
    SamplerOptions so;
    so.max_sample_bytes = kb * 1024;
    DatasetView sample = SampleView(base_data, so);
    DatamaranOptions opts;
    double s = GenerationSeconds(sample, opts);
    std::printf("  S_data=%4zuKB  gen=%7.3fs%s\n", kb, s,
                prev > 0 ? StrFormat("  ratio=%.2f (expect ~2)", s / prev)
                               .c_str()
                         : "");
    prev = s;
  }

  std::printf("--- generation vs L (expect ~linear) ---\n");
  {
    SamplerOptions so;
    so.max_sample_bytes = 128 * 1024;
    DatasetView sample = SampleView(base_data, so);
    prev = 0;
    for (int l : {5, 10, 20}) {
      DatamaranOptions opts;
      opts.max_record_span = l;
      double s = GenerationSeconds(sample, opts);
      std::printf("  L=%2d  gen=%7.3fs%s\n", l, s,
                  prev > 0 ? StrFormat("  ratio=%.2f (expect ~2)", s / prev)
                                 .c_str()
                           : "");
      prev = s;
    }
  }

  std::printf("--- generation vs c: exhaustive ~2^c, greedy ~c^2 ---\n");
  {
    SamplerOptions so;
    so.max_sample_bytes = 64 * 1024;
    DatasetView sample = SampleView(base_data, so);
    for (int c : {4, 6, 8}) {
      DatamaranOptions ex;
      ex.max_special_chars = c;
      DatamaranOptions gr;
      gr.max_special_chars = c;
      gr.search = CharsetSearch::kGreedy;
      std::printf("  c=%2d  exhaustive=%7.3fs  greedy=%7.3fs\n", c,
                  GenerationSeconds(sample, ex), GenerationSeconds(sample, gr));
    }
  }

  std::printf("--- evaluation vs M and extraction vs T_data ---\n");
  for (int m : {25, 50, 100}) {
    DatamaranOptions opts;
    opts.num_retained = m;
    Datamaran dm(opts);
    PipelineResult r = dm.ExtractText(std::string(base.text));
    std::printf("  M=%3d  evaluation=%6.3fs\n", m, r.timings.evaluation_s);
  }
  for (size_t mb : {2, 4, 8}) {
    GeneratedDataset big = BuildVcfDataset(mb * 1024 * 1024);
    DatamaranOptions opts;
    Datamaran dm(opts);
    PipelineResult r = dm.ExtractText(std::string(big.text));
    std::printf("  T_data=%zuMB  extraction=%6.3fs\n", mb,
                r.timings.extraction_s);
  }
  return 0;
}
