// Figure 15: impact of the parameters on running time. Left plot: M (the
// number of templates retained after pruning) on a small and a larger
// dataset; right plot: alpha and L. Paper shape: time grows with M (more
// so for larger data), with L, and shrinks with alpha. Skipping the pruning
// step entirely (M = infinity) is far slower, which is why the assimilation
// score exists.

#include <cstdio>

#include "bench_common.h"
#include "core/datamaran.h"
#include "datagen/manual_datasets.h"
#include "util/timer.h"

namespace {

double RunOnce(const std::string& text, datamaran::DatamaranOptions opts) {
  datamaran::Datamaran dm(opts);
  datamaran::Timer timer;
  dm.ExtractText(std::string(text));
  return timer.Seconds();
}

}  // namespace

int main() {
  using namespace datamaran;
  bench::Header("Figure 15", "running time vs parameters (M; alpha and L)");

  GeneratedDataset small = BuildManualDataset(2, 192 * 1024);   // web log
  GeneratedDataset large =
      BuildVcfDataset(bench::QuickMode() ? 1 * 1024 * 1024 : 4 * 1024 * 1024);

  std::printf("--- time vs M (left plot) ---\n");
  std::printf("%6s %12s %12s\n", "M", "small(s)", "large(s)");
  for (int m : {50, 100, 200, 500, 1000}) {
    DatamaranOptions opts;
    opts.num_retained = m;
    std::printf("%6d %12.2f %12.2f\n", m, RunOnce(small.text, opts),
                RunOnce(large.text, opts));
  }
  {
    DatamaranOptions opts;
    opts.num_retained = -1;  // M = infinity: skip pruning entirely
    std::printf("%6s %12.2f %12s   <- why the pruning step exists\n", "inf",
                RunOnce(small.text, opts), "-");
  }

  std::printf("\n--- time vs alpha and L (right plot, small dataset) ---\n");
  std::printf("%8s %4s %12s\n", "alpha", "L", "time(s)");
  for (double alpha : {0.05, 0.10, 0.20}) {
    for (int l : {5, 10, 15}) {
      DatamaranOptions opts;
      opts.coverage_threshold = alpha;
      opts.max_record_span = l;
      std::printf("%7.0f%% %4d %12.2f\n", alpha * 100, l,
                  RunOnce(small.text, opts));
    }
  }
  return 0;
}
