// Figure 16: parameter sensitivity. For each of the 25 manual datasets,
// "optimal structure template" = the best-regularity-score template among
// ALL candidates with >= alpha% coverage (i.e. M = infinity). The figure
// reports, per parameter combination, the percentage of datasets where the
// pipeline's evaluation-step winner equals that optimal template; the paper
// also notes that for ~40% of datasets the optimal template already has the
// best assimilation score.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/manual_datasets.h"
#include "generation/generator.h"
#include "pruning/pruner.h"
#include "scoring/mdl.h"
#include "util/sampler.h"

namespace {

using namespace datamaran;

/// Evaluation-step winner (pre-refinement) under the given parameters.
std::string WinnerCanonical(const DatasetView& sample,
                            DatamaranOptions opts) {
  CandidateGenerator gen(sample, &opts);
  GenerationResult generated = gen.Run();
  auto retained =
      PruneCandidates(std::move(generated.candidates), opts.num_retained);
  MdlScorer scorer;
  std::string best;
  double best_score = 0;
  for (const auto& cand : retained) {
    auto st = StructureTemplate::FromCanonical(cand.canonical);
    if (!st.ok() || !st->Validate().ok()) continue;
    double score = scorer.Score(sample, st.value());
    if (best.empty() || score < best_score) {
      best = cand.canonical;
      best_score = score;
    }
  }
  return best;
}

/// Whether the top-assimilation candidate is also the optimal one.
bool AssimilationPicksOptimal(const DatasetView& sample,
                              DatamaranOptions opts,
                              const std::string& optimal) {
  CandidateGenerator gen(sample, &opts);
  auto retained = PruneCandidates(gen.Run().candidates, 1);
  return !retained.empty() && retained[0].canonical == optimal;
}

}  // namespace

int main() {
  bench::Header("Figure 16",
                "%% of datasets where the optimal template is found, by "
                "parameter combination");

  const int n = bench::QuickMode() ? 10 : kManualDatasetCount;
  std::vector<std::unique_ptr<Dataset>> backing;  // stable view targets
  std::vector<DatasetView> samples;
  std::vector<std::string> optimal;
  int assim_optimal = 0;
  for (int i = 0; i < n; ++i) {
    GeneratedDataset ds = BuildManualDataset(
        i, static_cast<size_t>(DefaultManualBytes(i) * 0.5));
    backing.push_back(std::make_unique<Dataset>(std::string(ds.text)));
    samples.push_back(SampleView(*backing.back(), SamplerOptions()));
    DatamaranOptions ref;
    ref.num_retained = -1;  // M = infinity
    optimal.push_back(WinnerCanonical(samples.back(), ref));
    if (AssimilationPicksOptimal(samples.back(), ref, optimal.back())) {
      ++assim_optimal;
    }
  }
  std::printf("optimal == best assimilation score: %d/%d (%.0f%%; paper ~40%%)\n\n",
              assim_optimal, n, 100.0 * assim_optimal / n);

  std::printf("%-34s %10s\n", "parameters", "optimal found");
  struct Combo {
    double alpha;
    int l;
    int m;
  };
  const Combo combos[] = {
      {0.10, 10, 10},  {0.10, 10, 50},  {0.10, 10, 100}, {0.10, 10, 1000},
      {0.05, 10, 50},  {0.20, 10, 50},  {0.10, 5, 50},   {0.10, 15, 50},
      {0.05, 15, 1000}, {0.20, 5, 10},
  };
  for (const Combo& c : combos) {
    int found = 0;
    for (int i = 0; i < n; ++i) {
      DatamaranOptions opts;
      opts.coverage_threshold = c.alpha;
      opts.max_record_span = c.l;
      opts.num_retained = c.m;
      if (WinnerCanonical(samples[static_cast<size_t>(i)], opts) ==
          optimal[static_cast<size_t>(i)]) {
        ++found;
      }
    }
    std::printf("alpha=%3.0f%%  L=%-3d M=%-5d          %3d/%d (%.0f%%)\n",
                c.alpha * 100, c.l, c.m, found, n, 100.0 * found / n);
  }
  std::printf("\npaper shape: robust to parameters; M 50->1000 buys ~10%%.\n");
  return 0;
}
