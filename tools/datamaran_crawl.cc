// Data-lake crawler: walk a directory tree, cluster files by structure
// template catalog entry, discover formats on miss, and extract every
// structured file to streamed relational tables.
//
//   datamaran_crawl <dir> [--catalog-in=PATH] [--catalog-out=PATH]
//                   [--catalog-no-merge] [--incremental]
//                   [--out=DIR] [--manifest=PATH] [--threads=N]
//                   [--mmap=MODE] [--match-engine=ENGINE]
//                   [--charset-engine=ENGINE] [--catalog-min-match=P]
//                   [--crlf=POLICY] [--max-line-bytes=N]
//                   [--max-inflate-bytes=N] [--no-stitch-rotated]
//                   [--alpha=P] [--span=L] [--retain=M] [--format=FMT]
//                   [--verbose]
//
// Every file opens through the resilient input front-end (core/input.h):
// gzip'd files inflate transparently, CRLF line endings normalize per
// --crlf, and rotation siblings (app.log, app.log.1, app.log.2.gz) are
// stitched into ONE logical dataset in chronological order — one manifest
// entry, one fingerprint, one extraction — unless --no-stitch-rotated.
// Failure containment is per file: an unreadable or corrupt member never
// aborts the crawl; its Status lands in the manifest's "errors" section
// (and the per-file summary's "error" field), the crawl continues, and the
// process exits 1 so automation still notices.
//
// The paper's data-lake setting has thousands of files sharing a few dozen
// formats, so the crawl amortizes discovery: full discovery (generation +
// MDL evaluation + refinement) runs once per *format*, and every other
// file is served by the catalog fast path at compiled-match speed. Three
// phases, each deterministic (files are processed in sorted relative-path
// order; every per-file artifact is byte-identical for any --threads):
//
//   1. Fingerprint (parallel over files): sample each file and match it
//      against the catalog (template/catalog.h MatchCatalog — FIRST-byte
//      prefilter, then MDL acceptance).
//   2. Discover-on-miss (sequential, sorted order): each missed file is
//      re-fingerprinted against the catalog *as grown so far* — so the
//      second and later files of a new format cluster without discovery —
//      and only a genuine miss pays cold discovery; its accepted templates
//      fold into the catalog as a new entry.
//   3. Extract (parallel over files): each structured file streams its
//      tables through the O(wave) columnar sinks into
//      <out>/<relative-path>.tables/. Parallelism is per *file* here (the
//      wave-bounded extractor runs sequentially within each file): the
//      pool cannot nest, and with many files the outer level is the right
//      grain — peak memory stays O(threads x wave).
//
// The crawl ends with a lake manifest (JSON): format -> file clusters with
// per-file summaries (the same FileSummary object --summary-json emits),
// plus drifted-file flags — files whose sample matched a catalog entry but
// whose whole-file match rate fell below the threshold. With
// --catalog-out, the grown catalog is saved for the next crawl; the save
// merges with whatever is on disk under an advisory lock, so concurrent
// crawls sharing one catalog never lose entries (--catalog-no-merge
// overwrites instead).
//
// --incremental turns repeat crawls of a mostly-unchanged lake into no-ops:
// the previous manifest at --manifest is read back, and every logical file
// whose on-disk identity (total member size, newest member mtime) is
// unchanged has its summary restored verbatim from that manifest —
// fingerprinting, discovery, and extraction are all skipped, and existing
// --out tables are left as the previous run wrote them. A changed, new, or
// previously-failed file re-runs the full three phases. Pass the previous
// run's --catalog-out as --catalog-in so restored catalog-entry indices
// keep naming the same formats.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/datamaran.h"
#include "core/input.h"
#include "core/summary.h"
#include "extraction/sinks.h"
#include "flag_parse.h"
#include "template/catalog.h"
#include "util/file_io.h"
#include "util/json.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace datamaran;

void Usage() {
  std::fprintf(
      stderr,
      "usage: datamaran_crawl <dir> [--catalog-in=PATH] [--catalog-out=PATH]\n"
      "                       [--catalog-no-merge] [--incremental]\n"
      "                       [--out=DIR] [--manifest=PATH] [--threads=N]\n"
      "                       [--mmap=MODE] [--match-engine=ENGINE]\n"
      "                       [--charset-engine=ENGINE]\n"
      "                       [--catalog-min-match=P] [--crlf=POLICY]\n"
      "                       [--max-line-bytes=N] [--max-inflate-bytes=N]\n"
      "                       [--no-stitch-rotated] [--alpha=P] [--span=L]\n"
      "                       [--retain=M] [--format=FMT] [--verbose]\n"
      "  --catalog-in=PATH   start from this template catalog (default:\n"
      "                      empty; every format is discovered cold once)\n"
      "  --catalog-out=PATH  save the grown catalog after the crawl,\n"
      "                      merging with the file on disk under an\n"
      "                      advisory lock (safe for concurrent crawls)\n"
      "  --catalog-no-merge  overwrite --catalog-out with this crawl's\n"
      "                      catalog instead of merging\n"
      "  --incremental       restore summaries of files unchanged since the\n"
      "                      previous manifest (by size + mtime) instead of\n"
      "                      re-extracting them; requires --manifest\n"
      "  --out=DIR           stream each structured file's tables into\n"
      "                      DIR/<relative-path>.tables/ (same layout and\n"
      "                      bytes as datamaran --out on that file with the\n"
      "                      same templates)\n"
      "  --manifest=PATH     write the lake manifest JSON (formats -> files\n"
      "                      -> tables -> row/noise counts) to PATH instead\n"
      "                      of stdout\n"
      "  --format=FMT        table format for --out: csv (default) or\n"
      "                      ndjson\n"
      "  --catalog-min-match=P  percent of sampled lines a catalog entry\n"
      "                      must cover to count as a hit (default 80);\n"
      "                      also the whole-file threshold below which a\n"
      "                      hit file is flagged as drifted\n"
      "  --crlf=POLICY       line-ending handling: auto (default), strip,\n"
      "                      keep (see datamaran --help)\n"
      "  --max-line-bytes=N  oversized-line guard (default 4MiB; 0 = off)\n"
      "  --max-inflate-bytes=N  gzip decompression-bomb cap (default 4GiB)\n"
      "  --no-stitch-rotated process rotation siblings (app.log.1,\n"
      "                      app.log.2.gz) as separate files instead of\n"
      "                      one stitched chronological dataset\n"
      "  remaining flags as in datamaran (see datamaran --help)\n");
}

/// EventSink that discards records; used when the crawl runs without --out.
/// All counting (including the per-template split) comes from the
/// extractor's own ExtractionResult accounting.
class NullSink : public EventSink {
 public:
  void OnRecord(int /*template_id*/, size_t /*first_line*/,
                std::string_view /*text*/, size_t /*pos*/, size_t /*end*/,
                const MatchEvent* /*events*/,
                size_t /*num_events*/) override {}
};

/// Per-file crawl state, indexed like `files` (sorted relative paths).
/// One CrawlFile may be a rotation group: `members` lists the physical
/// relative paths stitched into this logical file, in chronological order
/// (a plain file is a group of one, itself).
struct CrawlFile {
  std::string rel_path;  ///< logical name (rotation base for groups)
  std::vector<std::string> members;  ///< physical files, oldest first
  int entry = -1;         ///< catalog entry used for extraction; -1 = none
  bool fingerprint_hit = false;  ///< phase-1/2 catalog hit (vs. cold/none)
  double fingerprint_rate = 0;
  /// Every member stat'd cleanly, so summary.source_size/source_mtime_ns
  /// hold this group's change-detection identity (incremental re-crawl).
  bool stat_ok = false;
  FileSummary summary;  ///< summary.skipped = restored, phases 1-3 skipped
  Status error;  ///< open/extract failure (crawl continues, exit code 1)
};

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string out_dir;
  std::string manifest_path;
  OutputFormat format = OutputFormat::kCsv;
  DatamaranOptions options;
  std::string catalog_in;
  std::string catalog_out;
  bool stitch_rotated = true;
  bool incremental = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--no-stitch-rotated") {
      stitch_rotated = false;
    } else if (arg == "--incremental") {
      incremental = true;
    } else if (arg == "--catalog-no-merge") {
      options.catalog_merge = false;
    } else if (StartsWith(arg, "--crlf=")) {
      std::string_view policy = arg.substr(7);
      if (policy == "auto") {
        options.crlf = CrlfPolicy::kAuto;
      } else if (policy == "keep") {
        options.crlf = CrlfPolicy::kKeep;
      } else if (policy == "strip") {
        options.crlf = CrlfPolicy::kStrip;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--max-line-bytes=")) {
      options.max_line_bytes =
          datamaran_tools::FlagSize("--max-line-bytes", arg.substr(17));
    } else if (StartsWith(arg, "--max-inflate-bytes=")) {
      options.max_inflate_bytes =
          datamaran_tools::FlagSize("--max-inflate-bytes", arg.substr(20));
    } else if (StartsWith(arg, "--catalog-in=")) {
      catalog_in = std::string(arg.substr(13));
    } else if (StartsWith(arg, "--catalog-out=")) {
      catalog_out = std::string(arg.substr(14));
    } else if (StartsWith(arg, "--out=")) {
      out_dir = std::string(arg.substr(6));
    } else if (StartsWith(arg, "--manifest=")) {
      manifest_path = std::string(arg.substr(11));
    } else if (StartsWith(arg, "--catalog-min-match=")) {
      options.catalog_min_match =
          datamaran_tools::FlagDouble("--catalog-min-match", arg.substr(20)) /
          100.0;
    } else if (StartsWith(arg, "--alpha=")) {
      options.coverage_threshold =
          datamaran_tools::FlagDouble("--alpha", arg.substr(8)) / 100.0;
    } else if (StartsWith(arg, "--span=")) {
      options.max_record_span =
          datamaran_tools::FlagInt("--span", arg.substr(7));
    } else if (StartsWith(arg, "--retain=")) {
      options.num_retained =
          datamaran_tools::FlagInt("--retain", arg.substr(9));
    } else if (StartsWith(arg, "--threads=")) {
      options.num_threads =
          datamaran_tools::FlagInt("--threads", arg.substr(10));
    } else if (StartsWith(arg, "--mmap=")) {
      std::string_view mode = arg.substr(7);
      if (mode == "auto") {
        options.mmap_mode = MapMode::kAuto;
      } else if (mode == "always") {
        options.mmap_mode = MapMode::kAlways;
      } else if (mode == "never") {
        options.mmap_mode = MapMode::kNever;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--match-engine=")) {
      std::string_view engine = arg.substr(15);
      if (engine == "compiled") {
        options.match_engine = MatchEngine::kCompiled;
      } else if (engine == "tree") {
        options.match_engine = MatchEngine::kTree;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--charset-engine=")) {
      std::string_view engine = arg.substr(17);
      if (engine == "simd") {
        options.charset_engine = CharsetEngine::kSimd;
      } else if (engine == "swar") {
        options.charset_engine = CharsetEngine::kSwar;
      } else if (engine == "scalar") {
        options.charset_engine = CharsetEngine::kScalar;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--format=")) {
      std::string_view fmt = arg.substr(9);
      if (fmt == "csv") {
        format = OutputFormat::kCsv;
      } else if (fmt == "ndjson") {
        format = OutputFormat::kNdjson;
      } else {
        Usage();
        return 2;
      }
    } else if (!StartsWith(arg, "--")) {
      root = std::string(arg);
    } else {
      Usage();
      return 2;
    }
  }
  if (root.empty()) {
    Usage();
    return 2;
  }
  if (incremental && manifest_path.empty()) {
    std::fprintf(stderr,
                 "error: --incremental requires --manifest=PATH (the "
                 "previous run's manifest is the skip list)\n");
    return 2;
  }

  // The crawler owns the catalog lifecycle; the per-file pipeline objects
  // must not load/save it again.
  TemplateCatalog catalog;
  if (!catalog_in.empty()) {
    auto loaded = TemplateCatalog::Load(catalog_in);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    catalog = std::move(loaded.value());
  }

  // Collect regular files, sorted by relative path: the processing order —
  // and therefore entry numbering, manifest order, and all output — is a
  // pure function of the tree's contents.
  namespace fs = std::filesystem;
  std::error_code ec;
  std::vector<CrawlFile> files;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    CrawlFile f;
    f.rel_path = fs::relative(it->path(), root, ec).generic_string();
    files.push_back(std::move(f));
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot walk %s: %s\n", root.c_str(),
                 ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end(),
            [](const CrawlFile& a, const CrawlFile& b) {
              return a.rel_path < b.rel_path;
            });

  // Rotation stitching: logrotate siblings (app.log, app.log.1,
  // app.log.2.gz) collapse into ONE logical crawl file whose members are
  // read oldest-first (highest rotation index first, live file last). A
  // group only forms when two or more paths share a rotation base — a lone
  // app.log.7 keeps its own name rather than being silently renamed.
  if (stitch_rotated) {
    std::map<std::string, std::vector<std::string>> by_base;
    for (const CrawlFile& f : files) {
      by_base[RotationKeyFor(f.rel_path).base].push_back(f.rel_path);
    }
    std::vector<CrawlFile> grouped;
    grouped.reserve(by_base.size());
    for (auto& [base, members] : by_base) {
      CrawlFile f;
      if (members.size() >= 2) {
        SortByRotation(&members);
        f.rel_path = base;
      } else {
        f.rel_path = members[0];
      }
      f.members = std::move(members);
      grouped.push_back(std::move(f));
    }
    std::sort(grouped.begin(), grouped.end(),
              [](const CrawlFile& a, const CrawlFile& b) {
                return a.rel_path < b.rel_path;
              });
    files = std::move(grouped);
  } else {
    for (CrawlFile& f : files) f.members = {f.rel_path};
  }

  // Change-detection identity per logical file: total on-disk member size
  // plus the newest member's mtime. Recorded in every manifest (cold runs
  // included) so the *next* --incremental crawl has a baseline to compare.
  for (CrawlFile& f : files) {
    size_t total_size = 0;
    int64_t newest_mtime = 0;
    bool ok = true;
    for (const std::string& m : f.members) {
      const std::string path = root + "/" + m;
      auto size = FileSizeBytes(path);
      auto mtime = FileMtimeNs(path);
      if (!size.ok() || !mtime.ok()) {
        ok = false;
        break;
      }
      total_size += size.value();
      newest_mtime = std::max(newest_mtime, mtime.value());
    }
    if (ok) {
      f.stat_ok = true;
      f.summary.source_size = total_size;
      f.summary.source_mtime_ns = newest_mtime;
    }
  }

  // --incremental: restore unchanged files' summaries from the previous
  // manifest and skip all three phases for them. A missing or unreadable
  // previous manifest degrades to a full crawl (the first incremental run
  // is always cold); a changed, new, or previously-failed file re-runs.
  size_t restored_count = 0;
  if (incremental) {
    auto prev_text = ReadFileToString(manifest_path);
    if (prev_text.ok()) {
      auto prev = ParseJson(prev_text.value());
      if (!prev.ok()) {
        std::fprintf(stderr,
                     "warning: --incremental: previous manifest %s does not "
                     "parse (%s); running a full crawl\n",
                     manifest_path.c_str(),
                     prev.status().ToString().c_str());
      } else {
        const JsonValue* prev_files = prev.value().Find("files");
        std::map<std::string_view, const JsonValue*> by_path;
        if (prev_files != nullptr && prev_files->is_array()) {
          for (const JsonValue& pf : prev_files->items) {
            const JsonValue* path = pf.Find("path");
            const std::string* p =
                path != nullptr ? path->AsString() : nullptr;
            if (p != nullptr) by_path.emplace(*p, &pf);
          }
        }
        for (CrawlFile& f : files) {
          if (!f.stat_ok) continue;
          const auto it = by_path.find(f.rel_path);
          if (it == by_path.end()) continue;
          auto restored = FileSummaryFromJson(*it->second);
          if (!restored.ok()) continue;
          FileSummary& prev_summary = restored.value();
          // Skip only when the previous run succeeded on this file AND the
          // bytes behind it are provably the same AND its catalog entry
          // still exists in the loaded catalog (so the manifest's format
          // section keeps naming the same formats).
          if (!prev_summary.error.empty()) continue;
          if (prev_summary.source_size != f.summary.source_size ||
              prev_summary.source_mtime_ns != f.summary.source_mtime_ns) {
            continue;
          }
          if (prev_summary.catalog_entry >= static_cast<int>(catalog.size())) {
            continue;
          }
          f.summary = std::move(prev_summary);
          f.summary.skipped = true;
          f.summary.timings = StepTimings{};  // no work done this run
          f.entry = f.summary.catalog_entry;
          f.fingerprint_hit = f.summary.catalog_hit;
          f.fingerprint_rate = f.summary.catalog_match_rate;
          restored_count++;
        }
      }
    }
    if (options.verbose) {
      std::fprintf(stderr, "incremental: %zu of %zu file(s) unchanged\n",
                   restored_count, files.size());
    }
  }

  CatalogMatchOptions match_opts;
  match_opts.min_match = options.catalog_min_match;
  match_opts.min_mdl_gain = options.min_mdl_gain;
  match_opts.max_sample_bytes = options.max_sample_bytes;
  match_opts.sample_chunks = options.sample_chunks;
  match_opts.match_engine = options.match_engine;
  match_opts.charset_engine = options.charset_engine;
  match_opts.max_line_bytes = options.max_line_bytes;
  const InputOptions input_opts = MakeInputOptions(options);
  auto open_file = [&](const CrawlFile& f) {
    std::vector<std::string> paths;
    paths.reserve(f.members.size());
    for (const std::string& m : f.members) paths.push_back(root + "/" + m);
    return OpenInputs(paths, input_opts);
  };

  Timer total_timer;
  ThreadPool pool(ThreadPool::ResolveThreadCount(options.num_threads));

  // --- Phase 1: fingerprint every file against the incoming catalog.
  // Pure per-file reads of a shared immutable catalog: safe to fan out.
  Timer fingerprint_timer;
  pool.ParallelFor(files.size(), [&](size_t k) {
    CrawlFile& f = files[k];
    if (f.summary.skipped) return;  // restored from the previous manifest
    Timer t;
    auto data = open_file(f);
    if (!data.ok()) {
      f.error = data.status();
      return;
    }
    const CatalogMatch m = MatchCatalog(catalog, data.value(), match_opts);
    f.summary.timings.catalog_match_s = t.Seconds();
    if (m.hit()) {
      f.entry = m.entry;
      f.fingerprint_hit = true;
      f.fingerprint_rate = m.match_rate;
    }
  });
  const double fingerprint_s = fingerprint_timer.Seconds();

  // --- Phase 2: discover formats for the misses, in sorted order. Each
  // miss first re-fingerprints against the catalog as grown by earlier
  // misses (same-format files cluster behind one discovery); only a
  // genuine miss pays cold discovery. Discovery itself parallelizes
  // internally (the Datamaran instance has its own pool), so this loop
  // being sequential costs little and keeps entry numbering deterministic.
  Timer discovery_timer;
  size_t discoveries = 0;
  {
    DatamaranOptions discover_opts = options;
    discover_opts.catalog_in.clear();
    discover_opts.catalog_out.clear();
    Datamaran dm(discover_opts);
    for (CrawlFile& f : files) {
      if (f.summary.skipped || f.entry >= 0 || !f.error.ok()) continue;
      auto data = open_file(f);
      if (!data.ok()) {
        f.error = data.status();
        continue;
      }
      if (!catalog.empty()) {
        Timer t;
        const CatalogMatch m = MatchCatalog(catalog, data.value(), match_opts);
        f.summary.timings.catalog_match_s += t.Seconds();
        if (m.hit()) {
          f.entry = m.entry;
          f.fingerprint_hit = true;
          f.fingerprint_rate = m.match_rate;
          continue;
        }
      }
      StepTimings timings;
      PipelineStats stats;
      std::vector<TemplateReport> reports;
      std::vector<StructureTemplate> templates =
          dm.DiscoverTemplates(data.value(), &timings, &stats, &reports);
      f.summary.timings.generation_s = timings.generation_s;
      f.summary.timings.pruning_s = timings.pruning_s;
      f.summary.timings.evaluation_s = timings.evaluation_s;
      f.summary.timings.refinement_s = timings.refinement_s;
      discoveries++;
      if (templates.empty()) continue;  // unstructured: noise-only file
      CatalogEntry entry;
      entry.templates = std::move(templates);
      for (const TemplateReport& report : reports) {
        CatalogTemplateMeta meta;
        meta.mdl_bits = report.mdl_bits;
        meta.noise_only_bits = report.noise_only_bits;
        meta.sample_records = report.sample_records;
        meta.sample_coverage = report.sample_coverage;
        entry.meta.push_back(meta);
      }
      f.entry = static_cast<int>(catalog.AddEntry(std::move(entry)));
      f.fingerprint_rate = 1.0;  // its own discovery sample, by definition
    }
  }
  const double discovery_s = discovery_timer.Seconds();

  // --- Phase 3: extract every structured file. File-level parallelism
  // over the wave-bounded sequential extractor (the pool cannot nest);
  // the catalog is frozen now, so entry template vectors are stable.
  Timer extract_timer;
  const std::string resolved_charset =
      CharsetEngineName(ResolveCharsetEngine(options.charset_engine));
  pool.ParallelFor(files.size(), [&](size_t k) {
    CrawlFile& f = files[k];
    FileSummary& s = f.summary;
    if (s.skipped) return;  // summary restored verbatim; tables kept as-is
    s.path = f.rel_path;
    s.match_engine =
        options.match_engine == MatchEngine::kCompiled ? "compiled" : "tree";
    s.charset_engine = resolved_charset;
    s.threads = 1;  // per-file scan is sequential; the crawl fans out files
    s.catalog_checked = true;
    s.catalog_hit = f.fingerprint_hit;
    s.catalog_entry = f.entry;
    s.catalog_match_rate = f.fingerprint_rate;
    if (!f.error.ok()) return;
    auto data = open_file(f);
    if (!data.ok()) {
      f.error = data.status();
      return;
    }
    s.input_bytes = data->size_bytes();
    s.input_mapped = data->is_mapped();
    if (f.entry < 0) {
      // Unstructured: every line is noise; nothing to extract.
      s.total_lines = data->line_count();
      s.noise_lines = s.total_lines;
      s.match_rate = s.total_lines == 0 ? 1.0 : 0.0;
      return;
    }
    const CatalogEntry& entry = catalog.entry(static_cast<size_t>(f.entry));
    for (const StructureTemplate& st : entry.templates) {
      s.templates.push_back(st.Display());
    }
    Timer t;
    data->Advise(AccessHint::kSequential);
    // Warm path: entries loaded from a v2 catalog carry precompiled
    // programs, so the matchers deserialize instead of recompiling.
    Extractor extractor(&entry.templates, /*pool=*/nullptr,
                        options.match_engine, options.charset_engine,
                        options.max_line_bytes,
                        entry.programs.empty() ? nullptr : &entry.programs);
    DatasetView view(data.value());
    ExtractionResult stats;
    if (!out_dir.empty()) {
      ColumnarWriteSink sink(&entry.templates, view,
                             out_dir + "/" + f.rel_path + ".tables", format);
      if (!sink.status().ok()) {
        f.error = sink.status();
        return;
      }
      stats = extractor.ExtractEvents(view, &sink);
      Status finished = sink.Finish();
      if (!finished.ok()) {
        f.error = finished;
        return;
      }
    } else {
      NullSink sink;
      stats = extractor.ExtractEvents(view, &sink);
    }
    s.records_per_template = std::move(stats.records_per_template);
    s.timings.extraction_s = t.Seconds();
    s.total_lines = stats.total_lines;
    s.records = stats.matched_records;
    s.noise_lines = stats.noise_line_count;
    s.match_rate = stats.line_match_rate();
    s.coverage = stats.coverage();
    // Drift flag: the sample matched the catalog entry but the whole file
    // does not clear the same threshold — the extractor's line accounting
    // is what surfaces this instead of silently inflating noise.
    s.drifted = f.fingerprint_hit && s.match_rate < options.catalog_min_match;
    s.timings.total_s = s.timings.catalog_match_s + s.timings.generation_s +
                        s.timings.pruning_s + s.timings.evaluation_s +
                        s.timings.refinement_s + s.timings.extraction_s;
  });
  const double extract_s = extract_timer.Seconds();

  if (!catalog_out.empty()) {
    Status saved =
        catalog.Save(catalog_out, CatalogSaveOptions{options.catalog_merge});
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.ToString().c_str());
      return 1;
    }
  }

  // --- Lake manifest: formats -> files -> tables -> row/noise counts.
  // Per-format aggregates join per-file summaries on catalog_entry.
  struct FormatAgg {
    size_t file_count = 0;
    size_t records = 0;
    size_t noise_lines = 0;
  };
  std::vector<FormatAgg> agg(catalog.size());
  size_t unstructured = 0, drifted = 0, errors = 0, total_records = 0;
  size_t extracted = 0;
  for (CrawlFile& f : files) {
    if (!f.error.ok()) {
      f.summary.error = f.error.ToString();
      errors++;
      continue;
    }
    total_records += f.summary.records;
    if (f.summary.drifted) drifted++;
    if (f.entry < 0) {
      unstructured++;
      continue;
    }
    if (!f.summary.skipped) extracted++;
    FormatAgg& a = agg[static_cast<size_t>(f.entry)];
    a.file_count++;
    a.records += f.summary.records;
    a.noise_lines += f.summary.noise_lines;
  }

  std::string manifest;
  manifest += "{\n";
  manifest += "  \"root\": \"";
  AppendJsonEscaped(root, &manifest);
  manifest += "\",\n";
  manifest += StrFormat("  \"file_count\": %zu,\n", files.size());
  manifest += StrFormat("  \"format_count\": %zu,\n", catalog.size());
  manifest += StrFormat("  \"unstructured_count\": %zu,\n", unstructured);
  manifest += StrFormat("  \"drifted_count\": %zu,\n", drifted);
  manifest += StrFormat("  \"error_count\": %zu,\n", errors);
  // Incremental accounting: structured files actually extracted this run
  // vs. files whose summaries were restored from the previous manifest. A
  // warm --incremental re-crawl of an unchanged lake has extracted_count 0.
  manifest += StrFormat("  \"extracted_count\": %zu,\n", extracted);
  manifest += StrFormat("  \"skipped_count\": %zu,\n", restored_count);
  // Failure containment ledger: every file the crawl had to skip, with the
  // Status that explains why. Always present (empty array on a clean run)
  // so manifest consumers can key on it unconditionally.
  manifest += "  \"errors\": [";
  {
    bool first = true;
    for (const CrawlFile& f : files) {
      if (f.error.ok()) continue;
      manifest += first ? "\n" : ",\n";
      first = false;
      manifest += "    {\"path\": \"";
      AppendJsonEscaped(f.rel_path, &manifest);
      manifest += "\", \"error\": \"";
      AppendJsonEscaped(f.error.ToString(), &manifest);
      manifest += "\"}";
    }
    manifest += first ? "],\n" : "\n  ],\n";
  }
  manifest += StrFormat("  \"discoveries\": %zu,\n", discoveries);
  manifest +=
      StrFormat("  \"timings\": {\"fingerprint_s\": %.6f, "
                "\"discovery_s\": %.6f, \"extraction_s\": %.6f, "
                "\"total_s\": %.6f},\n",
                fingerprint_s, discovery_s, extract_s, total_timer.Seconds());
  manifest += "  \"formats\": [\n";
  for (size_t e = 0; e < catalog.size(); ++e) {
    const CatalogEntry& entry = catalog.entry(e);
    manifest += StrFormat("    {\"name\": \"%s\", \"templates\": [",
                          entry.name.c_str());
    for (size_t t = 0; t < entry.templates.size(); ++t) {
      if (t > 0) manifest += ", ";
      manifest += '"';
      AppendJsonEscaped(entry.templates[t].Display(), &manifest);
      manifest += '"';
    }
    manifest += StrFormat("], \"file_count\": %zu, \"records\": %zu, "
                          "\"noise_lines\": %zu}%s\n",
                          agg[e].file_count, agg[e].records,
                          agg[e].noise_lines,
                          e + 1 < catalog.size() ? "," : "");
  }
  manifest += "  ],\n";
  manifest += "  \"files\": [\n";
  for (size_t k = 0; k < files.size(); ++k) {
    AppendFileSummaryJson(files[k].summary, 4, &manifest);
    manifest += k + 1 < files.size() ? ",\n" : "\n";
  }
  manifest += "  ]\n";
  manifest += "}\n";
  if (manifest_path.empty()) {
    std::fputs(manifest.c_str(), stdout);
  } else {
    Status written = WriteFileAtomic(manifest_path, manifest);
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  }

  std::fprintf(stderr,
               "crawled %zu file(s): %zu format(s), %zu discover(ies), "
               "%zu unstructured, %zu drifted, %zu skipped, %zu error(s); "
               "%zu record(s) in %.2fs "
               "(fingerprint %.2fs, discovery %.2fs, extraction %.2fs)\n",
               files.size(), catalog.size(), discoveries, unstructured,
               drifted, restored_count, errors, total_records,
               total_timer.Seconds(), fingerprint_s, discovery_s, extract_s);
  for (const CrawlFile& f : files) {
    if (!f.error.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", f.rel_path.c_str(),
                   f.error.ToString().c_str());
    }
  }
  return errors == 0 ? 0 : 1;
}
