// Command-line front end: extract structure from a log file and emit
// relational tables.
//
//   datamaran <file> [--inputs=SPEC] [--greedy] [--alpha=P] [--span=L]
//             [--retain=M] [--threads=N] [--mmap=MODE]
//             [--match-engine=ENGINE] [--charset-engine=ENGINE]
//             [--crlf=POLICY] [--max-line-bytes=N]
//             [--max-inflate-bytes=N] [--no-mdl-pruning]
//             [--catalog-in=PATH] [--catalog-out=PATH]
//             [--catalog-no-merge] [--catalog-min-match=P]
//             [--summary-json=PATH]
//             [--out=DIR] [--format=FMT] [--normalized] [--verbose]
//   datamaran --follow=PATH [--follow-max-bytes=N] [--follow-poll-ms=N]
//             [--stream-window-lines=N] [--stream-window-bytes=N]
//             [--drift-window=N] [--drift-threshold=P] [--no-evolve]
//             [--out=DIR] [--catalog-out=PATH] [--summary-json=PATH] ...
//
// --follow switches to online streaming mode (core/stream.h): PATH is a
// live log file tailed through rotation and truncation, or "-" for stdin.
// Initial discovery runs over a sliding sample window of recent lines;
// matched records stream through the same columnar sinks incrementally,
// and a drift monitor re-runs discovery over recent noise when the rolling
// noise rate crosses the threshold, splicing any novel templates into the
// live set mid-stream. Peak memory is O(window), independent of stream
// length. --catalog-out checkpoints the live template set (locked merge)
// after every evolution and at end of stream.
//
// Input goes through the resilient front-end (core/input.h): gzip'd files
// are sniffed and inflated, CRLF line endings normalized per --crlf, and
// --inputs stitches several files (comma-separated paths and/or glob
// patterns, e.g. --inputs='logs/app.log*') into one logical dataset in
// rotation-chronological order — app.log.2.gz, app.log.1, app.log.
// Corrupt or truncated input exits non-zero with a descriptive error,
// never a crash; with --summary-json the error is also recorded in the
// summary's "error" field.
//
// Prints the discovered templates and a summary (including how the input
// was backed: mmap'd bytes vs. bytes actually resident); with --out,
// streams relational files through the flat-event writers in
// extraction/sinks.h — rows are written incrementally as the scan
// stitches each wave, so peak memory stays O(wave) even for a multi-GB
// mmap'd input. The default layout is denormalized (one type<t>.csv or
// type<t>.ndjson per record type); --normalized streams the normalized
// table tree instead (root type<t>.csv + per-array child tables
// type<t>_arr<a>.csv with foreign keys, CSV only). Both layouts also
// stream noise.txt with every unmatched line.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/datamaran.h"
#include "core/input.h"
#include "core/stream.h"
#include "core/summary.h"
#include "extraction/sinks.h"
#include "flag_parse.h"
#include "util/file_io.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: datamaran <file> [--inputs=SPEC] [--greedy]\n"
               "                 [--alpha=P] [--span=L]\n"
               "                 [--retain=M] [--threads=N] [--mmap=MODE]\n"
               "                 [--match-engine=ENGINE]\n"
               "                 [--charset-engine=ENGINE]\n"
               "                 [--crlf=POLICY] [--max-line-bytes=N]\n"
               "                 [--max-inflate-bytes=N]\n"
               "                 [--no-mdl-pruning] [--catalog-in=PATH]\n"
               "                 [--catalog-out=PATH] [--catalog-no-merge]\n"
               "                 [--catalog-min-match=P]\n"
               "                 [--summary-json=PATH] [--out=DIR]\n"
               "                 [--format=FMT] [--normalized] [--verbose]\n"
               "       datamaran --follow=PATH [--follow-max-bytes=N]\n"
               "                 [--follow-poll-ms=N]\n"
               "                 [--stream-window-lines=N]\n"
               "                 [--stream-window-bytes=N]\n"
               "                 [--drift-window=N] [--drift-threshold=P]\n"
               "                 [--no-evolve] ...\n"
               "  --inputs=SPEC comma-separated paths and/or glob patterns\n"
               "                stitched into one logical dataset in\n"
               "                rotation-chronological order (app.log.2.gz,\n"
               "                app.log.1, app.log); each member may be\n"
               "                gzip'd. Replaces the positional <file>\n"
               "  --crlf=POLICY line-ending handling: auto (default;\n"
               "                normalize \\r\\n to \\n when CRLF appears\n"
               "                in the first 64KiB), strip (always\n"
               "                normalize), keep (never)\n"
               "  --max-line-bytes=N  oversized-line guard: lines longer\n"
               "                than N bytes are excluded from discovery\n"
               "                and degraded to noise instead of being\n"
               "                matched (default 4MiB; 0 = unlimited)\n"
               "  --max-inflate-bytes=N  gzip decompression-bomb cap\n"
               "                (default 4GiB; 0 = unlimited); exceeding\n"
               "                it is a clean error, not an OOM\n"
               "  --threads=N   worker threads (0 = all hardware threads,\n"
               "                1 = sequential; output is identical)\n"
               "  --mmap=MODE   input backing: auto (default; mmap files\n"
               "                above a size threshold), always, never.\n"
               "                Output is identical either way\n"
               "  --match-engine=ENGINE  compiled (default; templates run\n"
               "                as bytecode with first-byte dispatch) or\n"
               "                tree (reference walker). Output is\n"
               "                identical either way\n"
               "  --charset-engine=ENGINE  byte-classification engine:\n"
               "                simd (default; resolves to AVX2 or SSE2 by\n"
               "                runtime CPU detection, degrading to swar\n"
               "                off x86), swar (64-bit wordwise), or\n"
               "                scalar (per-byte reference). Output is\n"
               "                identical for every engine\n"
               "  --no-mdl-pruning  score every retained candidate to\n"
               "                completion instead of aborting provably\n"
               "                non-top-K evaluations early. Output is\n"
               "                identical; this only trades speed for a\n"
               "                brute-force baseline\n"
               "  --catalog-in=PATH  fingerprint the input against the\n"
               "                template catalog at PATH first; on a hit,\n"
               "                skip discovery and extract with the stored\n"
               "                templates (byte-identical output to the\n"
               "                fresh-discovery run that produced the\n"
               "                entry), else fall back to cold discovery\n"
               "  --catalog-out=PATH  write the catalog (loaded entries\n"
               "                plus any format discovered cold by this\n"
               "                run) to PATH, so discovery cost amortizes\n"
               "                across files sharing a format. The save\n"
               "                merges with the catalog already at PATH\n"
               "                under an advisory lock, so concurrent runs\n"
               "                sharing one catalog never lose entries\n"
               "  --catalog-no-merge  overwrite --catalog-out instead of\n"
               "                merging with the file on disk\n"
               "  --catalog-min-match=P  percent of sampled lines a\n"
               "                catalog entry must cover to count as a hit\n"
               "                (default 80)\n"
               "  --summary-json=PATH  write the per-file run summary\n"
               "                (records, noise lines, timings, resolved\n"
               "                engines, catalog hit/miss) to PATH as JSON;\n"
               "                the crawler's lake manifest embeds the same\n"
               "                object per file\n"
               "  --out=DIR     stream per-record-type columnar files into\n"
               "                DIR (type<t>.csv/.ndjson + noise.txt),\n"
               "                written incrementally at O(wave) memory;\n"
               "                byte-identical for every --threads,\n"
               "                --match-engine and --mmap setting\n"
               "  --format=FMT  --out file format: csv (default,\n"
               "                RFC-4180 quoting) or ndjson (one JSON\n"
               "                object per record). ndjson applies to the\n"
               "                denormalized layout only and conflicts\n"
               "                with --normalized\n"
               "  --normalized  with --out: stream the normalized table\n"
               "                tree (root type<t>.csv + per-array child\n"
               "                tables type<t>_arr<a>.csv with foreign\n"
               "                keys; CSV only, O(wave) memory like the\n"
               "                default layout)\n"
               "  --follow=PATH streaming mode: tail PATH (a live log,\n"
               "                followed through rotation/truncation) or\n"
               "                stdin (\"-\"); discover structure over a\n"
               "                sliding window of recent lines, stream\n"
               "                records through the --out sinks as they\n"
               "                are decided, and evolve the template set\n"
               "                on format drift. O(window) peak memory.\n"
               "                Replaces the positional <file>; conflicts\n"
               "                with --inputs, --mmap=always, --catalog-in\n"
               "  --follow-max-bytes=N  stop following after N input bytes\n"
               "                (0 = follow until stdin EOF / forever on a\n"
               "                file); bounds CI and smoke runs\n"
               "  --follow-poll-ms=N  sleep between polls of a drained\n"
               "                live file (default 50; stdin never polls)\n"
               "  --stream-window-lines=N  lines per discovery window and\n"
               "                steady-state segment (default 4096)\n"
               "  --stream-window-bytes=N  byte cap on the same window\n"
               "                (default 256KiB)\n"
               "  --drift-window=N  decided lines in the rolling noise-\n"
               "                rate window (default 256)\n"
               "  --drift-threshold=P  percent noise over the drift\n"
               "                window that triggers re-discovery over\n"
               "                recent noise (default 50)\n"
               "  --no-evolve   monitor drift but never evolve the\n"
               "                template set\n");
}

/// Fallback EventSink for `--follow` without `--out`: counts per-template
/// records (for the summary) and drops everything else. Decisions still
/// drive the session's own counters and drift monitor.
class CountingSink : public datamaran::EventSink {
 public:
  void OnRecord(int template_id, size_t /*first_line*/,
                std::string_view /*text*/, size_t /*pos*/, size_t /*end*/,
                const datamaran::MatchEvent* /*events*/,
                size_t /*num_events*/) override {
    const size_t t = static_cast<size_t>(template_id);
    if (t >= per_template.size()) per_template.resize(t + 1, 0);
    per_template[t]++;
  }

  std::vector<size_t> per_template;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace datamaran;

  std::string path;
  std::string inputs_spec;
  std::string out_dir;
  std::string summary_json;
  std::string follow_path;
  std::string stream_only_flag;  // first --follow-family flag seen
  size_t follow_max_bytes = 0;
  int follow_poll_ms = 50;
  StreamOptions stream_options;
  bool normalized = false;
  OutputFormat format = OutputFormat::kCsv;
  DatamaranOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (StartsWith(arg, "--inputs=")) {
      inputs_spec = std::string(arg.substr(9));
    } else if (StartsWith(arg, "--follow=")) {
      follow_path = std::string(arg.substr(9));
      if (follow_path.empty()) {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--follow-max-bytes=")) {
      stream_only_flag = "--follow-max-bytes";
      follow_max_bytes =
          datamaran_tools::FlagSize("--follow-max-bytes", arg.substr(19));
    } else if (StartsWith(arg, "--follow-poll-ms=")) {
      stream_only_flag = "--follow-poll-ms";
      follow_poll_ms =
          datamaran_tools::FlagInt("--follow-poll-ms", arg.substr(17));
    } else if (StartsWith(arg, "--stream-window-lines=")) {
      stream_only_flag = "--stream-window-lines";
      stream_options.window_lines =
          datamaran_tools::FlagSize("--stream-window-lines", arg.substr(22));
    } else if (StartsWith(arg, "--stream-window-bytes=")) {
      stream_only_flag = "--stream-window-bytes";
      stream_options.window_bytes =
          datamaran_tools::FlagSize("--stream-window-bytes", arg.substr(22));
    } else if (StartsWith(arg, "--drift-window=")) {
      stream_only_flag = "--drift-window";
      stream_options.drift_window_lines =
          datamaran_tools::FlagSize("--drift-window", arg.substr(15));
    } else if (StartsWith(arg, "--drift-threshold=")) {
      stream_only_flag = "--drift-threshold";
      stream_options.drift_threshold =
          datamaran_tools::FlagDouble("--drift-threshold", arg.substr(18)) /
          100.0;
    } else if (arg == "--no-evolve") {
      stream_only_flag = "--no-evolve";
      stream_options.evolve = false;
    } else if (StartsWith(arg, "--crlf=")) {
      std::string_view policy = arg.substr(7);
      if (policy == "auto") {
        options.crlf = CrlfPolicy::kAuto;
      } else if (policy == "keep") {
        options.crlf = CrlfPolicy::kKeep;
      } else if (policy == "strip") {
        options.crlf = CrlfPolicy::kStrip;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--max-line-bytes=")) {
      options.max_line_bytes =
          datamaran_tools::FlagSize("--max-line-bytes", arg.substr(17));
    } else if (StartsWith(arg, "--max-inflate-bytes=")) {
      options.max_inflate_bytes =
          datamaran_tools::FlagSize("--max-inflate-bytes", arg.substr(20));
    } else if (arg == "--greedy") {
      options.search = CharsetSearch::kGreedy;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--normalized") {
      normalized = true;
    } else if (StartsWith(arg, "--alpha=")) {
      options.coverage_threshold =
          datamaran_tools::FlagDouble("--alpha", arg.substr(8)) / 100.0;
    } else if (StartsWith(arg, "--span=")) {
      options.max_record_span =
          datamaran_tools::FlagInt("--span", arg.substr(7));
    } else if (StartsWith(arg, "--retain=")) {
      options.num_retained =
          datamaran_tools::FlagInt("--retain", arg.substr(9));
    } else if (StartsWith(arg, "--threads=")) {
      options.num_threads =
          datamaran_tools::FlagInt("--threads", arg.substr(10));
    } else if (StartsWith(arg, "--mmap=")) {
      std::string_view mode = arg.substr(7);
      if (mode == "auto") {
        options.mmap_mode = MapMode::kAuto;
      } else if (mode == "always") {
        options.mmap_mode = MapMode::kAlways;
      } else if (mode == "never") {
        options.mmap_mode = MapMode::kNever;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--match-engine=")) {
      std::string_view engine = arg.substr(15);
      if (engine == "compiled") {
        options.match_engine = MatchEngine::kCompiled;
      } else if (engine == "tree") {
        options.match_engine = MatchEngine::kTree;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--charset-engine=")) {
      std::string_view engine = arg.substr(17);
      if (engine == "simd") {
        options.charset_engine = CharsetEngine::kSimd;
      } else if (engine == "swar") {
        options.charset_engine = CharsetEngine::kSwar;
      } else if (engine == "scalar") {
        options.charset_engine = CharsetEngine::kScalar;
      } else {
        Usage();
        return 2;
      }
    } else if (arg == "--no-mdl-pruning") {
      options.enable_mdl_pruning = false;
    } else if (StartsWith(arg, "--catalog-in=")) {
      options.catalog_in = std::string(arg.substr(13));
    } else if (StartsWith(arg, "--catalog-out=")) {
      options.catalog_out = std::string(arg.substr(14));
    } else if (arg == "--catalog-no-merge") {
      options.catalog_merge = false;
    } else if (StartsWith(arg, "--catalog-min-match=")) {
      options.catalog_min_match =
          datamaran_tools::FlagDouble("--catalog-min-match", arg.substr(20)) /
          100.0;
    } else if (StartsWith(arg, "--summary-json=")) {
      summary_json = std::string(arg.substr(15));
    } else if (StartsWith(arg, "--format=")) {
      std::string_view fmt = arg.substr(9);
      if (fmt == "csv") {
        format = OutputFormat::kCsv;
      } else if (fmt == "ndjson") {
        format = OutputFormat::kNdjson;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--out=")) {
      out_dir = std::string(arg.substr(6));
    } else if (!StartsWith(arg, "--")) {
      path = std::string(arg);
    } else {
      Usage();
      return 2;
    }
  }
  // Mode selection and conflicts — every rejection here is a named error,
  // exit 2, before any pipeline work or output-directory creation.
  if (!follow_path.empty()) {
    if (!path.empty() || !inputs_spec.empty()) {
      std::fprintf(stderr,
                   "error: --follow reads one live source and replaces the "
                   "positional <file>; it conflicts with --inputs and a "
                   "positional path\n");
      Usage();
      return 2;
    }
    if (options.mmap_mode == MapMode::kAlways) {
      std::fprintf(stderr,
                   "error: --follow streams an unbounded source and never "
                   "memory-maps it; it conflicts with --mmap=always\n");
      Usage();
      return 2;
    }
    if (!options.catalog_in.empty()) {
      std::fprintf(stderr,
                   "error: --follow discovers structure from the live "
                   "stream and checkpoints via --catalog-out; it conflicts "
                   "with --catalog-in\n");
      Usage();
      return 2;
    }
  } else {
    if (!stream_only_flag.empty()) {
      std::fprintf(stderr,
                   "error: %s applies to streaming mode only and requires "
                   "--follow\n",
                   stream_only_flag.c_str());
      Usage();
      return 2;
    }
    if (path.empty() == inputs_spec.empty()) {
      // Exactly one of the positional <file> and --inputs selects the data.
      Usage();
      return 2;
    }
  }
  if (normalized && format != OutputFormat::kCsv) {
    // The normalized table tree is CSV-only; name the conflict and bail
    // before any pipeline work or output-directory creation, instead of
    // silently writing CSV.
    std::fprintf(stderr,
                 "error: --normalized writes the relational table tree and "
                 "is CSV-only; it conflicts with --format=ndjson\n");
    Usage();
    return 2;
  }

  // Every input failure funnels through here: descriptive message, and —
  // when a summary was requested — a summary document whose "error" field
  // carries the same Status, so automated callers never have to scrape
  // stderr. The exit code stays 1 (input/runtime error), distinct from 2
  // (bad flags).
  const std::string display_path = !follow_path.empty()
                                       ? follow_path
                                       : (path.empty() ? inputs_spec : path);
  auto fail = [&](const Status& st) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    if (!summary_json.empty()) {
      FileSummary s;
      s.path = display_path;
      s.error = st.ToString();
      (void)WriteFileAtomic(summary_json, FileSummaryToJson(s));
    }
    return 1;
  };

  if (!follow_path.empty()) {
    stream_options.checkpoint_path = options.catalog_out;
    stream_options.checkpoint_merge = options.catalog_merge;

    // The write sinks resolve noise text through OnNoiseText in streaming
    // mode; the DatasetView they hold only needs to outlive them.
    Dataset empty_data{std::string()};
    DatasetView empty_view(empty_data);
    std::vector<StructureTemplate> no_templates;
    CountingSink counting;
    std::unique_ptr<WriteSinkBase> write_sink;
    EventSink* sink = &counting;
    if (!out_dir.empty()) {
      if (normalized) {
        write_sink = std::make_unique<NormalizedWriteSink>(
            &no_templates, empty_view, out_dir);
      } else {
        write_sink = std::make_unique<ColumnarWriteSink>(
            &no_templates, empty_view, out_dir, format);
      }
      if (!write_sink->status().ok()) return fail(write_sink->status());
      sink = write_sink.get();
    }

    StreamingSession session(options, stream_options, sink);
    FollowReader reader(follow_path);
    std::string buf;
    uint64_t fed = 0;
    for (;;) {
      buf.clear();
      size_t want = 64 * 1024;
      if (follow_max_bytes > 0) {
        const uint64_t left = follow_max_bytes - fed;
        if (left < want) want = static_cast<size_t>(left);
      }
      auto read = reader.Read(&buf, want);
      if (!read.ok()) return fail(read.status());
      if (!buf.empty()) {
        fed += buf.size();
        session.FeedBytes(buf);
      }
      if (follow_max_bytes > 0 && fed >= follow_max_bytes) break;
      if (read.value().eof) {
        if (reader.is_stdin()) break;  // stdin EOF is final
#if defined(__unix__) || defined(__APPLE__)
        if (follow_poll_ms > 0) {
          ::usleep(static_cast<unsigned>(follow_poll_ms) * 1000u);
        }
#endif
      }
    }
    Status ended = session.Finish();

    const StreamStats& stats = session.stats();
    std::printf("streamed %llu bytes, %llu lines (%llu decided)\n",
                static_cast<unsigned long long>(stats.bytes_in),
                static_cast<unsigned long long>(stats.lines_in),
                static_cast<unsigned long long>(stats.lines_decided));
    std::printf("%zu structure template(s):\n", session.templates().size());
    size_t t = 0;
    for (const StructureTemplate& st : session.templates()) {
      std::printf("  [%zu] span=%d fields=%d  %s\n", t++, st.line_span(),
                  st.field_count(), st.Display().c_str());
    }
    std::printf("records=%llu noise_lines=%llu oversized=%llu\n",
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.noise_lines),
                static_cast<unsigned long long>(stats.oversized_lines));
    std::printf("drift: epochs=%llu evolutions=%llu (attempts=%llu), "
                "discovery_runs=%llu, noise_rate=%.2f\n",
                static_cast<unsigned long long>(stats.epochs),
                static_cast<unsigned long long>(stats.evolutions),
                static_cast<unsigned long long>(stats.evolution_attempts),
                static_cast<unsigned long long>(stats.discovery_runs),
                stats.last_noise_rate);
    if (!stream_options.checkpoint_path.empty()) {
      std::printf("checkpoints: %llu to %s\n",
                  static_cast<unsigned long long>(stats.checkpoints),
                  stream_options.checkpoint_path.c_str());
    }

    int exit_code = 0;
    if (!ended.ok()) {
      std::fprintf(stderr, "error: %s\n", ended.ToString().c_str());
      exit_code = 1;
    }
    if (write_sink != nullptr) {
      Status finished = write_sink->Finish();
      if (!finished.ok()) {
        std::fprintf(stderr, "error: %s\n", finished.ToString().c_str());
        exit_code = 1;
      }
      std::printf("wrote %s/%s (%zu lines); %zu bytes streamed\n",
                  out_dir.c_str(), WriteSinkBase::NoiseFileName().c_str(),
                  write_sink->stats().noise_lines,
                  write_sink->stats().bytes_written);
    }

    if (!summary_json.empty()) {
      FileSummary s;
      s.path = display_path;
      s.input_bytes = static_cast<size_t>(stats.bytes_in);
      if (!ended.ok()) s.error = ended.ToString();
      for (const StructureTemplate& st : session.templates()) {
        s.templates.push_back(st.Display());
      }
      s.total_lines = static_cast<size_t>(stats.lines_in);
      s.records = static_cast<size_t>(stats.records);
      s.records_per_template = write_sink != nullptr
                                   ? write_sink->stats().records_per_template
                                   : counting.per_template;
      s.noise_lines = static_cast<size_t>(stats.noise_lines);
      s.match_rate =
          stats.lines_decided == 0
              ? 1.0
              : static_cast<double>(stats.lines_decided - stats.noise_lines) /
                    static_cast<double>(stats.lines_decided);
      s.streaming = true;
      s.stream_epochs = static_cast<size_t>(stats.epochs);
      s.stream_evolutions = static_cast<size_t>(stats.evolutions);
      s.stream_discovery_runs = static_cast<size_t>(stats.discovery_runs);
      s.stream_checkpoints = static_cast<size_t>(stats.checkpoints);
      s.stream_oversized_lines = static_cast<size_t>(stats.oversized_lines);
      s.match_engine =
          options.match_engine == MatchEngine::kCompiled ? "compiled"
                                                         : "tree";
      s.charset_engine =
          CharsetEngineName(ResolveCharsetEngine(options.charset_engine));
      s.threads = ThreadPool::ResolveThreadCount(options.num_threads);
      Status written = WriteFileAtomic(summary_json, FileSummaryToJson(s));
      if (!written.ok()) {
        std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
        exit_code = 1;
      }
    }
    return exit_code;
  }

  std::vector<std::string> input_paths;
  if (!inputs_spec.empty()) {
    auto expanded = ExpandInputSpec(inputs_spec);
    if (!expanded.ok()) return fail(expanded.status());
    input_paths = std::move(expanded.value());
  } else {
    input_paths.push_back(path);
  }

  Datamaran dm(options);
  if (!dm.catalog_status().ok()) return fail(dm.catalog_status());
  // One open through the resilient front-end serves both the pipeline and
  // the --out extraction pass (the dataset is immutable).
  auto opened = OpenInputs(input_paths, MakeInputOptions(options));
  if (!opened.ok()) return fail(opened.status());
  Dataset data = std::move(opened.value());
  PipelineResult pipeline = dm.ExtractDataset(data);
  PipelineResult* result = &pipeline;

  std::printf("%zu structure template(s):\n", result->templates.size());
  for (size_t t = 0; t < result->templates.size(); ++t) {
    std::printf("  [%zu] span=%d fields=%d  %s\n", t,
                result->templates[t].line_span(),
                result->templates[t].field_count(),
                result->templates[t].Display().c_str());
  }
  size_t per_type[64] = {};
  for (const auto& rec : result->extraction.records) {
    if (rec.template_id < 64) per_type[rec.template_id]++;
  }
  std::printf("records:");
  for (size_t t = 0; t < result->templates.size() && t < 64; ++t) {
    std::printf(" type%zu=%zu", t, per_type[t]);
  }
  std::printf("  noise_lines=%zu  coverage=%.1f%%\n",
              result->extraction.noise_lines.size(),
              result->extraction.coverage() * 100);
  std::printf(
      "timings: gen=%.2fs prune=%.2fs eval=%.2fs refine=%.2fs extract=%.2fs\n",
      result->timings.generation_s, result->timings.pruning_s,
      result->timings.evaluation_s, result->timings.refinement_s,
      result->timings.extraction_s);
  if (result->stats.catalog_checked) {
    if (result->stats.catalog_hit) {
      std::printf("catalog: hit entry %d (%.1f%% of sample; fingerprint "
                  "%.3fs, discovery skipped)\n",
                  result->stats.catalog_entry,
                  result->stats.catalog_match_rate * 100,
                  result->timings.catalog_match_s);
    } else {
      std::printf("catalog: miss (fingerprint %.3fs, cold discovery)\n",
                  result->timings.catalog_match_s);
    }
  }
  std::printf("match engine: %s\n",
              options.match_engine == MatchEngine::kCompiled ? "compiled"
                                                             : "tree");
  // Report the engine actually running, not the one requested: kSimd
  // resolves by runtime CPU detection and degrades down the ladder.
  const CharsetEngine resolved_charset =
      ResolveCharsetEngine(options.charset_engine);
  if (resolved_charset == CharsetEngine::kSimd) {
    std::printf("charset engine: %s (%s)\n",
                CharsetEngineName(resolved_charset), CharsetSimdLevel());
  } else {
    std::printf("charset engine: %s\n", CharsetEngineName(resolved_charset));
  }
  std::printf("evaluation: %zu candidate(s) scored, %zu pruned by MDL "
              "bound\n",
              result->stats.candidates_evaluated,
              result->stats.candidates_pruned);
  if (result->stats.input_mapped) {
    std::printf("input: %zu bytes mmap-backed, ~%zu resident after run\n",
                result->stats.input_bytes,
                result->stats.input_resident_bytes);
  } else {
    std::printf("input: %zu bytes read into memory\n",
                result->stats.input_bytes);
  }
  if (result->stats.score_cache_hits + result->stats.score_cache_misses > 0) {
    std::printf("score cache: %zu hits / %zu misses over %d round(s); "
                "residual copies %zu bytes\n",
                result->stats.score_cache_hits,
                result->stats.score_cache_misses, result->stats.rounds,
                result->stats.residual_copy_bytes);
  }

  if (!summary_json.empty()) {
    const FileSummary summary = SummarizeResult(display_path, *result,
                                                options);
    Status written =
        WriteFileAtomic(summary_json, FileSummaryToJson(summary));
    if (!written.ok()) {
      std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
      return 1;
    }
  }

  if (out_dir.empty() || result->templates.empty()) return 0;

  data.Advise(AccessHint::kSequential);
  ThreadPool pool(ThreadPool::ResolveThreadCount(options.num_threads));
  Extractor extractor(&result->templates, &pool, options.match_engine,
                      options.charset_engine, options.max_line_bytes);

  // Both layouts stream through the same WriteSinkBase machinery: the
  // scan's flat events feed the writers directly and nothing is buffered
  // beyond one wave of rows. Only the sink type and the per-file summary
  // differ between layouts.
  DatasetView view(data);
  std::unique_ptr<WriteSinkBase> sink;
  if (normalized) {
    sink = std::make_unique<NormalizedWriteSink>(&result->templates, view,
                                                 out_dir);
  } else {
    sink = std::make_unique<ColumnarWriteSink>(&result->templates, view,
                                               out_dir, format);
  }
  if (!sink->status().ok()) {  // unwritable out dir: fail before the scan
    std::fprintf(stderr, "error: %s\n", sink->status().ToString().c_str());
    return 1;
  }
  extractor.ExtractEvents(view, sink.get());
  Status finished = sink->Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "error: %s\n", finished.ToString().c_str());
    return 1;
  }
  for (size_t t = 0; t < result->templates.size(); ++t) {
    if (normalized) {
      const auto& norm = static_cast<const NormalizedWriteSink&>(*sink);
      for (size_t k = 0; k < norm.table_count(t); ++k) {
        std::printf("wrote %s/%s (%zu rows)\n", out_dir.c_str(),
                    NormalizedWriteSink::TableFileName(t, k).c_str(),
                    norm.rows_in_table(t, k));
      }
    } else {
      std::printf("wrote %s/%s (%zu rows)\n", out_dir.c_str(),
                  ColumnarWriteSink::FileName(t, format).c_str(),
                  sink->stats().records_per_template[t]);
    }
  }
  std::printf("wrote %s/%s (%zu lines); %zu bytes streamed\n",
              out_dir.c_str(), WriteSinkBase::NoiseFileName().c_str(),
              sink->stats().noise_lines, sink->stats().bytes_written);
  return 0;
}
