// Command-line front end: extract structure from a log file and emit
// relational tables.
//
//   datamaran <file> [--greedy] [--alpha=P] [--span=L] [--retain=M]
//             [--threads=N] [--out=DIR] [--normalized] [--verbose]
//
// Prints the discovered templates and a summary; with --out, writes one
// CSV per record type (plus child tables for arrays with --normalized).

#include <cstdio>
#include <cstring>
#include <string>

#include "core/datamaran.h"
#include "extraction/relational.h"
#include "util/file_io.h"
#include "util/strings.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: datamaran <file> [--greedy] [--alpha=P] [--span=L]\n"
               "                 [--retain=M] [--threads=N] [--out=DIR]\n"
               "                 [--normalized] [--verbose]\n"
               "  --threads=N   worker threads (0 = all hardware threads,\n"
               "                1 = sequential; output is identical)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datamaran;

  std::string path;
  std::string out_dir;
  bool normalized = false;
  DatamaranOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--greedy") {
      options.search = CharsetSearch::kGreedy;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--normalized") {
      normalized = true;
    } else if (StartsWith(arg, "--alpha=")) {
      options.coverage_threshold = std::atof(arg.substr(8).data()) / 100.0;
    } else if (StartsWith(arg, "--span=")) {
      options.max_record_span = std::atoi(arg.substr(7).data());
    } else if (StartsWith(arg, "--retain=")) {
      options.num_retained = std::atoi(arg.substr(9).data());
    } else if (StartsWith(arg, "--threads=")) {
      options.num_threads = std::atoi(arg.substr(10).data());
    } else if (StartsWith(arg, "--out=")) {
      out_dir = std::string(arg.substr(6));
    } else if (!StartsWith(arg, "--")) {
      path = std::string(arg);
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }

  Datamaran dm(options);
  auto result = dm.ExtractFile(path);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu structure template(s):\n", result->templates.size());
  for (size_t t = 0; t < result->templates.size(); ++t) {
    std::printf("  [%zu] span=%d fields=%d  %s\n", t,
                result->templates[t].line_span(),
                result->templates[t].field_count(),
                result->templates[t].Display().c_str());
  }
  size_t per_type[64] = {};
  for (const auto& rec : result->extraction.records) {
    if (rec.template_id < 64) per_type[rec.template_id]++;
  }
  std::printf("records:");
  for (size_t t = 0; t < result->templates.size() && t < 64; ++t) {
    std::printf(" type%zu=%zu", t, per_type[t]);
  }
  std::printf("  noise_lines=%zu  coverage=%.1f%%\n",
              result->extraction.noise_lines.size(),
              result->extraction.coverage() * 100);
  std::printf("timings: gen=%.2fs prune=%.2fs eval=%.2fs extract=%.2fs\n",
              result->timings.generation_s, result->timings.pruning_s,
              result->timings.evaluation_s, result->timings.extraction_s);

  if (out_dir.empty() || result->templates.empty()) return 0;

  if (!MakeDirs(out_dir).ok()) {
    std::fprintf(stderr, "error: cannot create %s\n", out_dir.c_str());
    return 1;
  }
  // Re-read the text to materialize tables (extraction spans index into it).
  auto text = ReadFileToString(path);
  if (!text.ok()) {
    std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
    return 1;
  }
  Dataset data(std::move(text.value()));
  Extractor extractor(&result->templates);
  ExtractionResult extraction = extractor.Extract(data);
  for (size_t t = 0; t < result->templates.size(); ++t) {
    std::string base = StrFormat("%s/type%zu", out_dir.c_str(), t);
    if (normalized) {
      auto tables = NormalizedTables(result->templates[t], extraction.records,
                                     data.text(), static_cast<int>(t),
                                     StrFormat("type%zu", t));
      for (const Table& table : tables) {
        std::string file = StrFormat("%s/%s.csv", out_dir.c_str(),
                                     table.name.c_str());
        if (!WriteStringToFile(file, table.ToCsv()).ok()) {
          std::fprintf(stderr, "error: cannot write %s\n", file.c_str());
          return 1;
        }
        std::printf("wrote %s (%zu rows)\n", file.c_str(), table.row_count());
      }
    } else {
      Table table = DenormalizedTable(result->templates[t],
                                      extraction.records, data.text(),
                                      static_cast<int>(t),
                                      StrFormat("type%zu", t));
      std::string file = base + ".csv";
      if (!WriteStringToFile(file, table.ToCsv()).ok()) {
        std::fprintf(stderr, "error: cannot write %s\n", file.c_str());
        return 1;
      }
      std::printf("wrote %s (%zu rows)\n", file.c_str(), table.row_count());
    }
  }
  return 0;
}
