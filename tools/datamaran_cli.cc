// Command-line front end: extract structure from a log file and emit
// relational tables.
//
//   datamaran <file> [--greedy] [--alpha=P] [--span=L] [--retain=M]
//             [--threads=N] [--mmap=MODE] [--match-engine=ENGINE]
//             [--out=DIR] [--format=FMT] [--normalized] [--verbose]
//
// Prints the discovered templates and a summary (including how the input
// was backed: mmap'd bytes vs. bytes actually resident); with --out,
// streams one columnar file per record type (type<t>.csv or
// type<t>.ndjson per --format) plus noise.txt through the flat-event
// writers in extraction/sinks.h — rows are written incrementally as the
// scan stitches each wave, so peak memory stays O(wave) even for a
// multi-GB mmap'd input. --normalized instead materializes the normalized
// table tree (root + per-array child tables, foreign keys), which buffers
// the extraction in memory.

#include <cstdio>
#include <cstring>
#include <string>

#include "core/datamaran.h"
#include "extraction/relational.h"
#include "extraction/sinks.h"
#include "util/file_io.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: datamaran <file> [--greedy] [--alpha=P] [--span=L]\n"
               "                 [--retain=M] [--threads=N] [--mmap=MODE]\n"
               "                 [--match-engine=ENGINE] [--out=DIR]\n"
               "                 [--format=FMT] [--normalized] [--verbose]\n"
               "  --threads=N   worker threads (0 = all hardware threads,\n"
               "                1 = sequential; output is identical)\n"
               "  --mmap=MODE   input backing: auto (default; mmap files\n"
               "                above a size threshold), always, never.\n"
               "                Output is identical either way\n"
               "  --match-engine=ENGINE  compiled (default; templates run\n"
               "                as bytecode with first-byte dispatch) or\n"
               "                tree (reference walker). Output is\n"
               "                identical either way\n"
               "  --out=DIR     stream per-record-type columnar files into\n"
               "                DIR (type<t>.csv/.ndjson + noise.txt),\n"
               "                written incrementally at O(wave) memory;\n"
               "                byte-identical for every --threads,\n"
               "                --match-engine and --mmap setting\n"
               "  --format=FMT  --out file format: csv (default,\n"
               "                RFC-4180 quoting) or ndjson (one JSON\n"
               "                object per record)\n"
               "  --normalized  with --out: write the normalized table\n"
               "                tree (CSV only; buffers records in memory)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datamaran;

  std::string path;
  std::string out_dir;
  bool normalized = false;
  OutputFormat format = OutputFormat::kCsv;
  DatamaranOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--greedy") {
      options.search = CharsetSearch::kGreedy;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--normalized") {
      normalized = true;
    } else if (StartsWith(arg, "--alpha=")) {
      options.coverage_threshold = std::atof(arg.substr(8).data()) / 100.0;
    } else if (StartsWith(arg, "--span=")) {
      options.max_record_span = std::atoi(arg.substr(7).data());
    } else if (StartsWith(arg, "--retain=")) {
      options.num_retained = std::atoi(arg.substr(9).data());
    } else if (StartsWith(arg, "--threads=")) {
      options.num_threads = std::atoi(arg.substr(10).data());
    } else if (StartsWith(arg, "--mmap=")) {
      std::string_view mode = arg.substr(7);
      if (mode == "auto") {
        options.mmap_mode = MapMode::kAuto;
      } else if (mode == "always") {
        options.mmap_mode = MapMode::kAlways;
      } else if (mode == "never") {
        options.mmap_mode = MapMode::kNever;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--match-engine=")) {
      std::string_view engine = arg.substr(15);
      if (engine == "compiled") {
        options.match_engine = MatchEngine::kCompiled;
      } else if (engine == "tree") {
        options.match_engine = MatchEngine::kTree;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--format=")) {
      std::string_view fmt = arg.substr(9);
      if (fmt == "csv") {
        format = OutputFormat::kCsv;
      } else if (fmt == "ndjson") {
        format = OutputFormat::kNdjson;
      } else {
        Usage();
        return 2;
      }
    } else if (StartsWith(arg, "--out=")) {
      out_dir = std::string(arg.substr(6));
    } else if (!StartsWith(arg, "--")) {
      path = std::string(arg);
    } else {
      Usage();
      return 2;
    }
  }
  if (path.empty()) {
    Usage();
    return 2;
  }
  if (normalized && format != OutputFormat::kCsv) {
    // The normalized table tree is CSV-only; reject the contradiction
    // instead of silently writing CSV.
    Usage();
    return 2;
  }

  Datamaran dm(options);
  auto result = dm.ExtractFile(path);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("%zu structure template(s):\n", result->templates.size());
  for (size_t t = 0; t < result->templates.size(); ++t) {
    std::printf("  [%zu] span=%d fields=%d  %s\n", t,
                result->templates[t].line_span(),
                result->templates[t].field_count(),
                result->templates[t].Display().c_str());
  }
  size_t per_type[64] = {};
  for (const auto& rec : result->extraction.records) {
    if (rec.template_id < 64) per_type[rec.template_id]++;
  }
  std::printf("records:");
  for (size_t t = 0; t < result->templates.size() && t < 64; ++t) {
    std::printf(" type%zu=%zu", t, per_type[t]);
  }
  std::printf("  noise_lines=%zu  coverage=%.1f%%\n",
              result->extraction.noise_lines.size(),
              result->extraction.coverage() * 100);
  std::printf("timings: gen=%.2fs prune=%.2fs eval=%.2fs extract=%.2fs\n",
              result->timings.generation_s, result->timings.pruning_s,
              result->timings.evaluation_s, result->timings.extraction_s);
  std::printf("match engine: %s\n",
              options.match_engine == MatchEngine::kCompiled ? "compiled"
                                                             : "tree");
  if (result->stats.input_mapped) {
    std::printf("input: %zu bytes mmap-backed, ~%zu resident after run\n",
                result->stats.input_bytes,
                result->stats.input_resident_bytes);
  } else {
    std::printf("input: %zu bytes read into memory\n",
                result->stats.input_bytes);
  }
  if (result->stats.score_cache_hits + result->stats.score_cache_misses > 0) {
    std::printf("score cache: %zu hits / %zu misses over %d round(s); "
                "residual copies %zu bytes\n",
                result->stats.score_cache_hits,
                result->stats.score_cache_misses, result->stats.rounds,
                result->stats.residual_copy_bytes);
  }

  if (out_dir.empty() || result->templates.empty()) return 0;

  // Re-open the input to materialize the output (spans index into it),
  // honoring the same backing policy as the pipeline run.
  auto reopened = Dataset::FromFile(path, options.mmap_mode,
                                    options.mmap_threshold_bytes);
  if (!reopened.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  Dataset data = std::move(reopened.value());
  data.Advise(AccessHint::kSequential);
  ThreadPool pool(ThreadPool::ResolveThreadCount(options.num_threads));
  Extractor extractor(&result->templates, &pool, options.match_engine);

  if (normalized) {
    if (!MakeDirs(out_dir).ok()) {
      std::fprintf(stderr, "error: cannot create %s\n", out_dir.c_str());
      return 1;
    }
    ExtractionResult extraction = extractor.Extract(data);
    for (size_t t = 0; t < result->templates.size(); ++t) {
      auto tables = NormalizedTables(result->templates[t], extraction.records,
                                     data.text(), static_cast<int>(t),
                                     StrFormat("type%zu", t));
      for (const Table& table : tables) {
        std::string file = StrFormat("%s/%s.csv", out_dir.c_str(),
                                     table.name.c_str());
        if (!WriteStringToFile(file, table.ToCsv()).ok()) {
          std::fprintf(stderr, "error: cannot write %s\n", file.c_str());
          return 1;
        }
        std::printf("wrote %s (%zu rows)\n", file.c_str(), table.row_count());
      }
    }
    return 0;
  }

  // Default: the streaming columnar path. The scan's flat events feed the
  // writers directly; nothing is buffered beyond one wave of rows.
  DatasetView view(data);
  ColumnarWriteSink sink(&result->templates, view, out_dir, format);
  if (!sink.status().ok()) {  // unwritable out dir: fail before the scan
    std::fprintf(stderr, "error: %s\n", sink.status().ToString().c_str());
    return 1;
  }
  extractor.ExtractEvents(view, &sink);
  Status finished = sink.Finish();
  if (!finished.ok()) {
    std::fprintf(stderr, "error: %s\n", finished.ToString().c_str());
    return 1;
  }
  for (size_t t = 0; t < result->templates.size(); ++t) {
    std::printf("wrote %s/%s (%zu rows)\n", out_dir.c_str(),
                ColumnarWriteSink::FileName(t, format).c_str(),
                sink.stats().records_per_template[t]);
  }
  std::printf("wrote %s/%s (%zu lines); %zu bytes streamed\n",
              out_dir.c_str(), ColumnarWriteSink::NoiseFileName().c_str(),
              sink.stats().noise_lines, sink.stats().bytes_written);
  return 0;
}
