#!/usr/bin/env bash
# Docs rot gate: every repo path referenced by the user-facing docs must
# exist. Scans README.md and docs/ARCHITECTURE.md for path-like tokens
# rooted at a repo directory (src/, tests/, bench/, tools/, docs/,
# examples/, .github/) and fails naming each dangling reference. Run from
# the repository root; CI runs it on every push.
set -u
cd "$(dirname "$0")/.."

fail=0
for doc in README.md docs/ARCHITECTURE.md; do
  if [ ! -f "$doc" ]; then
    echo "missing doc: $doc"
    fail=1
    continue
  fi
  while IFS= read -r path; do
    if [ ! -e "$path" ]; then
      echo "$doc references missing path: $path"
      fail=1
    fi
  done < <(grep -oP '(?<![A-Za-z0-9_./:-])(\.github|src|tests|bench|tools|docs|examples)/[A-Za-z0-9_./-]+' "$doc" \
             | sed 's/[.,;:]*$//' | sort -u)
done

if [ "$fail" -eq 0 ]; then
  echo "doc links OK"
fi
exit "$fail"
