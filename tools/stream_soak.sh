#!/usr/bin/env bash
# Stream soak: pipe a large synthetic drifting stream (default 200 MB)
# through `datamaran_cli --follow=-` and gate peak RSS. The generator is
# deterministic (counter-based, no RNG): ~45% of the bytes are format A
# ("n,n,n"), a 10% alternating A/B transition band, then format B
# ("n|n|n|n") to the end — so the run must survive a drift-triggered
# template evolution mid-stream. The gate is the streaming-memory
# contract: peak RSS stays O(window), independent of stream length, far
# below the bytes streamed. Fails on a nonzero CLI exit, a missing
# evolution, or peak RSS above the budget.
#
#   tools/stream_soak.sh [total_bytes] [rss_budget_kb]
#
# Requires the tier-1 build (./build/datamaran_cli) and python3 (used
# only to read the child's peak RSS via getrusage — GNU time is not
# installed everywhere).
set -euo pipefail
cd "$(dirname "$0")/.."

TOTAL_BYTES="${1:-200000000}"
RSS_BUDGET_KB="${2:-65536}"   # 64 MiB — measured peak is ~11 MB, flat in stream length

if [ ! -x build/datamaran_cli ]; then
  echo "stream_soak: build/datamaran_cli not found (run the tier-1 build first)" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

generate() {
  awk -v total="$TOTAL_BYTES" 'BEGIN {
    b = 0; i = 0;
    a_end = total * 0.45; mix_end = total * 0.55;
    while (b < total) {
      if (b < a_end)        fmt = 0;
      else if (b < mix_end) fmt = i % 2;
      else                  fmt = 1;
      if (fmt == 0) line = i "," (i * 7 % 1000) "," (i % 97);
      else          line = i "|" (i % 89) "|" (i * 3 % 1000) "|" (i % 7);
      print line;
      b += length(line) + 1; i++;
    }
  }'
}

echo "stream_soak: streaming ${TOTAL_BYTES} bytes through --follow=- ..."
# python3 wrapper: exec the CLI with our stdin, then report the child's
# peak RSS (getrusage RUSAGE_CHILDREN ru_maxrss, in kB on Linux).
set +e
generate | python3 -c '
import resource, subprocess, sys
status = subprocess.call(sys.argv[1:])
peak_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
print(f"peak_rss_kb={peak_kb}", file=sys.stderr)
sys.exit(status)
' ./build/datamaran_cli --follow=- \
  --summary-json="$workdir/summary.json" \
  > "$workdir/stdout.txt" 2> "$workdir/rss.txt"
status=$?
set -e
if [ "$status" -ne 0 ]; then
  echo "stream_soak: CLI exited $status" >&2
  cat "$workdir/rss.txt" >&2
  exit 1
fi
cat "$workdir/stdout.txt"

peak_kb="$(sed -n 's/^peak_rss_kb=//p' "$workdir/rss.txt")"
if [ -z "$peak_kb" ]; then
  echo "stream_soak: could not read peak RSS" >&2
  cat "$workdir/rss.txt" >&2
  exit 1
fi
echo "stream_soak: peak RSS ${peak_kb} kB (budget ${RSS_BUDGET_KB} kB)"
if [ "$peak_kb" -gt "$RSS_BUDGET_KB" ]; then
  echo "stream_soak: FAIL — peak RSS over budget" >&2
  exit 1
fi

if ! grep -q '"evolutions": ' "$workdir/summary.json"; then
  echo "stream_soak: FAIL — no stream section in summary" >&2
  exit 1
fi
evolutions="$(sed -n 's/.*"evolutions": \([0-9]*\).*/\1/p' "$workdir/summary.json")"
if [ "${evolutions:-0}" -lt 1 ]; then
  echo "stream_soak: FAIL — drifting stream produced no evolution" >&2
  cat "$workdir/summary.json" >&2
  exit 1
fi
echo "stream_soak: OK (${evolutions} evolution(s))"
