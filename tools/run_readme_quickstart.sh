#!/usr/bin/env bash
# Runs the README quickstart verbatim so the documented commands can't
# rot: extracts the fenced code block directly after the
# `<!-- ci:quickstart -->` marker in README.md and executes it line for
# line. Requires the tier-1 build to exist (./build/datamaran_cli). Run
# from anywhere; CI runs it after the build step.
set -euo pipefail
cd "$(dirname "$0")/.."

cmds="$(awk '
  /<!-- ci:quickstart -->/ { found = 1; next }
  found && /^```/ { if (inblock) exit; inblock = 1; next }
  inblock { print }
' README.md)"

if [ -z "$cmds" ]; then
  echo "no ci:quickstart block found in README.md" >&2
  exit 1
fi

echo "running README quickstart:"
echo "$cmds"
bash -euo pipefail -c "$cmds"
echo "README quickstart OK"
