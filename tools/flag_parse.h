#ifndef DATAMARAN_TOOLS_FLAG_PARSE_H_
#define DATAMARAN_TOOLS_FLAG_PARSE_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string_view>

#include "util/strings.h"

/// Strict numeric parsing for command-line flags, shared by the datamaran
/// CLI and the lake crawler. std::atoi/std::atof silently evaluate garbage
/// to 0 — "--threads=all" would quietly mean "use every core" and
/// "--alpha=ten" would zero the coverage threshold. These helpers accept
/// exactly the numeric grammar or exit 2 (the usage-error exit code)
/// naming the offending flag and value.

namespace datamaran_tools {

[[noreturn]] inline void BadFlagValue(std::string_view flag,
                                      std::string_view value,
                                      const char* expected) {
  std::fprintf(stderr,
               "error: invalid value for %.*s: \"%.*s\" (expected %s)\n",
               static_cast<int>(flag.size()), flag.data(),
               static_cast<int>(value.size()), value.data(), expected);
  std::exit(2);
}

/// Whole-string signed integer in int range.
inline int FlagInt(std::string_view flag, std::string_view value) {
  const auto v = datamaran::ParseInt64(value);
  if (!v.has_value() || *v < std::numeric_limits<int>::min() ||
      *v > std::numeric_limits<int>::max()) {
    BadFlagValue(flag, value, "an integer");
  }
  return static_cast<int>(*v);
}

/// Whole-string non-negative integer (byte counts, caps).
inline size_t FlagSize(std::string_view flag, std::string_view value) {
  const auto v = datamaran::ParseInt64(value);
  if (!v.has_value() || *v < 0) {
    BadFlagValue(flag, value, "a non-negative integer");
  }
  return static_cast<size_t>(*v);
}

/// Whole-string decimal number ("80", "0.5", "-1.25"; no exponents).
inline double FlagDouble(std::string_view flag, std::string_view value) {
  const auto v = datamaran::ParseDecimal(value, nullptr);
  if (!v.has_value()) BadFlagValue(flag, value, "a decimal number");
  return *v;
}

}  // namespace datamaran_tools

#endif  // DATAMARAN_TOOLS_FLAG_PARSE_H_
