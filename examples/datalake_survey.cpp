// Data-lake survey: run Datamaran over a directory of heterogeneous log
// files (here: a slice of the generated GitHub-style corpus written to a
// temp directory), the way an enterprise crawler would triage a lake.
// Prints one line per file: label, discovered templates, coverage, time.
//
//   $ ./examples/datalake_survey [num_files]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/datamaran.h"
#include "datagen/github_corpus.h"
#include "util/file_io.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace datamaran;

  int num_files = argc > 1 ? std::atoi(argv[1]) : 12;
  if (num_files < 1 || num_files > kGithubCorpusSize) num_files = 12;

  std::string dir = "/tmp/datamaran_lake";
  if (!MakeDirs(dir).ok()) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }

  // Spread picks across the label groups.
  std::printf("%-12s %-6s %9s %5s %9s %7s  %s\n", "file", "label", "bytes",
              "tpls", "coverage", "sec", "first template");
  int done = 0;
  for (int i = 0; i < kGithubCorpusSize && done < num_files;
       i += kGithubCorpusSize / num_files, ++done) {
    GeneratedDataset ds = BuildGithubDataset(i);
    std::string path = dir + "/" + ds.name + ".log";
    if (!WriteStringToFile(path, ds.text).ok()) continue;

    DatamaranOptions options;
    options.search = CharsetSearch::kGreedy;  // fast lake-triage mode
    Datamaran dm(options);
    Timer timer;
    auto result = dm.ExtractFile(path);
    double sec = timer.Seconds();
    if (!result.ok()) {
      std::printf("%-12s error: %s\n", ds.name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    std::string first = result->templates.empty()
                            ? "(no structure)"
                            : result->templates[0].Display();
    if (first.size() > 48) first = first.substr(0, 45) + "...";
    std::printf("%-12s %-6s %9zu %5zu %8.1f%% %7.2f  %s\n", ds.name.c_str(),
                DatasetLabelName(ds.label), ds.text.size(),
                result->templates.size(),
                result->extraction.coverage() * 100, sec, first.c_str());
  }
  std::printf("\nsurveyed %d files under %s\n", done, dir.c_str());
  return 0;
}
