// Quickstart: extract structure from a small log snippet with the default
// pipeline, then print the discovered template and the extracted table.
//
//   $ ./examples/quickstart [path/to/log]
//
// Without an argument a bundled snippet (the paper's Figure 3 flavor) is
// used.

#include <cstdio>
#include <string>

#include "core/datamaran.h"
#include "datagen/values.h"
#include "extraction/relational.h"
#include "util/file_io.h"
#include "util/rng.h"
#include "util/strings.h"

namespace {

/// A small web-access-style log with occasional comment noise.
std::string MakeSampleLog(int lines) {
  using namespace datamaran;
  Rng rng(2026);
  std::string text;
  for (int i = 0; i < lines; ++i) {
    if (rng.Bernoulli(0.05)) {
      text += "# rotated at " + GenTime(&rng) + " " + GenAlnum(&rng, 8) + "\n";
      continue;
    }
    text += GenIp(&rng) + (rng.Bernoulli(0.8) ? " GET " : " POST ") +
            GenPath(&rng, 1, 3) + " " + GenInt(&rng, 200, 504) + " " +
            GenInt(&rng, 0, 99999) + "\n";
  }
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datamaran;

  std::string text;
  if (argc > 1) {
    auto contents = ReadFileToString(argv[1]);
    if (!contents.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   contents.status().ToString().c_str());
      return 1;
    }
    text = std::move(contents.value());
  } else {
    text = MakeSampleLog(400);
  }

  DatamaranOptions options;
  options.max_special_chars = 8;
  Datamaran dm(options);
  PipelineResult result = dm.ExtractText(std::move(text));

  std::printf("discovered %zu structure template(s):\n",
              result.templates.size());
  for (size_t t = 0; t < result.templates.size(); ++t) {
    std::printf("  [%zu] %s\n", t, result.templates[t].Display().c_str());
  }
  std::printf("records: %zu   noise lines: %zu   coverage: %.1f%%\n",
              result.extraction.records.size(),
              result.extraction.noise_lines.size(),
              result.extraction.coverage() * 100);
  std::printf("timings: generation %.3fs  pruning %.3fs  evaluation %.3fs  "
              "extraction %.3fs\n",
              result.timings.generation_s, result.timings.pruning_s,
              result.timings.evaluation_s, result.timings.extraction_s);

  // Print the first rows of the denormalized relation for template 0
  // (re-extract over a fresh snippet so we have the text at hand).
  if (!result.templates.empty()) {
    Dataset demo(MakeSampleLog(6));
    Extractor extractor(&result.templates);
    ExtractionResult demo_result = extractor.Extract(demo);
    Table table = DenormalizedTable(result.templates[0], demo_result.records,
                                    demo.text(), 0, "records");
    std::printf("\nfirst rows of the extracted relation:\n%s",
                table.ToCsv().substr(0, 600).c_str());
  }
  return 0;
}
