// Interleaved record types (the paper's Figure 2 scenario): two record
// types — 7-line A blocks and 3-line B blocks — arrive in arbitrary order
// with watchdog noise in between. Datamaran peels one template per round
// from the residual and extracts both types.
//
//   $ ./examples/interleaved_logs

#include <cstdio>

#include "core/datamaran.h"
#include "datagen/github_corpus.h"
#include "extraction/relational.h"

int main() {
  using namespace datamaran;

  // M(I) family 0: the Figure 2 style A/B block mix.
  GeneratedDataset ds = BuildGithubDataset(kGithubSingleNI + kGithubSingleI +
                                           kGithubMultiNI + 0);
  std::printf("dataset: %s (%zu bytes, %d record types, max span %d)\n\n",
              ds.name.c_str(), ds.text.size(), ds.record_type_count,
              ds.max_record_span);

  DatamaranOptions options;
  options.verbose = false;
  Datamaran dm(options);
  PipelineResult result = dm.ExtractText(std::string(ds.text));

  std::printf("discovered %zu template(s):\n", result.templates.size());
  for (size_t t = 0; t < result.templates.size(); ++t) {
    std::printf("  [%zu] span=%d  %s\n", t, result.templates[t].line_span(),
                result.templates[t].Display().c_str());
  }

  size_t counts[8] = {};
  for (const auto& rec : result.extraction.records) {
    if (rec.template_id < 8) counts[rec.template_id]++;
  }
  std::printf("\nextraction: ");
  for (size_t t = 0; t < result.templates.size() && t < 8; ++t) {
    std::printf("type%zu=%zu  ", t, counts[t]);
  }
  std::printf("noise lines=%zu  coverage=%.1f%%\n",
              result.extraction.noise_lines.size(),
              result.extraction.coverage() * 100);

  // Ground truth comparison.
  size_t gt_a = 0, gt_b = 0;
  for (const auto& rec : ds.records()) {
    (rec.type == 0 ? gt_a : gt_b)++;
  }
  std::printf("ground truth: typeA=%zu typeB=%zu\n", gt_a, gt_b);

  // One denormalized table per record type, like the paper's Figure 7.
  Dataset data{std::string(ds.text)};
  Extractor extractor(&result.templates);
  ExtractionResult extraction = extractor.Extract(data);
  for (size_t t = 0; t < result.templates.size(); ++t) {
    Table table =
        DenormalizedTable(result.templates[t], extraction.records,
                          data.text(), static_cast<int>(t),
                          "type" + std::to_string(t));
    std::printf("\ntable %s (%zu rows), first rows:\n%s", table.name.c_str(),
                table.row_count(), table.ToCsv().substr(0, 300).c_str());
  }
  return 0;
}
