// Multi-line record extraction (the paper's Figure 1 / Thailand-district
// scenario): records span 8 lines; a line-by-line tool loses the
// association between the lines, while Datamaran extracts each block as one
// record. Prints the discovered template, the denormalized relation, and
// the normalized (foreign-key) form side by side.
//
//   $ ./examples/multiline_records

#include <cstdio>

#include "core/datamaran.h"
#include "datagen/manual_datasets.h"
#include "extraction/relational.h"
#include "recordbreaker/recordbreaker.h"

int main() {
  using namespace datamaran;

  // Thailand district info analog: 8-line JSON-ish records (Table 5).
  GeneratedDataset ds = BuildManualDataset(15, 48 * 1024);
  std::printf("dataset: %s (%zu bytes, %zu records of %d lines)\n\n",
              ds.name.c_str(), ds.text.size(), ds.records().size(),
              ds.max_record_span);

  DatamaranOptions options;
  Datamaran dm(options);
  PipelineResult result = dm.ExtractText(std::string(ds.text));

  if (result.templates.empty()) {
    std::printf("no structure found\n");
    return 1;
  }
  std::printf("Datamaran template (one record = %d lines):\n  %s\n\n",
              result.templates[0].line_span(),
              result.templates[0].Display().c_str());

  Dataset data{std::string(ds.text)};
  Extractor extractor(&result.templates);
  ExtractionResult extraction = extractor.Extract(data);

  Table denorm = DenormalizedTable(result.templates[0], extraction.records,
                                   data.text(), 0, "districts");
  std::printf("denormalized (%zu rows x %zu cols), first rows:\n%s\n",
              denorm.row_count(), denorm.column_count(),
              denorm.ToCsv().substr(0, 500).c_str());

  auto tables = NormalizedTables(result.templates[0], extraction.records,
                                 data.text(), 0, "districts");
  std::printf("normalized: %zu table(s)\n", tables.size());
  for (const Table& t : tables) {
    std::printf("  %s: %zu rows x %zu cols\n", t.name.c_str(), t.row_count(),
                t.column_count());
  }

  // Contrast: RecordBreaker's line-by-line reading shatters each record
  // into per-line structures (Figure 1's T1/T2/T3 problem).
  RecordBreaker rb;
  RecordBreakerResult rb_result = rb.Extract(data);
  std::printf("\nRecordBreaker on the same file: %d per-line branches, "
              "%zu 'records' for %zu true records\n",
              rb_result.branch_count, rb_result.records.size(),
              ds.records().size());
  return 0;
}
