#ifndef DATAMARAN_SCORING_MDL_H_
#define DATAMARAN_SCORING_MDL_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "core/dataset.h"
#include "scoring/field_stats.h"
#include "template/match_engine.h"
#include "template/template.h"
#include "util/charset_engine.h"

/// The regularity score F(T,S) (Problem 2). Datamaran treats the scorer as
/// a black box — any function mimicking human judgment plugs in via the
/// RegularityScorer interface — and ships the minimum-description-length
/// scorer of Section 9.2 as the default.
///
/// Scorers consume a DatasetView (the sampled lines, or a residual round's
/// live lines) and never materialize text: candidate windows that are
/// physically contiguous in the backing buffer are matched in place, and
/// only the rare window crossing a view gap is assembled into a reused
/// scratch buffer (see DatasetView::ResolveSpan).
///
/// MDL model (lower is better, in bits):
///   model:   8 * len(ST) per template + 32, plus per-column parameters
///   flags:   one record/noise indicator bit per block ("32 + m" in the
///            paper, where a block is one record or one noise line). This
///            term is what makes covering a record's untypable lines
///            cheaper than leaving them as noise; the degenerate templates
///            it would otherwise reward (k concatenated periods of a true
///            template) are removed structurally at generation by
///            period/rotation canonicalization.
///   noise:   8 bits per unmatched character (including the '\n')
///   records: record-type id + Elias-gamma array repetition counts + typed
///            field values (enum / int / real / string, cheapest valid).

namespace datamaran {

/// Abstract regularity score: lower is better.
class RegularityScorer {
 public:
  virtual ~RegularityScorer() = default;

  /// Scores the structural component (a set of templates, priority order)
  /// against the live lines of `sample`. Lines no template matches are
  /// charged as noise.
  virtual double ScoreSet(
      const DatasetView& sample,
      const std::vector<const StructureTemplate*>& templates) const = 0;

  /// Convenience: score a single-template structural component.
  double Score(const DatasetView& sample, const StructureTemplate& st) const {
    std::vector<const StructureTemplate*> ts = {&st};
    return ScoreSet(sample, ts);
  }

  /// Bounded form of Score: returns the exact score, or std::nullopt when
  /// the scorer proved score > abort_above without finishing the
  /// evaluation (the MDL scan's running partial sum is a monotone lower
  /// bound, so the proof is exact — see MdlScorer::EvaluateSet). A
  /// returned value is always the exact score, even when it exceeds
  /// abort_above; only nullopt carries the "provably worse" verdict. The
  /// default implementation never aborts.
  virtual std::optional<double> ScoreBounded(const DatasetView& sample,
                                             const StructureTemplate& st,
                                             double abort_above) const {
    (void)abort_above;
    return Score(sample, st);
  }
};

/// Detailed evaluation output, used by the pipeline's accept/reject logic
/// and surfaced in reports.
struct MdlBreakdown {
  double total_bits = 0;
  double model_bits = 0;
  double flag_bits = 0;
  double noise_bits = 0;
  double record_bits = 0;
  /// Reference cost of describing the whole sample as noise.
  double noise_only_bits = 0;
  size_t records = 0;
  size_t noise_lines = 0;
  size_t record_lines = 0;
  /// Characters covered by matched records.
  size_t covered_chars = 0;
  /// True when the evaluation aborted early because its running lower
  /// bound exceeded the caller's abort_above; total_bits then holds that
  /// lower bound (a proof that the true total is larger), not the exact
  /// total, and the other tallies cover only the scanned prefix.
  bool pruned = false;
};

/// Minimum-description-length scorer (Section 9.2). The scan matches
/// through RecordMatcher (compiled bytecode by default, the reference tree
/// walker via MatchEngine::kTree — identical results either way) and, when
/// scoring a multi-template set, dispatches each line through a
/// TemplateSetIndex so only templates whose FIRST set contains the line's
/// first byte are attempted.
class MdlScorer : public RegularityScorer {
 public:
  MdlScorer() = default;
  explicit MdlScorer(MatchEngine engine,
                     CharsetEngine charset_engine = CharsetEngine::kSimd)
      : engine_(engine), charset_engine_(charset_engine) {}

  MatchEngine engine() const { return engine_; }

  double ScoreSet(const DatasetView& sample,
                  const std::vector<const StructureTemplate*>& templates)
      const override;

  /// Exact bound-based early abort: every term of the MDL total is
  /// nonnegative and the scan accumulates them monotonically, so the
  /// running partial (model + flags-so-far + noise-so-far +
  /// record-bits-so-far) is a true lower bound on the final total. The
  /// scan aborts — returning nullopt — as soon as that bound strictly
  /// exceeds abort_above.
  std::optional<double> ScoreBounded(const DatasetView& sample,
                                     const StructureTemplate& st,
                                     double abort_above) const override;

  /// Full breakdown; ScoreSet returns .total_bits of this. When
  /// `covered_lines` is non-null it receives the *physical* (backing
  /// dataset) indices of every record-covered line, ascending — the
  /// invalidation key for the cross-round score cache. A finite
  /// `abort_above` arms the early abort (see ScoreBounded); on abort the
  /// breakdown comes back with .pruned set and covered_lines cleared.
  MdlBreakdown EvaluateSet(
      const DatasetView& sample,
      const std::vector<const StructureTemplate*>& templates,
      std::vector<uint32_t>* covered_lines = nullptr,
      double abort_above = std::numeric_limits<double>::infinity()) const;

  MdlBreakdown Evaluate(const DatasetView& sample, const StructureTemplate& st,
                        std::vector<uint32_t>* covered_lines = nullptr) const {
    std::vector<const StructureTemplate*> ts = {&st};
    return EvaluateSet(sample, ts, covered_lines);
  }

 private:
  MatchEngine engine_ = MatchEngine::kCompiled;
  CharsetEngine charset_engine_ = CharsetEngine::kSimd;
};

}  // namespace datamaran

#endif  // DATAMARAN_SCORING_MDL_H_
