#ifndef DATAMARAN_SCORING_MDL_H_
#define DATAMARAN_SCORING_MDL_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "scoring/field_stats.h"
#include "template/match_engine.h"
#include "template/template.h"

/// The regularity score F(T,S) (Problem 2). Datamaran treats the scorer as
/// a black box — any function mimicking human judgment plugs in via the
/// RegularityScorer interface — and ships the minimum-description-length
/// scorer of Section 9.2 as the default.
///
/// Scorers consume a DatasetView (the sampled lines, or a residual round's
/// live lines) and never materialize text: candidate windows that are
/// physically contiguous in the backing buffer are matched in place, and
/// only the rare window crossing a view gap is assembled into a reused
/// scratch buffer (see DatasetView::ResolveSpan).
///
/// MDL model (lower is better, in bits):
///   model:   8 * len(ST) per template + 32, plus per-column parameters
///   flags:   one record/noise indicator bit per block ("32 + m" in the
///            paper, where a block is one record or one noise line). This
///            term is what makes covering a record's untypable lines
///            cheaper than leaving them as noise; the degenerate templates
///            it would otherwise reward (k concatenated periods of a true
///            template) are removed structurally at generation by
///            period/rotation canonicalization.
///   noise:   8 bits per unmatched character (including the '\n')
///   records: record-type id + Elias-gamma array repetition counts + typed
///            field values (enum / int / real / string, cheapest valid).

namespace datamaran {

/// Abstract regularity score: lower is better.
class RegularityScorer {
 public:
  virtual ~RegularityScorer() = default;

  /// Scores the structural component (a set of templates, priority order)
  /// against the live lines of `sample`. Lines no template matches are
  /// charged as noise.
  virtual double ScoreSet(
      const DatasetView& sample,
      const std::vector<const StructureTemplate*>& templates) const = 0;

  /// Convenience: score a single-template structural component.
  double Score(const DatasetView& sample, const StructureTemplate& st) const {
    std::vector<const StructureTemplate*> ts = {&st};
    return ScoreSet(sample, ts);
  }
};

/// Detailed evaluation output, used by the pipeline's accept/reject logic
/// and surfaced in reports.
struct MdlBreakdown {
  double total_bits = 0;
  double model_bits = 0;
  double flag_bits = 0;
  double noise_bits = 0;
  double record_bits = 0;
  /// Reference cost of describing the whole sample as noise.
  double noise_only_bits = 0;
  size_t records = 0;
  size_t noise_lines = 0;
  size_t record_lines = 0;
  /// Characters covered by matched records.
  size_t covered_chars = 0;
};

/// Minimum-description-length scorer (Section 9.2). The scan matches
/// through RecordMatcher (compiled bytecode by default, the reference tree
/// walker via MatchEngine::kTree — identical results either way) and, when
/// scoring a multi-template set, dispatches each line through a
/// TemplateSetIndex so only templates whose FIRST set contains the line's
/// first byte are attempted.
class MdlScorer : public RegularityScorer {
 public:
  MdlScorer() = default;
  explicit MdlScorer(MatchEngine engine) : engine_(engine) {}

  MatchEngine engine() const { return engine_; }

  double ScoreSet(const DatasetView& sample,
                  const std::vector<const StructureTemplate*>& templates)
      const override;

  /// Full breakdown; ScoreSet returns .total_bits of this. When
  /// `covered_lines` is non-null it receives the *physical* (backing
  /// dataset) indices of every record-covered line, ascending — the
  /// invalidation key for the cross-round score cache.
  MdlBreakdown EvaluateSet(
      const DatasetView& sample,
      const std::vector<const StructureTemplate*>& templates,
      std::vector<uint32_t>* covered_lines = nullptr) const;

  MdlBreakdown Evaluate(const DatasetView& sample, const StructureTemplate& st,
                        std::vector<uint32_t>* covered_lines = nullptr) const {
    std::vector<const StructureTemplate*> ts = {&st};
    return EvaluateSet(sample, ts, covered_lines);
  }

 private:
  MatchEngine engine_ = MatchEngine::kCompiled;
};

}  // namespace datamaran

#endif  // DATAMARAN_SCORING_MDL_H_
