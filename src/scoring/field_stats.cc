#include "scoring/field_stats.h"

#include <cmath>
#include <limits>

#include "util/common.h"
#include "util/strings.h"

namespace datamaran {

const char* FieldTypeName(FieldType type) {
  switch (type) {
    case FieldType::kEnum:
      return "enum";
    case FieldType::kInt:
      return "int";
    case FieldType::kReal:
      return "real";
    case FieldType::kString:
      return "string";
  }
  return "?";
}

double Log2Ceil(double n) {
  if (n <= 1) return 0;
  return std::ceil(std::log2(n));
}

double GammaBits(uint64_t k) {
  if (k == 0) return 1;
  return 2 * std::floor(std::log2(static_cast<double>(k))) + 1;
}

void ColumnStats::Add(std::string_view value) {
  ++count_;
  total_len_ += value.size();
  if (all_int_) {
    auto v = ParseInt64(value);
    if (!v.has_value()) {
      all_int_ = false;
    } else if (count_ == 1 || *v < min_int_) {
      min_int_ = *v;
    }
    if (v.has_value() && (count_ == 1 || *v > max_int_)) max_int_ = *v;
  }
  if (all_real_) {
    int exp = 0;
    auto v = ParseDecimal(value, &exp);
    if (!v.has_value()) {
      all_real_ = false;
    } else {
      if (count_ == 1 || *v < min_real_) min_real_ = *v;
      if (count_ == 1 || *v > max_real_) max_real_ = *v;
      if (exp > max_exp_) max_exp_ = exp;
    }
  }
  if (!distinct_overflow_) {
    auto [it, inserted] = distinct_.emplace(value);
    if (inserted) {
      distinct_len_ += value.size();
      if (distinct_.size() > kMaxDistinct) distinct_overflow_ = true;
    }
  }
}

double ColumnStats::TotalBits(FieldType type) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kTypeTagBits = 2;
  const double n = static_cast<double>(count_);
  switch (type) {
    case FieldType::kEnum: {
      if (distinct_overflow_) return kInf;
      // Dictionary: every distinct value spelled out once.
      double dict = 8.0 * (static_cast<double>(distinct_len_) +
                           static_cast<double>(distinct_.size()));
      double per_value = Log2Ceil(static_cast<double>(distinct_.size()));
      return kTypeTagBits + dict + n * per_value;
    }
    case FieldType::kInt: {
      if (!all_int_ || count_ == 0) return kInf;
      double range = static_cast<double>(max_int_) -
                     static_cast<double>(min_int_) + 1.0;
      return kTypeTagBits + 2 * 64 + n * Log2Ceil(range);
    }
    case FieldType::kReal: {
      if (!all_real_ || count_ == 0) return kInf;
      double scaled =
          std::round((max_real_ - min_real_) * std::pow(10.0, max_exp_)) + 1.0;
      return kTypeTagBits + 2 * 64 + 32 + n * Log2Ceil(scaled);
    }
    case FieldType::kString: {
      return kTypeTagBits +
             8.0 * (static_cast<double>(total_len_) + n);  // (len+1)*8 each
    }
  }
  return kInf;
}

FieldType ColumnStats::InferType() const {
  FieldType best = FieldType::kString;
  double best_bits = TotalBits(FieldType::kString);
  for (FieldType t : {FieldType::kEnum, FieldType::kInt, FieldType::kReal}) {
    double bits = TotalBits(t);
    if (bits < best_bits) {
      best_bits = bits;
      best = t;
    }
  }
  return best;
}

double ColumnStats::BestBits() const { return TotalBits(InferType()); }

namespace {

/// Assigns columns to kField leaves in pre-order (array elements visited
/// once). This single assignment is shared by the tree path (Walk) and the
/// flat path (AddRecordFlat), so the two can never disagree on bucketing.
void AssignFieldColumns(
    const TemplateNode& node, int* next_column,
    std::unordered_map<const TemplateNode*, int>* field_column) {
  switch (node.kind) {
    case NodeKind::kField:
      (*field_column)[&node] = (*next_column)++;
      break;
    case NodeKind::kChar:
      break;
    case NodeKind::kStruct:
    case NodeKind::kArray:
      for (const auto& c : node.children) {
        AssignFieldColumns(*c, next_column, field_column);
      }
      break;
  }
}

}  // namespace

TemplateStatsCollector::TemplateStatsCollector(const StructureTemplate* st)
    : st_(st) {
  int next_column = 0;
  AssignFieldColumns(st_->root(), &next_column, &field_column_);
  DM_CHECK(next_column == st_->field_count());
  columns_.resize(static_cast<size_t>(next_column));
}

void TemplateStatsCollector::AddRecord(const ParsedValue& root,
                                       std::string_view text) {
  ++records_;
  Walk(st_->root(), root, text);
}

void TemplateStatsCollector::AddRecordFlat(
    const std::vector<MatchEvent>& events, std::string_view text) {
  ++records_;
  for (const MatchEvent& ev : events) {
    switch (ev.kind) {
      case MatchEvent::kFieldValue:
        columns_[static_cast<size_t>(field_column_.at(ev.node))].Add(
            text.substr(ev.begin, ev.end - ev.begin));
        break;
      case MatchEvent::kArrayCount:
        array_bits_ += GammaBits(ev.count);
        break;
    }
  }
}

void TemplateStatsCollector::Walk(const TemplateNode& node,
                                  const ParsedValue& value,
                                  std::string_view text) {
  switch (node.kind) {
    case NodeKind::kField:
      columns_[static_cast<size_t>(field_column_.at(&node))].Add(
          text.substr(value.begin, value.end - value.begin));
      break;
    case NodeKind::kChar:
      break;
    case NodeKind::kStruct: {
      for (size_t i = 0; i < node.children.size(); ++i) {
        Walk(*node.children[i], value.children[i], text);
      }
      break;
    }
    case NodeKind::kArray: {
      array_bits_ += GammaBits(value.children.size());
      // All repetitions pool into the element's columns.
      for (const ParsedValue& rep : value.children) {
        Walk(*node.children[0], rep, text);
      }
      break;
    }
  }
}

double TemplateStatsCollector::FieldBits() const {
  double total = 0;
  for (const ColumnStats& col : columns_) total += col.BestBits();
  return total;
}

}  // namespace datamaran
