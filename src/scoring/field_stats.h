#ifndef DATAMARAN_SCORING_FIELD_STATS_H_
#define DATAMARAN_SCORING_FIELD_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "template/matcher.h"
#include "template/template.h"

/// Field-value typing for the MDL regularity score (Section 9.2). Each field
/// leaf of a structure template is one relational column; all repetitions of
/// an array pool into the element's columns. A column is described with the
/// cheapest applicable scheme among:
///   enumerated:  ceil(log2 n_distinct) bits per value + the dictionary
///   integer:     ceil(log2(max - min + 1)) bits per value
///   real:        ceil(log2((max - min) * 10^exp + 1)) bits per value
///   string:      8 * (len + 1) bits per value
/// Model parameters (type tag, bounds, dictionary) are charged to the column
/// so that the comparison between types is an honest two-part code.

namespace datamaran {

enum class FieldType { kEnum, kInt, kReal, kString };

const char* FieldTypeName(FieldType type);

/// Accumulates the values observed in one column.
class ColumnStats {
 public:
  void Add(std::string_view value);

  size_t count() const { return count_; }
  size_t distinct_count() const { return distinct_.size(); }
  bool all_int() const { return all_int_; }
  bool all_real() const { return all_real_; }

  /// The cheapest valid type for this column.
  FieldType InferType() const;

  /// Total description bits for all values under `type`
  /// (returns +inf for inapplicable types). Includes parameter costs.
  double TotalBits(FieldType type) const;

  /// TotalBits(InferType()).
  double BestBits() const;

 private:
  static constexpr size_t kMaxDistinct = 4096;

  size_t count_ = 0;
  size_t total_len_ = 0;
  bool all_int_ = true;
  bool all_real_ = true;
  int64_t min_int_ = 0, max_int_ = 0;
  double min_real_ = 0, max_real_ = 0;
  int max_exp_ = 0;
  std::unordered_set<std::string> distinct_;
  size_t distinct_len_ = 0;  // total length of distinct values
  bool distinct_overflow_ = false;
};

/// Collects per-column statistics and array-repetition coding costs for all
/// records of one structure template.
class TemplateStatsCollector {
 public:
  explicit TemplateStatsCollector(const StructureTemplate* st);

  /// Adds one parsed record (the ParsedValue tree must come from the same
  /// template's matcher).
  void AddRecord(const ParsedValue& root, std::string_view text);

  /// Adds one record from a flat event stream (TemplateMatcher::ParseFlat
  /// with the same template). Equivalent to AddRecord but consumes the
  /// allocation-free representation directly, so the scoring hot loop
  /// never builds a ParsedValue tree.
  void AddRecordFlat(const std::vector<MatchEvent>& events,
                     std::string_view text);

  /// Bits for all field values (best type per column, parameters included).
  double FieldBits() const;

  /// Bits for all array repetition counts (Elias-gamma style universal
  /// code: 2*floor(log2 k) + 1 bits for count k).
  double ArrayCountBits() const { return array_bits_; }

  size_t record_count() const { return records_; }
  const std::vector<ColumnStats>& columns() const { return columns_; }

 private:
  void Walk(const TemplateNode& node, const ParsedValue& value,
            std::string_view text);

  const StructureTemplate* st_;
  /// Column index of each kField leaf (pre-order over leaves, array
  /// elements counted once). The single source of truth for bucketing,
  /// shared by the tree path (Walk) and the flat path (AddRecordFlat).
  std::unordered_map<const TemplateNode*, int> field_column_;
  std::vector<ColumnStats> columns_;
  double array_bits_ = 0;
  size_t records_ = 0;
};

/// Universal-code cost of a positive integer (Elias gamma).
double GammaBits(uint64_t k);

/// ceil(log2(n)) with Log2Ceil(0) == Log2Ceil(1) == 0.
double Log2Ceil(double n);

}  // namespace datamaran

#endif  // DATAMARAN_SCORING_FIELD_STATS_H_
