#include "scoring/score_cache.h"

#include <algorithm>
#include <utility>

#include "template/dispatch.h"

namespace datamaran {

namespace {

/// Two-pointer intersection test over ascending sequences.
bool SortedIntersect(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

/// New-view positions v where removed lines sat strictly between live[v]
/// and live[v+1] — the splice points where previously separated lines
/// became adjacent. One merge pass over two ascending sequences.
std::vector<uint32_t> SplicePositions(const std::vector<uint32_t>& removed,
                                      const DatasetView& view) {
  std::vector<uint32_t> splices;
  const size_t n = view.line_count();
  size_t r = 0;
  for (size_t v = 0; v + 1 < n; ++v) {
    const uint32_t a = static_cast<uint32_t>(view.physical_line(v));
    const uint32_t b = static_cast<uint32_t>(view.physical_line(v + 1));
    while (r < removed.size() && removed[r] <= a) ++r;
    if (r >= removed.size()) break;
    if (removed[r] < b) splices.push_back(static_cast<uint32_t>(v));
  }
  return splices;
}

/// True when any span-window crossing a splice point matches `st` in the
/// new view — the one way a covered-disjoint shrink can still change a
/// multi-line candidate's matched record set. A window [w, w+span) crosses
/// the splice (v, v+1) iff w in [v-span+2, v].
bool AnySpliceWindowMatches(const StructureTemplate& st, size_t span,
                            const std::vector<uint32_t>& splices,
                            const DatasetView& view, MatchEngine engine,
                            CharsetEngine charset_engine,
                            std::string* scratch) {
  const RecordMatcher matcher(&st, engine, charset_engine);
  const size_t n = view.line_count();
  size_t next_unchecked = 0;  // dedupes overlapping ranges of close splices
  for (uint32_t v : splices) {
    const size_t lo =
        static_cast<size_t>(v) + 2 > span ? static_cast<size_t>(v) + 2 - span
                                          : 0;
    for (size_t w = std::max(lo, next_unchecked); w <= v && w < n; ++w) {
      const unsigned char first =
          static_cast<unsigned char>(view.line_with_newline(w).front());
      if (!matcher.CanStartWith(first)) continue;
      const DatasetView::SpanText win = view.ResolveSpan(w, span, scratch);
      if (matcher.TryMatch(win.text, win.pos).has_value()) return true;
    }
    next_unchecked = static_cast<size_t>(v) + 1;
  }
  return false;
}

}  // namespace

std::optional<double> ScoreCache::Lookup(std::string_view canonical,
                                         const DatasetView& view) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::string(canonical));
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  const Entry& e = it->second;
  const double flag_bits =
      static_cast<double>(e.records) +
      static_cast<double>(view.line_count() - e.record_lines);
  const double noise_bits =
      8.0 * static_cast<double>(view.size_bytes() - e.covered_chars);
  return e.base_bits + flag_bits + noise_bits;
}

void ScoreCache::Insert(const std::string& canonical, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[canonical] = std::move(entry);
}

void ScoreCache::InvalidateRemovedLines(
    const std::vector<uint32_t>& removed_lines, const DatasetView& new_view) {
  if (removed_lines.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return;
  // The O(live) splice scan is only needed once a surviving multi-line
  // entry is actually reached (an empty or all-single-line cache, or one
  // fully dropped by the covered-lines test, never pays it).
  std::optional<std::vector<uint32_t>> splices;
  std::string scratch;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& e = it->second;
    // Both sides ascending: one merge pass decides the intersection. A hit
    // means a matched window lost a line — the cached record set is gone.
    bool drop = SortedIntersect(e.covered_lines, removed_lines);
    if (!drop && e.line_span > 1) {
      if (!splices.has_value()) {
        splices = SplicePositions(removed_lines, new_view);
      }
      if (!splices->empty()) {
        const size_t span = static_cast<size_t>(e.line_span);
        // When checking every splice-crossing window would approach the
        // cost of just rescoring the candidate, drop conservatively.
        const size_t budget =
            std::max<size_t>(64, new_view.line_count() / 4);
        if (splices->size() * span > budget || e.st == nullptr) {
          drop = true;
        } else {
          drop = AnySpliceWindowMatches(*e.st, span, *splices, new_view,
                                        engine_, charset_engine_, &scratch);
        }
      }
    }
    it = drop ? entries_.erase(it) : ++it;
  }
}

size_t ScoreCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t ScoreCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t ScoreCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

double CachingScorer::ScoreSet(
    const DatasetView& sample,
    const std::vector<const StructureTemplate*>& templates) const {
  if (cache_ == nullptr || templates.size() != 1) {
    return base_->ScoreSet(sample, templates);
  }
  const StructureTemplate& st = *templates[0];
  if (auto cached = cache_->Lookup(st.canonical(), sample)) {
    return *cached;
  }
  ScoreCache::Entry entry;
  MdlBreakdown b = base_->EvaluateSet(sample, templates, &entry.covered_lines);
  entry.base_bits = b.model_bits + b.record_bits;
  entry.records = b.records;
  entry.record_lines = b.record_lines;
  entry.covered_chars = b.covered_chars;
  entry.line_span = std::max(1, st.line_span());
  if (entry.line_span > 1) {
    entry.st = std::make_shared<const StructureTemplate>(st);
  }
  cache_->Insert(st.canonical(), std::move(entry));
  return b.total_bits;
}

std::optional<double> CachingScorer::ScoreBounded(const DatasetView& sample,
                                                  const StructureTemplate& st,
                                                  double abort_above) const {
  if (cache_ == nullptr) return base_->ScoreBounded(sample, st, abort_above);
  if (auto cached = cache_->Lookup(st.canonical(), sample)) {
    return *cached;
  }
  std::vector<const StructureTemplate*> ts = {&st};
  ScoreCache::Entry entry;
  MdlBreakdown b =
      base_->EvaluateSet(sample, ts, &entry.covered_lines, abort_above);
  if (b.pruned) return std::nullopt;  // a bound, not a total: never cached
  entry.base_bits = b.model_bits + b.record_bits;
  entry.records = b.records;
  entry.record_lines = b.record_lines;
  entry.covered_chars = b.covered_chars;
  entry.line_span = std::max(1, st.line_span());
  if (entry.line_span > 1) {
    entry.st = std::make_shared<const StructureTemplate>(st);
  }
  cache_->Insert(st.canonical(), std::move(entry));
  return b.total_bits;
}

}  // namespace datamaran
