#include "scoring/score_cache.h"

#include <algorithm>
#include <utility>

namespace datamaran {

namespace {

/// Two-pointer intersection test over ascending sequences.
bool SortedIntersect(const std::vector<uint32_t>& a,
                     const std::vector<uint32_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<double> ScoreCache::Lookup(std::string_view canonical,
                                         const DatasetView& view) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(std::string(canonical));
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  const Entry& e = it->second;
  const double flag_bits =
      static_cast<double>(e.records) +
      static_cast<double>(view.line_count() - e.record_lines);
  const double noise_bits =
      8.0 * static_cast<double>(view.size_bytes() - e.covered_chars);
  return e.base_bits + flag_bits + noise_bits;
}

void ScoreCache::Insert(const std::string& canonical, Entry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[canonical] = std::move(entry);
}

void ScoreCache::InvalidateRemovedLines(
    const std::vector<uint32_t>& removed_lines) {
  if (removed_lines.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const Entry& e = it->second;
    bool drop = e.line_span > 1;
    if (!drop) {
      // Both sides ascending: one merge pass decides the intersection.
      drop = SortedIntersect(e.covered_lines, removed_lines);
    }
    it = drop ? entries_.erase(it) : ++it;
  }
}

size_t ScoreCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

size_t ScoreCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t ScoreCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

double CachingScorer::ScoreSet(
    const DatasetView& sample,
    const std::vector<const StructureTemplate*>& templates) const {
  if (cache_ == nullptr || templates.size() != 1) {
    return base_->ScoreSet(sample, templates);
  }
  const StructureTemplate& st = *templates[0];
  if (auto cached = cache_->Lookup(st.canonical(), sample)) {
    return *cached;
  }
  ScoreCache::Entry entry;
  MdlBreakdown b = base_->EvaluateSet(sample, templates, &entry.covered_lines);
  entry.base_bits = b.model_bits + b.record_bits;
  entry.records = b.records;
  entry.record_lines = b.record_lines;
  entry.covered_chars = b.covered_chars;
  entry.line_span = std::max(1, st.line_span());
  cache_->Insert(st.canonical(), std::move(entry));
  return b.total_bits;
}

}  // namespace datamaran
