#include "scoring/mdl.h"

#include <memory>

#include "template/matcher.h"

namespace datamaran {

double MdlScorer::ScoreSet(
    const Dataset& sample,
    const std::vector<const StructureTemplate*>& templates) const {
  return EvaluateSet(sample, templates).total_bits;
}

MdlBreakdown MdlScorer::EvaluateSet(
    const Dataset& sample,
    const std::vector<const StructureTemplate*>& templates) const {
  MdlBreakdown out;
  // Noise is charged 8 bits per character including the line's '\n'
  // (paper: len(block) * 8). Keeping the newline in both the noise coding
  // and the record templates makes the trivial "F\n" template an exact
  // no-op rather than an 8-bit-per-line win.
  out.noise_only_bits = 32 + static_cast<double>(sample.line_count()) +
                        8.0 * static_cast<double>(sample.size_bytes());

  std::vector<TemplateMatcher> matchers;
  std::vector<TemplateStatsCollector> collectors;
  matchers.reserve(templates.size());
  collectors.reserve(templates.size());
  for (const StructureTemplate* st : templates) {
    matchers.emplace_back(st);
    collectors.emplace_back(st);
  }

  const std::string_view text = sample.text();
  const double type_bits =
      templates.size() > 1
          ? Log2Ceil(static_cast<double>(templates.size()))
          : 0;

  // The scan parses with the flat event API into one reused buffer: no
  // ParsedValue tree (a vector-of-children allocation per node per record)
  // is ever built, so the per-line cost is pure matching plus stats
  // accumulation.
  std::vector<MatchEvent> events;
  size_t li = 0;
  const size_t n = sample.line_count();
  while (li < n) {
    const size_t pos = sample.line_begin(li);
    bool matched = false;
    for (size_t t = 0; t < matchers.size(); ++t) {
      auto parsed = matchers[t].ParseFlat(text, pos, &events);
      if (!parsed.has_value()) continue;
      collectors[t].AddRecordFlat(events, text);
      out.records += 1;
      const int span = templates[t]->line_span();
      out.record_lines += static_cast<size_t>(span);
      out.covered_chars += parsed->end - pos;
      out.record_bits += type_bits;
      li += static_cast<size_t>(span);
      matched = true;
      break;
    }
    if (!matched) {
      const size_t len = sample.line_end(li) - pos;  // includes the '\n'
      out.noise_bits += 8.0 * static_cast<double>(len);
      out.noise_lines += 1;
      ++li;
    }
  }

  for (size_t t = 0; t < templates.size(); ++t) {
    out.model_bits += 8.0 * static_cast<double>(
                          templates[t]->canonical().size());
    out.record_bits +=
        collectors[t].FieldBits() + collectors[t].ArrayCountBits();
  }
  out.model_bits += 32;
  // The paper's "32 + m" term: one record/noise flag per block, where a
  // block is one record or one noise line (Definition 2.4). This makes a
  // template that explains k lines as one record cheaper than one that
  // leaves some of those lines as noise — the per-block term is what lets
  // the full multi-line template beat its line-subsets when the extra
  // lines carry no typable content. (Templates that merely concatenate
  // several periods of a true template would also profit from this term;
  // those are eliminated structurally at generation by period/rotation
  // canonicalization, see generation/generator.h.)
  out.flag_bits = static_cast<double>(out.records + out.noise_lines);
  out.total_bits =
      out.model_bits + out.flag_bits + out.noise_bits + out.record_bits;
  return out;
}

}  // namespace datamaran
