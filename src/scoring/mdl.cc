#include "scoring/mdl.h"

#include <algorithm>
#include <memory>
#include <string>

#include "template/dispatch.h"
#include "template/matcher.h"

namespace datamaran {

double MdlScorer::ScoreSet(
    const DatasetView& sample,
    const std::vector<const StructureTemplate*>& templates) const {
  return EvaluateSet(sample, templates).total_bits;
}

std::optional<double> MdlScorer::ScoreBounded(const DatasetView& sample,
                                              const StructureTemplate& st,
                                              double abort_above) const {
  std::vector<const StructureTemplate*> ts = {&st};
  MdlBreakdown b = EvaluateSet(sample, ts, nullptr, abort_above);
  if (b.pruned) return std::nullopt;
  return b.total_bits;
}

MdlBreakdown MdlScorer::EvaluateSet(
    const DatasetView& sample,
    const std::vector<const StructureTemplate*>& templates,
    std::vector<uint32_t>* covered_lines, double abort_above) const {
  MdlBreakdown out;
  if (covered_lines != nullptr) covered_lines->clear();
  // Noise is charged 8 bits per character including the line's '\n'
  // (paper: len(block) * 8). Keeping the newline in both the noise coding
  // and the record templates makes the trivial "F\n" template an exact
  // no-op rather than an 8-bit-per-line win.
  out.noise_only_bits = 32 + static_cast<double>(sample.line_count()) +
                        8.0 * static_cast<double>(sample.size_bytes());

  std::vector<RecordMatcher> matchers;
  std::vector<TemplateStatsCollector> collectors;
  std::vector<size_t> spans;
  matchers.reserve(templates.size());
  collectors.reserve(templates.size());
  spans.reserve(templates.size());
  for (const StructureTemplate* st : templates) {
    matchers.emplace_back(st, engine_, charset_engine_);
    collectors.emplace_back(st);
    spans.push_back(static_cast<size_t>(std::max(1, st->line_span())));
  }
  // Multi-template sets dispatch on the line's first byte; a template whose
  // FIRST set misses it cannot match, so the index only narrows the
  // priority-ordered attempt list, never changes its outcome. Singleton
  // sets (the per-candidate scoring path) use the matcher's own
  // first-byte filter and skip the index build.
  const bool use_index = templates.size() > 1;
  const TemplateSetIndex index =
      use_index ? TemplateSetIndex(matchers) : TemplateSetIndex();

  const double type_bits =
      templates.size() > 1
          ? Log2Ceil(static_cast<double>(templates.size()))
          : 0;

  // Model bits are a fixed, scan-independent term; charging them up front
  // makes the running partial below a valid lower bound from line one.
  for (const StructureTemplate* st : templates) {
    out.model_bits += 8.0 * static_cast<double>(st->canonical().size());
  }
  out.model_bits += 32;

  // The scan parses with the flat event API into one reused buffer: no
  // ParsedValue tree (a vector-of-children allocation per node per record)
  // is ever built, so the per-line cost is pure matching plus stats
  // accumulation. Candidate windows resolve against the backing buffer in
  // place; only windows that straddle a view gap touch `scratch`.
  std::vector<MatchEvent> events;
  std::string scratch;
  size_t li = 0;
  const size_t n = sample.line_count();
  auto try_template = [&](size_t t) -> bool {
    const DatasetView::SpanText win = sample.ResolveSpan(li, spans[t],
                                                         &scratch);
    auto parsed = matchers[t].ParseFlat(win.text, win.pos, &events);
    if (!parsed.has_value()) return false;
    collectors[t].AddRecordFlat(events, win.text);
    out.records += 1;
    out.record_lines += spans[t];
    out.covered_chars += parsed->end - win.pos;
    out.record_bits += type_bits;
    if (covered_lines != nullptr) {
      for (size_t k = li; k < li + spans[t]; ++k) {
        covered_lines->push_back(
            static_cast<uint32_t>(sample.physical_line(k)));
      }
    }
    li += spans[t];
    return true;
  };
  const bool bounded = abort_above < std::numeric_limits<double>::infinity();
  while (li < n) {
    // Lines always contain at least their '\n', so front() is safe; the
    // first byte keys both the index dispatch and the singleton filter.
    const unsigned char first = static_cast<unsigned char>(
        sample.line_with_newline(li).front());
    bool matched = false;
    if (use_index) {
      for (uint16_t t : index.Candidates(first)) {
        if (try_template(t)) {
          matched = true;
          break;
        }
      }
    } else if (!matchers.empty() && matchers[0].CanStartWith(first)) {
      matched = try_template(0);
    }
    if (!matched) {
      out.noise_bits +=
          8.0 * static_cast<double>(sample.line_with_newline(li).size());
      out.noise_lines += 1;
      ++li;
    }
    if (bounded) {
      // Every accumulated term is nonnegative and the remaining terms
      // (unscanned lines, per-column field/array-count bits) only add, so
      // the partial sum is a true lower bound on the final total: once it
      // strictly exceeds abort_above, the exact total must too.
      const double lower =
          out.model_bits + out.noise_bits + out.record_bits +
          static_cast<double>(out.records + out.noise_lines);
      if (lower > abort_above) {
        out.pruned = true;
        out.total_bits = lower;
        if (covered_lines != nullptr) covered_lines->clear();
        return out;
      }
    }
  }

  for (size_t t = 0; t < templates.size(); ++t) {
    out.record_bits +=
        collectors[t].FieldBits() + collectors[t].ArrayCountBits();
  }
  // The paper's "32 + m" term: one record/noise flag per block, where a
  // block is one record or one noise line (Definition 2.4). This makes a
  // template that explains k lines as one record cheaper than one that
  // leaves some of those lines as noise — the per-block term is what lets
  // the full multi-line template beat its line-subsets when the extra
  // lines carry no typable content. (Templates that merely concatenate
  // several periods of a true template would also profit from this term;
  // those are eliminated structurally at generation by period/rotation
  // canonicalization, see generation/generator.h.)
  out.flag_bits = static_cast<double>(out.records + out.noise_lines);
  out.total_bits =
      out.model_bits + out.flag_bits + out.noise_bits + out.record_bits;
  return out;
}

}  // namespace datamaran
