#ifndef DATAMARAN_SCORING_SCORE_CACHE_H_
#define DATAMARAN_SCORING_SCORE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "scoring/mdl.h"

/// Cross-round MDL score cache for the evaluation step.
///
/// The iterated structure extraction (Section 9.1) rescores candidates
/// against a shrinking residual every round, and most candidates reappear
/// verbatim (same canonical form) round after round. Because the residual
/// is now an index-only DatasetView over an immutable backing buffer, line
/// identity is stable across rounds — which makes a score computed in
/// round r exactly reusable in round r+1:
///
///   total = [model + record bits]  +  records            (view-independent)
///         + (live_lines - record_lines)                  (flag bits)
///         + 8 * (live_bytes - covered_chars)             (noise bits)
///
/// The bracketed terms depend only on the *matched record set*, so an
/// entry stays exact precisely when the shrink provably leaves that set
/// unchanged; the view-dependent terms are then recomputed in O(1) from
/// the current view's aggregates. Invalidation reasons about window
/// adjacency:
///
///  - An entry whose covered lines intersect the removal is dropped (a
///    matched window lost a line).
///  - Single-line entries otherwise survive: each line matches
///    independently, and removed non-covered lines were non-matching.
///  - A multi-line entry's matched windows are runs of consecutive *view*
///    positions, so covered-disjoint removals leave every matched window
///    intact and adjacent. The only remaining hazard is a *splice*: where
///    removed lines sat between two surviving lines, previously separated
///    lines become adjacent and can form brand-new candidate windows. The
///    entry survives iff no window crossing a splice point matches the
///    candidate — checked by re-matching just those O(span) windows per
///    splice against the new view (with a budget: when splices are so
///    numerous the checks would rival a fresh evaluation, the entry is
///    dropped conservatively instead).
///
/// Either way, cached values are always bit-identical to a fresh
/// evaluation (ScoreCacheTest).
///
/// Thread safety: Lookup/Insert/Invalidate are mutex-guarded; concurrent
/// misses on the same key may both evaluate and insert, but entries are a
/// pure function of (canonical, view) so the race is benign and results
/// stay deterministic for every thread count.

namespace datamaran {

class ScoreCache {
 public:
  /// `engine` / `charset_engine` drive the splice-window re-matching
  /// during invalidation (results are engine-independent; the knobs only
  /// keep a single engine pair active per pipeline).
  explicit ScoreCache(MatchEngine engine = MatchEngine::kCompiled,
                      CharsetEngine charset_engine = CharsetEngine::kSimd)
      : engine_(engine), charset_engine_(charset_engine) {}

  struct Entry {
    /// model_bits + record_bits: the view-independent part of the total.
    double base_bits = 0;
    size_t records = 0;
    size_t record_lines = 0;
    size_t covered_chars = 0;
    int line_span = 1;
    /// Physical backing-dataset lines covered by matched records, ascending.
    std::vector<uint32_t> covered_lines;
    /// Multi-line entries keep their parsed template so splice-window
    /// re-matching at invalidation needn't re-parse the canonical key.
    /// shared_ptr: stable address across map rehashes, copy-friendly.
    std::shared_ptr<const StructureTemplate> st;
  };

  /// Returns the exact MDL total for `canonical` against `view` if a valid
  /// entry exists.
  std::optional<double> Lookup(std::string_view canonical,
                               const DatasetView& view) const;

  void Insert(const std::string& canonical, Entry entry);

  /// Round transition: `removed_lines` (physical, ascending) just left the
  /// live set and `new_view` is the surviving residual. Drops every entry
  /// whose covered lines intersect the removal, and every multi-line entry
  /// for which a window crossing a removal splice point now matches (see
  /// the header comment); everything else survives, still exact.
  void InvalidateRemovedLines(const std::vector<uint32_t>& removed_lines,
                              const DatasetView& new_view);

  size_t hits() const;
  size_t misses() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  MatchEngine engine_ = MatchEngine::kCompiled;
  CharsetEngine charset_engine_ = CharsetEngine::kSimd;
  std::unordered_map<std::string, Entry> entries_;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
};

/// RegularityScorer decorator that serves single-template scores from a
/// ScoreCache and delegates everything else to the wrapped MdlScorer. The
/// pipeline hands this to the evaluation loop and the Refiner, so repeated
/// scoring of the same canonical — across rounds, and across the unfold
/// variants of parallel refinement branches — costs one hash lookup.
class CachingScorer : public RegularityScorer {
 public:
  CachingScorer(const MdlScorer* base, ScoreCache* cache)
      : base_(base), cache_(cache) {}

  double ScoreSet(const DatasetView& sample,
                  const std::vector<const StructureTemplate*>& templates)
      const override;

  /// Bounded single-template scoring: a cache hit returns the exact score
  /// (even above abort_above — hits are free); a miss evaluates with the
  /// early abort and only inserts *completed* evaluations — an aborted
  /// scan proves a lower bound, not a total, so caching it would poison
  /// later lookups.
  std::optional<double> ScoreBounded(const DatasetView& sample,
                                     const StructureTemplate& st,
                                     double abort_above) const override;

 private:
  const MdlScorer* base_;
  ScoreCache* cache_;
};

}  // namespace datamaran

#endif  // DATAMARAN_SCORING_SCORE_CACHE_H_
