#include "extraction/sinks.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/file_io.h"
#include "util/strings.h"

namespace datamaran {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    const unsigned char b = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (b < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out->append("\\u00");
          out->push_back(kHex[b >> 4]);
          out->push_back(kHex[b & 0xf]);
        } else {
          out->push_back(c);
        }
    }
  }
}

// ------------------------------------------------------------ shared base --

std::string WriteSinkBase::NoiseFileName() { return "noise.txt"; }

WriteSinkBase::WriteSinkBase(const DatasetView& data,
                             size_t flush_threshold_bytes)
    : data_(data), flush_threshold_(flush_threshold_bytes) {}

WriteSinkBase::~WriteSinkBase() { Finish(); }

void WriteSinkBase::MakeOutDir(const std::string& out_dir) {
  out_dir_ = out_dir;
  Status made = MakeDirs(out_dir);
  if (!made.ok() && status_.ok()) status_ = std::move(made);
}

WriteSinkBase::Stream* WriteSinkBase::AddStream(const std::string& path) {
  streams_.emplace_back();
  Stream* stream = &streams_.back();
  stream->path = path;
  if (!status_.ok()) return stream;
  stream->file = std::fopen(path.c_str(), "wb");
  if (stream->file == nullptr) {
    Fail("cannot open " + path + ": " + std::strerror(errno));
  }
  return stream;
}

void WriteSinkBase::OpenNoiseStream(const std::string& out_dir) {
  noise_stream_ = AddStream(out_dir + "/" + NoiseFileName());
}

void WriteSinkBase::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::IoError(message);
}

void WriteSinkBase::FlushStream(Stream* stream) {
  if (stream->buffer.empty()) return;
  if (status_.ok() && stream->file != nullptr) {
    const size_t written = std::fwrite(stream->buffer.data(), 1,
                                       stream->buffer.size(), stream->file);
    if (written != stream->buffer.size()) {
      Fail(StrFormat("%s: short write (%zu of %zu bytes)",
                     stream->path.c_str(), written, stream->buffer.size()));
    } else {
      stats_.bytes_written += written;
    }
  }
  stream->buffer.clear();
}

void WriteSinkBase::MaybeFlush(Stream* stream) {
  if (stream->buffer.size() >= flush_threshold_) FlushStream(stream);
}

void WriteSinkBase::OnNoiseLine(size_t line_index) {
  stats_.noise_lines++;
  if (!status_.ok() || noise_stream_ == nullptr) return;
  const std::string_view line = data_.line_with_newline(line_index);
  noise_stream_->buffer.append(line.data(), line.size());
  MaybeFlush(noise_stream_);
}

void WriteSinkBase::OnNoiseText(size_t /*line_index*/,
                                std::string_view line_with_newline) {
  // Same bytes OnNoiseLine would write, but from the carried text — the
  // streaming path, where data_ is not the stream.
  stats_.noise_lines++;
  if (!status_.ok() || noise_stream_ == nullptr) return;
  noise_stream_->buffer.append(line_with_newline.data(),
                               line_with_newline.size());
  MaybeFlush(noise_stream_);
}

void WriteSinkBase::OnTemplatesAdded(
    const std::vector<const StructureTemplate*>& added) {
  for (const StructureTemplate* st : added) AddTemplate(st);
}

void WriteSinkBase::OnWaveEnd() {
  for (Stream& stream : streams_) FlushStream(&stream);
}

Status WriteSinkBase::Finish() {
  if (finished_) return status_;
  finished_ = true;
  OnWaveEnd();
  for (Stream& stream : streams_) {
    if (stream.file != nullptr && std::fclose(stream.file) != 0) {
      Fail(stream.path + ": close failed");
    }
    stream.file = nullptr;
  }
  return status_;
}

// ----------------------------------------------------- denormalized sink --

std::string ColumnarWriteSink::FileName(size_t template_id,
                                        OutputFormat format) {
  return StrFormat("type%zu.%s", template_id,
                   format == OutputFormat::kCsv ? "csv" : "ndjson");
}

ColumnarWriteSink::ColumnarWriteSink(
    const std::vector<StructureTemplate>* templates, const DatasetView& data,
    const std::string& out_dir, OutputFormat format,
    size_t flush_threshold_bytes)
    : WriteSinkBase(data, flush_threshold_bytes), format_(format) {
  // AddTemplate builds the per-template state unconditionally, so the sink
  // stays safe to feed (as a counting no-op) even when the directory or a
  // file cannot be created — the error surfaces in Finish().
  MakeOutDir(out_dir);
  rows_.reserve(templates->size());
  type_streams_.reserve(templates->size());
  for (const StructureTemplate& st : *templates) AddTemplate(&st);
  OpenNoiseStream(out_dir);
}

void ColumnarWriteSink::AddTemplate(const StructureTemplate* st) {
  const size_t t = rows_.size();
  rows_.emplace_back(st);
  RegisterTemplate();
  if (format_ == OutputFormat::kNdjson) {
    // Prebuilt `"fN":"` key prefixes: the record hot path must not format
    // or allocate per cell.
    const size_t columns = static_cast<size_t>(rows_.back().leaf_count());
    for (size_t c = json_keys_.size(); c < columns; ++c) {
      json_keys_.push_back(StrFormat("\"f%zu\":\"", c));
    }
  }
  Stream* stream = AddStream(out_dir() + "/" + FileName(t, format_));
  type_streams_.push_back(stream);
  if (format_ == OutputFormat::kCsv) {
    // Header row, byte-identical to Table::ToCsv's first line.
    const DenormalizedSchema schema = DenormalizedSchemaFor(*st);
    std::string& buf = stream->buffer;
    for (size_t c = 0; c < schema.columns.size(); ++c) {
      if (c > 0) buf.push_back(',');
      AppendCsvField(schema.columns[c], &buf);
    }
    buf.push_back('\n');
  }
}

void ColumnarWriteSink::OnRecord(int template_id, size_t /*first_line*/,
                                 std::string_view text, size_t /*pos*/,
                                 size_t /*end*/, const MatchEvent* events,
                                 size_t num_events) {
  const size_t t = static_cast<size_t>(template_id);
  stats_.records_per_template[t]++;
  stats_.total_records++;
  if (!status().ok()) return;
  const std::vector<std::string>& cells =
      rows_[t].FillFromEvents(text, events, num_events);
  Stream* stream = type_streams_[t];
  std::string& buf = stream->buffer;
  if (format_ == OutputFormat::kCsv) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) buf.push_back(',');
      AppendCsvField(cells[c], &buf);
    }
    buf.push_back('\n');
  } else {
    buf.push_back('{');
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) buf.push_back(',');
      buf.append(json_keys_[c]);
      AppendJsonEscaped(cells[c], &buf);
      buf.push_back('"');
    }
    buf.append("}\n");
  }
  MaybeFlush(stream);
}

// -------------------------------------------------------- normalized sink --

namespace {

/// Appends `v` in decimal — the same bytes std::to_string produces, and
/// therefore the same bytes the collecting path's id cells hold — without
/// a per-cell heap allocation.
void AppendDecimal(size_t v, std::string* out) {
  char tmp[20];
  char* p = tmp + sizeof(tmp);
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out->append(p, static_cast<size_t>(tmp + sizeof(tmp) - p));
}

}  // namespace

std::string NormalizedWriteSink::TableFileName(size_t template_id,
                                               size_t table) {
  // Must equal NormalizedSchemaFor(st, "type<t>").tables[table].name plus
  // ".csv" — the collecting path derives its file names the same way.
  return table == 0 ? StrFormat("type%zu.csv", template_id)
                    : StrFormat("type%zu_arr%zu.csv", template_id, table);
}

NormalizedWriteSink::NormalizedWriteSink(
    const std::vector<StructureTemplate>* templates, const DatasetView& data,
    const std::string& out_dir, size_t flush_threshold_bytes)
    : WriteSinkBase(data, flush_threshold_bytes) {
  // As in the denormalized sink, AddTemplate builds all per-template state
  // even when the directory cannot be created, so a failed sink still
  // counts.
  state_.reserve(templates->size());
  MakeOutDir(out_dir);
  for (const StructureTemplate& st : *templates) AddTemplate(&st);
  OpenNoiseStream(out_dir);
}

void NormalizedWriteSink::AddTemplate(const StructureTemplate* st) {
  const size_t t = state_.size();
  state_.emplace_back(st);
  RegisterTemplate();
  PerTemplate& pt = state_.back();
  const NormalizedSchema schema =
      NormalizedSchemaFor(*st, StrFormat("type%zu", t));
  pt.next_id.assign(schema.tables.size(), 0);
  pt.tables.reserve(schema.tables.size());
  if (record_rows_.size() < schema.tables.size()) {
    record_rows_.resize(schema.tables.size(), 0);
  }
  for (size_t k = 0; k < schema.tables.size(); ++k) {
    Stream* stream = AddStream(out_dir() + "/" + TableFileName(t, k));
    pt.tables.push_back(stream);
    // Header row, byte-identical to Table::ToCsv's first line.
    std::string& buf = stream->buffer;
    for (size_t c = 0; c < schema.tables[k].columns.size(); ++c) {
      if (c > 0) buf.push_back(',');
      AppendCsvField(schema.tables[k].columns[c], &buf);
    }
    buf.push_back('\n');
  }
}

void NormalizedWriteSink::OnRecord(int template_id, size_t /*first_line*/,
                                   std::string_view text, size_t /*pos*/,
                                   size_t /*end*/, const MatchEvent* events,
                                   size_t num_events) {
  const size_t t = static_cast<size_t>(template_id);
  stats_.records_per_template[t]++;
  stats_.total_records++;
  if (!status().ok()) return;
  PerTemplate& pt = state_[t];
  const std::vector<NormalizedRowBuilder::Row>& rows =
      pt.builder.FillFromEvents(text, events, num_events);
  const size_t row_count = pt.builder.row_count();
  // Rebase every record-relative id against the per-table counters, which
  // are frozen for the duration of the record: a child row's parent_id
  // must use the same base its parent row's id was written with.
  for (size_t r = 0; r < row_count; ++r) {
    const NormalizedRowBuilder::Row& row = rows[r];
    const size_t table = static_cast<size_t>(row.table);
    Stream* stream = pt.tables[table];
    std::string& buf = stream->buffer;
    AppendDecimal(pt.next_id[table] + row.id, &buf);
    if (row.parent_table >= 0) {
      const size_t parent = static_cast<size_t>(row.parent_table);
      buf.push_back(',');
      AppendDecimal(pt.next_id[parent] + row.parent_id, &buf);
      buf.push_back(',');
      AppendDecimal(row.pos, &buf);
    }
    for (const std::string& cell : row.fields) {
      buf.push_back(',');
      AppendCsvField(cell, &buf);
    }
    buf.push_back('\n');
    record_rows_[table]++;
  }
  // Advance the bases only after the whole record is written, then flush
  // lazily (flush boundaries never affect content).
  for (size_t r = 0; r < row_count; ++r) {
    const size_t table = static_cast<size_t>(rows[r].table);
    if (record_rows_[table] != 0) {
      pt.next_id[table] += record_rows_[table];
      record_rows_[table] = 0;
    }
  }
  for (Stream* stream : pt.tables) MaybeFlush(stream);
}

}  // namespace datamaran
