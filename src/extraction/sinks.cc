#include "extraction/sinks.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/file_io.h"
#include "util/strings.h"

namespace datamaran {

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    const unsigned char b = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (b < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out->append("\\u00");
          out->push_back(kHex[b >> 4]);
          out->push_back(kHex[b & 0xf]);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string ColumnarWriteSink::FileName(size_t template_id,
                                        OutputFormat format) {
  return StrFormat("type%zu.%s", template_id,
                   format == OutputFormat::kCsv ? "csv" : "ndjson");
}

std::string ColumnarWriteSink::NoiseFileName() { return "noise.txt"; }

ColumnarWriteSink::ColumnarWriteSink(
    const std::vector<StructureTemplate>* templates, const DatasetView& data,
    const std::string& out_dir, OutputFormat format,
    size_t flush_threshold_bytes)
    : templates_(templates),
      data_(data),
      format_(format),
      flush_threshold_(flush_threshold_bytes) {
  stats_.records_per_template.assign(templates_->size(), 0);
  // Build the per-template state unconditionally so the sink stays safe to
  // feed (as a counting no-op) even when the directory or a file cannot be
  // created — the error surfaces in Finish().
  type_streams_.resize(templates_->size());
  rows_.reserve(templates_->size());
  size_t max_columns = 0;
  for (const StructureTemplate& st : *templates_) {
    rows_.emplace_back(&st);
    max_columns = std::max(
        max_columns, static_cast<size_t>(rows_.back().leaf_count()));
  }
  if (format_ == OutputFormat::kNdjson) {
    // Prebuilt `"fN":"` key prefixes: the record hot path must not format
    // or allocate per cell.
    json_keys_.reserve(max_columns);
    for (size_t c = 0; c < max_columns; ++c) {
      json_keys_.push_back(StrFormat("\"f%zu\":\"", c));
    }
  }
  Status made = MakeDirs(out_dir);
  if (!made.ok() && status_.ok()) status_ = std::move(made);
  for (size_t t = 0; t < templates_->size(); ++t) {
    const StructureTemplate& st = (*templates_)[t];
    Open(&type_streams_[t], out_dir + "/" + FileName(t, format_));
    if (format_ == OutputFormat::kCsv) {
      // Header row, byte-identical to Table::ToCsv's first line.
      const DenormalizedSchema schema = DenormalizedSchemaFor(st);
      std::string& buf = type_streams_[t].buffer;
      for (size_t c = 0; c < schema.columns.size(); ++c) {
        if (c > 0) buf.push_back(',');
        AppendCsvField(schema.columns[c], &buf);
      }
      buf.push_back('\n');
    }
  }
  Open(&noise_stream_, out_dir + "/" + NoiseFileName());
}

ColumnarWriteSink::~ColumnarWriteSink() { Finish(); }

void ColumnarWriteSink::Open(Stream* stream, const std::string& path) {
  stream->path = path;
  if (!status_.ok()) return;
  stream->file = std::fopen(path.c_str(), "wb");
  if (stream->file == nullptr) {
    Fail("cannot open " + path + ": " + std::strerror(errno));
  }
}

void ColumnarWriteSink::Fail(const std::string& message) {
  if (status_.ok()) status_ = Status::IoError(message);
}

void ColumnarWriteSink::FlushStream(Stream* stream) {
  if (stream->buffer.empty()) return;
  if (status_.ok() && stream->file != nullptr) {
    const size_t written = std::fwrite(stream->buffer.data(), 1,
                                       stream->buffer.size(), stream->file);
    if (written != stream->buffer.size()) {
      Fail(StrFormat("%s: short write (%zu of %zu bytes)",
                     stream->path.c_str(), written, stream->buffer.size()));
    } else {
      stats_.bytes_written += written;
    }
  }
  stream->buffer.clear();
}

void ColumnarWriteSink::MaybeFlush(Stream* stream) {
  if (stream->buffer.size() >= flush_threshold_) FlushStream(stream);
}

void ColumnarWriteSink::OnRecord(int template_id, size_t /*first_line*/,
                                 std::string_view text, size_t /*pos*/,
                                 size_t /*end*/, const MatchEvent* events,
                                 size_t num_events) {
  const size_t t = static_cast<size_t>(template_id);
  stats_.records_per_template[t]++;
  stats_.total_records++;
  if (!status_.ok()) return;
  const std::vector<std::string>& cells =
      rows_[t].FillFromEvents(text, events, num_events);
  Stream& stream = type_streams_[t];
  std::string& buf = stream.buffer;
  if (format_ == OutputFormat::kCsv) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) buf.push_back(',');
      AppendCsvField(cells[c], &buf);
    }
    buf.push_back('\n');
  } else {
    buf.push_back('{');
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) buf.push_back(',');
      buf.append(json_keys_[c]);
      AppendJsonEscaped(cells[c], &buf);
      buf.push_back('"');
    }
    buf.append("}\n");
  }
  MaybeFlush(&stream);
}

void ColumnarWriteSink::OnNoiseLine(size_t line_index) {
  stats_.noise_lines++;
  if (!status_.ok()) return;
  const std::string_view line = data_.line_with_newline(line_index);
  noise_stream_.buffer.append(line.data(), line.size());
  MaybeFlush(&noise_stream_);
}

void ColumnarWriteSink::OnWaveEnd() {
  for (Stream& stream : type_streams_) FlushStream(&stream);
  FlushStream(&noise_stream_);
}

Status ColumnarWriteSink::Finish() {
  if (finished_) return status_;
  finished_ = true;
  OnWaveEnd();
  for (Stream& stream : type_streams_) {
    if (stream.file != nullptr && std::fclose(stream.file) != 0) {
      Fail(stream.path + ": close failed");
    }
    stream.file = nullptr;
  }
  if (noise_stream_.file != nullptr && std::fclose(noise_stream_.file) != 0) {
    Fail(noise_stream_.path + ": close failed");
  }
  noise_stream_.file = nullptr;
  return status_;
}

}  // namespace datamaran
