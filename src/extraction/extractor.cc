#include "extraction/extractor.h"

#include <algorithm>
#include <utility>

#include "util/thread_pool.h"

namespace datamaran {

namespace {

/// EventSink adapter that replays each record's event stream into a
/// ParsedValue tree and forwards to a tree-shaped RecordSink. This is how
/// the legacy tree path rides on the single flat-event scan.
class TreeReplaySink : public EventSink {
 public:
  TreeReplaySink(const std::vector<StructureTemplate>* templates,
                 RecordSink* sink)
      : templates_(templates), sink_(sink) {}

  void OnRecord(int template_id, size_t first_line,
                std::string_view /*text*/, size_t pos, size_t /*end*/,
                const MatchEvent* events, size_t num_events) override {
    sink_->OnRecord(
        template_id, first_line,
        BuildParsedValue((*templates_)[static_cast<size_t>(template_id)], pos,
                         events, num_events));
  }

  void OnNoiseLine(size_t line_index) override {
    sink_->OnNoiseLine(line_index);
  }

 private:
  const std::vector<StructureTemplate>* templates_;
  RecordSink* sink_;
};

/// Sink that materializes ExtractedRecords.
class CollectingSink : public RecordSink {
 public:
  explicit CollectingSink(ExtractionResult* out) : out_(out) {}

  void OnRecord(int template_id, size_t first_line,
                ParsedValue&& value) override {
    ExtractedRecord rec;
    rec.template_id = template_id;
    rec.begin = value.begin;
    rec.end = value.end;
    rec.first_line = first_line;
    rec.value = std::move(value);
    out_->records.push_back(std::move(rec));
  }

  void OnNoiseLine(size_t line_index) override {
    out_->noise_lines.push_back(line_index);
  }

 private:
  ExtractionResult* out_;
};

/// Speculative scan of one line-range chunk: every attempted line with its
/// outcome, in increasing line order, plus the first line the scan did NOT
/// consume (>= end_line when a record spills past the chunk boundary).
/// Record attempts buffer only their flat events (ranges into the chunk's
/// shared event store) and window bookkeeping — no ParsedValue trees — so a
/// wave's buffered state is a few machine words plus field/array events per
/// record.
struct ChunkScan {
  struct Attempt {
    size_t line = 0;
    int template_id = -1;  // -1 = noise line
    size_t pos = 0;        // records: match begin within the window text
    size_t end = 0;        // records: one past the match
    uint32_t event_begin = 0;  // records: event range in ChunkScan::events
    uint32_t event_count = 0;
    /// A cross-gap record's window text, owned here so the event spans stay
    /// valid until the stitcher flushes the attempt to the sink (empty for
    /// in-place matches — always, on identity views).
    std::string assembled_text;
  };
  size_t begin_line = 0;
  size_t end_line = 0;
  size_t final_line = 0;
  std::vector<Attempt> attempts;
  std::vector<MatchEvent> events;  // concatenated per-record event ranges
};

/// Minimum lines per chunk: below this the per-chunk bookkeeping outweighs
/// the matching work.
constexpr size_t kMinLinesPerChunk = 256;

}  // namespace

Extractor::Extractor(const std::vector<StructureTemplate>* templates,
                     ThreadPool* pool, MatchEngine engine,
                     CharsetEngine charset_engine, size_t max_line_bytes,
                     const std::vector<std::string>* programs)
    : templates_(templates),
      pool_(pool),
      matchers_(BuildMatchers(*templates, engine, charset_engine, programs)),
      index_(matchers_),
      max_line_bytes_(max_line_bytes) {
  for (const StructureTemplate& st : *templates_) {
    spans_.push_back(std::max(1, st.line_span()));
  }
}

int Extractor::MatchAt(const DatasetView& data, size_t li,
                       std::string* scratch, std::vector<MatchEvent>* events,
                       DatasetView::SpanText* win, size_t* end) const {
  // Lines always contain their '\n', so front() is safe. Dispatching on the
  // first byte attempts only templates whose FIRST set admits the line —
  // skipped templates could never have matched, so the first-match-in-
  // priority-order outcome is unchanged. The common single-template case
  // answers from the matcher's own FIRST set without touching the index.
  // Oversized-line guard: a candidate window containing any line over the
  // cap is refused before it is resolved, so a pathological multi-MB line
  // is pure noise — never scanned by a matcher, never assembled into
  // cross-gap scratch, and never swallowed mid-record by a multi-line
  // template. The common case (cap unset, or span-1 templates) costs one
  // length comparison.
  const auto window_ok = [&](size_t span) {
    if (max_line_bytes_ == 0) return true;
    const size_t stop = std::min(li + span, data.line_count());
    for (size_t i = li; i < stop; ++i) {
      if (data.line(i).size() > max_line_bytes_) return false;
    }
    return true;
  };
  const unsigned char first =
      static_cast<unsigned char>(data.line_with_newline(li).front());
  if (matchers_.size() == 1) {
    if (!matchers_[0].CanStartWith(first)) return -1;
    if (!window_ok(static_cast<size_t>(spans_[0]))) return -1;
    *win = data.ResolveSpan(li, static_cast<size_t>(spans_[0]), scratch);
    auto stats = matchers_[0].ParseFlat(win->text, win->pos, events);
    if (!stats.has_value()) return -1;
    *end = stats->end;
    return 0;
  }
  for (uint16_t t : index_.Candidates(first)) {
    if (!window_ok(static_cast<size_t>(spans_[t]))) continue;
    *win = data.ResolveSpan(li, static_cast<size_t>(spans_[t]), scratch);
    auto stats = matchers_[t].ParseFlat(win->text, win->pos, events);
    if (!stats.has_value()) continue;
    *end = stats->end;
    return static_cast<int>(t);
  }
  return -1;
}

size_t Extractor::EmitAt(const DatasetView& data, size_t li, EventSink* sink,
                         ExtractionResult* stats, std::string* scratch,
                         std::vector<MatchEvent>* events) const {
  DatasetView::SpanText win;
  size_t end = 0;
  const int t = MatchAt(data, li, scratch, events, &win, &end);
  if (t < 0) {
    stats->noise_line_count += 1;
    if (sink != nullptr) sink->OnNoiseLine(li);
    return li + 1;
  }
  stats->covered_chars += end - win.pos;
  stats->matched_records += 1;
  stats->records_per_template[static_cast<size_t>(t)] += 1;
  if (sink != nullptr) {
    sink->OnRecord(t, li, win.text, win.pos, end, events->data(),
                   events->size());
  }
  return li + static_cast<size_t>(spans_[static_cast<size_t>(t)]);
}

ExtractionResult Extractor::ExtractSequential(const DatasetView& data,
                                              EventSink* sink) const {
  ExtractionResult stats;
  stats.total_chars = data.size_bytes();
  stats.total_lines = data.line_count();
  stats.records_per_template.assign(matchers_.size(), 0);
  std::string scratch;
  std::vector<MatchEvent> events;
  size_t li = 0;
  const size_t n = data.line_count();
  // The wave-flush invariant holds for the sequential scan too: OnWaveEnd
  // fires every wave_lines lines (the single-thread analogue of the
  // parallel path's stitched-wave boundary), so a buffering sink's state
  // is bounded by one wave of output regardless of thread count. Flush
  // boundaries never affect emitted bytes, only when they reach the OS.
  size_t chunk_lines = lines_per_chunk_;
  if (chunk_lines == 0) chunk_lines = std::max(kMinLinesPerChunk, n / 16);
  const size_t wave_lines = chunk_lines * 2;
  size_t next_wave = wave_lines;
  while (li < n) {
    li = EmitAt(data, li, sink, &stats, &scratch, &events);
    if (li >= next_wave) {
      if (sink != nullptr) sink->OnWaveEnd();
      do {
        next_wave += wave_lines;
      } while (next_wave <= li);
    }
  }
  if (sink != nullptr) sink->OnWaveEnd();
  return stats;
}

ExtractionResult Extractor::ExtractEvents(const DatasetView& data,
                                          EventSink* sink) const {
  const size_t n = data.line_count();
  const int threads = pool_ != nullptr ? pool_->thread_count() : 1;
  size_t chunk_lines = lines_per_chunk_;
  if (chunk_lines == 0) {
    chunk_lines = std::max(kMinLinesPerChunk,
                           n / (static_cast<size_t>(threads) * 16));
  }
  if (threads <= 1 || matchers_.empty() || n < 2 * chunk_lines) {
    return ExtractSequential(data, sink);
  }

  ExtractionResult stats;
  stats.total_chars = data.size_bytes();
  stats.total_lines = n;
  stats.records_per_template.assign(matchers_.size(), 0);

  // Waves bound the buffered state: at most `chunks_per_wave` chunks of
  // buffered events are alive at once, flushed to the sink in order before
  // the next wave is scanned.
  const size_t chunks_per_wave = static_cast<size_t>(threads) * 2;
  std::vector<ChunkScan> scans(chunks_per_wave);
  std::vector<std::string> chunk_scratch(chunks_per_wave);
  std::vector<std::vector<MatchEvent>> chunk_events(chunks_per_wave);
  std::string stitch_scratch;
  std::vector<MatchEvent> stitch_events;
  const std::string_view backing = data.dataset().text();

  size_t li = 0;  // stitched (authoritative) line position
  size_t wave_start = 0;
  while (wave_start < n) {
    const size_t wave_chunks = std::min(
        chunks_per_wave, (n - wave_start + chunk_lines - 1) / chunk_lines);

    pool_->ParallelFor(wave_chunks, [&](size_t k) {
      ChunkScan& cs = scans[k];
      cs.attempts.clear();
      cs.events.clear();
      cs.begin_line = wave_start + k * chunk_lines;
      cs.end_line = std::min(cs.begin_line + chunk_lines, n);
      size_t cli = cs.begin_line;
      while (cli < cs.end_line) {
        ChunkScan::Attempt attempt;
        attempt.line = cli;
        DatasetView::SpanText win;
        size_t match_end = 0;
        attempt.template_id = MatchAt(data, cli, &chunk_scratch[k],
                                      &chunk_events[k], &win, &match_end);
        if (attempt.template_id >= 0) {
          attempt.pos = win.pos;
          attempt.end = match_end;
          attempt.event_begin = static_cast<uint32_t>(cs.events.size());
          attempt.event_count = static_cast<uint32_t>(chunk_events[k].size());
          cs.events.insert(cs.events.end(), chunk_events[k].begin(),
                           chunk_events[k].end());
          if (win.assembled) {
            // The buffered event spans index into the scratch text: move it
            // into the attempt so later windows cannot overwrite it before
            // the stitch flushes this record.
            attempt.assembled_text = std::move(chunk_scratch[k]);
          }
          cli += static_cast<size_t>(
              spans_[static_cast<size_t>(attempt.template_id)]);
        } else {
          cli += 1;
        }
        cs.attempts.push_back(std::move(attempt));
      }
      cs.final_line = cli;
    });

    // Stitch this wave in order. The loop invariant `li >= cs.begin_line`
    // holds because stitching chunk k only finishes once li >= its
    // end_line, which is chunk k+1's begin_line.
    for (size_t k = 0; k < wave_chunks; ++k) {
      ChunkScan& cs = scans[k];
      while (li < cs.end_line) {
        auto it = std::lower_bound(
            cs.attempts.begin(), cs.attempts.end(), li,
            [](const ChunkScan::Attempt& a, size_t line) {
              return a.line < line;
            });
        if (it != cs.attempts.end() && it->line == li) {
          // Realigned with the speculative stream: splice the rest of the
          // chunk wholesale.
          for (auto j = it; j != cs.attempts.end(); ++j) {
            if (j->template_id >= 0) {
              stats.covered_chars += j->end - j->pos;
              stats.matched_records += 1;
              stats.records_per_template[static_cast<size_t>(
                  j->template_id)] += 1;
              if (sink != nullptr) {
                const std::string_view wtext =
                    j->assembled_text.empty()
                        ? backing
                        : std::string_view(j->assembled_text);
                sink->OnRecord(j->template_id, j->line, wtext, j->pos, j->end,
                               cs.events.data() + j->event_begin,
                               j->event_count);
              }
            } else {
              stats.noise_line_count += 1;
              if (sink != nullptr) sink->OnNoiseLine(j->line);
            }
          }
          li = cs.final_line;
        } else {
          // A record from an earlier chunk spilled into this one and the
          // speculative stream never attempted `li`; re-match lines until
          // the streams realign (or the chunk is exhausted).
          li = EmitAt(data, li, sink, &stats, &stitch_scratch,
                      &stitch_events);
        }
      }
    }
    if (sink != nullptr) sink->OnWaveEnd();
    wave_start += wave_chunks * chunk_lines;
  }
  return stats;
}

ExtractionResult Extractor::ExtractStreaming(const DatasetView& data,
                                             RecordSink* sink) const {
  if (sink == nullptr) return ExtractEvents(data, nullptr);
  TreeReplaySink adapter(templates_, sink);
  return ExtractEvents(data, &adapter);
}

ExtractionResult Extractor::Extract(const DatasetView& data) const {
  ExtractionResult out;
  CollectingSink sink(&out);
  ExtractionResult stats = ExtractStreaming(data, &sink);
  out.covered_chars = stats.covered_chars;
  out.total_chars = stats.total_chars;
  out.total_lines = stats.total_lines;
  out.matched_records = stats.matched_records;
  out.noise_line_count = stats.noise_line_count;
  out.records_per_template = std::move(stats.records_per_template);
  // Recompute line counts for the collected records.
  for (ExtractedRecord& rec : out.records) {
    rec.line_count = spans_.empty()
                         ? 1
                         : spans_[static_cast<size_t>(rec.template_id)];
  }
  return out;
}

}  // namespace datamaran
