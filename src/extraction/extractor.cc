#include "extraction/extractor.h"

#include <algorithm>

namespace datamaran {

namespace {

/// Sink that materializes ExtractedRecords.
class CollectingSink : public RecordSink {
 public:
  explicit CollectingSink(ExtractionResult* out) : out_(out) {}

  void OnRecord(int template_id, size_t first_line,
                ParsedValue&& value) override {
    ExtractedRecord rec;
    rec.template_id = template_id;
    rec.begin = value.begin;
    rec.end = value.end;
    rec.first_line = first_line;
    rec.value = std::move(value);
    out_->records.push_back(std::move(rec));
  }

  void OnNoiseLine(size_t line_index) override {
    out_->noise_lines.push_back(line_index);
  }

 private:
  ExtractionResult* out_;
};

}  // namespace

Extractor::Extractor(const std::vector<StructureTemplate>* templates)
    : templates_(templates) {
  matchers_.reserve(templates_->size());
  for (const StructureTemplate& st : *templates_) {
    matchers_.emplace_back(&st);
    spans_.push_back(std::max(1, st.line_span()));
  }
}

ExtractionResult Extractor::ExtractStreaming(const Dataset& data,
                                             RecordSink* sink) const {
  ExtractionResult stats;
  stats.total_chars = data.size_bytes();
  const std::string_view text = data.text();
  size_t li = 0;
  const size_t n = data.line_count();
  while (li < n) {
    const size_t pos = data.line_begin(li);
    bool matched = false;
    for (size_t t = 0; t < matchers_.size(); ++t) {
      auto parsed = matchers_[t].Parse(text, pos);
      if (!parsed.has_value()) continue;
      stats.covered_chars += parsed->end - pos;
      int span = spans_[t];
      if (sink != nullptr) {
        sink->OnRecord(static_cast<int>(t), li, std::move(*parsed));
      }
      li += static_cast<size_t>(span);
      matched = true;
      break;
    }
    if (!matched) {
      if (sink != nullptr) sink->OnNoiseLine(li);
      ++li;
    }
  }
  return stats;
}

ExtractionResult Extractor::Extract(const Dataset& data) const {
  ExtractionResult out;
  CollectingSink sink(&out);
  ExtractionResult stats = ExtractStreaming(data, &sink);
  out.covered_chars = stats.covered_chars;
  out.total_chars = stats.total_chars;
  // Recompute line counts for the collected records.
  for (ExtractedRecord& rec : out.records) {
    rec.line_count = spans_.empty()
                         ? 1
                         : spans_[static_cast<size_t>(rec.template_id)];
  }
  return out;
}

}  // namespace datamaran
