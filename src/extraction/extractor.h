#ifndef DATAMARAN_EXTRACTION_EXTRACTOR_H_
#define DATAMARAN_EXTRACTION_EXTRACTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "template/dispatch.h"
#include "template/matcher.h"
#include "template/template.h"

/// Whole-file extraction with the final structure templates (the canonical
/// LL(1) parse of Section 3.3). The scan walks the live lines of a
/// DatasetView; at each line the templates are tried in priority order —
/// dispatched through a TemplateSetIndex on the line's first byte, so only
/// templates whose FIRST set admits the line are attempted — the first
/// match emits one record and skips its span, and unmatched lines are
/// noise. Matching runs on the configured engine (compiled bytecode by
/// default; the tree walker reference via MatchEngine::kTree) with
/// byte-identical output either way. The usual input is the identity view of a full (possibly
/// mmap-backed) file, where every candidate window is matched in place on
/// the backing buffer — extraction of a multi-GB mapping therefore streams
/// through the file without ever materializing a copy. Gapped views (e.g. a
/// residual) are also supported: windows that straddle a gap are assembled
/// into a per-scan scratch buffer, exactly like the discovery stages.
///
/// This pass dominates total runtime for large files (Section 5.2.2) and is
/// embarrassingly chunk-parallel; given a thread pool this implementation
/// shards the view into line-range chunks, scans them speculatively in
/// parallel, and stitches the per-chunk results back together in order.
///
/// Stitching preserves the sequential semantics exactly: whether a record
/// *starts* at line k depends on earlier matches (a span-s record consumes
/// the next s-1 lines), but the match attempt itself is a pure function of
/// the text and the templates. Each chunk records the lines it attempted;
/// the sequential stitch walks chunks in order and, when the incoming line
/// position equals one of the chunk's attempted lines, splices the rest of
/// the chunk's speculative stream wholesale. When a long record spills
/// across a chunk boundary and desynchronizes the stream, the stitch
/// re-matches lines one by one until the positions realign. The emitted
/// record/noise sequence — and therefore every downstream artifact — is
/// byte-identical for every thread count, and identical between mmap-backed
/// and in-memory datasets.

namespace datamaran {

class ThreadPool;

struct ExtractedRecord {
  int template_id = 0;
  size_t begin = 0;
  size_t end = 0;
  size_t first_line = 0;
  int line_count = 1;
  ParsedValue value;
};

/// Streaming consumer of extraction events. Events arrive in scan order
/// regardless of the extractor's thread count. Line indices are view
/// indices (== physical line indices for the identity view).
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void OnRecord(int template_id, size_t first_line,
                        ParsedValue&& value) = 0;
  virtual void OnNoiseLine(size_t /*line_index*/) {}
};

/// In-memory extraction output.
struct ExtractionResult {
  std::vector<ExtractedRecord> records;
  std::vector<size_t> noise_lines;
  size_t covered_chars = 0;
  size_t total_chars = 0;

  double coverage() const {
    return total_chars == 0
               ? 0
               : static_cast<double>(covered_chars) /
                     static_cast<double>(total_chars);
  }
};

class Extractor {
 public:
  /// `templates` in priority order (the pipeline's discovery order). The
  /// templates must outlive the extractor. When `pool` is non-null and has
  /// more than one thread, ExtractStreaming shards the scan across it.
  explicit Extractor(const std::vector<StructureTemplate>* templates,
                     ThreadPool* pool = nullptr,
                     MatchEngine engine = MatchEngine::kCompiled);

  /// Streams records/noise into `sink` in scan order; returns coverage
  /// statistics without retaining parsed values. Memory stays bounded in
  /// the parallel case too: chunks are processed in waves of a few per
  /// thread, and each chunk's buffered results are flushed to the sink
  /// before the next wave starts. ParsedValue spans index into the backing
  /// text for in-place windows (always, for identity views); a cross-gap
  /// window of a gapped view parses against transient scratch, so its spans
  /// are only meaningful inside the sink callback.
  ExtractionResult ExtractStreaming(const DatasetView& data,
                                    RecordSink* sink) const;

  /// Convenience: collects everything in memory.
  ExtractionResult Extract(const DatasetView& data) const;

  /// Overrides the automatic chunk granularity (lines per parallel chunk);
  /// 0 restores the automatic choice. Exposed for tests and tuning.
  void set_lines_per_chunk(size_t lines) { lines_per_chunk_ = lines; }

 private:
  /// The pure first-match rule every scan shares: tries the templates the
  /// dispatch index admits for the line's first byte, in priority order, at
  /// view line `li`; on a match fills `*value` and returns the template id,
  /// else returns -1 (noise). Both the sequential scan and the parallel
  /// chunk scan go through this single helper — the byte-identical-output
  /// contract depends on there being exactly one copy of this policy.
  /// `scratch` backs cross-gap windows of gapped views (identity views
  /// never touch it); `events` is the caller's reused flat-parse buffer
  /// (matches parse flat, then the ParsedValue is replayed from events —
  /// no per-attempt tree allocation on failed templates).
  /// On return, *assembled is true iff the matched window crossed a view
  /// gap and `*scratch` holds its text (the value's spans index into it).
  int MatchAt(const DatasetView& data, size_t li, ParsedValue* value,
              std::string* scratch, std::vector<MatchEvent>* events,
              bool* assembled = nullptr) const;

  /// Applies MatchAt at line `li` and emits the outcome (one record or one
  /// noise line) to `sink`; returns the next unconsumed line. Used by the
  /// sequential path and by the stitcher to re-synchronize across
  /// chunk-spill divergences.
  size_t EmitAt(const DatasetView& data, size_t li, RecordSink* sink,
                size_t* covered_chars, std::string* scratch,
                std::vector<MatchEvent>* events) const;

  ExtractionResult ExtractSequential(const DatasetView& data,
                                     RecordSink* sink) const;

  const std::vector<StructureTemplate>* templates_;
  ThreadPool* pool_;
  std::vector<RecordMatcher> matchers_;
  TemplateSetIndex index_;
  std::vector<int> spans_;
  size_t lines_per_chunk_ = 0;
};

}  // namespace datamaran

#endif  // DATAMARAN_EXTRACTION_EXTRACTOR_H_
