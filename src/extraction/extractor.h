#ifndef DATAMARAN_EXTRACTION_EXTRACTOR_H_
#define DATAMARAN_EXTRACTION_EXTRACTOR_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/dataset.h"
#include "template/dispatch.h"
#include "template/matcher.h"
#include "template/template.h"

/// Whole-file extraction with the final structure templates (the canonical
/// LL(1) parse of Section 3.3). The scan walks the live lines of a
/// DatasetView; at each line the templates are tried in priority order —
/// dispatched through a TemplateSetIndex on the line's first byte, so only
/// templates whose FIRST set admits the line are attempted — the first
/// match emits one record and skips its span, and unmatched lines are
/// noise. Matching runs on the configured engine (compiled bytecode by
/// default; the tree walker reference via MatchEngine::kTree) with
/// byte-identical output either way. The usual input is the identity view of a full (possibly
/// mmap-backed) file, where every candidate window is matched in place on
/// the backing buffer — extraction of a multi-GB mapping therefore streams
/// through the file without ever materializing a copy. Gapped views (e.g. a
/// residual) are also supported: windows that straddle a gap are assembled
/// into a per-scan scratch buffer, exactly like the discovery stages.
///
/// This pass dominates total runtime for large files (Section 5.2.2) and is
/// embarrassingly chunk-parallel; given a thread pool this implementation
/// shards the view into line-range chunks, scans them speculatively in
/// parallel, and stitches the per-chunk results back together in order.
///
/// Stitching preserves the sequential semantics exactly: whether a record
/// *starts* at line k depends on earlier matches (a span-s record consumes
/// the next s-1 lines), but the match attempt itself is a pure function of
/// the text and the templates. Each chunk records the lines it attempted;
/// the sequential stitch walks chunks in order and, when the incoming line
/// position equals one of the chunk's attempted lines, splices the rest of
/// the chunk's speculative stream wholesale. When a long record spills
/// across a chunk boundary and desynchronizes the stream, the stitch
/// re-matches lines one by one until the positions realign. The emitted
/// record/noise sequence — and therefore every downstream artifact — is
/// byte-identical for every thread count, and identical between mmap-backed
/// and in-memory datasets.
///
/// Sink family. Records parse flat (template/matcher.h MatchEvent streams);
/// the scan buffers nothing but those events plus span bookkeeping, so peak
/// memory is O(wave), not O(file):
///
///  * EventSink is the primitive consumer: it receives each record's flat
///    event stream in scan order (ExtractEvents). The columnar writers in
///    extraction/sinks.h implement it to stream per-template denormalized
///    CSV/NDJSON rows or the normalized multi-table CSV layout, plus a
///    noise-line stream, straight to disk, never materializing a
///    ParsedValue, which is what keeps `datamaran_cli --out` O(wave) in
///    memory end to end on a mapped multi-GB file.
///  * RecordSink is the tree-shaped convenience: ExtractStreaming wraps it
///    in an adapter that replays each event stream into a ParsedValue
///    (BuildParsedValue) before forwarding — one scan implementation serves
///    both shapes.
///  * Extract collects everything into an ExtractionResult (a RecordSink
///    that buffers; O(file) memory, for callers that want the records).
///
/// Ordering and row-id rebase contract. Speculative chunks buffer raw
/// events only — they never see output row numbering, because a chunk
/// cannot know how many records (or normalized child rows) precede it
/// until the stitch runs. All numbering therefore happens at flush time:
/// OnRecord calls arrive strictly in sequential scan order, so a sink may
/// assign global ids by advancing its own counters per record — the
/// normalized writer rebases each record's record-relative row ids
/// (relational.h NormalizedRowBuilder) against per-table counters that
/// travel with this order-preserving stitch. This is what makes every
/// derived id byte-identical across thread counts without the chunks ever
/// coordinating.
///
/// Wave-flush invariants. OnWaveEnd fires (a) after each parallel wave is
/// stitched and flushed, (b) periodically on the sequential path at the
/// equivalent line cadence, and (c) once at end of scan — always between
/// records, never inside one, and on the stitching (sequential) thread.
/// A sink that flushes its buffers on every OnWaveEnd keeps its state
/// bounded by one wave of output; flush timing never changes the bytes
/// emitted.

namespace datamaran {

class ThreadPool;

struct ExtractedRecord {
  int template_id = 0;
  size_t begin = 0;
  size_t end = 0;
  size_t first_line = 0;
  int line_count = 1;
  ParsedValue value;
};

/// Flat-event streaming consumer of extraction outcomes — the primitive
/// sink the scan drives directly. Events arrive in scan order regardless of
/// the extractor's thread count; the emitted byte stream of any
/// deterministic writer is therefore identical for every thread count, both
/// match engines, and both dataset backings. Line indices are view indices
/// (== physical line indices for the identity view).
class EventSink {
 public:
  virtual ~EventSink() = default;

  /// One record: `events[0..num_events)` is its flat parse (field spans and
  /// array counts, spans indexing into `text`), `pos`/`end` the matched
  /// window [pos, end) within `text`. For in-place windows (always, on
  /// identity views) `text` is the backing buffer; a cross-gap window of a
  /// gapped view parses against transient scratch, so `text`, the spans and
  /// `pos` are only meaningful inside the callback.
  virtual void OnRecord(int template_id, size_t first_line,
                        std::string_view text, size_t pos, size_t end,
                        const MatchEvent* events, size_t num_events) = 0;

  virtual void OnNoiseLine(size_t /*line_index*/) {}

  /// Streaming noise hook: like OnNoiseLine, but carries the line text
  /// (trailing '\n' included) because a streaming caller has no
  /// whole-stream DatasetView for the index to resolve against; the view
  /// is only valid during the callback, and `line_index` is the global
  /// stream line number. The batch scan never calls this; the default
  /// forwards to OnNoiseLine so index-only sinks need no change.
  virtual void OnNoiseText(size_t line_index,
                           std::string_view /*line_with_newline*/) {
    OnNoiseLine(line_index);
  }

  /// Streaming evolution hook: drift re-discovery appended new templates
  /// to the live set (existing template ids are never renumbered). The
  /// pointers stay valid for the sink's lifetime; a file-writing sink
  /// opens the new types' tables here, mid-stream. Default: ignore.
  virtual void OnTemplatesAdded(
      const std::vector<const StructureTemplate*>& /*added*/) {}

  /// Called after each parallel wave is stitched, at the same line cadence
  /// on the sequential path, and once at end of scan — always between
  /// records: the hook where buffering writers flush, bounding their state
  /// to one wave of output. Flush timing never affects the emitted bytes.
  virtual void OnWaveEnd() {}
};

/// Tree-shaped streaming consumer: like EventSink, but each record arrives
/// as a replayed ParsedValue. Prefer EventSink for writers that do not need
/// the tree — it skips the per-record tree allocation entirely.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void OnRecord(int template_id, size_t first_line,
                        ParsedValue&& value) = 0;
  virtual void OnNoiseLine(size_t /*line_index*/) {}
};

/// In-memory extraction output.
struct ExtractionResult {
  std::vector<ExtractedRecord> records;
  std::vector<size_t> noise_lines;
  size_t covered_chars = 0;
  size_t total_chars = 0;
  /// Line-level accounting, filled by every scan path — including the
  /// streaming ones, whose records/noise_lines vectors stay empty. This is
  /// what lets a caller that extracted with catalog templates tell a clean
  /// hit from a drifted file (sample matched, tail did not) without
  /// collecting records: line_match_rate() is the whole-file analogue of
  /// the fingerprint's sample match rate.
  size_t total_lines = 0;
  size_t matched_records = 0;
  size_t noise_line_count = 0;
  /// Records emitted per template (indexed by template id, sized to the
  /// template count by every scan path). Like the other counters this is
  /// filled on streaming runs too — it is the per-template accounting the
  /// summary layer reports, independent of whether records were collected.
  std::vector<size_t> records_per_template;

  double coverage() const {
    return total_chars == 0
               ? 0
               : static_cast<double>(covered_chars) /
                     static_cast<double>(total_chars);
  }

  /// Fraction of input lines covered by matched records (an empty input
  /// counts as fully matched).
  double line_match_rate() const {
    return total_lines == 0
               ? 1.0
               : static_cast<double>(total_lines - noise_line_count) /
                     static_cast<double>(total_lines);
  }
};

class Extractor {
 public:
  /// `templates` in priority order (the pipeline's discovery order). The
  /// templates must outlive the extractor. When `pool` is non-null and has
  /// more than one thread, the streaming scans shard across it.
  /// `max_line_bytes` is the oversized-line guard: a match attempt at a
  /// line whose content exceeds the cap is refused outright, so the line is
  /// emitted as noise instead of being scanned or assembled into a record
  /// window (0 = unlimited). The same cap excludes such lines from the
  /// discovery sample (util/sampler.h), keeping the two phases consistent.
  /// `programs`, when non-null, is the parallel vector of persisted
  /// compiled-program blobs from a catalog entry (dispatch.h
  /// BuildMatchers): valid blobs skip template compilation, invalid ones
  /// compile fresh, output identical either way.
  explicit Extractor(const std::vector<StructureTemplate>* templates,
                     ThreadPool* pool = nullptr,
                     MatchEngine engine = MatchEngine::kCompiled,
                     CharsetEngine charset_engine = CharsetEngine::kSimd,
                     size_t max_line_bytes = 0,
                     const std::vector<std::string>* programs = nullptr);

  /// Streams each record's flat MatchEvent parse into `sink` in scan order;
  /// returns coverage statistics. This is the one scan implementation — the
  /// tree paths below are adapters over it. Memory stays bounded in the
  /// parallel case too: chunks are processed in waves of a few per thread,
  /// each chunk buffering only events and span bookkeeping (no ParsedValue
  /// trees), flushed to the sink in stitched order before the next wave
  /// starts — peak memory is O(wave), not O(file).
  ExtractionResult ExtractEvents(const DatasetView& data,
                                 EventSink* sink) const;

  /// Streams records/noise into `sink` in scan order; returns coverage
  /// statistics without retaining parsed values. Each record's ParsedValue
  /// is replayed from its event stream (BuildParsedValue) just before the
  /// callback; spans index into the backing text for in-place windows
  /// (always, for identity views), and into transient scratch for a
  /// cross-gap window of a gapped view (only meaningful inside the
  /// callback).
  ExtractionResult ExtractStreaming(const DatasetView& data,
                                    RecordSink* sink) const;

  /// Convenience: collects everything in memory.
  ExtractionResult Extract(const DatasetView& data) const;

  /// Overrides the automatic chunk granularity (lines per parallel chunk);
  /// 0 restores the automatic choice. Exposed for tests and tuning.
  void set_lines_per_chunk(size_t lines) { lines_per_chunk_ = lines; }

 private:
  /// The pure first-match rule every scan shares: tries the templates the
  /// dispatch index admits for the line's first byte, in priority order, at
  /// view line `li`; on a match fills `*events` with the flat parse,
  /// `*win` with the resolved window (text/pos/assembled) and `*end` with
  /// one past the match, returning the template id; else returns -1
  /// (noise). Both the sequential scan and the parallel chunk scan go
  /// through this single helper — the byte-identical-output contract
  /// depends on there being exactly one copy of this policy. `scratch`
  /// backs cross-gap windows of gapped views (identity views never touch
  /// it); `events` is the caller's reused flat-parse buffer.
  int MatchAt(const DatasetView& data, size_t li, std::string* scratch,
              std::vector<MatchEvent>* events, DatasetView::SpanText* win,
              size_t* end) const;

  /// Applies MatchAt at line `li` and emits the outcome (one record or one
  /// noise line) to `sink`, updating `stats` counters; returns the next
  /// unconsumed line. Used by the sequential path and by the stitcher to
  /// re-synchronize across chunk-spill divergences.
  size_t EmitAt(const DatasetView& data, size_t li, EventSink* sink,
                ExtractionResult* stats, std::string* scratch,
                std::vector<MatchEvent>* events) const;

  ExtractionResult ExtractSequential(const DatasetView& data,
                                     EventSink* sink) const;

  const std::vector<StructureTemplate>* templates_;
  ThreadPool* pool_;
  std::vector<RecordMatcher> matchers_;
  TemplateSetIndex index_;
  std::vector<int> spans_;
  size_t lines_per_chunk_ = 0;
  size_t max_line_bytes_ = 0;
};

}  // namespace datamaran

#endif  // DATAMARAN_EXTRACTION_EXTRACTOR_H_
