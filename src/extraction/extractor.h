#ifndef DATAMARAN_EXTRACTION_EXTRACTOR_H_
#define DATAMARAN_EXTRACTION_EXTRACTOR_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "template/matcher.h"
#include "template/template.h"

/// Whole-file extraction with the final structure templates (the canonical
/// LL(1) parse of Section 3.3). The scan walks line starts; at each line the
/// templates are tried in priority order, the first match emits one record
/// and skips its span, and unmatched lines are noise. This pass dominates
/// total runtime for large files (Section 5.2.2) and is embarrassingly
/// chunk-parallel; this implementation is single-threaded like the paper's.

namespace datamaran {

struct ExtractedRecord {
  int template_id = 0;
  size_t begin = 0;
  size_t end = 0;
  size_t first_line = 0;
  int line_count = 1;
  ParsedValue value;
};

/// Streaming consumer of extraction events.
class RecordSink {
 public:
  virtual ~RecordSink() = default;
  virtual void OnRecord(int template_id, size_t first_line,
                        ParsedValue&& value) = 0;
  virtual void OnNoiseLine(size_t line_index) {}
};

/// In-memory extraction output.
struct ExtractionResult {
  std::vector<ExtractedRecord> records;
  std::vector<size_t> noise_lines;
  size_t covered_chars = 0;
  size_t total_chars = 0;

  double coverage() const {
    return total_chars == 0
               ? 0
               : static_cast<double>(covered_chars) /
                     static_cast<double>(total_chars);
  }
};

class Extractor {
 public:
  /// `templates` in priority order (the pipeline's discovery order). The
  /// templates must outlive the extractor.
  explicit Extractor(const std::vector<StructureTemplate>* templates);

  /// Streams records/noise into `sink`; returns coverage statistics without
  /// retaining parsed values (suitable for arbitrarily large files).
  ExtractionResult ExtractStreaming(const Dataset& data,
                                    RecordSink* sink) const;

  /// Convenience: collects everything in memory.
  ExtractionResult Extract(const Dataset& data) const;

 private:
  const std::vector<StructureTemplate>* templates_;
  std::vector<TemplateMatcher> matchers_;
  std::vector<int> spans_;
};

}  // namespace datamaran

#endif  // DATAMARAN_EXTRACTION_EXTRACTOR_H_
