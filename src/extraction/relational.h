#ifndef DATAMARAN_EXTRACTION_RELATIONAL_H_
#define DATAMARAN_EXTRACTION_RELATIONAL_H_

#include <string>
#include <string_view>
#include <vector>

#include "extraction/extractor.h"
#include "template/template.h"

/// Relational materialization of extracted records (Section 3.3, Figure 7).
/// Datamaran offers two representations carrying the same information:
///
///  * Denormalized: one table per record type, one column per field leaf;
///    array repetitions are concatenated into the cell, joined with the
///    array's separator character.
///  * Normalized: a root table per record type plus one child table per
///    array node; child rows reference their parent row through a foreign
///    key and keep their position, so join paths are preserved.
///
/// This header is also the schema layer for the streaming columnar sinks
/// (extraction/sinks.h): DenormalizedSchemaFor drives column headers, and
/// DenormalizedRowBuilder unfolds one record's flat MatchEvent parse into
/// the same cells FillDenormalized derives from the ParsedValue tree — the
/// two paths are asserted row-identical by the extraction tests.

namespace datamaran {

/// A simple in-memory relation.
struct Table {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  size_t row_count() const { return rows.size(); }
  size_t column_count() const { return columns.size(); }

  /// RFC-4180-ish CSV rendering (fields with commas/quotes/newlines are
  /// quoted, quotes doubled).
  std::string ToCsv() const;
};

/// Appends `s` to `out` with RFC-4180 CSV quoting: fields containing a
/// comma, double quote, CR or LF are wrapped in double quotes with embedded
/// quotes doubled; everything else (including arbitrary non-UTF8 bytes) is
/// appended verbatim. Shared by Table::ToCsv and the streaming CSV sink so
/// the two emit byte-identical rows.
void AppendCsvField(std::string_view s, std::string* out);

/// Column layout of the denormalized table for one template: one column per
/// field leaf in pre-order, named f0..f{n-1}.
struct DenormalizedSchema {
  int leaf_count = 0;
  std::vector<std::string> columns;
};
DenormalizedSchema DenormalizedSchemaFor(const StructureTemplate& st);

/// Unfolds one record's flat MatchEvent parse into denormalized cells,
/// without materializing a ParsedValue tree. Cell semantics are identical
/// to the tree-path fill used by DenormalizedTable: each field leaf is one
/// cell, array repetitions re-visit the same leaves and are joined with the
/// array's separator character. Cell storage is reused across records, so
/// the steady state allocates only when a cell outgrows its capacity.
class DenormalizedRowBuilder {
 public:
  /// The template must outlive the builder.
  explicit DenormalizedRowBuilder(const StructureTemplate* st);

  /// Fills and returns the cells for one record whose flat parse is
  /// `events[0..num_events)` with spans indexing into `text`. The returned
  /// reference is invalidated by the next call.
  const std::vector<std::string>& FillFromEvents(std::string_view text,
                                                 const MatchEvent* events,
                                                 size_t num_events);

  int leaf_count() const { return leaf_count_; }

 private:
  const StructureTemplate* st_;
  int leaf_count_ = 0;
  std::vector<std::string> cells_;
  std::vector<char> filled_;
};

/// Builds the denormalized table for record type `template_id`.
Table DenormalizedTable(const StructureTemplate& st,
                        const std::vector<ExtractedRecord>& records,
                        std::string_view text, int template_id,
                        const std::string& name);

/// Builds the normalized table tree for record type `template_id`. The
/// first table is the root; subsequent tables correspond to array nodes in
/// pre-order, each with columns (id, parent_id, pos, fields...).
std::vector<Table> NormalizedTables(const StructureTemplate& st,
                                    const std::vector<ExtractedRecord>& records,
                                    std::string_view text, int template_id,
                                    const std::string& name);

}  // namespace datamaran

#endif  // DATAMARAN_EXTRACTION_RELATIONAL_H_
