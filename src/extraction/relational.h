#ifndef DATAMARAN_EXTRACTION_RELATIONAL_H_
#define DATAMARAN_EXTRACTION_RELATIONAL_H_

#include <string>
#include <string_view>
#include <vector>

#include "extraction/extractor.h"
#include "template/template.h"

/// Relational materialization of extracted records (Section 3.3, Figure 7).
/// Datamaran offers two representations carrying the same information:
///
///  * Denormalized: one table per record type, one column per field leaf;
///    array repetitions are concatenated into the cell, joined with the
///    array's separator character.
///  * Normalized: a root table per record type plus one child table per
///    array node; child rows reference their parent row through a foreign
///    key and keep their position, so join paths are preserved.

namespace datamaran {

/// A simple in-memory relation.
struct Table {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  size_t row_count() const { return rows.size(); }
  size_t column_count() const { return columns.size(); }

  /// RFC-4180-ish CSV rendering (fields with commas/quotes/newlines are
  /// quoted, quotes doubled).
  std::string ToCsv() const;
};

/// Builds the denormalized table for record type `template_id`.
Table DenormalizedTable(const StructureTemplate& st,
                        const std::vector<ExtractedRecord>& records,
                        std::string_view text, int template_id,
                        const std::string& name);

/// Builds the normalized table tree for record type `template_id`. The
/// first table is the root; subsequent tables correspond to array nodes in
/// pre-order, each with columns (id, parent_id, pos, fields...).
std::vector<Table> NormalizedTables(const StructureTemplate& st,
                                    const std::vector<ExtractedRecord>& records,
                                    std::string_view text, int template_id,
                                    const std::string& name);

}  // namespace datamaran

#endif  // DATAMARAN_EXTRACTION_RELATIONAL_H_
