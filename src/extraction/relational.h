#ifndef DATAMARAN_EXTRACTION_RELATIONAL_H_
#define DATAMARAN_EXTRACTION_RELATIONAL_H_

#include <string>
#include <string_view>
#include <vector>

#include "extraction/extractor.h"
#include "template/template.h"

/// Relational materialization of extracted records (Section 3.3, Figure 7).
/// Datamaran offers two representations carrying the same information:
///
///  * Denormalized: one table per record type, one column per field leaf;
///    array repetitions are concatenated into the cell, joined with the
///    array's separator character.
///  * Normalized: a root table per record type plus one child table per
///    array node; child rows reference their parent row through a foreign
///    key and keep their position, so join paths are preserved.
///
/// This header is also the schema layer for the streaming columnar sinks
/// (extraction/sinks.h): DenormalizedSchemaFor / NormalizedSchemaFor drive
/// file names and column headers, and the row builders unfold one record's
/// flat MatchEvent parse into the same cells the tree-path fills derive
/// from the ParsedValue tree — the two paths are asserted row-identical by
/// the extraction tests.
///
/// Row-id contract (normalized). Every normalized row carries a table-local
/// integer id; child rows reference their parent through (parent table,
/// parent id). The collecting path assigns ids globally while it appends
/// rows. A streaming consumer cannot do that inside the speculative
/// parallel scan — a chunk does not know how many rows precede it — so
/// NormalizedRowBuilder emits *record-relative* ids (0-based per table
/// within one record) and the caller rebases them by its running per-table
/// totals when the record is flushed in stitched scan order. Because the
/// stitch drives sinks strictly in sequential scan order, rebased ids are
/// byte-identical to the collecting path's for every thread count.

namespace datamaran {

/// A simple in-memory relation.
struct Table {
  std::string name;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  size_t row_count() const { return rows.size(); }
  size_t column_count() const { return columns.size(); }

  /// RFC-4180-ish CSV rendering (fields with commas/quotes/newlines are
  /// quoted, quotes doubled).
  std::string ToCsv() const;
};

/// Appends `s` to `out` with RFC-4180 CSV quoting: fields containing a
/// comma, double quote, CR or LF are wrapped in double quotes with embedded
/// quotes doubled; everything else (including arbitrary non-UTF8 bytes) is
/// appended verbatim. Shared by Table::ToCsv and the streaming CSV sink so
/// the two emit byte-identical rows.
void AppendCsvField(std::string_view s, std::string* out);

/// Column layout of the denormalized table for one template: one column per
/// field leaf in pre-order, named f0..f{n-1}.
struct DenormalizedSchema {
  int leaf_count = 0;
  std::vector<std::string> columns;
};
DenormalizedSchema DenormalizedSchemaFor(const StructureTemplate& st);

/// Unfolds one record's flat MatchEvent parse into denormalized cells,
/// without materializing a ParsedValue tree. Cell semantics are identical
/// to the tree-path fill used by DenormalizedTable: each field leaf is one
/// cell, array repetitions re-visit the same leaves and are joined with the
/// array's separator character. Cell storage is reused across records, so
/// the steady state allocates only when a cell outgrows its capacity.
class DenormalizedRowBuilder {
 public:
  /// The template must outlive the builder.
  explicit DenormalizedRowBuilder(const StructureTemplate* st);

  /// Fills and returns the cells for one record whose flat parse is
  /// `events[0..num_events)` with spans indexing into `text`. The returned
  /// reference is invalidated by the next call.
  const std::vector<std::string>& FillFromEvents(std::string_view text,
                                                 const MatchEvent* events,
                                                 size_t num_events);

  int leaf_count() const { return leaf_count_; }

 private:
  const StructureTemplate* st_;
  int leaf_count_ = 0;
  std::vector<std::string> cells_;
  std::vector<char> filled_;
};

/// Builds the denormalized table for record type `template_id`.
Table DenormalizedTable(const StructureTemplate& st,
                        const std::vector<ExtractedRecord>& records,
                        std::string_view text, int template_id,
                        const std::string& name);

/// Static layout of the normalized table tree for one template. Table 0 is
/// the root (key column `id`); tables 1..A correspond to the template's
/// array nodes in pre-order (key columns `id, parent_id, pos`); field
/// columns f0..f{n-1} follow the key columns in both. Shared by the
/// collecting path (NormalizedTables) and the streaming sink
/// (NormalizedWriteSink) so names, key columns, and headers can never
/// drift apart.
struct NormalizedSchema {
  struct TableSchema {
    std::string name;                  // "<base>" or "<base>_arr<k>"
    std::vector<std::string> columns;  // key columns then field columns
  };
  std::vector<TableSchema> tables;  // [0] is the root
};
NormalizedSchema NormalizedSchemaFor(const StructureTemplate& st,
                                     const std::string& name);

/// Unfolds one record's flat MatchEvent parse into normalized rows, without
/// materializing a ParsedValue tree: one root row plus one row per array
/// repetition, in the same per-table order the collecting path appends
/// them. Ids are record-relative (see the row-id contract above); the
/// caller turns them into global ids by adding its running per-table row
/// totals, and advances those totals by this record's per-table row counts
/// afterwards. Row and cell storage is reused across records, so the
/// steady state allocates only when a record outgrows prior capacity.
class NormalizedRowBuilder {
 public:
  struct Row {
    int table = 0;          // index into NormalizedSchema::tables
    size_t id = 0;          // record-relative id within `table`
    int parent_table = -1;  // -1: root row (no parent/pos key columns)
    size_t parent_id = 0;   // record-relative id within `parent_table`
    size_t pos = 0;         // repetition index within the parent array
    std::vector<std::string> fields;  // cells after the key columns
  };

  /// The template must outlive the builder.
  explicit NormalizedRowBuilder(const StructureTemplate* st);

  /// Fills and returns the rows for one record whose flat parse is
  /// `events[0..num_events)` with spans indexing into `text`. Rows appear
  /// in emission order: the root row first, child rows in template walk
  /// order (which is exactly the collecting path's per-table append
  /// order). The returned span is invalidated by the next call.
  /// `row_count()` limits the valid prefix of the returned vector.
  const std::vector<Row>& FillFromEvents(std::string_view text,
                                         const MatchEvent* events,
                                         size_t num_events);

  /// Number of valid rows in the vector FillFromEvents returned (the
  /// vector itself may be longer: rows are pooled across records).
  size_t row_count() const { return used_rows_; }

  /// Number of tables in this template's normalized layout (1 + arrays).
  size_t table_count() const { return fields_per_table_.size(); }

 private:
  struct FieldSlot {
    int table = 0;
    int column = 0;  // index into the table's field columns
  };

  size_t AppendRow(int table, int parent_table, size_t parent_id, size_t pos);
  void Fill(const TemplateNode& node, std::string_view text,
            const MatchEvent* events, size_t num_events, size_t* cursor,
            int table, size_t row_index, int* leaf, int* array);

  const StructureTemplate* st_;
  std::vector<FieldSlot> fields_;        // by leaf index
  std::vector<int> fields_per_table_;    // by table index
  std::vector<Row> rows_;                // pooled; used_rows_ are valid
  std::vector<size_t> next_relative_id_;  // per-table, reset per record
  size_t used_rows_ = 0;
};

/// Builds the normalized table tree for record type `template_id`. The
/// first table is the root; subsequent tables correspond to array nodes in
/// pre-order, each with columns (id, parent_id, pos, fields...).
std::vector<Table> NormalizedTables(const StructureTemplate& st,
                                    const std::vector<ExtractedRecord>& records,
                                    std::string_view text, int template_id,
                                    const std::string& name);

}  // namespace datamaran

#endif  // DATAMARAN_EXTRACTION_RELATIONAL_H_
