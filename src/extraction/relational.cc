#include "extraction/relational.h"

#include <algorithm>
#include <unordered_map>

#include "util/common.h"
#include "util/strings.h"

namespace datamaran {

void AppendCsvField(std::string_view s, std::string* out) {
  if (s.find_first_of(",\"\n\r") == std::string_view::npos) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

namespace {

/// Pre-order field-leaf and array numbering shared by both layouts.
struct TemplateIndex {
  int leaf_count = 0;
  int array_count = 0;
};

void IndexTemplate(const TemplateNode& node, TemplateIndex* idx) {
  switch (node.kind) {
    case NodeKind::kField:
      idx->leaf_count++;
      break;
    case NodeKind::kChar:
      break;
    case NodeKind::kStruct:
      for (const auto& c : node.children) IndexTemplate(*c, idx);
      break;
    case NodeKind::kArray:
      idx->array_count++;
      IndexTemplate(*node.children[0], idx);
      break;
  }
}

// ------------------------------------------------------------ denormalized

void FillDenormalized(const TemplateNode& node, const ParsedValue& value,
                      std::string_view text, char join_sep, int* leaf,
                      std::vector<std::string>* cells,
                      std::vector<bool>* filled) {
  switch (node.kind) {
    case NodeKind::kField: {
      size_t i = static_cast<size_t>((*leaf)++);
      std::string_view v = text.substr(value.begin, value.end - value.begin);
      if ((*filled)[i]) {
        (*cells)[i].push_back(join_sep == 0 ? ' ' : join_sep);
        (*cells)[i].append(v);
      } else {
        (*cells)[i].assign(v);
        (*filled)[i] = true;
      }
      break;
    }
    case NodeKind::kChar:
      break;
    case NodeKind::kStruct:
      for (size_t i = 0; i < node.children.size(); ++i) {
        FillDenormalized(*node.children[i], value.children[i], text, join_sep,
                         leaf, cells, filled);
      }
      break;
    case NodeKind::kArray: {
      int saved = *leaf;
      for (const ParsedValue& rep : value.children) {
        *leaf = saved;
        FillDenormalized(*node.children[0], rep, text, node.ch, leaf, cells,
                         filled);
      }
      break;
    }
  }
}

/// Event-stream counterpart of FillDenormalized: walks the template with a
/// cursor over the record's flat parse (one kFieldValue event per field
/// visit, one kArrayCount event per array, in template order) and fills the
/// same cells. Kept structurally parallel to FillDenormalized so the two
/// stay in lockstep — the streaming-vs-tree row parity tests enforce it.
struct EventCursor {
  const MatchEvent* events;
  size_t count;
  size_t i = 0;
  const MatchEvent& Next() {
    DM_CHECK(i < count);
    return events[i++];
  }
};

void FillRowFromEvents(const TemplateNode& node, EventCursor* cur,
                       std::string_view text, char join_sep, int* leaf,
                       std::vector<std::string>* cells,
                       std::vector<char>* filled) {
  switch (node.kind) {
    case NodeKind::kField: {
      size_t i = static_cast<size_t>((*leaf)++);
      const MatchEvent& ev = cur->Next();
      std::string_view v = text.substr(ev.begin, ev.end - ev.begin);
      if ((*filled)[i]) {
        (*cells)[i].push_back(join_sep == 0 ? ' ' : join_sep);
        (*cells)[i].append(v);
      } else {
        (*cells)[i].assign(v);
        (*filled)[i] = 1;
      }
      break;
    }
    case NodeKind::kChar:
      break;
    case NodeKind::kStruct:
      for (const auto& c : node.children) {
        FillRowFromEvents(*c, cur, text, join_sep, leaf, cells, filled);
      }
      break;
    case NodeKind::kArray: {
      const MatchEvent& ev = cur->Next();
      int saved = *leaf;
      for (size_t r = 0; r < ev.count; ++r) {
        *leaf = saved;
        FillRowFromEvents(*node.children[0], cur, text, node.ch, leaf, cells,
                          filled);
      }
      break;
    }
  }
}

// -------------------------------------------------------------- normalized

/// Static table layout: table 0 is the root; arrays get tables 1..A in
/// pre-order. For every field leaf we record its table and column slot.
struct NormalizedLayout {
  struct FieldSlot {
    int table = 0;
    int column = 0;  // index into the table's field columns
  };
  int array_count = 0;
  std::vector<FieldSlot> fields;      // by leaf index
  std::vector<int> fields_per_table;  // by table index
  std::vector<char> array_sep;        // by array index (table = index + 1)
};

void BuildLayout(const TemplateNode& node, int table, int* leaf, int* array,
                 NormalizedLayout* layout) {
  switch (node.kind) {
    case NodeKind::kField: {
      NormalizedLayout::FieldSlot slot;
      slot.table = table;
      slot.column = layout->fields_per_table[static_cast<size_t>(table)]++;
      layout->fields[static_cast<size_t>((*leaf)++)] = slot;
      break;
    }
    case NodeKind::kChar:
      break;
    case NodeKind::kStruct:
      for (const auto& c : node.children) {
        BuildLayout(*c, table, leaf, array, layout);
      }
      break;
    case NodeKind::kArray: {
      int t = ++(*array);  // tables are 1-based for arrays
      layout->array_sep[static_cast<size_t>(t - 1)] = node.ch;
      BuildLayout(*node.children[0], t, leaf, array, layout);
      break;
    }
  }
}

/// The one source of truth for the normalized layout of a template —
/// NormalizedSchemaFor, NormalizedRowBuilder, and NormalizedTables all
/// derive from this, so the streaming-vs-collecting byte-parity contract
/// cannot be broken by one of them drifting.
NormalizedLayout ComputeNormalizedLayout(const StructureTemplate& st) {
  TemplateIndex idx;
  IndexTemplate(st.root(), &idx);
  NormalizedLayout layout;
  layout.array_count = idx.array_count;
  layout.fields.resize(static_cast<size_t>(idx.leaf_count));
  layout.fields_per_table.assign(static_cast<size_t>(idx.array_count) + 1, 0);
  layout.array_sep.resize(static_cast<size_t>(idx.array_count));
  int leaf = 0, array = 0;
  BuildLayout(st.root(), 0, &leaf, &array, &layout);
  return layout;
}

struct NormalizedBuilder {
  const NormalizedLayout* layout;
  std::vector<Table>* tables;
  std::string_view text;

  void Fill(const TemplateNode& node, const ParsedValue& value, int table,
            size_t row, int* leaf, int* array) {
    switch (node.kind) {
      case NodeKind::kField: {
        const auto& slot = layout->fields[static_cast<size_t>((*leaf)++)];
        DM_CHECK(slot.table == table);
        Table& t = (*tables)[static_cast<size_t>(table)];
        // Field columns start after the key columns (root: id; child:
        // id, parent_id, pos).
        size_t key_cols = table == 0 ? 1 : 3;
        t.rows[row][key_cols + static_cast<size_t>(slot.column)] =
            std::string(text.substr(value.begin, value.end - value.begin));
        break;
      }
      case NodeKind::kChar:
        break;
      case NodeKind::kStruct:
        for (size_t i = 0; i < node.children.size(); ++i) {
          Fill(*node.children[i], value.children[i], table, row, leaf, array);
        }
        break;
      case NodeKind::kArray: {
        int child_table = ++(*array);
        Table& ct = (*tables)[static_cast<size_t>(child_table)];
        const std::string parent_id =
            (*tables)[static_cast<size_t>(table)].rows[row][0];
        int saved_leaf = *leaf;
        int saved_array = *array;
        for (size_t pos = 0; pos < value.children.size(); ++pos) {
          size_t new_row = ct.rows.size();
          std::vector<std::string> cells(ct.columns.size());
          cells[0] = std::to_string(new_row);
          cells[1] = parent_id;
          cells[2] = std::to_string(pos);
          ct.rows.push_back(std::move(cells));
          *leaf = saved_leaf;
          *array = saved_array;
          Fill(*node.children[0], value.children[pos], child_table, new_row,
               leaf, array);
        }
        break;
      }
    }
  }
};

}  // namespace

std::string Table::ToCsv() const {
  std::string out;
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c > 0) out.push_back(',');
    AppendCsvField(columns[c], &out);
  }
  out.push_back('\n');
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(',');
      AppendCsvField(row[c], &out);
    }
    out.push_back('\n');
  }
  return out;
}

DenormalizedSchema DenormalizedSchemaFor(const StructureTemplate& st) {
  TemplateIndex idx;
  IndexTemplate(st.root(), &idx);
  DenormalizedSchema schema;
  schema.leaf_count = idx.leaf_count;
  schema.columns.reserve(static_cast<size_t>(idx.leaf_count));
  for (int i = 0; i < idx.leaf_count; ++i) {
    schema.columns.push_back(StrFormat("f%d", i));
  }
  return schema;
}

DenormalizedRowBuilder::DenormalizedRowBuilder(const StructureTemplate* st)
    : st_(st) {
  TemplateIndex idx;
  IndexTemplate(st_->root(), &idx);
  leaf_count_ = idx.leaf_count;
  cells_.resize(static_cast<size_t>(leaf_count_));
  filled_.resize(static_cast<size_t>(leaf_count_));
}

const std::vector<std::string>& DenormalizedRowBuilder::FillFromEvents(
    std::string_view text, const MatchEvent* events, size_t num_events) {
  for (std::string& cell : cells_) cell.clear();
  std::fill(filled_.begin(), filled_.end(), 0);
  EventCursor cur{events, num_events};
  int leaf = 0;
  FillRowFromEvents(st_->root(), &cur, text, 0, &leaf, &cells_, &filled_);
  return cells_;
}

NormalizedSchema NormalizedSchemaFor(const StructureTemplate& st,
                                     const std::string& name) {
  const NormalizedLayout layout = ComputeNormalizedLayout(st);
  NormalizedSchema schema;
  schema.tables.resize(static_cast<size_t>(layout.array_count) + 1);
  schema.tables[0].name = name;
  schema.tables[0].columns.push_back("id");
  for (int i = 0; i < layout.fields_per_table[0]; ++i) {
    schema.tables[0].columns.push_back(StrFormat("f%d", i));
  }
  for (int a = 1; a <= layout.array_count; ++a) {
    NormalizedSchema::TableSchema& t = schema.tables[static_cast<size_t>(a)];
    t.name = StrFormat("%s_arr%d", name.c_str(), a);
    t.columns = {"id", "parent_id", "pos"};
    for (int i = 0; i < layout.fields_per_table[static_cast<size_t>(a)]; ++i) {
      t.columns.push_back(StrFormat("f%d", i));
    }
  }
  return schema;
}

NormalizedRowBuilder::NormalizedRowBuilder(const StructureTemplate* st)
    : st_(st) {
  NormalizedLayout layout = ComputeNormalizedLayout(*st_);
  fields_.reserve(layout.fields.size());
  for (const NormalizedLayout::FieldSlot& slot : layout.fields) {
    fields_.push_back(FieldSlot{slot.table, slot.column});
  }
  fields_per_table_ = std::move(layout.fields_per_table);
  next_relative_id_.assign(fields_per_table_.size(), 0);
}

size_t NormalizedRowBuilder::AppendRow(int table, int parent_table,
                                       size_t parent_id, size_t pos) {
  if (used_rows_ == rows_.size()) rows_.emplace_back();
  Row& row = rows_[used_rows_];
  row.table = table;
  row.id = next_relative_id_[static_cast<size_t>(table)]++;
  row.parent_table = parent_table;
  row.parent_id = parent_id;
  row.pos = pos;
  row.fields.resize(
      static_cast<size_t>(fields_per_table_[static_cast<size_t>(table)]));
  for (std::string& cell : row.fields) cell.clear();
  return used_rows_++;
}

void NormalizedRowBuilder::Fill(const TemplateNode& node,
                                std::string_view text,
                                const MatchEvent* events, size_t num_events,
                                size_t* cursor, int table, size_t row_index,
                                int* leaf, int* array) {
  switch (node.kind) {
    case NodeKind::kField: {
      const FieldSlot& slot = fields_[static_cast<size_t>((*leaf)++)];
      DM_CHECK(*cursor < num_events);
      const MatchEvent& ev = events[(*cursor)++];
      rows_[row_index].fields[static_cast<size_t>(slot.column)].assign(
          text.substr(ev.begin, ev.end - ev.begin));
      break;
    }
    case NodeKind::kChar:
      break;
    case NodeKind::kStruct:
      for (const auto& c : node.children) {
        Fill(*c, text, events, num_events, cursor, table, row_index, leaf,
             array);
      }
      break;
    case NodeKind::kArray: {
      const int child_table = ++(*array);
      DM_CHECK(*cursor < num_events);
      const MatchEvent& ev = events[(*cursor)++];
      const size_t parent_relative_id = rows_[row_index].id;
      const int saved_leaf = *leaf;
      const int saved_array = *array;
      for (size_t r = 0; r < ev.count; ++r) {
        const size_t child_row =
            AppendRow(child_table, table, parent_relative_id, r);
        *leaf = saved_leaf;
        *array = saved_array;
        Fill(*node.children[0], text, events, num_events, cursor, child_table,
             child_row, leaf, array);
      }
      break;
    }
  }
}

const std::vector<NormalizedRowBuilder::Row>&
NormalizedRowBuilder::FillFromEvents(std::string_view text,
                                     const MatchEvent* events,
                                     size_t num_events) {
  used_rows_ = 0;
  std::fill(next_relative_id_.begin(), next_relative_id_.end(), 0);
  const size_t root = AppendRow(0, -1, 0, 0);
  size_t cursor = 0;
  int leaf = 0, array = 0;
  Fill(st_->root(), text, events, num_events, &cursor, 0, root, &leaf,
       &array);
  return rows_;
}

Table DenormalizedTable(const StructureTemplate& st,
                        const std::vector<ExtractedRecord>& records,
                        std::string_view text, int template_id,
                        const std::string& name) {
  DenormalizedSchema schema = DenormalizedSchemaFor(st);
  Table table;
  table.name = name;
  table.columns = std::move(schema.columns);
  for (const ExtractedRecord& rec : records) {
    if (rec.template_id != template_id) continue;
    std::vector<std::string> cells(static_cast<size_t>(schema.leaf_count));
    std::vector<bool> filled(static_cast<size_t>(schema.leaf_count), false);
    int leaf = 0;
    FillDenormalized(st.root(), rec.value, text, 0, &leaf, &cells, &filled);
    table.rows.push_back(std::move(cells));
  }
  return table;
}

std::vector<Table> NormalizedTables(
    const StructureTemplate& st, const std::vector<ExtractedRecord>& records,
    std::string_view text, int template_id, const std::string& name) {
  const NormalizedLayout layout = ComputeNormalizedLayout(st);

  // Names, key columns, and headers come from the shared schema so the
  // collecting and streaming layouts can never drift apart.
  NormalizedSchema schema = NormalizedSchemaFor(st, name);
  std::vector<Table> tables(schema.tables.size());
  for (size_t i = 0; i < tables.size(); ++i) {
    tables[i].name = std::move(schema.tables[i].name);
    tables[i].columns = std::move(schema.tables[i].columns);
  }

  NormalizedBuilder builder{&layout, &tables, text};
  for (const ExtractedRecord& rec : records) {
    if (rec.template_id != template_id) continue;
    Table& root = tables[0];
    size_t row = root.rows.size();
    std::vector<std::string> cells(root.columns.size());
    cells[0] = std::to_string(row);
    root.rows.push_back(std::move(cells));
    int leaf = 0, array = 0;
    builder.Fill(st.root(), rec.value, 0, row, &leaf, &array);
  }
  return tables;
}

}  // namespace datamaran
