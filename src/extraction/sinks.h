#ifndef DATAMARAN_EXTRACTION_SINKS_H_
#define DATAMARAN_EXTRACTION_SINKS_H_

#include <cstdio>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "core/dataset.h"
#include "extraction/extractor.h"
#include "extraction/relational.h"
#include "util/status.h"

/// Streaming columnar output sinks: EventSink implementations that turn the
/// extraction scan's flat MatchEvent stream into per-template relational
/// files incrementally, without ever materializing ParsedValue trees or an
/// in-memory record set. Combined with the wave-bounded parallel scan
/// (Extractor::ExtractEvents) and an mmap-backed Dataset, `datamaran_cli
/// --out` therefore runs a multi-GB extraction at O(wave) peak memory end
/// to end — in both the denormalized and the normalized layout.
///
/// Determinism is a hard contract: records and noise lines arrive in scan
/// order regardless of thread count, match engine, or dataset backing, and
/// the writers are pure functions of that sequence — the emitted files are
/// byte-identical across all of those configurations (enforced by the CLI
/// golden tests and the wave-determinism tests).
///
/// Two layouts, both defined by extraction/relational.h:
///
///  * ColumnarWriteSink — denormalized: one file per record type,
///    `type<t>.csv` (RFC-4180 quoting, header row, byte-identical to
///    Table::ToCsv of the tree path) or `type<t>.ndjson` (one JSON object
///    per record, keys f0..fn-1).
///  * NormalizedWriteSink — normalized (CSV only): per record type, a root
///    table `type<t>.csv` plus one child table `type<t>_arr<a>.csv` per
///    array node, child rows carrying (id, parent_id, pos) foreign keys.
///    Row ids are assigned by per-table counters that advance in stitched
///    scan order: the row builder emits record-relative ids and the sink
///    rebases them at flush time (the row-id contract in relational.h), so
///    every file is byte-identical to the collecting path's
///    Table::ToCsv output for the same table.
///
/// Both sinks also stream `noise.txt` holding every unmatched line
/// verbatim. All files are created up front so the output directory's
/// shape depends only on the template set.

namespace datamaran {

/// Output file format for ColumnarWriteSink.
enum class OutputFormat {
  kCsv,
  kNdjson,
};

/// Appends `s` to `out` as the body of a JSON string literal (quotes not
/// included): `"` and `\` are backslash-escaped, control bytes < 0x20 use
/// the short escapes (\n, \t, \r, \b, \f) or \u00XX, and all other bytes —
/// including non-UTF8 ones — pass through verbatim, so a byte-oriented
/// unescape reproduces `s` exactly.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Counters a streaming extraction accumulates; the streaming counterpart
/// of ExtractionResult's record/noise vectors (which a streaming run never
/// materializes). Matches the collecting path exactly — same records per
/// template, same noise count — for every dataset, including the
/// appended-final-newline edge case.
struct SinkStats {
  std::vector<size_t> records_per_template;
  size_t total_records = 0;
  size_t noise_lines = 0;
  size_t bytes_written = 0;  // payload bytes handed to the OS so far
};

/// Shared machinery of the file-writing EventSinks: a set of buffered FILE
/// streams, the noise-line stream, sticky I/O error handling, and the
/// wave-flush protocol. Rows append to a per-file buffer that flushes to
/// disk at a size threshold and at every wave boundary, so buffered output
/// is O(wave). I/O errors are sticky: the first failure is recorded, later
/// writes become no-ops, and Finish() reports it.
class WriteSinkBase : public EventSink {
 public:
  ~WriteSinkBase() override;

  WriteSinkBase(const WriteSinkBase&) = delete;
  WriteSinkBase& operator=(const WriteSinkBase&) = delete;

  void OnNoiseLine(size_t line_index) override;
  /// Streaming noise path: writes the carried text directly (the batch
  /// path resolves the index against `data_` instead; same bytes).
  void OnNoiseText(size_t line_index,
                   std::string_view line_with_newline) override;
  /// Streaming evolution path: opens the new record types' output files
  /// mid-stream via AddTemplate. Template ids continue from the current
  /// count, matching the extractor's numbering.
  void OnTemplatesAdded(
      const std::vector<const StructureTemplate*>& added) override;
  void OnWaveEnd() override;

  /// Appends one record type: opens its output file(s) under the
  /// constructor's out_dir, writes headers, and extends the per-template
  /// state — the unit both the constructors (looping over the initial
  /// template set) and OnTemplatesAdded (splicing mid-stream) build on.
  /// `st` must outlive the sink.
  virtual void AddTemplate(const StructureTemplate* st) = 0;

  /// Flushes and closes every file; returns the first error encountered
  /// (construction, write, or close). Idempotent. The destructor calls it,
  /// but callers that care about errors should call it explicitly.
  Status Finish();

  const SinkStats& stats() const { return stats_; }

  /// Current health: ok() until the first construction or write error.
  /// Callers should check this right after construction — a sink that
  /// failed to open its files consumes the scan as a counting no-op, so
  /// bailing early saves the whole extraction pass.
  const Status& status() const { return status_; }

  /// File name of the noise stream ("noise.txt").
  static std::string NoiseFileName();

  static constexpr size_t kDefaultFlushThreshold = 1 << 20;

 protected:
  struct Stream {
    FILE* file = nullptr;
    std::string path;  // for error messages
    std::string buffer;
  };

  /// `data` must be the view being extracted (it resolves noise-line
  /// text; streaming callers that only ever deliver noise via OnNoiseText
  /// may pass a view of an empty Dataset) and must outlive the sink.
  /// Derived constructors call MakeOutDir then AddTemplate per initial
  /// template, and finally OpenNoiseStream.
  WriteSinkBase(const DatasetView& data, size_t flush_threshold_bytes);

  /// Grows the per-template record counter; every AddTemplate override
  /// calls this once.
  void RegisterTemplate() { stats_.records_per_template.push_back(0); }

  const std::string& out_dir() const { return out_dir_; }

  /// Creates `out_dir` (and parents). Failure is sticky like any write.
  void MakeOutDir(const std::string& out_dir);
  /// Opens `path` for writing and returns the stream handle, stable for
  /// the sink's lifetime. On failure the sink's status turns sticky-bad
  /// and the stream's file stays null (writes become no-ops).
  Stream* AddStream(const std::string& path);
  void MaybeFlush(Stream* stream);
  void Fail(const std::string& message);
  void OpenNoiseStream(const std::string& out_dir);

  DatasetView data_;
  Stream* noise_stream_ = nullptr;
  SinkStats stats_;

 private:
  void FlushStream(Stream* stream);

  size_t flush_threshold_;
  std::string out_dir_;  ///< remembered by MakeOutDir for AddTemplate
  std::deque<Stream> streams_;  // deque: handles stay valid as we add
  Status status_ = Status::Ok();
  bool finished_ = false;
};

/// Streams per-template denormalized files from the flat event stream. One
/// DenormalizedRowBuilder per template unfolds each record's events into
/// cells (array repetitions joined with the array separator, identical to
/// the tree path).
class ColumnarWriteSink : public WriteSinkBase {
 public:
  /// Writes into `out_dir` (created if missing): one type<t>.<ext> per
  /// template plus noise.txt. `templates` must be the extractor's template
  /// vector; it and `data` must outlive the sink.
  ColumnarWriteSink(const std::vector<StructureTemplate>* templates,
                    const DatasetView& data, const std::string& out_dir,
                    OutputFormat format = OutputFormat::kCsv,
                    size_t flush_threshold_bytes = kDefaultFlushThreshold);

  void OnRecord(int template_id, size_t first_line, std::string_view text,
                size_t pos, size_t end, const MatchEvent* events,
                size_t num_events) override;

  void AddTemplate(const StructureTemplate* st) override;

  /// File name of record type `t` under this format ("type3.csv").
  static std::string FileName(size_t template_id, OutputFormat format);

 private:
  OutputFormat format_;
  std::vector<Stream*> type_streams_;  // one per template
  std::vector<DenormalizedRowBuilder> rows_;  // one per template
  std::vector<std::string> json_keys_;  // `"fN":"` prefixes (ndjson only)
};

/// Streams the normalized (multi-table) layout from the flat event stream:
/// per template, a root table file plus one child table file per array
/// node (CSV only — the layout is relational by construction). Each
/// record's rows come from an event-driven NormalizedRowBuilder with
/// record-relative ids; this sink owns the per-table row-id counters and
/// rebases the relative ids as the stitch flushes each record, advancing
/// the counters by the record's per-table row counts afterwards. Because
/// OnRecord arrives in stitched scan order, the counters — and therefore
/// every id and parent_id cell — are byte-identical to the collecting
/// path's NormalizedTables output for every thread count, match engine,
/// and dataset backing.
class NormalizedWriteSink : public WriteSinkBase {
 public:
  /// Writes into `out_dir` (created if missing): type<t>.csv and
  /// type<t>_arr<a>.csv per template (per NormalizedSchemaFor) plus
  /// noise.txt. `templates` must be the extractor's template vector; it
  /// and `data` must outlive the sink.
  NormalizedWriteSink(const std::vector<StructureTemplate>* templates,
                      const DatasetView& data, const std::string& out_dir,
                      size_t flush_threshold_bytes = kDefaultFlushThreshold);

  void OnRecord(int template_id, size_t first_line, std::string_view text,
                size_t pos, size_t end, const MatchEvent* events,
                size_t num_events) override;

  void AddTemplate(const StructureTemplate* st) override;

  /// Rows written so far to table `table` of record type `template_id`
  /// (table 0 is the root; 1..A the array child tables).
  size_t rows_in_table(size_t template_id, size_t table) const {
    return state_[template_id].next_id[table];
  }
  /// Number of tables in record type `template_id`'s normalized layout.
  size_t table_count(size_t template_id) const {
    return state_[template_id].next_id.size();
  }

  /// File name of table `table` of record type `t` ("type3.csv",
  /// "type3_arr1.csv") — `NormalizedSchemaFor(st, "type<t>")` name + ext.
  static std::string TableFileName(size_t template_id, size_t table);

 private:
  struct PerTemplate {
    NormalizedRowBuilder builder;
    std::vector<Stream*> tables;  // one stream per schema table
    std::vector<size_t> next_id;  // running per-table row-id bases
    explicit PerTemplate(const StructureTemplate* st) : builder(st) {}
  };

  std::vector<PerTemplate> state_;  // one per template
  std::vector<size_t> record_rows_;  // per-table scratch, one record
};

}  // namespace datamaran

#endif  // DATAMARAN_EXTRACTION_SINKS_H_
