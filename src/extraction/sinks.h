#ifndef DATAMARAN_EXTRACTION_SINKS_H_
#define DATAMARAN_EXTRACTION_SINKS_H_

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/dataset.h"
#include "extraction/extractor.h"
#include "extraction/relational.h"
#include "util/status.h"

/// Streaming columnar output sinks: EventSink implementations that turn the
/// extraction scan's flat MatchEvent stream into per-template relational
/// files incrementally, without ever materializing ParsedValue trees or an
/// in-memory record set. Combined with the wave-bounded parallel scan
/// (Extractor::ExtractEvents) and an mmap-backed Dataset, `datamaran_cli
/// --out` therefore runs a multi-GB extraction at O(wave) peak memory end
/// to end.
///
/// Determinism is a hard contract: records and noise lines arrive in scan
/// order regardless of thread count, match engine, or dataset backing, and
/// the writers are pure functions of that sequence — the emitted files are
/// byte-identical across all of those configurations (enforced by the CLI
/// golden tests and the wave-determinism tests).
///
/// Layout: one file per record type in the denormalized layout of
/// extraction/relational.h — `type<t>.csv` (RFC-4180 quoting, header row,
/// byte-identical to Table::ToCsv of the tree path) or `type<t>.ndjson`
/// (one JSON object per record, keys f0..fn-1) — plus `noise.txt` holding
/// every unmatched line verbatim. All files are created up front so the
/// output directory's shape depends only on the template set.

namespace datamaran {

/// Output file format for ColumnarWriteSink.
enum class OutputFormat {
  kCsv,
  kNdjson,
};

/// Appends `s` to `out` as the body of a JSON string literal (quotes not
/// included): `"` and `\` are backslash-escaped, control bytes < 0x20 use
/// the short escapes (\n, \t, \r, \b, \f) or \u00XX, and all other bytes —
/// including non-UTF8 ones — pass through verbatim, so a byte-oriented
/// unescape reproduces `s` exactly.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Counters a streaming extraction accumulates; the streaming counterpart
/// of ExtractionResult's record/noise vectors (which a streaming run never
/// materializes). Matches the collecting path exactly — same records per
/// template, same noise count — for every dataset, including the
/// appended-final-newline edge case.
struct SinkStats {
  std::vector<size_t> records_per_template;
  size_t total_records = 0;
  size_t noise_lines = 0;
  size_t bytes_written = 0;  // payload bytes handed to the OS so far
};

/// Streams per-template columnar files from the flat event stream. One
/// DenormalizedRowBuilder per template unfolds each record's events into
/// cells (array repetitions joined with the array separator, identical to
/// the tree path); rows append to a per-file buffer that flushes to disk at
/// a size threshold and at every wave boundary, so buffered output is
/// O(wave). I/O errors are sticky: the first failure is recorded, later
/// writes become no-ops, and Finish() reports it.
class ColumnarWriteSink : public EventSink {
 public:
  /// Writes into `out_dir` (created if missing): one type<t>.<ext> per
  /// template plus noise.txt. `data` must be the view being extracted (it
  /// resolves noise-line text) and `templates` the extractor's template
  /// vector; both must outlive the sink.
  ColumnarWriteSink(const std::vector<StructureTemplate>* templates,
                    const DatasetView& data, const std::string& out_dir,
                    OutputFormat format = OutputFormat::kCsv,
                    size_t flush_threshold_bytes = kDefaultFlushThreshold);
  ~ColumnarWriteSink() override;

  ColumnarWriteSink(const ColumnarWriteSink&) = delete;
  ColumnarWriteSink& operator=(const ColumnarWriteSink&) = delete;

  void OnRecord(int template_id, size_t first_line, std::string_view text,
                size_t pos, size_t end, const MatchEvent* events,
                size_t num_events) override;
  void OnNoiseLine(size_t line_index) override;
  void OnWaveEnd() override;

  /// Flushes and closes every file; returns the first error encountered
  /// (construction, write, or close). Idempotent. The destructor calls it,
  /// but callers that care about errors should call it explicitly.
  Status Finish();

  const SinkStats& stats() const { return stats_; }

  /// Current health: ok() until the first construction or write error.
  /// Callers should check this right after construction — a sink that
  /// failed to open its files consumes the scan as a counting no-op, so
  /// bailing early saves the whole extraction pass.
  const Status& status() const { return status_; }

  /// File name of record type `t` under this format ("type3.csv").
  static std::string FileName(size_t template_id, OutputFormat format);
  /// File name of the noise stream ("noise.txt").
  static std::string NoiseFileName();

  static constexpr size_t kDefaultFlushThreshold = 1 << 20;

 private:
  struct Stream {
    FILE* file = nullptr;
    std::string path;  // for error messages
    std::string buffer;
  };

  void Open(Stream* stream, const std::string& path);
  void FlushStream(Stream* stream);
  void MaybeFlush(Stream* stream);
  void Fail(const std::string& message);

  const std::vector<StructureTemplate>* templates_;
  DatasetView data_;
  OutputFormat format_;
  size_t flush_threshold_;
  std::vector<Stream> type_streams_;  // one per template
  Stream noise_stream_;
  std::vector<DenormalizedRowBuilder> rows_;  // one per template
  std::vector<std::string> json_keys_;  // `"fN":"` prefixes (ndjson only)
  SinkStats stats_;
  Status status_ = Status::Ok();
  bool finished_ = false;
};

}  // namespace datamaran

#endif  // DATAMARAN_EXTRACTION_SINKS_H_
