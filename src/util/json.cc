#include "util/json.h"

#include <cstdlib>

#include "util/strings.h"

namespace datamaran {

namespace {

/// Deep-enough for every document Datamaran writes (manifests nest 4
/// levels); bounds recursion on hostile input.
constexpr int kMaxDepth = 64;

struct Parser {
  const char* p;
  const char* end;

  bool AtEnd() const { return p >= end; }

  void SkipWs() {
    while (p < end &&
           (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  Status Error(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(reinterpret_cast<uintptr_t>(p)));
  }

  bool Consume(char c) {
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  Status ParseHex4(uint32_t* out) {
    if (end - p < 4) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = p[i];
      uint32_t d;
      if (c >= '0' && c <= '9') {
        d = static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad \\u escape");
      }
      v = (v << 4) | d;
    }
    p += 4;
    *out = v;
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(*p++);
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        // Our writers pass bytes >= 0x20 through verbatim (including
        // non-UTF8), so the reader does too: decoded bytes == input bytes.
        if (c < 0x20) return Error("raw control byte in string");
        out->push_back(static_cast<char>(c));
        continue;
      }
      if (AtEnd()) return Error("dangling escape");
      const char e = *p++;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          uint32_t cp = 0;
          DM_RETURN_IF_ERROR(ParseHex4(&cp));
          if (cp < 0x100) {
            // AppendJsonEscaped only emits \u00XX for control bytes; the
            // single-byte decode is its exact inverse.
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  Status ParseNumber(JsonValue* out) {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (AtEnd() || *p < '0' || *p > '9') return Error("bad number");
    while (p < end && *p >= '0' && *p <= '9') ++p;
    if (p < end && *p == '.') {
      ++p;
      if (AtEnd() || *p < '0' || *p > '9') return Error("bad fraction");
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (AtEnd() || *p < '0' || *p > '9') return Error("bad exponent");
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    out->kind = JsonValue::Kind::kNumber;
    out->raw_number.assign(start, static_cast<size_t>(p - start));
    out->number = std::strtod(out->raw_number.c_str(), nullptr);
    return Status::Ok();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (AtEnd()) return Error("unexpected end of input");
    const char c = *p;
    if (c == '{') {
      ++p;
      out->kind = JsonValue::Kind::kObject;
      SkipWs();
      if (Consume('}')) return Status::Ok();
      while (true) {
        SkipWs();
        std::string key;
        DM_RETURN_IF_ERROR(ParseString(&key));
        SkipWs();
        if (!Consume(':')) return Error("expected ':'");
        JsonValue value;
        DM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
        out->members.emplace_back(std::move(key), std::move(value));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume('}')) return Status::Ok();
        return Error("expected ',' or '}'");
      }
    }
    if (c == '[') {
      ++p;
      out->kind = JsonValue::Kind::kArray;
      SkipWs();
      if (Consume(']')) return Status::Ok();
      while (true) {
        JsonValue value;
        DM_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
        out->items.push_back(std::move(value));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) return Status::Ok();
        return Error("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      if (end - p >= 4 && std::string_view(p, 4) == "true") {
        p += 4;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return Status::Ok();
      }
      return Error("bad literal");
    }
    if (c == 'f') {
      if (end - p >= 5 && std::string_view(p, 5) == "false") {
        p += 5;
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return Status::Ok();
      }
      return Error("bad literal");
    }
    if (c == 'n') {
      if (end - p >= 4 && std::string_view(p, 4) == "null") {
        p += 4;
        out->kind = JsonValue::Kind::kNull;
        return Status::Ok();
      }
      return Error("bad literal");
    }
    return ParseNumber(out);
  }
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<int64_t> JsonValue::AsInt64() const {
  if (kind != Kind::kNumber) return std::nullopt;
  return ParseInt64(raw_number);
}

std::optional<uint64_t> JsonValue::AsUint64() const {
  if (kind != Kind::kNumber || raw_number.empty() ||
      raw_number[0] == '-') {
    return std::nullopt;
  }
  uint64_t v = 0;
  for (char c : raw_number) {
    if (c < '0' || c > '9') return std::nullopt;  // fraction/exponent form
    const uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;
    v = v * 10 + d;
  }
  return v;
}

std::optional<double> JsonValue::AsDouble() const {
  if (kind != Kind::kNumber) return std::nullopt;
  return number;
}

std::optional<bool> JsonValue::AsBool() const {
  if (kind != Kind::kBool) return std::nullopt;
  return boolean;
}

const std::string* JsonValue::AsString() const {
  return kind == Kind::kString ? &str : nullptr;
}

Result<JsonValue> ParseJson(std::string_view text) {
  Parser parser{text.data(), text.data() + text.size()};
  JsonValue out;
  DM_RETURN_IF_ERROR(parser.ParseValue(&out, 0));
  parser.SkipWs();
  if (!parser.AtEnd()) {
    return Status::ParseError("json: trailing bytes after document");
  }
  return out;
}

}  // namespace datamaran
