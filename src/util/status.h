#ifndef DATAMARAN_UTIL_STATUS_H_
#define DATAMARAN_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/common.h"

/// Minimal Status / Result<T> error-handling primitives in the style of
/// RocksDB's Status and absl::StatusOr. Library code never throws; functions
/// that can fail on user input (file I/O, template parsing) return one of
/// these types.

namespace datamaran {

/// Coarse error categories. Kept deliberately small; the human-readable
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kParseError,
  kInternal,
};

/// Value-semantic success/error indicator with a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "IO_ERROR: no such file".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Result<T> holds either a value or an error Status. Access to the value of
/// an errored Result is a checked programmer error (DM_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr ergonomics).
  Result(T value) : data_(std::move(value)) {}
  /// Implicit construction from an error status. Must not be OK.
  Result(Status status) : data_(std::move(status)) {
    DM_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(data_);
  }

  const T& value() const& {
    DM_CHECK_MSG(ok(), "Result::value() on error: %s",
                 std::get<Status>(data_).message().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    DM_CHECK_MSG(ok(), "Result::value() on error: %s",
                 std::get<Status>(data_).message().c_str());
    return std::get<T>(data_);
  }
  T&& value() && {
    DM_CHECK_MSG(ok(), "Result::value() on error: %s",
                 std::get<Status>(data_).message().c_str());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK status to the caller.
#define DM_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::datamaran::Status _st = (expr);         \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_STATUS_H_
