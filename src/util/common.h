#ifndef DATAMARAN_UTIL_COMMON_H_
#define DATAMARAN_UTIL_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

/// Project-wide fundamental definitions.
///
/// Datamaran follows the Google C++ style guide: no exceptions are thrown by
/// library code; fallible operations return Status / Result<T>
/// (see util/status.h). DM_CHECK is used for programmer-error invariants that
/// indicate a bug rather than bad input; it aborts with a message.

namespace datamaran {

/// Aborts the process with a diagnostic when `cond` is false. Used only for
/// internal invariants (never for user input validation).
#define DM_CHECK(cond)                                                     \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DM_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Like DM_CHECK but with a custom printf-style message appended.
#define DM_CHECK_MSG(cond, ...)                                            \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DM_CHECK failed at %s:%d: %s: ", __FILE__,     \
                   __LINE__, #cond);                                       \
      std::fprintf(stderr, __VA_ARGS__);                                   \
      std::fprintf(stderr, "\n");                                          \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_COMMON_H_
