#include "util/status.h"

namespace datamaran {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace datamaran
