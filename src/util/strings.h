#ifndef DATAMARAN_UTIL_STRINGS_H_
#define DATAMARAN_UTIL_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// Small string helpers used across the code base. All functions are pure
/// and allocation is kept to what the return type requires.

namespace datamaran {

/// Splits `s` on `sep`, keeping empty pieces ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> Split(std::string_view s, char sep);

/// Splits `s` into lines on '\n'. A trailing '\n' does not produce a final
/// empty line; each returned view excludes the '\n' itself.
std::vector<std::string_view> SplitLines(std::string_view s);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);
std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer parse: the whole string must be a (possibly negative)
/// decimal integer that fits in int64_t. No leading '+' and no whitespace.
std::optional<int64_t> ParseInt64(std::string_view s);

/// Strict decimal parse: "[-]digits[.digits]". Returns the number of digits
/// after the decimal point via `exp_out` (0 when there is no point).
/// Scientific notation is not accepted (log fields rarely use it, and the
/// MDL real-number coder in the paper is defined on fixed-point decimals).
std::optional<double> ParseDecimal(std::string_view s, int* exp_out);

/// Replaces every occurrence of `from` in `s` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Renders non-printable characters as escapes ("\n", "\t", "\xAB") so
/// templates and samples can be shown in logs and test failures.
std::string EscapeForDisplay(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable byte count ("12.3 MB").
std::string HumanBytes(uint64_t bytes);

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_STRINGS_H_
