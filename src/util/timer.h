#ifndef DATAMARAN_UTIL_TIMER_H_
#define DATAMARAN_UTIL_TIMER_H_

#include <chrono>

/// Simple wall-clock stopwatch used by the pipeline to report per-step
/// timings (generation / pruning / evaluation / extraction, Table 3).

namespace datamaran {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

  void Reset() { start_ = Clock::now(); }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_TIMER_H_
