#ifndef DATAMARAN_UTIL_SAMPLER_H_
#define DATAMARAN_UTIL_SAMPLER_H_

#include <cstddef>
#include <string>
#include <string_view>

/// Cache-aware sampling (Section 9.1, "Sampling Technique"): for large
/// datasets the generation and evaluation steps run on a concatenation of a
/// few large line-aligned chunks instead of the whole file, bounding S_data
/// by a constant. The final extraction pass always scans the full file.

namespace datamaran {

struct SamplerOptions {
  /// Upper bound on the concatenated sample size in bytes. Files at or below
  /// this size are used whole.
  size_t max_sample_bytes = 256 * 1024;
  /// Number of chunks spread evenly through the file.
  int num_chunks = 8;
};

/// Returns a line-aligned sample of `text` of at most max_sample_bytes.
/// Chunks start at the first line boundary at/after their nominal offset and
/// always end on a line boundary, so the sample is itself a well-formed
/// '\n'-separated block sequence (Definition 2.4 still applies to it).
std::string SampleLines(std::string_view text, const SamplerOptions& options);

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_SAMPLER_H_
