#ifndef DATAMARAN_UTIL_SAMPLER_H_
#define DATAMARAN_UTIL_SAMPLER_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "core/dataset.h"

/// Cache-aware sampling (Section 9.1, "Sampling Technique"): for large
/// datasets the generation and evaluation steps run on a few large
/// line-aligned chunks instead of the whole file, bounding S_data by a
/// constant. The sample is *views into the backing dataset* — byte ranges,
/// and a DatasetView of the sampled lines — never a concatenated text copy,
/// so sampling a mapped multi-GB file faults in only the chunks it touches.
/// The final extraction pass always scans the full file.

namespace datamaran {

struct SamplerOptions {
  /// Upper bound on the combined sample size in bytes. Files at or below
  /// this size are used whole.
  size_t max_sample_bytes = 256 * 1024;
  /// Number of chunks spread evenly through the file.
  int num_chunks = 8;
  /// Oversized-line guard: lines whose content (newline excluded) exceeds
  /// this many bytes are excluded from the sample view, so generation never
  /// tokenizes or indexes a pathological multi-MB line — it degrades to
  /// noise (the extraction scan applies the same cap). 0 = unlimited.
  size_t max_line_bytes = 0;
};

/// One line-aligned chunk: byte offsets [begin, end) into the sampled text.
struct SampleRange {
  size_t begin = 0;
  size_t end = 0;
};

/// Line-aligned, non-overlapping, ascending chunk ranges of `text` totaling
/// at most (approximately) max_sample_bytes. Chunks start at the first line
/// boundary at/after their nominal offset and always end on a line
/// boundary, so every chunk is a well-formed '\n'-separated block sequence
/// (Definition 2.4 still applies to the sampled lines). A text at or below
/// the budget yields the single range [0, size).
std::vector<SampleRange> SampleRanges(std::string_view text,
                                      const SamplerOptions& options);

/// View of the sampled lines of `data` (no text copy). The whole-file case
/// returns the identity view.
DatasetView SampleView(const Dataset& data, const SamplerOptions& options);

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_SAMPLER_H_
