#ifndef DATAMARAN_UTIL_FILE_IO_H_
#define DATAMARAN_UTIL_FILE_IO_H_

#include <string>
#include <string_view>

#include "util/status.h"

/// Whole-file read/write helpers. Datamaran operates on in-memory buffers;
/// large-file sampling is done by util/sampler.h on top of these.

namespace datamaran {

/// Reads the entire file at `path` into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view contents);

/// Creates directory `path` (and parents) if it does not exist.
Status MakeDirs(const std::string& path);

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_FILE_IO_H_
