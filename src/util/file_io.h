#ifndef DATAMARAN_UTIL_FILE_IO_H_
#define DATAMARAN_UTIL_FILE_IO_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

/// File access helpers. Datamaran has two ways of getting a file's bytes
/// into the pipeline: a plain whole-file read (ReadFileToString) and a
/// read-only memory mapping (MmapFile) whose pages fault in lazily — the
/// backing store of choice for multi-GB data-lake files, where the sampled
/// discovery phase touches only a few chunks and extraction streams through
/// the rest. MmapFile degrades gracefully: on platforms without mmap, or
/// when the mapping fails, the region falls back to an owned in-memory
/// copy, so callers never need a second code path.

namespace datamaran {

/// Reads the entire file at `path` into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `contents` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view contents);

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling (`path` + ".<pid>.tmp") which is renamed over `path` only after
/// a complete, flushed write. A reader — or a crash/kill at any instant —
/// therefore sees either the old file or the complete new one, never a
/// truncated hybrid. The tmp name is per-process, so concurrent writers
/// cannot truncate each other's in-flight bytes (last rename wins). This
/// is the writer for artifacts later runs parse (template catalogs,
/// summaries, manifests).
Status WriteFileAtomic(const std::string& path, std::string_view contents);

/// Advisory whole-file lock (RAII). Acquire() blocks until the lock for
/// `path` is held, taking `flock(LOCK_EX)` on a sidecar `path` + ".lock"
/// file — a sidecar rather than the target itself because atomic writers
/// replace the target inode on rename, which would silently orphan a lock
/// taken on the old inode. The lock is advisory: it serializes cooperating
/// Datamaran processes (catalog read-merge-write cycles) and is released
/// on destruction or process death. On platforms without flock, Acquire
/// succeeds and the lock is a no-op (single-writer behavior unchanged).
///
/// Sidecar lifetime: a holder that finishes its critical section may call
/// UnlinkSidecar() (still holding the lock) so output directories are not
/// littered with stray `.lock` files. Acquire is race-safe against that
/// unlink: after the flock lands it re-stats the sidecar path, and when
/// the name is gone or points at a different inode — a previous holder
/// unlinked it between our open and our flock — it drops the orphaned
/// inode and retries, so two late acquirers can never both "hold" locks
/// on distinct unlinked inodes.
class FileLock {
 public:
  FileLock() = default;
  ~FileLock();

  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;
  FileLock(FileLock&& other) noexcept;
  FileLock& operator=(FileLock&& other) noexcept;

  /// Blocks until the advisory lock guarding `path` is held.
  static Result<FileLock> Acquire(const std::string& path);

  /// True when this object holds a live lock (always false on platforms
  /// without flock, where locking degrades to a no-op).
  bool held() const { return fd_ >= 0; }

  /// Best-effort removal of the sidecar file, for a holder done with its
  /// critical section. Must be called while the lock is held (no-op
  /// otherwise): waiters blocked in flock on this inode keep their fd and
  /// still serialize against each other, and fresh acquirers re-create
  /// the sidecar. Never fails the caller — littering is cosmetic.
  void UnlinkSidecar();

  /// Releases the lock early (idempotent; the destructor also releases).
  void Release();

 private:
  int fd_ = -1;
  std::string sidecar_;  ///< path of the lock file (empty when not held)
};

/// Creates directory `path` (and parents) if it does not exist.
Status MakeDirs(const std::string& path);

/// Expected access pattern for a mapped region, forwarded to the kernel as
/// an madvise hint: kSequential readahead for the streaming extraction
/// scan, kRandom for the scattered sampling/discovery touches, kNormal to
/// restore the default. Purely advisory — a no-op for owned (read-fallback)
/// regions and on platforms without madvise.
enum class AccessHint {
  kNormal,
  kSequential,
  kRandom,
};

/// A read-only view of a file's bytes, backed either by an mmap'd region
/// (is_mapped() == true; pages fault in on demand) or by an owned string
/// (the read fallback). Move-only; the view stays valid across moves.
class MappedRegion {
 public:
  MappedRegion() = default;
  ~MappedRegion();

  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;
  MappedRegion(MappedRegion&& other) noexcept;
  MappedRegion& operator=(MappedRegion&& other) noexcept;

  /// The file's bytes. Valid for the lifetime of the region.
  std::string_view view() const {
    return mapped_ ? std::string_view(static_cast<const char*>(addr_), size_)
                   : std::string_view(owned_);
  }
  size_t size() const { return mapped_ ? size_ : owned_.size(); }

  /// True when the bytes are served by a lazy mmap rather than an owned
  /// in-memory copy.
  bool is_mapped() const { return mapped_; }

  /// Best-effort count of bytes currently resident in memory (mincore).
  /// Owned regions are fully resident by definition; on platforms without
  /// mincore a mapped region conservatively reports its full size.
  size_t ResidentBytes() const;

  /// Advises the kernel of the expected access pattern (best effort; no-op
  /// when the region is not a live mapping or madvise is unavailable).
  void Advise(AccessHint hint) const;

  /// Takes ownership of an in-memory copy (the read-fallback constructor).
  static MappedRegion FromOwned(std::string text);

  /// Moves the fallback buffer out of a non-mapped region (the region
  /// becomes empty). Lets consumers adopt the bytes without a second copy.
  std::string ReleaseOwned();

 private:
  friend Result<MappedRegion> MmapFile(const std::string& path);

  void* addr_ = nullptr;  // mmap base (mapped_ only)
  size_t size_ = 0;       // mapped length
  bool mapped_ = false;
  std::string owned_;     // fallback storage
};

/// Size of the file at `path` in bytes, without opening or mapping it.
Result<size_t> FileSizeBytes(const std::string& path);

/// Last-modification time of the file at `path` in nanoseconds since the
/// filesystem clock's epoch. The absolute epoch is platform-defined; the
/// value is only meaningful for equality comparison against an earlier
/// observation on the same machine (incremental re-crawl change detection).
Result<int64_t> FileMtimeNs(const std::string& path);

/// Maps the file at `path` read-only. Falls back to ReadFileToString when
/// mapping is unavailable (empty file, platform without mmap, mmap error),
/// so a successful Result always carries the file's bytes.
Result<MappedRegion> MmapFile(const std::string& path);

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_FILE_IO_H_
