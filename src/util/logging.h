#ifndef DATAMARAN_UTIL_LOGGING_H_
#define DATAMARAN_UTIL_LOGGING_H_

#include <string>

#include "util/strings.h"

/// Leveled logging to stderr. Off by default above kWarning so test and
/// bench output stays clean; the pipeline raises verbosity when
/// DatamaranOptions.verbose is set.

namespace datamaran {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits `msg` at `level` (with a level prefix) if enabled.
void LogMessage(LogLevel level, const std::string& msg);

#define DM_LOG(level, ...)                                             \
  do {                                                                 \
    if (static_cast<int>(::datamaran::LogLevel::level) >=              \
        static_cast<int>(::datamaran::GetLogLevel())) {                \
      ::datamaran::LogMessage(::datamaran::LogLevel::level,            \
                              ::datamaran::StrFormat(__VA_ARGS__));    \
    }                                                                  \
  } while (0)

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_LOGGING_H_
