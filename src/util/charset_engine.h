#ifndef DATAMARAN_UTIL_CHARSET_ENGINE_H_
#define DATAMARAN_UTIL_CHARSET_ENGINE_H_

/// The byte-classification engine selector, in its own header so
/// configuration surfaces (core/options.h) can name it without pulling in
/// the classifier itself (util/byte_class.h) — the same split as
/// template/match_engine.h.

namespace datamaran {

/// Which charset-membership engine the byte-classification hot loops use
/// (generation's per-line tokenization, the compiled match engine's
/// wide-stop-set field scans). Output is byte-identical across all three;
/// kScalar is the per-byte reference kept for differential testing.
enum class CharsetEngine {
  /// Per-byte table lookups — the reference implementation.
  kScalar,
  /// 8-bytes-at-a-time std::uint64_t SWAR scans (little-endian only).
  kSwar,
  /// 16/32-bytes-at-a-time SSE2/AVX2 scans, chosen by runtime CPU
  /// detection; falls back down the ladder (kSwar, then kScalar) when the
  /// hardware lacks vector support.
  kSimd,
};

/// Maps a requested engine to the one that can actually run here: kSimd
/// needs an x86 CPU with at least SSE2 (else it degrades to kSwar), and
/// kSwar needs a little-endian target (else kScalar). Idempotent.
CharsetEngine ResolveCharsetEngine(CharsetEngine requested);

/// "scalar", "swar", or "simd".
const char* CharsetEngineName(CharsetEngine engine);

/// The widest vector ISA the running CPU offers for classification:
/// "avx2", "sse2", or "none". Reported in CLI/bench summaries so resolved
/// behavior is visible without disassembly.
const char* CharsetSimdLevel();

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_CHARSET_ENGINE_H_
