#ifndef DATAMARAN_UTIL_RNG_H_
#define DATAMARAN_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/common.h"

/// Deterministic pseudo-random number generation for the synthetic data-lake
/// generators and property tests. A thin xoshiro256** wrapper: fast, seedable
/// and stable across platforms (unlike std::uniform_int_distribution, whose
/// output is implementation-defined).

namespace datamaran {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 seeding, standard construction for xoshiro.
    uint64_t x = seed + 0x9E3779B97F4A7C15ull;
    for (auto& w : s_) {
      uint64_t z = (x += 0x9E3779B97F4A7C15ull);
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      w = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    DM_CHECK(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Uniformly chosen element of a non-empty list.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    DM_CHECK(!items.empty());
    return items[static_cast<size_t>(Uniform(0, items.size() - 1))];
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_RNG_H_
