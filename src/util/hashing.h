#ifndef DATAMARAN_UTIL_HASHING_H_
#define DATAMARAN_UTIL_HASHING_H_

#include <cstdint>
#include <string_view>

/// FNV-1a hashing for structure-template canonical strings. The generation
/// step's hash table (Section 4.1 step 5) keys bins by this hash of the
/// canonical serialization.

namespace datamaran {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

inline uint64_t Fnv1a(std::string_view s, uint64_t seed = kFnvOffset) {
  uint64_t h = seed;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Incremental variant: extend an existing hash with one byte.
inline uint64_t Fnv1aByte(uint64_t h, unsigned char c) {
  h ^= c;
  h *= kFnvPrime;
  return h;
}

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_HASHING_H_
