#include "util/thread_pool.h"

#include <algorithm>

namespace datamaran {

ThreadPool::ThreadPool(int num_threads) {
  const int total = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(total - 1));
  for (int w = 1; w < total; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ThreadPool::ResolveThreadCount(int num_threads) {
  if (num_threads == 0) return DefaultThreadCount();
  return std::max(1, num_threads);
}

void ThreadPool::RunJob(Job* job, int worker_id) {
  const size_t count = job->count;
  for (;;) {
    const size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) break;
    (*job->fn)(i, worker_id);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
      // Last index done: wake the caller. Acquiring the mutex orders the
      // notification after the caller's predicate check so it cannot be
      // missed.
      { std::lock_guard<std::mutex> lock(mutex_); }
      done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop(int worker_id) {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_seq_ != seen);
      });
      if (shutdown_) return;
      job = job_;
      seen = job_seq_;
    }
    RunJob(job.get(), worker_id);
  }
}

void ThreadPool::ParallelFor(
    size_t count, const std::function<void(size_t index, int worker)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->count = count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_seq_;
  }
  wake_.notify_all();
  RunJob(job.get(), 0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == count;
    });
    job_.reset();
  }
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t index)>& fn) {
  ParallelFor(count, [&fn](size_t i, int) { fn(i); });
}

void ForEachIndex(ThreadPool* pool, size_t count,
                  const std::function<void(size_t index, int worker)>& fn) {
  if (pool == nullptr || pool->thread_count() <= 1) {
    for (size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  pool->ParallelFor(count, fn);
}

}  // namespace datamaran
