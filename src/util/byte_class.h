#ifndef DATAMARAN_UTIL_BYTE_CLASS_H_
#define DATAMARAN_UTIL_BYTE_CLASS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/char_class.h"
#include "util/charset_engine.h"

/// Vectorized charset-membership scans (the DatamaranOptions::charset_engine
/// tentpole). A ByteClassifier is a CharSet frozen into whatever lookup
/// structures its engine tier needs, with three block operations the hot
/// loops consume:
///
///   MaskBlock             — 64-bit membership mask of up to 64 bytes
///   AppendMemberPositions — positions of every member byte in a buffer
///                           (generation's per-line special-position index)
///   FindFirstMember       — first member at/after an offset (the compiled
///                           engine's wide-stop-set field scan)
///
/// Engine tiers, fastest first:
///   AVX2 — 32 bytes per step via the nibble-shuffle technique: the set is
///          compiled into two 16-entry low-nibble LUTs whose bits are keyed
///          by the high nibble, so two shuffles + two ANDs classify 32
///          arbitrary bytes against an arbitrary 256-bit set.
///   SSE2 — 16 bytes per step, one compare per member byte (used for sets
///          of at most 16 members; larger sets drop to the SWAR tier).
///   SWAR — 8 bytes per step on plain uint64_t: broadcast-XOR zero-byte
///          masks for small sets, branchless table gathers otherwise.
///   scalar — the per-byte table loop, kept bit-for-bit as the reference
///          the differential tests (tests/charclass_test.cc) compare
///          every other tier against.
///
/// All tiers produce identical results for every input (including NUL and
/// 0xFF members, unaligned buffers, and tails shorter than the vector
/// width — tails are copied into a zero-padded stack block and the padding
/// bits masked off, so no load ever touches bytes outside the buffer).
/// Runtime dispatch: AVX2 code is compiled with a per-function target
/// attribute and selected via CPU detection, so the rest of the binary
/// stays baseline-ISA.

namespace datamaran {

/// Internal lookup tables, grouped so the ISA-specific kernels (free
/// functions in byte_class.cc carrying target attributes) can take them by
/// reference without friending each one.
struct ByteClassTables {
  /// 1 = member; the scalar reference and all tail paths read this.
  std::array<uint8_t, 256> table{};
  /// AVX2 nibble LUTs: lo0[l] bit h (h<8) and lo1[l] bit h-8 (h>=8) are
  /// set iff byte (h<<4)|l is a member; hi0/hi1 are the matching one-hot
  /// high-nibble keys.
  alignas(16) std::array<uint8_t, 16> lo0{};
  alignas(16) std::array<uint8_t, 16> lo1{};
  alignas(16) std::array<uint8_t, 16> hi0{};
  alignas(16) std::array<uint8_t, 16> hi1{};
  /// Member bytes (ascending) for the SSE2 compare kernel and the SWAR
  /// broadcast masks (first kSwarMaxMembers of them).
  std::array<uint8_t, 16> member_bytes{};
  int member_count = 0;  ///< total set size (may exceed 16)
  std::array<uint64_t, 8> bcast{};  ///< broadcast member bytes (SWAR)
};

class ByteClassifier {
 public:
  /// Empty set, scalar tier — a valid classifier that matches nothing.
  ByteClassifier() { BuildTables(CharSet()); }

  /// Freezes `set` under `engine` (resolved via ResolveCharsetEngine; the
  /// SSE2 rung additionally drops to SWAR for sets wider than 16 members).
  ByteClassifier(const CharSet& set, CharsetEngine engine);

  /// The resolved engine actually driving the block operations.
  CharsetEngine engine() const { return engine_; }

  bool Contains(unsigned char c) const { return tables_.table[c] != 0; }

  /// Membership mask of text[pos, pos+64): bit i (LSB-first) is set iff
  /// text[pos+i] is a member. Bits at or past text.size() are clear.
  uint64_t MaskBlock(std::string_view text, size_t pos) const;

  /// Appends the position of every member byte of `text`, ascending.
  void AppendMemberPositions(std::string_view text,
                             std::vector<uint32_t>* out) const;

  /// Position of the first member at or after `from`; text.size() if none.
  size_t FindFirstMember(std::string_view text, size_t from) const;

  /// SWAR broadcast-compare pays off only for narrow sets; wider ones use
  /// the branchless table gather.
  static constexpr int kSwarMaxMembers = 8;

 private:
  /// The kernel family serving this classifier; a resolved kSimd engine
  /// maps to kAvx2 or kSse2 by CPU detection (and set width for SSE2).
  enum class Tier : uint8_t { kScalar, kSwar, kSse2, kAvx2 };

  void BuildTables(const CharSet& set);

  CharsetEngine engine_ = CharsetEngine::kScalar;
  Tier tier_ = Tier::kScalar;
  ByteClassTables tables_;
};

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_BYTE_CLASS_H_
