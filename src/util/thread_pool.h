#ifndef DATAMARAN_UTIL_THREAD_POOL_H_
#define DATAMARAN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

/// Reusable worker pool for the pipeline's embarrassingly parallel hot
/// paths (charset trials in generation, candidate scoring in evaluation,
/// chunked whole-file extraction). Design constraints:
///
///  * Determinism is the caller's contract: ParallelFor only promises that
///    every index runs exactly once; callers collect results into
///    per-index (or per-worker) slots and merge them in a fixed order so
///    output is byte-identical to a sequential run.
///  * No exceptions cross task boundaries (library code is no-throw).
///  * A pool of size 1 runs everything inline on the calling thread — the
///    `num_threads = 1` reference configuration has zero threading
///    overhead and exactly the pre-parallelism behavior.
///  * ParallelFor calls must not be nested (a task must not itself call
///    ParallelFor on the same pool); the pipeline parallelizes at one
///    level only.

namespace datamaran {

class ThreadPool {
 public:
  /// Creates a pool that runs work on `num_threads` threads total,
  /// including the caller of ParallelFor; `num_threads - 1` workers are
  /// spawned. Values < 1 are clamped to 1 (inline execution, no workers).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in ParallelFor (workers + caller).
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `fn(index, worker)` for every index in [0, count), distributing
  /// indices dynamically over all threads, and blocks until every call has
  /// returned. `worker` is in [0, thread_count()) and is stable within one
  /// ParallelFor call — use it to index per-worker scratch state. The
  /// calling thread participates as worker 0.
  void ParallelFor(size_t count,
                   const std::function<void(size_t index, int worker)>& fn);

  /// Convenience overload without the worker id.
  void ParallelFor(size_t count, const std::function<void(size_t index)>& fn);

  /// Hardware concurrency, always >= 1.
  static int DefaultThreadCount();

  /// Resolves an options-style thread count: 0 (auto) maps to
  /// DefaultThreadCount(), anything else is clamped to >= 1.
  static int ResolveThreadCount(int num_threads);

 private:
  /// One ParallelFor invocation shared between the caller and the workers.
  /// Held by shared_ptr so a straggling worker that copied the pointer can
  /// still touch the (completed) job after the caller has returned.
  struct Job {
    const std::function<void(size_t, int)>* fn = nullptr;
    size_t count = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void WorkerLoop(int worker_id);
  void RunJob(Job* job, int worker_id);

  std::vector<std::thread> workers_;

  // Job hand-off: ParallelFor publishes `job_` under `mutex_` and bumps
  // `job_seq_`; workers wake on `wake_`, drain the job, and the thread
  // finishing the last index signals `done_` back to the caller.
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::shared_ptr<Job> job_;
  uint64_t job_seq_ = 0;
  bool shutdown_ = false;
};

/// Runs `fn(index, worker)` over [0, count): inline (worker 0) when `pool`
/// is null or single-threaded, else via pool->ParallelFor. Lets call sites
/// treat "no pool" and "pool of 1" uniformly as the sequential reference
/// path.
void ForEachIndex(ThreadPool* pool, size_t count,
                  const std::function<void(size_t index, int worker)>& fn);

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_THREAD_POOL_H_
