#include "util/byte_class.h"

#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#if (defined(__GNUC__) || defined(__clang__)) && defined(__SSE2__)
#define DATAMARAN_BYTECLASS_X86 1
#endif
#endif

namespace datamaran {

namespace {

constexpr bool kLittleEndian =
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
    true;
#else
    false;
#endif

bool HaveAvx2() {
#ifdef DATAMARAN_BYTECLASS_X86
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Scalar kernel (the differential-test reference).

uint64_t ScalarMask64(const ByteClassTables& t, const char* p, size_t len) {
  uint64_t m = 0;
  for (size_t i = 0; i < len; ++i) {
    m |= static_cast<uint64_t>(t.table[static_cast<uint8_t>(p[i])]) << i;
  }
  return m;
}

// ---------------------------------------------------------------------------
// SWAR kernel: 8 bytes per uint64_t step, little-endian only.

/// High-bit-per-byte mask of the zero bytes of `v`. NOT the classic
/// `(v - 0x01..) & ~v & 0x80..` haszero trick: that one is exact only for
/// the LOWEST zero byte (borrow propagation can false-flag a 0x01 byte
/// sitting above a true zero — fine for compiled.cc's first-stop scan,
/// wrong here where every member bit is consumed). This form subtracts
/// with the high bit pre-set, so no borrow ever crosses a byte boundary
/// and each lane classifies independently.
inline uint64_t ZeroByteMask(uint64_t v) {
  return ~(((v | 0x8080808080808080ull) - 0x0101010101010101ull) | v) &
         0x8080808080808080ull;
}

/// Compresses a high-bit-per-byte mask into bits 0..7: byte j's high bit
/// becomes bit j. The multiply gathers the eight isolated bits into the top
/// byte (no carries: contributing terms land on distinct bit positions).
inline uint64_t CompressHighBits(uint64_t high_bits) {
  return ((high_bits >> 7) * 0x0102040810204080ull) >> 56;
}

/// Membership mask of exactly 8 bytes, one bit per byte (LSB = p[0]).
uint64_t SwarMask8(const ByteClassTables& t, const char* p) {
  uint64_t word;
  std::memcpy(&word, p, 8);
  if (t.member_count <= ByteClassifier::kSwarMaxMembers) {
    uint64_t hits = 0;
    for (int m = 0; m < t.member_count; ++m) {
      hits |= ZeroByteMask(word ^ t.bcast[static_cast<size_t>(m)]);
    }
    return CompressHighBits(hits);
  }
  // Wide set: branchless table gather (no data-dependent branches, still
  // one table load per byte but no per-byte loop-exit test).
  uint64_t m = 0;
  for (int j = 0; j < 8; ++j) {
    m |= static_cast<uint64_t>(
             t.table[static_cast<uint8_t>(word >> (j * 8))])
         << j;
  }
  return m;
}

uint64_t SwarMask64(const ByteClassTables& t, const char* p, size_t len) {
  if (len == 64) {
    uint64_t m = 0;
    for (int b = 0; b < 8; ++b) {
      m |= SwarMask8(t, p + b * 8) << (b * 8);
    }
    return m;
  }
  // Tail: zero-padded copy, then mask off the padding bits (NUL may be a
  // member, so padding must be masked, not trusted to classify as 0).
  char buf[64] = {};
  std::memcpy(buf, p, len);
  uint64_t m = 0;
  for (int b = 0; b < 8; ++b) {
    m |= SwarMask8(t, buf + b * 8) << (b * 8);
  }
  return m & (len < 64 ? (uint64_t{1} << len) - 1 : ~uint64_t{0});
}

#ifdef DATAMARAN_BYTECLASS_X86

// ---------------------------------------------------------------------------
// SSE2 kernel: one compare per member byte, 16 input bytes per step.
// Baseline ISA on x86-64, so no target attribute is needed.

/// Movemask of the members within 16 bytes at `p` (must be readable).
inline uint32_t Sse2Mask16(const ByteClassTables& t, const char* p) {
  const __m128i input = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  __m128i hits = _mm_setzero_si128();
  for (int m = 0; m < t.member_count; ++m) {
    const __m128i needle =
        _mm_set1_epi8(static_cast<char>(t.member_bytes[static_cast<size_t>(m)]));
    hits = _mm_or_si128(hits, _mm_cmpeq_epi8(input, needle));
  }
  return static_cast<uint32_t>(_mm_movemask_epi8(hits));
}

uint64_t Sse2Mask64(const ByteClassTables& t, const char* p, size_t len) {
  if (len < 64) {
    char buf[64] = {};
    std::memcpy(buf, p, len);
    uint64_t m = 0;
    for (int b = 0; b < 4; ++b) {
      m |= static_cast<uint64_t>(Sse2Mask16(t, buf + b * 16)) << (b * 16);
    }
    return m & ((uint64_t{1} << len) - 1);
  }
  uint64_t m = 0;
  for (int b = 0; b < 4; ++b) {
    m |= static_cast<uint64_t>(Sse2Mask16(t, p + b * 16)) << (b * 16);
  }
  return m;
}

void Sse2AppendPositions(const ByteClassTables& t, std::string_view text,
                         std::vector<uint32_t>* out) {
  const char* const data = text.data();
  const size_t n = text.size();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    uint32_t m = Sse2Mask16(t, data + i);
    while (m != 0) {
      out->push_back(static_cast<uint32_t>(
          i + static_cast<size_t>(__builtin_ctz(m))));
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    if (t.table[static_cast<uint8_t>(data[i])] != 0) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

size_t Sse2FindFirst(const ByteClassTables& t, std::string_view text,
                     size_t from) {
  const char* const data = text.data();
  const size_t n = text.size();
  size_t q = from;
  for (; q + 16 <= n; q += 16) {
    const uint32_t m = Sse2Mask16(t, data + q);
    if (m != 0) return q + static_cast<size_t>(__builtin_ctz(m));
  }
  for (; q < n; ++q) {
    if (t.table[static_cast<uint8_t>(data[q])] != 0) return q;
  }
  return n;
}

// ---------------------------------------------------------------------------
// AVX2 kernel: nibble-shuffle classification of 32 arbitrary bytes against
// an arbitrary 256-bit set. Per-function target attribute keeps the rest of
// the translation unit baseline-ISA; callers guard with HaveAvx2().

__attribute__((target("avx2"))) inline uint32_t Avx2Mask32(
    const __m256i lo0, const __m256i lo1, const __m256i hi0, const __m256i hi1,
    const char* p) {
  const __m256i input =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  const __m256i nib_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(input, nib_mask);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(input, 4), nib_mask);
  const __m256i hits = _mm256_or_si256(
      _mm256_and_si256(_mm256_shuffle_epi8(lo0, lo),
                       _mm256_shuffle_epi8(hi0, hi)),
      _mm256_and_si256(_mm256_shuffle_epi8(lo1, lo),
                       _mm256_shuffle_epi8(hi1, hi)));
  const __m256i zero = _mm256_cmpeq_epi8(hits, _mm256_setzero_si256());
  return ~static_cast<uint32_t>(_mm256_movemask_epi8(zero));
}

__attribute__((target("avx2"))) inline __m256i Avx2Broadcast16(
    const std::array<uint8_t, 16>& bytes) {
  return _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes.data())));
}

__attribute__((target("avx2"))) uint64_t Avx2Mask64(const ByteClassTables& t,
                                                    const char* p,
                                                    size_t len) {
  const __m256i lo0 = Avx2Broadcast16(t.lo0);
  const __m256i lo1 = Avx2Broadcast16(t.lo1);
  const __m256i hi0 = Avx2Broadcast16(t.hi0);
  const __m256i hi1 = Avx2Broadcast16(t.hi1);
  if (len < 64) {
    char buf[64] = {};
    std::memcpy(buf, p, len);
    const uint64_t m =
        static_cast<uint64_t>(Avx2Mask32(lo0, lo1, hi0, hi1, buf)) |
        (static_cast<uint64_t>(Avx2Mask32(lo0, lo1, hi0, hi1, buf + 32))
         << 32);
    return m & ((uint64_t{1} << len) - 1);
  }
  return static_cast<uint64_t>(Avx2Mask32(lo0, lo1, hi0, hi1, p)) |
         (static_cast<uint64_t>(Avx2Mask32(lo0, lo1, hi0, hi1, p + 32))
          << 32);
}

__attribute__((target("avx2"))) void Avx2AppendPositions(
    const ByteClassTables& t, std::string_view text,
    std::vector<uint32_t>* out) {
  const __m256i lo0 = Avx2Broadcast16(t.lo0);
  const __m256i lo1 = Avx2Broadcast16(t.lo1);
  const __m256i hi0 = Avx2Broadcast16(t.hi0);
  const __m256i hi1 = Avx2Broadcast16(t.hi1);
  const char* const data = text.data();
  const size_t n = text.size();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    uint32_t m = Avx2Mask32(lo0, lo1, hi0, hi1, data + i);
    while (m != 0) {
      out->push_back(static_cast<uint32_t>(
          i + static_cast<size_t>(__builtin_ctz(m))));
      m &= m - 1;
    }
  }
  for (; i < n; ++i) {
    if (t.table[static_cast<uint8_t>(data[i])] != 0) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

__attribute__((target("avx2"))) size_t Avx2FindFirst(const ByteClassTables& t,
                                                     std::string_view text,
                                                     size_t from) {
  const __m256i lo0 = Avx2Broadcast16(t.lo0);
  const __m256i lo1 = Avx2Broadcast16(t.lo1);
  const __m256i hi0 = Avx2Broadcast16(t.hi0);
  const __m256i hi1 = Avx2Broadcast16(t.hi1);
  const char* const data = text.data();
  const size_t n = text.size();
  size_t q = from;
  for (; q + 32 <= n; q += 32) {
    const uint32_t m = Avx2Mask32(lo0, lo1, hi0, hi1, data + q);
    if (m != 0) return q + static_cast<size_t>(__builtin_ctz(m));
  }
  for (; q < n; ++q) {
    if (t.table[static_cast<uint8_t>(data[q])] != 0) return q;
  }
  return n;
}

#endif  // DATAMARAN_BYTECLASS_X86

}  // namespace

CharsetEngine ResolveCharsetEngine(CharsetEngine requested) {
  switch (requested) {
    case CharsetEngine::kSimd:
#ifdef DATAMARAN_BYTECLASS_X86
      return CharsetEngine::kSimd;  // SSE2 is the x86-64 baseline
#else
      return kLittleEndian ? CharsetEngine::kSwar : CharsetEngine::kScalar;
#endif
    case CharsetEngine::kSwar:
      return kLittleEndian ? CharsetEngine::kSwar : CharsetEngine::kScalar;
    case CharsetEngine::kScalar:
      break;
  }
  return CharsetEngine::kScalar;
}

const char* CharsetEngineName(CharsetEngine engine) {
  switch (engine) {
    case CharsetEngine::kScalar:
      return "scalar";
    case CharsetEngine::kSwar:
      return "swar";
    case CharsetEngine::kSimd:
      return "simd";
  }
  return "scalar";
}

const char* CharsetSimdLevel() {
#ifdef DATAMARAN_BYTECLASS_X86
  return HaveAvx2() ? "avx2" : "sse2";
#else
  return "none";
#endif
}

void ByteClassifier::BuildTables(const CharSet& set) {
  tables_ = ByteClassTables{};
  for (int c = 0; c < 256; ++c) {
    if (!set.Contains(static_cast<unsigned char>(c))) continue;
    tables_.table[static_cast<size_t>(c)] = 1;
    const int lo = c & 0x0f;
    const int hi = c >> 4;
    if (hi < 8) {
      tables_.lo0[static_cast<size_t>(lo)] |=
          static_cast<uint8_t>(1u << hi);
    } else {
      tables_.lo1[static_cast<size_t>(lo)] |=
          static_cast<uint8_t>(1u << (hi - 8));
    }
    if (tables_.member_count < 16) {
      tables_.member_bytes[static_cast<size_t>(tables_.member_count)] =
          static_cast<uint8_t>(c);
    }
    if (tables_.member_count < kSwarMaxMembers) {
      tables_.bcast[static_cast<size_t>(tables_.member_count)] =
          0x0101010101010101ull * static_cast<uint8_t>(c);
    }
    ++tables_.member_count;
  }
  for (int h = 0; h < 16; ++h) {
    tables_.hi0[static_cast<size_t>(h)] =
        h < 8 ? static_cast<uint8_t>(1u << h) : 0;
    tables_.hi1[static_cast<size_t>(h)] =
        h >= 8 ? static_cast<uint8_t>(1u << (h - 8)) : 0;
  }
}

ByteClassifier::ByteClassifier(const CharSet& set, CharsetEngine engine) {
  BuildTables(set);
  engine_ = ResolveCharsetEngine(engine);
  switch (engine_) {
    case CharsetEngine::kScalar:
      tier_ = Tier::kScalar;
      break;
    case CharsetEngine::kSwar:
      tier_ = Tier::kSwar;
      break;
    case CharsetEngine::kSimd:
      if (HaveAvx2()) {
        tier_ = Tier::kAvx2;
      } else if (tables_.member_count <= 16) {
        tier_ = Tier::kSse2;
      } else {
        // SSE2 classifies by one compare per member; past 16 members the
        // SWAR table gather is the better (and simpler) fallback rung.
        tier_ = Tier::kSwar;
      }
      break;
  }
#ifndef DATAMARAN_BYTECLASS_X86
  if (tier_ == Tier::kSse2 || tier_ == Tier::kAvx2) tier_ = Tier::kSwar;
#endif
}

uint64_t ByteClassifier::MaskBlock(std::string_view text, size_t pos) const {
  if (pos >= text.size()) return 0;
  const char* const p = text.data() + pos;
  const size_t len =
      text.size() - pos < 64 ? text.size() - pos : size_t{64};
  switch (tier_) {
#ifdef DATAMARAN_BYTECLASS_X86
    case Tier::kAvx2:
      return Avx2Mask64(tables_, p, len);
    case Tier::kSse2:
      return Sse2Mask64(tables_, p, len);
#else
    case Tier::kAvx2:
    case Tier::kSse2:
      break;
#endif
    case Tier::kSwar:
      return SwarMask64(tables_, p, len);
    case Tier::kScalar:
      break;
  }
  return ScalarMask64(tables_, p, len);
}

void ByteClassifier::AppendMemberPositions(std::string_view text,
                                           std::vector<uint32_t>* out) const {
#ifdef DATAMARAN_BYTECLASS_X86
  if (tier_ == Tier::kAvx2) {
    Avx2AppendPositions(tables_, text, out);
    return;
  }
  if (tier_ == Tier::kSse2) {
    Sse2AppendPositions(tables_, text, out);
    return;
  }
#endif
  if (tier_ == Tier::kSwar) {
    const char* const data = text.data();
    const size_t n = text.size();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      uint64_t m = SwarMask8(tables_, data + i);
      while (m != 0) {
        out->push_back(static_cast<uint32_t>(
            i + static_cast<size_t>(__builtin_ctzll(m))));
        m &= m - 1;
      }
    }
    for (; i < n; ++i) {
      if (tables_.table[static_cast<uint8_t>(data[i])] != 0) {
        out->push_back(static_cast<uint32_t>(i));
      }
    }
    return;
  }
  for (size_t i = 0; i < text.size(); ++i) {
    if (tables_.table[static_cast<uint8_t>(text[i])] != 0) {
      out->push_back(static_cast<uint32_t>(i));
    }
  }
}

size_t ByteClassifier::FindFirstMember(std::string_view text,
                                       size_t from) const {
  const size_t n = text.size();
  if (from >= n) return n;
#ifdef DATAMARAN_BYTECLASS_X86
  if (tier_ == Tier::kAvx2) return Avx2FindFirst(tables_, text, from);
  if (tier_ == Tier::kSse2) return Sse2FindFirst(tables_, text, from);
#endif
  if (tier_ == Tier::kSwar) {
    const char* const data = text.data();
    size_t q = from;
    for (; q + 8 <= n; q += 8) {
      const uint64_t m = SwarMask8(tables_, data + q);
      if (m != 0) return q + static_cast<size_t>(__builtin_ctzll(m));
    }
    for (; q < n; ++q) {
      if (tables_.table[static_cast<uint8_t>(data[q])] != 0) return q;
    }
    return n;
  }
  for (size_t q = from; q < n; ++q) {
    if (tables_.table[static_cast<uint8_t>(text[q])] != 0) return q;
  }
  return n;
}

}  // namespace datamaran
