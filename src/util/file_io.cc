#include "util/file_io.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DM_HAVE_MMAP 1
#define DM_HAVE_FLOCK 1
#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace datamaran {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for read: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  out.resize(static_cast<size_t>(size));
  size_t got = size > 0 ? std::fread(out.data(), 1, out.size(), f) : 0;
  std::fclose(f);
  if (got != out.size()) {
    return Status::IoError("short read: " + path);
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + path);
  }
  size_t put = contents.empty()
                   ? 0
                   : std::fwrite(contents.data(), 1, contents.size(), f);
  int rc = std::fclose(f);
  if (put != contents.size() || rc != 0) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string tmp = path + "." + std::to_string(::getpid()) + ".tmp";
#else
  const std::string tmp = path + ".tmp";
#endif
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + tmp);
  }
  const size_t put = contents.empty()
                         ? 0
                         : std::fwrite(contents.data(), 1, contents.size(), f);
  bool flushed = std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  // Durability before visibility: the rename must not land before the data.
  if (flushed) flushed = ::fsync(::fileno(f)) == 0;
#endif
  const int rc = std::fclose(f);
  if (put != contents.size() || !flushed || rc != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("short write: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename failed: " + tmp + " -> " + path);
  }
  return Status::Ok();
}

FileLock::~FileLock() { Release(); }

FileLock::FileLock(FileLock&& other) noexcept {
  fd_ = other.fd_;
  sidecar_ = std::move(other.sidecar_);
  other.fd_ = -1;
  other.sidecar_.clear();
}

FileLock& FileLock::operator=(FileLock&& other) noexcept {
  if (this == &other) return *this;
  Release();
  fd_ = other.fd_;
  sidecar_ = std::move(other.sidecar_);
  other.fd_ = -1;
  other.sidecar_.clear();
  return *this;
}

void FileLock::UnlinkSidecar() {
#if DM_HAVE_FLOCK
  // Only while held: unlinking an inode someone else holds the lock on
  // would be their call to make, not ours.
  if (fd_ >= 0 && !sidecar_.empty()) {
    (void)::unlink(sidecar_.c_str());
  }
#endif
}

void FileLock::Release() {
#if DM_HAVE_FLOCK
  if (fd_ >= 0) {
    // Close drops the flock; an explicit LOCK_UN first keeps the release
    // ordered before any later reopen of the same sidecar in this process.
    (void)::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
#endif
  fd_ = -1;
  sidecar_.clear();
}

Result<FileLock> FileLock::Acquire(const std::string& path) {
  FileLock lock;
#if DM_HAVE_FLOCK
  const std::string sidecar = path + ".lock";
  for (;;) {
    int fd = ::open(sidecar.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0666);
    if (fd < 0) {
      return Status::IoError("cannot open lock file: " + sidecar);
    }
    int rc;
    do {
      rc = ::flock(fd, LOCK_EX);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      ::close(fd);
      return Status::IoError("flock failed: " + sidecar);
    }
    // A previous holder may have unlinked the sidecar (UnlinkSidecar)
    // between our open and our flock, leaving us exclusive on an orphaned
    // inode while a fresh acquirer locks a recreated one. Re-check that
    // the name still resolves to the inode we locked; if not, drop it and
    // race again on the live sidecar. Our held fd pins the old inode, so
    // its identity cannot be recycled under the comparison.
    struct stat by_path;
    struct stat by_fd;
    if (::stat(sidecar.c_str(), &by_path) != 0 ||
        ::fstat(fd, &by_fd) != 0 ||
        by_path.st_ino != by_fd.st_ino || by_path.st_dev != by_fd.st_dev) {
      (void)::flock(fd, LOCK_UN);
      ::close(fd);
      continue;
    }
    lock.fd_ = fd;
    lock.sidecar_ = sidecar;
    break;
  }
#else
  (void)path;
#endif
  return lock;
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir failed: " + path + ": " + ec.message());
  return Status::Ok();
}

MappedRegion::~MappedRegion() {
#if DM_HAVE_MMAP
  if (mapped_ && addr_ != nullptr) {
    ::munmap(addr_, size_);
  }
#endif
}

MappedRegion::MappedRegion(MappedRegion&& other) noexcept {
  *this = std::move(other);
}

MappedRegion& MappedRegion::operator=(MappedRegion&& other) noexcept {
  if (this == &other) return *this;
#if DM_HAVE_MMAP
  if (mapped_ && addr_ != nullptr) {
    ::munmap(addr_, size_);
  }
#endif
  addr_ = other.addr_;
  size_ = other.size_;
  mapped_ = other.mapped_;
  owned_ = std::move(other.owned_);
  other.addr_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.owned_.clear();
  return *this;
}

MappedRegion MappedRegion::FromOwned(std::string text) {
  MappedRegion region;
  region.owned_ = std::move(text);
  return region;
}

std::string MappedRegion::ReleaseOwned() {
  std::string out = std::move(owned_);
  owned_.clear();
  return out;
}

Result<size_t> FileSizeBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IoError("cannot stat: " + path + ": " + ec.message());
  return static_cast<size_t>(size);
}

Result<int64_t> FileMtimeNs(const std::string& path) {
  std::error_code ec;
  const auto t = std::filesystem::last_write_time(path, ec);
  if (ec) return Status::IoError("cannot stat: " + path + ": " + ec.message());
  return static_cast<int64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          t.time_since_epoch())
          .count());
}

size_t MappedRegion::ResidentBytes() const {
  if (!mapped_) return owned_.size();
#if DM_HAVE_MMAP
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  if (page == 0) return size_;
  const size_t pages = (size_ + page - 1) / page;
  std::string vec(pages, '\0');
#if defined(__APPLE__)
  using MincoreVec = char*;
#else
  using MincoreVec = unsigned char*;
#endif
  if (::mincore(addr_, size_, reinterpret_cast<MincoreVec>(vec.data())) != 0) {
    return size_;
  }
  size_t resident_pages = 0;
  for (char c : vec) resident_pages += static_cast<unsigned char>(c) & 1u;
  const size_t resident = resident_pages * page;
  return resident < size_ ? resident : size_;
#else
  return size_;
#endif
}

void MappedRegion::Advise(AccessHint hint) const {
#if DM_HAVE_MMAP && defined(MADV_NORMAL)
  if (!mapped_ || addr_ == nullptr || size_ == 0) return;
  int advice = MADV_NORMAL;
  switch (hint) {
    case AccessHint::kNormal:
      advice = MADV_NORMAL;
      break;
    case AccessHint::kSequential:
      advice = MADV_SEQUENTIAL;
      break;
    case AccessHint::kRandom:
      advice = MADV_RANDOM;
      break;
  }
  // Best effort: a failing madvise changes nothing but prefetch behavior.
  (void)::madvise(addr_, size_, advice);
#else
  (void)hint;
#endif
}

Result<MappedRegion> MmapFile(const std::string& path) {
#if DM_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open for read: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return MappedRegion::FromOwned(std::string());
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    // Graceful fallback: serve the bytes from an owned copy instead.
    auto text = ReadFileToString(path);
    if (!text.ok()) return text.status();
    return MappedRegion::FromOwned(std::move(text.value()));
  }
  MappedRegion region;
  region.addr_ = addr;
  region.size_ = size;
  region.mapped_ = true;
  return region;
#else
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return MappedRegion::FromOwned(std::move(text.value()));
#endif
}

}  // namespace datamaran
