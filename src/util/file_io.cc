#include "util/file_io.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

namespace datamaran {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for read: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat: " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  out.resize(static_cast<size_t>(size));
  size_t got = size > 0 ? std::fread(out.data(), 1, out.size(), f) : 0;
  std::fclose(f);
  if (got != out.size()) {
    return Status::IoError("short read: " + path);
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + path);
  }
  size_t put = contents.empty()
                   ? 0
                   : std::fwrite(contents.data(), 1, contents.size(), f);
  int rc = std::fclose(f);
  if (put != contents.size() || rc != 0) {
    return Status::IoError("short write: " + path);
  }
  return Status::Ok();
}

Status MakeDirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return Status::IoError("mkdir failed: " + path + ": " + ec.message());
  return Status::Ok();
}

}  // namespace datamaran
