#ifndef DATAMARAN_UTIL_JSON_H_
#define DATAMARAN_UTIL_JSON_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

/// Minimal strict JSON reader, the inverse of this repo's hand-rolled JSON
/// writers (core/summary.cc, the crawl manifest, extraction/sinks.h
/// AppendJsonEscaped). Datamaran re-reads only documents it wrote itself —
/// the incremental re-crawl loads the previous run's manifest — but the
/// parser is a complete, bounds-checked JSON value parser (objects, arrays,
/// strings with full escape handling, numbers, bool, null) so a truncated
/// or hand-edited manifest degrades to a clean error, never undefined
/// behavior. Numbers keep their raw token alongside the double, so size_t
/// counters round-trip exactly through AsUint64.

namespace datamaran {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string raw_number;  ///< exact source token (integer round-trips)
  std::string str;         ///< decoded bytes (escapes resolved)
  std::vector<JsonValue> items;  ///< kArray elements in order
  /// kObject members in document order (duplicate keys kept; Find returns
  /// the first).
  std::vector<std::pair<std::string, JsonValue>> members;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// First member with `key`, or nullptr (also for non-objects).
  const JsonValue* Find(std::string_view key) const;

  /// Typed accessors: engaged only when the kind matches (and, for the
  /// integer forms, when the raw token is exactly an integer in range).
  std::optional<int64_t> AsInt64() const;
  std::optional<uint64_t> AsUint64() const;
  std::optional<double> AsDouble() const;
  std::optional<bool> AsBool() const;
  const std::string* AsString() const;
};

/// Parses exactly one JSON document (trailing whitespace allowed, anything
/// else is an error). Nesting is capped at a fixed depth so hostile input
/// cannot exhaust the stack.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_JSON_H_
