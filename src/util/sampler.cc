#include "util/sampler.h"

#include <algorithm>

#include "util/common.h"

namespace datamaran {

std::string SampleLines(std::string_view text, const SamplerOptions& options) {
  if (text.size() <= options.max_sample_bytes) {
    return std::string(text);
  }
  DM_CHECK(options.num_chunks > 0);
  const size_t chunk_bytes = options.max_sample_bytes / options.num_chunks;
  const size_t stride = text.size() / options.num_chunks;
  std::string sample;
  sample.reserve(options.max_sample_bytes + 1024);
  size_t last_end = 0;  // avoid overlapping chunks
  for (int i = 0; i < options.num_chunks; ++i) {
    size_t nominal = static_cast<size_t>(i) * stride;
    size_t begin = std::max(nominal, last_end);
    if (begin >= text.size()) break;
    // Align the start to the character after the previous '\n'.
    if (begin > 0) {
      size_t nl = text.find('\n', begin);
      if (nl == std::string_view::npos) break;
      begin = nl + 1;
    }
    if (begin >= text.size()) break;
    size_t end = std::min(begin + chunk_bytes, text.size());
    // Extend to the end of the current line (inclusive of '\n').
    size_t nl = text.find('\n', end);
    end = (nl == std::string_view::npos) ? text.size() : nl + 1;
    sample.append(text.substr(begin, end - begin));
    last_end = end;
  }
  // Ensure the sample ends with a newline so the last block is well formed.
  if (!sample.empty() && sample.back() != '\n') sample.push_back('\n');
  return sample;
}

}  // namespace datamaran
