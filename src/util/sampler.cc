#include "util/sampler.h"

#include <algorithm>

#include "util/common.h"

namespace datamaran {

std::vector<SampleRange> SampleRanges(std::string_view text,
                                      const SamplerOptions& options) {
  if (text.size() <= options.max_sample_bytes) {
    return {{0, text.size()}};
  }
  DM_CHECK(options.num_chunks > 0);
  const size_t chunk_bytes = options.max_sample_bytes / options.num_chunks;
  const size_t stride = text.size() / options.num_chunks;
  std::vector<SampleRange> ranges;
  size_t last_end = 0;  // avoid overlapping chunks
  for (int i = 0; i < options.num_chunks; ++i) {
    size_t nominal = static_cast<size_t>(i) * stride;
    size_t begin = std::max(nominal, last_end);
    if (begin >= text.size()) break;
    // Align the start to the character after the previous '\n'.
    if (begin > 0) {
      size_t nl = text.find('\n', begin);
      if (nl == std::string_view::npos) break;
      begin = nl + 1;
    }
    if (begin >= text.size()) break;
    size_t end = std::min(begin + chunk_bytes, text.size());
    // Extend to the end of the current line (inclusive of '\n').
    size_t nl = text.find('\n', end);
    end = (nl == std::string_view::npos) ? text.size() : nl + 1;
    ranges.push_back({begin, end});
    last_end = end;
  }
  return ranges;
}

DatasetView SampleView(const Dataset& data, const SamplerOptions& options) {
  // Oversized-line containment: a line beyond the cap never enters the
  // sample (and with it generation's per-line token index); it can only
  // ever be noise. The check is a pure function of the line length, so the
  // sample is identical for every backing and thread count.
  const size_t cap = options.max_line_bytes;
  const auto line_ok = [&](size_t li) {
    return cap == 0 || data.line(li).size() <= cap;
  };
  std::vector<SampleRange> ranges = SampleRanges(data.text(), options);
  if (ranges.size() == 1 && ranges[0].begin == 0 &&
      ranges[0].end == data.size_bytes()) {
    bool all_ok = true;
    if (cap != 0) {
      for (size_t li = 0; li < data.line_count() && all_ok; ++li) {
        all_ok = line_ok(li);
      }
    }
    if (all_ok) return DatasetView(data);
  }
  std::vector<uint32_t> live;
  for (const SampleRange& r : ranges) {
    // Range bounds are line-aligned by construction, so the covered lines
    // are exactly those whose begin falls inside the range.
    size_t li = data.LineOfOffset(r.begin);
    if (data.line_begin(li) < r.begin) ++li;
    for (; li < data.line_count() && data.line_begin(li) < r.end; ++li) {
      if (line_ok(li)) live.push_back(static_cast<uint32_t>(li));
    }
  }
  return DatasetView(data, std::move(live));
}

}  // namespace datamaran
