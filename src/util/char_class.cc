#include "util/char_class.h"

#include <algorithm>
#include <bit>

namespace datamaran {

CharSet CharSet::Of(std::string_view chars) {
  CharSet s;
  for (char c : chars) s.Add(static_cast<unsigned char>(c));
  return s;
}

int CharSet::Size() const {
  int n = 0;
  for (uint64_t w : bits_) n += std::popcount(w);
  return n;
}

std::string CharSet::ToString() const {
  std::string out;
  for (int c = 0; c < 256; ++c) {
    if (Contains(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

bool CharSet::IsSubsetOf(const CharSet& other) const {
  for (int i = 0; i < 4; ++i) {
    if ((bits_[i] & ~other.bits_[i]) != 0) return false;
  }
  return true;
}

CharSet CharSet::Union(const CharSet& other) const {
  CharSet out;
  for (int i = 0; i < 4; ++i) out.bits_[i] = bits_[i] | other.bits_[i];
  return out;
}

CharSet CharSet::Intersect(const CharSet& other) const {
  CharSet out;
  for (int i = 0; i < 4; ++i) out.bits_[i] = bits_[i] & other.bits_[i];
  return out;
}

const CharSet& DefaultSpecialChars() {
  // Function-local static of a trivially-destructible-enough type is the
  // allowed pattern for lazily built constants (no exit-time destructor
  // ordering hazard matters for a leaf utility).
  static const CharSet* kSet = [] {
    auto* s = new CharSet();
    const std::string_view punct =
        "!\"#$%&'()*+,-./:;<=>?@[\\]^_`{|}~ \t";
    for (char c : punct) s->Add(static_cast<unsigned char>(c));
    return s;
  }();
  return *kSet;
}

bool IsDefaultSpecial(unsigned char c) {
  return DefaultSpecialChars().Contains(c);
}

std::vector<std::pair<char, size_t>> CountSpecialChars(
    std::string_view text, const CharSet& special) {
  std::array<size_t, 256> counts{};
  for (char c : text) counts[static_cast<unsigned char>(c)]++;
  return SortSpecialCounts(counts, special);
}

std::vector<std::pair<char, size_t>> SortSpecialCounts(
    const std::array<size_t, 256>& counts, const CharSet& special) {
  std::vector<std::pair<char, size_t>> out;
  for (int c = 0; c < 256; ++c) {
    if (counts[c] > 0 && special.Contains(static_cast<unsigned char>(c))) {
      out.emplace_back(static_cast<char>(c), counts[c]);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace datamaran
