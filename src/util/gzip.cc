#include "util/gzip.h"

#include <algorithm>

#include "util/strings.h"

#if defined(DM_HAVE_ZLIB)
#include <zlib.h>
#endif

namespace datamaran {

bool GzipSupported() {
#if defined(DM_HAVE_ZLIB)
  return true;
#else
  return false;
#endif
}

bool LooksGzip(std::string_view head) {
  return head.size() >= 2 && static_cast<unsigned char>(head[0]) == 0x1f &&
         static_cast<unsigned char>(head[1]) == 0x8b;
}

#if defined(DM_HAVE_ZLIB)

Result<std::string> GunzipToString(std::string_view compressed,
                                   size_t max_output_bytes) {
  z_stream strm{};
  // windowBits 15+32: auto-detect gzip or zlib wrapping.
  if (inflateInit2(&strm, 15 + 32) != Z_OK) {
    return Status::Internal("zlib: inflateInit failed");
  }
  std::string out;
  // Chunked output keeps the working set bounded even though the result is
  // one owned string; the compressed input is consumed as-is (typically a
  // lazily-faulting mmap of the .gz file).
  char buf[256 * 1024];
  strm.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(compressed.data()));
  strm.avail_in = static_cast<uInt>(compressed.size());
  // Very large compressed inputs exceed uInt; feed them in slices.
  size_t fed = static_cast<size_t>(strm.avail_in);
  int rc = Z_OK;
  for (;;) {
    strm.next_out = reinterpret_cast<Bytef*>(buf);
    strm.avail_out = sizeof(buf);
    rc = inflate(&strm, Z_NO_FLUSH);
    const size_t produced = sizeof(buf) - strm.avail_out;
    if (produced > 0) {
      if (max_output_bytes != 0 && out.size() + produced > max_output_bytes) {
        inflateEnd(&strm);
        return Status::IoError(
            StrFormat("gzip: inflated size exceeds cap of %zu bytes "
                      "(decompression-bomb guard; raise --max-inflate-bytes "
                      "to override)",
                      max_output_bytes));
      }
      out.append(buf, produced);
    }
    if (rc == Z_STREAM_END) {
      // End of one gzip member. Rotated logs are often concatenated
      // members; keep inflating while compressed bytes remain.
      const size_t remaining =
          compressed.size() - fed + static_cast<size_t>(strm.avail_in);
      if (remaining == 0) break;
      if (inflateReset2(&strm, 15 + 32) != Z_OK) {
        inflateEnd(&strm);
        return Status::Internal("zlib: inflateReset failed");
      }
      strm.next_in = reinterpret_cast<Bytef*>(
          const_cast<char*>(compressed.data() + (compressed.size() -
                                                 remaining)));
      strm.avail_in = static_cast<uInt>(remaining);
      fed = compressed.size();
      continue;
    }
    if (rc == Z_OK || rc == Z_BUF_ERROR) {
      if (strm.avail_in == 0) {
        if (fed < compressed.size()) {
          const size_t slice =
              std::min<size_t>(compressed.size() - fed, 1u << 30);
          strm.next_in = reinterpret_cast<Bytef*>(
              const_cast<char*>(compressed.data() + fed));
          strm.avail_in = static_cast<uInt>(slice);
          fed += slice;
          continue;
        }
        // All input consumed without reaching Z_STREAM_END: the file was
        // cut mid-member (a crashed writer or partial copy).
        inflateEnd(&strm);
        return Status::IoError("gzip: truncated stream (input ended before "
                               "the end of a compressed member)");
      }
      continue;  // output buffer was full; drain more
    }
    inflateEnd(&strm);
    return Status::IoError(StrFormat(
        "gzip: corrupt stream (%s)",
        strm.msg != nullptr ? strm.msg : "inflate error"));
  }
  inflateEnd(&strm);
  return out;
}

Result<std::string> GzipCompress(std::string_view text) {
  z_stream strm{};
  // windowBits 15+16: emit the gzip container (not raw zlib).
  if (deflateInit2(&strm, Z_DEFAULT_COMPRESSION, Z_DEFLATED, 15 + 16, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    return Status::Internal("zlib: deflateInit failed");
  }
  std::string out;
  char buf[64 * 1024];
  size_t fed = 0;
  int rc = Z_OK;
  do {
    if (strm.avail_in == 0 && fed < text.size()) {
      const size_t slice = std::min<size_t>(text.size() - fed, 1u << 30);
      strm.next_in =
          reinterpret_cast<Bytef*>(const_cast<char*>(text.data() + fed));
      strm.avail_in = static_cast<uInt>(slice);
      fed += slice;
    }
    strm.next_out = reinterpret_cast<Bytef*>(buf);
    strm.avail_out = sizeof(buf);
    const int flush = fed == text.size() ? Z_FINISH : Z_NO_FLUSH;
    rc = deflate(&strm, flush);
    if (rc == Z_STREAM_ERROR) {
      deflateEnd(&strm);
      return Status::Internal("zlib: deflate failed");
    }
    out.append(buf, sizeof(buf) - strm.avail_out);
  } while (rc != Z_STREAM_END);
  deflateEnd(&strm);
  return out;
}

#else  // !DM_HAVE_ZLIB

Result<std::string> GunzipToString(std::string_view /*compressed*/,
                                   size_t /*max_output_bytes*/) {
  return Status::InvalidArgument(
      "gzip input is not supported: datamaran was built without zlib");
}

Result<std::string> GzipCompress(std::string_view /*text*/) {
  return Status::InvalidArgument(
      "gzip output is not supported: datamaran was built without zlib");
}

#endif

}  // namespace datamaran
