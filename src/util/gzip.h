#ifndef DATAMARAN_UTIL_GZIP_H_
#define DATAMARAN_UTIL_GZIP_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

/// Streaming gzip/zlib decompression for the input layer. Real data lakes
/// are full of rotated-and-compressed logs (`app.log.2.gz`); the input
/// front-end (core/input.h) sniffs the magic bytes and inflates such files
/// into the Dataset's owned backing, so every downstream stage sees plain
/// text. Corrupt or truncated streams yield a descriptive error Status —
/// never a crash — which is what lets the crawler skip a bad file and keep
/// going. Built against zlib when available; without it, LooksGzip still
/// answers (so callers can produce a clear "not supported" error) and
/// GunzipToString returns that error.

namespace datamaran {

/// True when this build can inflate gzip input (zlib was available).
bool GzipSupported();

/// True when `head` starts with the gzip magic bytes (0x1f 0x8b). Needs at
/// least 2 bytes; shorter input is never gzip.
bool LooksGzip(std::string_view head);

/// Inflates a complete gzip stream into a string. Handles multi-member
/// files (rotated logs are often `cat`'d members) by continuing after each
/// member boundary. Errors are descriptive and non-fatal:
///  - corrupt bytes            -> IoError "corrupt gzip stream ..."
///  - stream cut mid-member    -> IoError "truncated gzip stream ..."
///  - output exceeding the cap -> IoError "inflated size exceeds cap ..."
/// `max_output_bytes` bounds the inflated size (decompression-bomb guard);
/// 0 means unlimited.
Result<std::string> GunzipToString(std::string_view compressed,
                                   size_t max_output_bytes = 0);

/// Deflates `text` into a single gzip member (the exact inverse of one
/// GunzipToString member). Used by tests to synthesize compressed inputs
/// in-process; InvalidArgument when the build has no zlib.
Result<std::string> GzipCompress(std::string_view text);

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_GZIP_H_
