#ifndef DATAMARAN_UTIL_CHAR_CLASS_H_
#define DATAMARAN_UTIL_CHAR_CLASS_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// Character classification for Assumption 2 (Non-Overlapping).
///
/// The paper predefines a collection of special characters
/// RT-CharSet-Candidate and assumes record-template character sets are
/// subsets of it; all remaining characters can only occur inside field
/// values. CharSet is a 256-bit set used to represent both the candidate
/// pool and the per-template RT-CharSet.

namespace datamaran {

/// A set of byte values with O(1) membership.
class CharSet {
 public:
  CharSet() : bits_{} {}

  /// Builds a set containing exactly the bytes of `chars`.
  static CharSet Of(std::string_view chars);

  void Add(unsigned char c) { bits_[c >> 6] |= (1ull << (c & 63)); }
  void Remove(unsigned char c) { bits_[c >> 6] &= ~(1ull << (c & 63)); }
  bool Contains(unsigned char c) const {
    return (bits_[c >> 6] >> (c & 63)) & 1;
  }

  /// Number of bytes in the set.
  int Size() const;
  bool Empty() const { return Size() == 0; }

  /// All member bytes in ascending order.
  std::string ToString() const;

  /// True if every member of this set is also in `other`.
  bool IsSubsetOf(const CharSet& other) const;

  CharSet Union(const CharSet& other) const;
  CharSet Intersect(const CharSet& other) const;

  friend bool operator==(const CharSet& a, const CharSet& b) {
    return a.bits_ == b.bits_;
  }

 private:
  std::array<uint64_t, 4> bits_;
};

/// The default RT-CharSet-Candidate: ASCII punctuation plus space and tab.
/// '\n' is handled separately (it is always a record-template character, by
/// Definition 2.4 blocks are '\n'-separated).
const CharSet& DefaultSpecialChars();

/// True if `c` is in DefaultSpecialChars().
bool IsDefaultSpecial(unsigned char c);

/// Counts, for every byte in `special`, the number of occurrences in `text`.
/// Returns (char, count) pairs for chars with count > 0, most frequent first.
std::vector<std::pair<char, size_t>> CountSpecialChars(std::string_view text,
                                                       const CharSet& special);

/// Filters a raw per-byte histogram down to `special` members with count
/// > 0, most frequent first (ties by byte value). Shared by
/// CountSpecialChars and callers that accumulate counts over non-contiguous
/// text (e.g. the live lines of a DatasetView).
std::vector<std::pair<char, size_t>> SortSpecialCounts(
    const std::array<size_t, 256>& counts, const CharSet& special);

}  // namespace datamaran

#endif  // DATAMARAN_UTIL_CHAR_CLASS_H_
