#include "util/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "util/common.h"

namespace datamaran {

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitLines(std::string_view s) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start < s.size()) {
    size_t pos = s.find('\n', start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

namespace {
template <typename Piece>
std::string JoinImpl(const std::vector<Piece>& pieces, std::string_view sep) {
  std::string out;
  size_t total = 0;
  for (const auto& p : pieces) total += p.size() + sep.size();
  out.reserve(total);
  bool first = true;
  for (const auto& p : pieces) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}
std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view sep) {
  return JoinImpl(pieces, sep);
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' ||
                          s[b] == '\n'))
    ++b;
  size_t e = s.size();
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  size_t i = 0;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    i = 1;
    if (s.size() == 1) return std::nullopt;
  }
  // Reject "01" style padding? No: log fields routinely zero-pad ("04"), and
  // the MDL integer coder only needs the numeric value, so padding parses.
  uint64_t v = 0;
  for (; i < s.size(); ++i) {
    char c = s[i];
    if (c < '0' || c > '9') return std::nullopt;
    uint64_t nv = v * 10 + static_cast<uint64_t>(c - '0');
    if (nv < v || nv > (1ull << 62)) return std::nullopt;  // overflow guard
    v = nv;
  }
  int64_t sv = static_cast<int64_t>(v);
  return neg ? -sv : sv;
}

std::optional<double> ParseDecimal(std::string_view s, int* exp_out) {
  if (s.empty()) return std::nullopt;
  size_t i = 0;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    i = 1;
  }
  size_t int_digits = 0, frac_digits = 0;
  double v = 0;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    v = v * 10 + (s[i] - '0');
    ++int_digits;
  }
  if (i < s.size() && s[i] == '.') {
    ++i;
    double scale = 0.1;
    for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
      v += (s[i] - '0') * scale;
      scale *= 0.1;
      ++frac_digits;
    }
    if (frac_digits == 0) return std::nullopt;  // "12." is not a decimal
  }
  if (i != s.size() || int_digits == 0) return std::nullopt;
  if (exp_out != nullptr) *exp_out = static_cast<int>(frac_digits);
  return neg ? -v : v;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  DM_CHECK(!from.empty());
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string EscapeForDisplay(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) >= 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\x%02X",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 3) {
    v /= 1024.0;
    ++u;
  }
  return StrFormat("%.1f %s", v, units[u]);
}

}  // namespace datamaran
