#ifndef DATAMARAN_DATAGEN_GITHUB_CORPUS_H_
#define DATAMARAN_DATAGEN_GITHUB_CORPUS_H_

#include <vector>

#include "datagen/spec.h"

/// The 100-dataset GitHub-style corpus (Section 5.3). Label distribution is
/// the unique assignment consistent with the paper's reported figures
/// (Fig 17a/17b: 85.7% = 12/14 on M(NI), 92.3% = 12/13 on S(I), 94.4% =
/// 17/18 on M(I), 95.5% = 85/89 overall, ~31% multi-line, ~32% interleaved):
///
///   S(NI) = 44   S(I) = 13   M(NI) = 14   M(I) = 18   NS = 11
///
/// Datasets are drawn from parameterized format families with difficulty
/// knobs chosen to reproduce the paper's failure causes (Section 9.4):
/// records longer than L lines, interleaved types with confusable
/// templates, lexer-hostile fields (for RecordBreaker), and noise.

namespace datamaran {

/// Number of datasets per label in the corpus.
inline constexpr int kGithubSingleNI = 44;
inline constexpr int kGithubSingleI = 13;
inline constexpr int kGithubMultiNI = 14;
inline constexpr int kGithubMultiI = 18;
inline constexpr int kGithubNoStructure = 11;
inline constexpr int kGithubCorpusSize = 100;

/// Builds corpus entry `index` (0..99). `bytes` controls the size
/// (default ~= the paper's ">20000 characters" criterion, scaled up a bit
/// for stable sampling).
GeneratedDataset BuildGithubDataset(int index, size_t bytes = 48 * 1024);

/// Builds the whole corpus.
std::vector<GeneratedDataset> BuildGithubCorpus(size_t bytes = 48 * 1024);

}  // namespace datamaran

#endif  // DATAMARAN_DATAGEN_GITHUB_CORPUS_H_
