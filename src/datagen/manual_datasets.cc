#include "datagen/manual_datasets.h"

#include <array>

#include "core/dataset.h"
#include "datagen/values.h"
#include "util/common.h"
#include "util/strings.h"

namespace datamaran {

namespace {

constexpr std::array<ManualDatasetInfo, kManualDatasetCount> kInfos = {{
    {"transaction_records", "transaction records", 0.07, 1, "1", true},
    {"comma_sep_records", "comma-sep records", 0.02, 1, "1", true},
    {"web_server_log", "web server log", 0.29, 1, "1", true},
    {"mac_asl_log", "log file of Mac ASL", 0.28, 1, "1", true},
    {"mac_boot_log", "Mac OS boot log", 0.02, 1, "1", true},
    {"crash_log", "crash log", 0.05, 1, "1(3)", true},
    {"crash_log_modified", "crash log (modified in [20])", 0.05, 1, "1(3)",
     true},
    {"ls_l_output", "ls -l output", 0.01, 1, "1", true},
    {"netstat_output", "netstat output", 0.01, 2, "1", true},
    {"printer_logs", "printer logs", 0.02, 1, "1", true},
    {"income_records", "personal income records", 0.01, 1, "1", true},
    {"railroad_info", "US railroad info", 0.01, 1, "1", true},
    {"application_log", "application log", 0.06, 1, "1", true},
    {"loginwindow_log", "LoginWindow server log", 0.05, 1, "1", true},
    {"pkg_install_log", "pkg install log", 0.02, 1, "1", true},
    {"thailand_districts", "Thailand district info", 0.19, 1, "8", false},
    {"stackexchange_xml", "stackexchange xml data", 20.0, 1, "1", false},
    {"vcf_genetic", "vcf genetic format", 167.4, 1, "1", false},
    {"fastq_genetic", "fastq genetic format", 29.9, 1, "4", false},
    {"blog_xml", "blog xml data", 0.06, 1, "10", false},
    {"github_log_1", "log file (1)", 0.03, 2, "9", false},
    {"github_log_2", "log file (2)", 0.01, 1, "3", false},
    {"github_log_3", "log file (3)", 0.19, 2, "1", false},
    {"github_log_4", "log file (4)", 0.07, 2, "10", false},
    {"github_log_5", "log file (5)", 0.09, 1, "4", false},
}};

/// Derives a 1-line-granularity alternative segmentation from the primary
/// multi-line one (used for the crash logs' "1(3)" span: both readings are
/// valid extractions). Record types in the alternative are
/// original_type * span + line_offset.
void AddLineSplitAlternative(GeneratedDataset* ds) {
  Dataset lines(std::string(ds->text));
  std::vector<GroundTruthRecord> alt;
  for (const GroundTruthRecord& rec : ds->records()) {
    for (int k = 0; k < rec.line_count; ++k) {
      GroundTruthRecord r;
      size_t li = rec.first_line + static_cast<size_t>(k);
      r.type = rec.type * rec.line_count + k;
      r.begin = lines.line_begin(li);
      r.end = lines.line_end(li);
      r.first_line = li;
      r.line_count = 1;
      for (const TargetSpan& t : rec.targets) {
        if (t.begin >= r.begin && t.end <= r.end) r.targets.push_back(t);
      }
      alt.push_back(std::move(r));
    }
  }
  ds->alternatives.push_back(std::move(alt));
}

using BuilderFn = GeneratedDataset (*)(size_t, uint64_t);

// ---------------------------------------------------------------- 0..14 --

GeneratedDataset BuildTransactionRecords(size_t bytes, uint64_t seed) {
  Rng rng(seed + 1);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Append("TXN ");
    b.Target("txn_id", GenInt(&rng, 100000, 999999));
    b.Append(" amount=");
    b.Target("amount", GenReal(&rng, 1, 9999, 2));
    b.Append(" user=");
    b.Target("user", GenIdent(&rng));
    b.Append(" status=");
    b.Field(rng.Bernoulli(0.9) ? "OK" : "FAIL");
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("transaction_records",
                 DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildCommaSep(size_t bytes, uint64_t seed) {
  Rng rng(seed + 2);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Target("id", GenInt(&rng, 1, 99999));
    b.Append(",");
    b.Target("name", GenWord(&rng));
    b.Append(",");
    b.Field(GenInt(&rng, 0, 120));
    b.Append(",");
    b.Field(GenWord(&rng));
    b.Append(",");
    b.Target("score", GenReal(&rng, 0, 100, 1));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("comma_sep_records", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildWebServerLog(size_t bytes, uint64_t seed) {
  Rng rng(seed + 3);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Target("ip", GenIp(&rng));
    b.Append(" - - [");
    b.TargetBegin("timestamp");
    b.Append(StrFormat("%02d/%s/2016:%s",
                       static_cast<int>(rng.Uniform(1, 28)),
                       rng.Bernoulli(0.5) ? "Apr" : "May",
                       GenTime(&rng).c_str()));
    b.TargetEnd();
    b.Append("] \"GET ");
    b.Target("path", "/" + GenWord(&rng) + "/" + GenWord(&rng) + "." +
                         (rng.Bernoulli(0.5) ? "html" : "png"));
    b.Append(" HTTP/1.0\" ");
    b.Target("status", GenInt(&rng, 200, 504));
    b.Append(" ");
    b.Field(GenInt(&rng, 100, 99999));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("web_server_log", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildMacAslLog(size_t bytes, uint64_t seed) {
  Rng rng(seed + 4);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Append("[Time ");
    b.Target("time", StrFormat("2016.%02d.%02d %s",
                               static_cast<int>(rng.Uniform(1, 12)),
                               static_cast<int>(rng.Uniform(1, 28)),
                               GenTime(&rng).c_str()));
    b.Append("] [Facility ");
    b.Field(GenWord(&rng));
    b.Append("] [Sender ");
    b.Field(GenIdent(&rng));
    b.Append("] [PID ");
    b.Target("pid", GenInt(&rng, 1, 9999));
    b.Append("] [Message ");
    b.Target("message", GenPhrase(&rng, 2, 6));
    b.Append("]\n");
    b.EndRecord();
  }
  return b.Build("mac_asl_log", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildMacBootLog(size_t bytes, uint64_t seed) {
  Rng rng(seed + 5);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Target("date", GenMonthDay(&rng));
    b.Append(" ");
    b.Target("time", GenTime(&rng));
    b.Append(" localhost kernel[0]: ");
    b.Target("message", GenPhrase(&rng, 2, 7));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("mac_boot_log", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildCrashLog(size_t bytes, uint64_t seed, bool modified) {
  Rng rng(seed + 6);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Append("Process: ");
    b.Target("process", GenIdent(&rng));
    b.Append(modified ? " [" : "  [");
    b.Target("pid", GenInt(&rng, 1, 99999));
    b.Append("]\n");
    b.Append("Path: ");
    b.Target("path", GenPath(&rng, 2, 2) + "/" + GenWord(&rng));
    b.Append("\n");
    b.Append("Version: ");
    b.Target("version", GenInt(&rng, 1, 9) + "." + GenInt(&rng, 0, 20));
    b.Append(" (");
    b.Field(GenInt(&rng, 100, 999));
    b.Append(")\n");
    b.EndRecord();
  }
  GeneratedDataset ds = b.Build(modified ? "crash_log_modified" : "crash_log",
                                DatasetLabel::kMultiNonInterleaved);
  // Table 5 reports span "1(3)": both readings are valid.
  AddLineSplitAlternative(&ds);
  return ds;
}

GeneratedDataset BuildLsL(size_t bytes, uint64_t seed) {
  Rng rng(seed + 7);
  DatasetBuilder b;
  const std::vector<std::string> perms = {"-rw-r--r--", "-rwxr-xr-x",
                                          "drwxr-xr-x", "-rw-------"};
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Field(rng.Choice(perms));
    b.Append(" ");
    b.Field(GenInt(&rng, 1, 9));
    b.Append(" root wheel ");
    b.Target("size", GenInt(&rng, 10, 4000000));
    b.Append(" ");
    b.Field(GenMonthDay(&rng));
    b.Append(" ");
    b.Field(StrFormat("%02d:%02d", static_cast<int>(rng.Uniform(0, 23)),
                      static_cast<int>(rng.Uniform(0, 59))));
    b.Append(" ");
    b.Target("filename", GenIdent(&rng) + "." + GenWord(&rng));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("ls_l_output", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildNetstat(size_t bytes, uint64_t seed) {
  Rng rng(seed + 8);
  DatasetBuilder b;
  b.NoiseLine("Active Internet connections");
  b.NoiseLine("Proto RecvQ SendQ Local Foreign State");
  while (b.size_bytes() < bytes) {
    if (rng.Bernoulli(0.6)) {
      b.BeginRecord(0);
      b.Field(rng.Bernoulli(0.7) ? "tcp4" : "tcp6");
      b.Append("  0  0  ");
      b.TargetBegin("local");
      b.Append(GenIp(&rng));
      b.Append(":");
      b.Append(GenInt(&rng, 1, 65535));
      b.TargetEnd();
      b.Append("  ");
      b.Field(GenIp(&rng) + ":" + GenInt(&rng, 1, 65535));
      b.Append("  ");
      b.Target("state", rng.Bernoulli(0.7) ? "ESTABLISHED" : "TIME_WAIT");
      b.Append("\n");
      b.EndRecord();
    } else {
      b.BeginRecord(1);
      b.Field("udp4");
      b.Append("  0  0  *.");
      b.Target("port", GenInt(&rng, 1, 65535));
      b.Append("  *.*\n");
      b.EndRecord();
    }
  }
  return b.Build("netstat_output", DatasetLabel::kSingleInterleaved);
}

GeneratedDataset BuildPrinterLogs(size_t bytes, uint64_t seed) {
  Rng rng(seed + 9);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Append("printer lp");
    b.Field(GenInt(&rng, 0, 3));
    b.Append(": job ");
    b.Target("job", GenInt(&rng, 1, 9999));
    b.Append(" user ");
    b.Target("user", GenIdent(&rng));
    b.Append(" ");
    b.Target("pages", GenInt(&rng, 1, 500));
    b.Append(" pages\n");
    b.EndRecord();
  }
  return b.Build("printer_logs", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildIncomeRecords(size_t bytes, uint64_t seed) {
  Rng rng(seed + 10);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Target("id", GenInt(&rng, 1000, 9999));
    b.Append("|");
    b.Target("name", GenWord(&rng));
    b.Append("|");
    b.Target("income", GenReal(&rng, 12000, 250000, 2));
    b.Append("|");
    b.Field(GenAlnum(&rng, 2));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("income_records", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildRailroadInfo(size_t bytes, uint64_t seed) {
  Rng rng(seed + 11);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.TargetBegin("railroad");
    b.Append(GenName(&rng));
    if (rng.Bernoulli(0.6)) b.Append(" " + GenName(&rng));
    b.TargetEnd();
    b.Append(";");
    b.Field(GenAlnum(&rng, 2));
    b.Append(";");
    b.Target("hq", GenName(&rng));
    b.Append(";");
    b.Target("miles", GenInt(&rng, 100, 33000));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("railroad_info", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildApplicationLog(size_t bytes, uint64_t seed) {
  Rng rng(seed + 12);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Target("date", GenDate(&rng));
    b.Append(" ");
    b.Target("time", GenTime(&rng) + "," + GenInt(&rng, 100, 999));
    b.Append(" ");
    b.Target("level", rng.Bernoulli(0.8) ? "INFO" : "ERROR");
    b.Append(" [main] com.app.");
    b.Field(GenWord(&rng));
    b.Append(" - ");
    b.Target("message", GenPhrase(&rng, 2, 6));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("application_log", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildLoginWindowLog(size_t bytes, uint64_t seed) {
  Rng rng(seed + 13);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Target("date", GenMonthDay(&rng));
    b.Append(" ");
    b.Target("time", GenTime(&rng));
    b.Append(" ");
    b.Field(GenHost(&rng));
    b.Append(" loginwindow[");
    b.Target("pid", GenInt(&rng, 1, 999));
    b.Append("]: ");
    b.Target("message", GenPhrase(&rng, 2, 6));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("loginwindow_log", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildPkgInstallLog(size_t bytes, uint64_t seed) {
  Rng rng(seed + 14);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Append("installd: PackageKit: install of \"");
    b.Target("package", GenWord(&rng) + "-" + GenInt(&rng, 1, 9) + "." +
                            GenInt(&rng, 0, 9) + ".pkg");
    b.Append("\" ");
    b.Field(rng.Bernoulli(0.9) ? "succeeded" : "failed");
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("pkg_install_log", DatasetLabel::kSingleNonInterleaved);
}

// --------------------------------------------------------------- 15..24 --

GeneratedDataset BuildThailandDistricts(size_t bytes, uint64_t seed) {
  Rng rng(seed + 15);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Append("{\n");
    b.Append("  \"id\": ");
    b.Target("id", GenInt(&rng, 1000, 9999));
    b.Append(",\n");
    b.Append("  \"name\": \"");
    b.Target("name", GenIdent(&rng));
    b.Append("\",\n");
    b.Append("  \"province\": \"");
    b.Field(GenWord(&rng));
    b.Append("\",\n");
    b.Append("  \"zip\": ");
    b.Target("zip", GenInt(&rng, 10000, 96000));
    b.Append(",\n");
    b.Append("  \"lat\": ");
    b.Field(GenReal(&rng, 5, 20, 4));
    b.Append(",\n");
    b.Append("  \"lng\": ");
    b.Field(GenReal(&rng, 97, 105, 4));
    b.Append("\n");
    b.Append("},\n");
    b.EndRecord();
  }
  return b.Build("thailand_districts", DatasetLabel::kMultiNonInterleaved);
}

GeneratedDataset BuildStackexchangeXml(size_t bytes, uint64_t seed) {
  Rng rng(seed + 16);
  DatasetBuilder b;
  b.NoiseLine("<?xml version=\"1.0\" encoding=\"utf-8\"?>");
  b.NoiseLine("<posts>");
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Append("  <row Id=\"");
    b.Target("id", GenInt(&rng, 1, 9999999));
    b.Append("\" PostTypeId=\"");
    b.Field(GenInt(&rng, 1, 2));
    b.Append("\" Score=\"");
    b.Target("score", GenInt(&rng, -5, 500));
    b.Append("\" Title=\"");
    b.Target("title", GenPhrase(&rng, 2, 8));
    b.Append("\" />\n");
    b.EndRecord();
  }
  return b.Build("stackexchange_xml", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildVcf(size_t bytes, uint64_t seed) {
  Rng rng(seed + 17);
  DatasetBuilder b;
  b.NoiseLine("##fileformat=VCFv4.2");
  b.NoiseLine("##source=datamaran_synthetic");
  b.NoiseLine("##reference=GRCh38");
  b.NoiseLine("#CHROM POS ID REF ALT QUAL FILTER INFO");
  const char* bases[] = {"A", "C", "G", "T"};
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Field(StrFormat("chr%d", static_cast<int>(rng.Uniform(1, 22))));
    b.Append("\t");
    b.Target("pos", GenInt(&rng, 10000, 248000000));
    b.Append("\trs");
    b.Field(GenInt(&rng, 1, 99999999));
    b.Append("\t");
    b.Target("ref", bases[rng.Uniform(0, 3)]);
    b.Append("\t");
    b.Target("alt", bases[rng.Uniform(0, 3)]);
    b.Append("\t");
    b.Field(GenReal(&rng, 1, 99, 1));
    b.Append("\tPASS\tDP=");
    b.Field(GenInt(&rng, 1, 99));
    b.Append(";AF=");
    b.Field(GenReal(&rng, 0, 0, 3));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("vcf_genetic", DatasetLabel::kSingleNonInterleaved);
}

GeneratedDataset BuildFastq(size_t bytes, uint64_t seed) {
  Rng rng(seed + 18);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    int len = static_cast<int>(rng.Uniform(36, 60));
    b.BeginRecord(0);
    b.Append("@");
    b.Target("read_id", "read_" + GenAlnum(&rng, 8));
    b.Append("/");
    b.Field(GenInt(&rng, 1, 2));
    b.Append("\n");
    b.Target("sequence", GenBases(&rng, len));
    b.Append("\n+\n");
    // Quality string: letters only (the high-quality Illumina range), so
    // the line stays template-consistent across records.
    std::string qual;
    for (int i = 0; i < len; ++i) {
      qual.push_back(static_cast<char>('A' + rng.Uniform(0, 25)));
    }
    b.Field(qual);
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("fastq_genetic", DatasetLabel::kMultiNonInterleaved);
}

GeneratedDataset BuildBlogXml(size_t bytes, uint64_t seed) {
  Rng rng(seed + 19);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Append("<post>\n  <id>");
    b.Target("id", GenInt(&rng, 1, 99999));
    b.Append("</id>\n  <author>");
    b.Target("author", GenIdent(&rng));
    b.Append("</author>\n  <date>");
    b.Target("date", GenDate(&rng));
    b.Append("</date>\n  <title>");
    b.Target("title", GenPhrase(&rng, 2, 5));
    b.Append("</title>\n  <likes>");
    b.Field(GenInt(&rng, 0, 9999));
    b.Append("</likes>\n  <tags>");
    int tags = static_cast<int>(rng.Uniform(1, 4));
    b.TargetBegin("tags");
    for (int t = 0; t < tags; ++t) {
      if (t > 0) b.Append(",");
      b.Append(GenWord(&rng));
    }
    b.TargetEnd();
    b.Append("</tags>\n  <body>");
    b.Field(GenPhrase(&rng, 4, 10));
    b.Append("</body>\n  <comments>");
    b.Field(GenInt(&rng, 0, 500));
    b.Append("</comments>\n</post>\n");
    b.EndRecord();
  }
  return b.Build("blog_xml", DatasetLabel::kMultiNonInterleaved);
}

GeneratedDataset BuildGithubLog1(size_t bytes, uint64_t seed) {
  Rng rng(seed + 20);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    if (rng.Bernoulli(0.45)) {
      // Type A: 9-line build report.
      b.BeginRecord(0);
      b.Append("==== build ");
      b.Target("build_id", GenInt(&rng, 1000, 9999));
      b.Append(" ====\n");
      const char* keys[] = {"target", "config", "arch",
                            "toolchain", "cache", "jobs"};
      for (const char* key : keys) {
        b.Append("  ");
        b.Append(key);
        b.Append(": ");
        b.Field(GenIdent(&rng));
        b.Append("\n");
      }
      b.Append("  elapsed: ");
      b.Target("elapsed", GenReal(&rng, 1, 600, 2));
      b.Append("\n");
      b.Append("====\n");
      b.EndRecord();
    } else {
      // Type B: single status line.
      b.BeginRecord(1);
      b.Append("status ");
      b.Target("status_code", GenInt(&rng, 0, 3));
      b.Append(" at ");
      b.Target("status_time", GenTime(&rng));
      b.Append("\n");
      b.EndRecord();
    }
  }
  return b.Build("github_log_1", DatasetLabel::kMultiInterleaved);
}

GeneratedDataset BuildGithubLog2(size_t bytes, uint64_t seed) {
  Rng rng(seed + 21);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    b.BeginRecord(0);
    b.Append(">> query ");
    b.Target("query_id", GenInt(&rng, 1, 99999));
    b.Append("\n   rows=");
    b.Target("rows", GenInt(&rng, 0, 1000000));
    b.Append(" ms=");
    b.Target("ms", GenReal(&rng, 0, 5000, 1));
    b.Append("\n<< done\n");
    b.EndRecord();
  }
  return b.Build("github_log_2", DatasetLabel::kMultiNonInterleaved);
}

GeneratedDataset BuildGithubLog3(size_t bytes, uint64_t seed) {
  Rng rng(seed + 22);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    if (rng.Bernoulli(0.55)) {
      b.BeginRecord(0);
      b.Append("[");
      b.Target("time", GenTime(&rng));
      b.Append("] db query user=");
      b.Target("user", GenIdent(&rng));
      b.Append(" rows=");
      b.Target("rows", GenInt(&rng, 0, 100000));
      b.Append("\n");
      b.EndRecord();
    } else {
      // Structurally distinct second type (pipe-separated).
      b.BeginRecord(1);
      b.Target("time", GenTime(&rng));
      b.Append("|cache|");
      b.Field(rng.Bernoulli(0.5) ? "hit" : "miss");
      b.Append("|");
      b.Target("key", GenAlnum(&rng, 12));
      b.Append("|\n");
      b.EndRecord();
    }
  }
  return b.Build("github_log_3", DatasetLabel::kSingleInterleaved);
}

GeneratedDataset BuildGithubLog4(size_t bytes, uint64_t seed) {
  Rng rng(seed + 23);
  DatasetBuilder b;
  while (b.size_bytes() < bytes) {
    // Aperiodic noise: periodic noise would legitimately be structure.
    if (rng.Bernoulli(0.15)) {
      b.NoiseLine("--- watchdog tick " + GenAlnum(&rng, 6) + " ---");
    }
    if (rng.Bernoulli(0.5)) {
      // Type A: 10-line stacktrace-ish block.
      b.BeginRecord(0);
      b.Append("EXC ");
      b.Target("exception", GenWord(&rng) + "_error");
      b.Append(" pid=");
      b.Target("pid", GenInt(&rng, 100, 65535));
      b.Append("\n");
      for (int f = 0; f < 8; ++f) {
        b.Append(StrFormat("  #%d ", f));
        b.Field(GenIdent(&rng));
        b.Append(" at ");
        b.Field(GenWord(&rng) + ".c");
        b.Append(":");
        b.Field(GenInt(&rng, 1, 2000));
        b.Append("\n");
      }
      b.Append("END\n");
      b.EndRecord();
    } else {
      b.BeginRecord(1);
      b.Append("hb ");
      b.Target("hb_seq", GenInt(&rng, 1, 999999));
      b.Append(" ok\n");
      b.EndRecord();
    }
  }
  return b.Build("github_log_4", DatasetLabel::kMultiInterleaved);
}

GeneratedDataset BuildGithubLog5(size_t bytes, uint64_t seed) {
  Rng rng(seed + 24);
  DatasetBuilder b;
  int n = 0;
  while (b.size_bytes() < bytes) {
    if (rng.Bernoulli(0.12)) {
      // Noise / incomplete record fragments (the user-study dataset 5 trait).
      if (rng.Bernoulli(0.5)) {
        b.NoiseLine("!! corrupted " + GenAlnum(&rng, 10));
      } else {
        b.NoiseLine("job " + GenInt(&rng, 1, 9999));  // truncated record
      }
      continue;
    }
    ++n;
    b.BeginRecord(0);
    b.Append("job ");
    b.Target("job_id", GenInt(&rng, 1, 9999));
    b.Append("\n  node: ");
    b.Target("node", GenHost(&rng));
    b.Append("\n  state: ");
    b.Target("state", rng.Bernoulli(0.8) ? "done" : "killed");
    b.Append("\n  wall: ");
    b.Target("wall", GenReal(&rng, 0, 3600, 2));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("github_log_5", DatasetLabel::kMultiNonInterleaved);
}

GeneratedDataset BuildCrashLogPlain(size_t bytes, uint64_t seed) {
  return BuildCrashLog(bytes, seed, /*modified=*/false);
}
GeneratedDataset BuildCrashLogModified(size_t bytes, uint64_t seed) {
  return BuildCrashLog(bytes, seed, /*modified=*/true);
}

constexpr std::array<BuilderFn, kManualDatasetCount> kBuilders = {{
    &BuildTransactionRecords, &BuildCommaSep, &BuildWebServerLog,
    &BuildMacAslLog, &BuildMacBootLog, &BuildCrashLogPlain,
    &BuildCrashLogModified, &BuildLsL, &BuildNetstat, &BuildPrinterLogs,
    &BuildIncomeRecords, &BuildRailroadInfo, &BuildApplicationLog,
    &BuildLoginWindowLog, &BuildPkgInstallLog, &BuildThailandDistricts,
    &BuildStackexchangeXml, &BuildVcf, &BuildFastq, &BuildBlogXml,
    &BuildGithubLog1, &BuildGithubLog2, &BuildGithubLog3, &BuildGithubLog4,
    &BuildGithubLog5,
}};

}  // namespace

const ManualDatasetInfo& GetManualDatasetInfo(int index) {
  DM_CHECK(index >= 0 && index < kManualDatasetCount);
  return kInfos[static_cast<size_t>(index)];
}

size_t DefaultManualBytes(int index) {
  DM_CHECK(index >= 0 && index < kManualDatasetCount);
  // Proportional to Table 5 but clamped to [24 KB, 320 KB] so the suite
  // stays laptop-friendly; Figure 14a grows sizes explicitly.
  double mb = kInfos[static_cast<size_t>(index)].paper_size_mb;
  double bytes = mb * 1024 * 1024 * 0.02;
  if (bytes < 24 * 1024) bytes = 24 * 1024;
  if (bytes > 320 * 1024) bytes = 320 * 1024;
  return static_cast<size_t>(bytes);
}

GeneratedDataset BuildManualDataset(int index, size_t target_bytes,
                                    uint64_t seed) {
  DM_CHECK(index >= 0 && index < kManualDatasetCount);
  GeneratedDataset ds =
      kBuilders[static_cast<size_t>(index)](target_bytes, seed);
  ds.source = kInfos[static_cast<size_t>(index)].paper_source;
  return ds;
}

std::vector<GeneratedDataset> BuildAllManualDatasets(double scale) {
  std::vector<GeneratedDataset> out;
  out.reserve(kManualDatasetCount);
  for (int i = 0; i < kManualDatasetCount; ++i) {
    size_t bytes = static_cast<size_t>(
        static_cast<double>(DefaultManualBytes(i)) * scale);
    out.push_back(BuildManualDataset(i, bytes));
  }
  return out;
}

GeneratedDataset BuildVcfDataset(size_t target_bytes, uint64_t seed) {
  return BuildVcf(target_bytes, seed);
}

}  // namespace datamaran
