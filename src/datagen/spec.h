#ifndef DATAMARAN_DATAGEN_SPEC_H_
#define DATAMARAN_DATAGEN_SPEC_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// Synthetic data-lake datasets with byte-accurate ground truth.
///
/// The paper evaluates on 25 manually collected datasets (Table 5) and 100
/// log files crawled from GitHub (Section 5.3). Neither collection ships
/// with the paper, so this module generates seeded analogs that preserve
/// the *structural* properties the extraction problem depends on: format
/// family, number of record types, record span, noise placement, and the
/// intended extraction targets. Every generator records, for each record,
/// its byte span and the byte spans of its intended extraction targets,
/// which is exactly what the Section 5.1 / 9.3 success criterion needs.

namespace datamaran {

/// One intended extraction target inside a record (e.g. "the IP address").
struct TargetSpan {
  std::string name;
  size_t begin = 0;
  size_t end = 0;
};

/// Ground truth for one record instance.
struct GroundTruthRecord {
  int type = 0;
  size_t begin = 0;  ///< byte span including the trailing '\n'
  size_t end = 0;
  size_t first_line = 0;
  int line_count = 1;
  std::vector<TargetSpan> targets;
};

/// GitHub-corpus labels (Table 4).
enum class DatasetLabel {
  kSingleNonInterleaved,  // S(NI)
  kSingleInterleaved,     // S(I)
  kMultiNonInterleaved,   // M(NI)
  kMultiInterleaved,      // M(I)
  kNoStructure,           // NS
};

const char* DatasetLabelName(DatasetLabel label);

struct GeneratedDataset {
  std::string name;
  std::string source;  ///< provenance note (which Table 5 row it models)
  std::string text;
  /// Alternative ground-truth segmentations; extraction succeeds if it
  /// matches ANY of them (e.g. the crash log's "1(3)" span in Table 5 means
  /// both the 1-line and the 3-line readings are valid).
  std::vector<std::vector<GroundTruthRecord>> alternatives;
  DatasetLabel label = DatasetLabel::kSingleNonInterleaved;
  int record_type_count = 1;
  int max_record_span = 1;
  /// True when the dataset is designed to defeat the tool the way Section
  /// 9.4 describes (e.g. records longer than L).
  bool expect_hard = false;

  const std::vector<GroundTruthRecord>& records() const {
    static const std::vector<GroundTruthRecord> kEmpty;
    return alternatives.empty() ? kEmpty : alternatives.front();
  }
};

/// Incremental text builder that tracks record and target offsets.
class DatasetBuilder {
 public:
  /// Starts a record of the given type at the current position.
  void BeginRecord(int type);

  /// Appends literal formatting/structure text (never a target).
  void Append(std::string_view text);

  /// Appends a field value that is not an intended target.
  void Field(std::string_view value) { Append(value); }

  /// Appends a field value and records it as the intended target `name`.
  void Target(const std::string& name, std::string_view value);

  /// Marks the following appended text (until TargetEnd) as one target;
  /// used for targets spanning several fields + delimiters.
  void TargetBegin(const std::string& name);
  void TargetEnd();

  /// Finishes the current record (the text appended since BeginRecord,
  /// which must end with '\n').
  void EndRecord();

  /// Appends a whole noise line ('\n' added if missing).
  void NoiseLine(std::string_view text);

  size_t line_count() const { return line_; }
  size_t size_bytes() const { return text_.size(); }

  /// Finalizes: moves the text and the single ground-truth alternative into
  /// a dataset. Derived counts (types, max span) are filled in.
  GeneratedDataset Build(std::string name, DatasetLabel label);

  /// Access for multi-alternative datasets: Build() with extra
  /// segmentations appended by the caller.
  std::vector<GroundTruthRecord>& records() { return records_; }

 private:
  std::string text_;
  std::vector<GroundTruthRecord> records_;
  GroundTruthRecord current_;
  bool in_record_ = false;
  size_t line_ = 0;
  std::string pending_target_;
  size_t pending_begin_ = 0;
};

}  // namespace datamaran

#endif  // DATAMARAN_DATAGEN_SPEC_H_
