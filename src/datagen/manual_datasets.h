#ifndef DATAMARAN_DATAGEN_MANUAL_DATASETS_H_
#define DATAMARAN_DATAGEN_MANUAL_DATASETS_H_

#include <cstddef>
#include <vector>

#include "datagen/spec.h"

/// Generators for the 25 manually collected datasets of Table 5: the 15
/// datasets of Fisher et al. [20] plus the 10 additional ones (stack
/// exchange dump, genomics formats, Thailand district info, and five GitHub
/// log files). Each generator reproduces the row's format family, record
/// type count and max record span; sizes are scaled for laptop budgets and
/// can be grown via `target_bytes` (the VCF generator scales to >100MB for
/// the Figure 14a runtime experiment).

namespace datamaran {

inline constexpr int kManualDatasetCount = 25;

struct ManualDatasetInfo {
  const char* name;
  const char* paper_source;   // the Table 5 row this models
  double paper_size_mb;       // size reported in Table 5
  int record_types;           // Table 5 "# of rec. types"
  const char* max_span;       // Table 5 "Max rec. span" (e.g. "1(3)")
  bool from_fisher;           // row marked "*" in Table 5
};

/// Static Table 5 metadata, indexed 0..24.
const ManualDatasetInfo& GetManualDatasetInfo(int index);

/// Default generated size for dataset `index` (proportional to Table 5).
size_t DefaultManualBytes(int index);

/// Builds dataset `index` with roughly `target_bytes` of text.
GeneratedDataset BuildManualDataset(int index, size_t target_bytes,
                                    uint64_t seed = 0);

/// All 25 datasets at `scale` times their default sizes.
std::vector<GeneratedDataset> BuildAllManualDatasets(double scale = 1.0);

/// The VCF-format generator, exposed for the scalability benchmark.
GeneratedDataset BuildVcfDataset(size_t target_bytes, uint64_t seed = 17);

}  // namespace datamaran

#endif  // DATAMARAN_DATAGEN_MANUAL_DATASETS_H_
