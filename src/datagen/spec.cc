#include "datagen/spec.h"

#include <algorithm>

#include "util/common.h"

namespace datamaran {

const char* DatasetLabelName(DatasetLabel label) {
  switch (label) {
    case DatasetLabel::kSingleNonInterleaved:
      return "S(NI)";
    case DatasetLabel::kSingleInterleaved:
      return "S(I)";
    case DatasetLabel::kMultiNonInterleaved:
      return "M(NI)";
    case DatasetLabel::kMultiInterleaved:
      return "M(I)";
    case DatasetLabel::kNoStructure:
      return "NS";
  }
  return "?";
}

void DatasetBuilder::BeginRecord(int type) {
  DM_CHECK(!in_record_);
  in_record_ = true;
  current_ = GroundTruthRecord();
  current_.type = type;
  current_.begin = text_.size();
  current_.first_line = line_;
}

void DatasetBuilder::Append(std::string_view text) {
  for (char c : text) {
    if (c == '\n') ++line_;
  }
  text_.append(text);
}

void DatasetBuilder::Target(const std::string& name, std::string_view value) {
  DM_CHECK(in_record_);
  TargetSpan t;
  t.name = name;
  t.begin = text_.size();
  Append(value);
  t.end = text_.size();
  current_.targets.push_back(std::move(t));
}

void DatasetBuilder::TargetBegin(const std::string& name) {
  DM_CHECK(in_record_ && pending_target_.empty());
  pending_target_ = name;
  pending_begin_ = text_.size();
}

void DatasetBuilder::TargetEnd() {
  DM_CHECK(!pending_target_.empty());
  TargetSpan t;
  t.name = pending_target_;
  t.begin = pending_begin_;
  t.end = text_.size();
  current_.targets.push_back(std::move(t));
  pending_target_.clear();
}

void DatasetBuilder::EndRecord() {
  DM_CHECK(in_record_);
  DM_CHECK(!text_.empty() && text_.back() == '\n');
  current_.end = text_.size();
  current_.line_count = static_cast<int>(line_ - current_.first_line);
  records_.push_back(std::move(current_));
  in_record_ = false;
}

void DatasetBuilder::NoiseLine(std::string_view text) {
  DM_CHECK(!in_record_);
  Append(text);
  if (text_.empty() || text_.back() != '\n') Append("\n");
}

GeneratedDataset DatasetBuilder::Build(std::string name, DatasetLabel label) {
  DM_CHECK(!in_record_);
  GeneratedDataset out;
  out.name = std::move(name);
  out.label = label;
  out.text = std::move(text_);
  int max_span = 1;
  int max_type = -1;
  for (const auto& r : records_) {
    max_span = std::max(max_span, r.line_count);
    max_type = std::max(max_type, r.type);
  }
  out.max_record_span = max_span;
  out.record_type_count = records_.empty() ? 0 : max_type + 1;
  out.alternatives.push_back(std::move(records_));
  return out;
}

}  // namespace datamaran
