#ifndef DATAMARAN_DATAGEN_VALUES_H_
#define DATAMARAN_DATAGEN_VALUES_H_

#include <string>

#include "util/rng.h"

/// Seeded field-value generators shared by the dataset generators.

namespace datamaran {

/// "192.168.3.44"
std::string GenIp(Rng* rng);

/// "14:23:07"
std::string GenTime(Rng* rng);

/// "2016-04-22"
std::string GenDate(Rng* rng);

/// "Apr 24" style syslog date.
std::string GenMonthDay(Rng* rng);

/// Lowercase word from a fixed dictionary.
std::string GenWord(Rng* rng);

/// Capitalized pseudo-name from random syllables ("Korela"). Unlike
/// GenWord, values are near-unique, so columns of names type as strings
/// rather than tiny enums (matters for MDL realism).
std::string GenName(Rng* rng);

/// Lowercase identifier such as "user_7da2".
std::string GenIdent(Rng* rng);

/// `min_words`..`max_words` dictionary words joined by spaces.
std::string GenPhrase(Rng* rng, int min_words, int max_words);

/// "/usr/share/thing" with `min_depth`..`max_depth` components.
std::string GenPath(Rng* rng, int min_depth, int max_depth);

/// Random letters/digits of the given length.
std::string GenAlnum(Rng* rng, int len);

/// Uniform integer rendered as decimal.
std::string GenInt(Rng* rng, int64_t lo, int64_t hi);

/// Fixed-point decimal with `frac` digits.
std::string GenReal(Rng* rng, int64_t lo, int64_t hi, int frac);

/// Hostname like "srv7" / "db-node-3".
std::string GenHost(Rng* rng);

/// DNA base string (for the FASTQ/VCF generators).
std::string GenBases(Rng* rng, int len);

}  // namespace datamaran

#endif  // DATAMARAN_DATAGEN_VALUES_H_
