#include "datagen/github_corpus.h"

#include "datagen/values.h"
#include "util/common.h"
#include "util/strings.h"

namespace datamaran {

namespace {

// ---------------------------------------------------------------- S(NI) --

/// variant cycles through format families; every family is single-line,
/// single-type. Odd-indexed families are lexer-hostile (they defeat
/// RecordBreaker's fixed tokenization / line clustering but not Datamaran).
GeneratedDataset BuildSingleNI(int variant, size_t bytes, uint64_t seed) {
  Rng rng(seed);
  DatasetBuilder b;
  const int family = variant % 8;
  while (b.size_bytes() < bytes) {
    switch (family) {
      case 0: {  // clean CSV
        b.BeginRecord(0);
        b.Target("id", GenInt(&rng, 1, 99999));
        b.Append(",");
        b.Target("name", GenWord(&rng));
        b.Append(",");
        b.Field(GenInt(&rng, 0, 500));
        b.Append(",");
        b.Field(GenWord(&rng));
        b.Append("\n");
        b.EndRecord();
        break;
      }
      case 1: {  // free-text message tail (defeats fixed tokenization)
        b.BeginRecord(0);
        b.Target("time", GenTime(&rng));
        b.Append(" ");
        b.Target("host", GenHost(&rng));
        b.Append(" ");
        b.Target("message", GenPhrase(&rng, 2, 8));
        b.Append("\n");
        b.EndRecord();
        break;
      }
      case 2: {  // clean key=value pairs
        b.BeginRecord(0);
        b.Append("evt=");
        b.Target("evt", GenWord(&rng));
        b.Append(";sev=");
        b.Target("sev", GenInt(&rng, 0, 7));
        b.Append(";src=");
        b.Field(GenWord(&rng));
        b.Append(";\n");
        b.EndRecord();
        break;
      }
      case 3: {  // free-text tail guarded by " - ", plus noise lines
        if (rng.Bernoulli(0.08)) {
          b.NoiseLine("*** audit gap " + GenAlnum(&rng, 10) + " " +
                      GenAlnum(&rng, 6));
          continue;
        }
        // Varying token count in the tail shifts fixed-tokenization
        // columns (RecordBreaker-hostile); Datamaran models the tail as an
        // array field.
        b.BeginRecord(0);
        b.Append("[");
        b.Target("time", GenTime(&rng));
        b.Append("] ");
        b.Target("host", GenHost(&rng));
        b.Append(" - ");
        b.Target("message", GenPhrase(&rng, 1, 5));
        b.Append("\n");
        b.EndRecord();
        break;
      }
      case 4: {  // clean bracketed log
        b.BeginRecord(0);
        b.Append("[");
        b.Target("time", GenTime(&rng));
        b.Append("] [");
        b.Target("level", rng.Bernoulli(0.8) ? "info" : "warn");
        b.Append("] code=");
        b.Target("code", GenInt(&rng, 100, 599));
        b.Append("\n");
        b.EndRecord();
        break;
      }
      case 5: {  // variable-depth path before targets (ordinal shift)
        b.BeginRecord(0);
        b.Append("GET ");
        b.Target("path", GenPath(&rng, 1, 5));
        b.Append(" ");
        b.Target("status", GenInt(&rng, 200, 504));
        b.Append(" ");
        b.Field(GenInt(&rng, 10, 99999));
        b.Append("\n");
        b.EndRecord();
        break;
      }
      case 6: {  // clean pipe-separated
        b.BeginRecord(0);
        b.Target("ts", GenDate(&rng));
        b.Append("|");
        b.Target("metric", GenWord(&rng));
        b.Append("|");
        b.Target("value", GenReal(&rng, 0, 10000, 2));
        b.Append("|\n");
        b.EndRecord();
        break;
      }
      default: {  // quoted fields with embedded delimiters
        b.BeginRecord(0);
        b.Target("seq", GenInt(&rng, 1, 999999));
        b.Append(",\"");
        b.Target("desc", GenPhrase(&rng, 1, 4));
        b.Append("\",");
        b.Target("count", GenInt(&rng, 0, 99));
        b.Append("\n");
        b.EndRecord();
        break;
      }
    }
  }
  return b.Build(StrFormat("gh_sni_%02d", variant),
                 DatasetLabel::kSingleNonInterleaved);
}

// ----------------------------------------------------------------- S(I) --

GeneratedDataset BuildSingleI(int variant, size_t bytes, uint64_t seed) {
  Rng rng(seed);
  DatasetBuilder b;
  const int family = variant % 4;
  // Family 3 is the paper's Section 9.4 confusable case: two record types
  // that share a generic "(F )*F" shape, which the greedy interleaved loop
  // merges into one template.
  while (b.size_bytes() < bytes) {
    switch (family) {
      case 0: {  // two types with disjoint shapes (space vs pipe)
        if (rng.Bernoulli(0.55)) {
          b.BeginRecord(0);
          b.Append("req ");
          b.Target("req_id", GenInt(&rng, 1, 99999));
          b.Append(" ");
          // Mixed-type column: verbs are words or numeric opcodes. One
          // field for Datamaran; two token signatures for a fixed lexer,
          // which splits the type across RecordBreaker branches.
          b.Target("verb", rng.Bernoulli(0.6) ? GenWord(&rng)
                                              : GenInt(&rng, 1, 60));
          b.Append(" ");
          b.Field(GenInt(&rng, 100, 599));
          b.Append("\n");
        } else {
          b.BeginRecord(1);
          b.Append("conn|");
          b.Target("ip", GenIp(&rng));
          b.Append("|");
          b.Target("port", GenInt(&rng, 1, 65535));
          b.Append("|open\n");
        }
        b.EndRecord();
        break;
      }
      case 1: {  // disjoint delimiters (the RecordBreaker-survivable one)
        if (rng.Bernoulli(0.5)) {
          b.BeginRecord(0);
          b.Target("a", GenInt(&rng, 1, 9999));
          b.Append(",");
          b.Target("b", GenWord(&rng));
          b.Append(",");
          b.Field(GenInt(&rng, 0, 9));
          b.Append("\n");
        } else {
          b.BeginRecord(1);
          b.Target("k", GenWord(&rng));
          b.Append("=");
          b.Target("v", GenInt(&rng, 0, 999999));
          b.Append(";\n");
        }
        b.EndRecord();
        break;
      }
      case 2: {  // three types, shared brackets, plus noise
        if (rng.Bernoulli(0.06)) {
          b.NoiseLine("~~ rotated " + GenAlnum(&rng, 8));
          continue;
        }
        // Three structurally disjoint types, like distinct log statements
        // from different modules (a shared typed prefix would let a coarse
        // merged template win, the Section 9.4 hazard).
        double p = rng.UniformDouble();
        if (p < 0.4) {
          b.BeginRecord(0);
          b.Append("push repo=");
          // Mixed-type column (name or numeric id): lexer-hostile, one
          // field for Datamaran.
          b.Target("repo", rng.Bernoulli(0.6) ? GenName(&rng)
                                              : GenInt(&rng, 1, 9999));
          b.Append(" t=");
          b.Target("t", GenTime(&rng));
          b.Append("\n");
        } else if (p < 0.75) {
          b.BeginRecord(1);
          b.Append("<pull|");
          b.Target("user", GenName(&rng));
          b.Append("|");
          b.Field(GenInt(&rng, 1, 40));
          b.Append(">\n");
        } else {
          b.BeginRecord(2);
          b.Append("gc;");
          b.Target("freed", GenInt(&rng, 0, 1 << 20));
          b.Append(";ok;\n");
        }
        b.EndRecord();
        break;
      }
      default: {  // Section 9.4 confusable: "F: F F F" vs "F: F F F F F F"
        if (rng.Bernoulli(0.5)) {
          b.BeginRecord(0);
          b.Target("key", GenWord(&rng));
          b.Append(": ");
          b.Field(GenWord(&rng));
          b.Append(" ");
          b.Field(GenWord(&rng));
          b.Append(" ");
          b.Target("v3", GenWord(&rng));
          b.Append("\n");
        } else {
          b.BeginRecord(1);
          b.Target("key", GenWord(&rng));
          b.Append(": ");
          for (int i = 0; i < 5; ++i) {
            b.Field(GenWord(&rng));
            b.Append(" ");
          }
          b.Target("v6", GenWord(&rng));
          b.Append("\n");
        }
        b.EndRecord();
        break;
      }
    }
  }
  GeneratedDataset ds = b.Build(StrFormat("gh_si_%02d", variant),
                                DatasetLabel::kSingleInterleaved);
  ds.expect_hard = (family == 3);
  return ds;
}

// ---------------------------------------------------------------- M(NI) --

GeneratedDataset BuildMultiNI(int variant, size_t bytes, uint64_t seed) {
  Rng rng(seed);
  DatasetBuilder b;
  const int family = variant % 5;
  // Family 4 has 13-line records, beyond the default L=10 (Section 9.4
  // "fail to recognize long records").
  while (b.size_bytes() < bytes) {
    switch (family) {
      case 0: {  // 2-line request/response pairs
        b.BeginRecord(0);
        b.Append("> ");
        b.Target("method", GenWord(&rng));
        b.Append(" id=");
        b.Target("id", GenInt(&rng, 1, 99999));
        b.Append("\n< code=");
        b.Target("code", GenInt(&rng, 0, 99));
        b.Append(" t=");
        b.Target("t", GenReal(&rng, 0, 60, 3));
        b.Append("\n");
        b.EndRecord();
        break;
      }
      case 1: {  // 5-line ini-ish blocks
        b.BeginRecord(0);
        b.Append("[section ");
        b.Target("section", GenName(&rng));
        b.Append("]\n  host = ");
        b.Target("host", GenHost(&rng));
        b.Append("\n  port = ");
        b.Target("port", GenInt(&rng, 1024, 65535));
        b.Append("\n  mode = ");
        b.Field(GenWord(&rng));
        b.Append("\n\n");
        b.EndRecord();
        break;
      }
      case 2: {  // 4-line fastq-like, with noise
        if (rng.Bernoulli(0.05)) {
          b.NoiseLine("# lane drift " + GenAlnum(&rng, 6));
          continue;
        }
        int len = static_cast<int>(rng.Uniform(20, 40));
        b.BeginRecord(0);
        b.Append("@");
        b.Target("rid", GenAlnum(&rng, 10));
        b.Append("\n");
        b.Target("seq", GenBases(&rng, len));
        b.Append("\n+\n");
        std::string qual;
        for (int i = 0; i < len; ++i) {
          qual.push_back(static_cast<char>('A' + rng.Uniform(0, 25)));
        }
        b.Field(qual);
        b.Append("\n");
        b.EndRecord();
        break;
      }
      case 3: {  // 7-line record with '----' separator line (Figure 2 style)
        b.BeginRecord(0);
        b.Append("user: ");
        b.Target("user", GenName(&rng));
        b.Append("\nrepo: ");
        b.Target("repo", GenName(&rng));
        b.Append("\ncommits: ");
        b.Target("commits", GenInt(&rng, 1, 400));
        b.Append("\nadded: ");
        b.Field(GenInt(&rng, 0, 10000));
        b.Append("\ndeleted: ");
        b.Field(GenInt(&rng, 0, 10000));
        b.Append("\nbranch: ");
        b.Field(GenWord(&rng));
        b.Append("\n--------\n");
        b.EndRecord();
        break;
      }
      default: {  // 13-line record: exceeds L=10
        b.BeginRecord(0);
        b.Append("BEGIN ");
        b.Target("run", GenInt(&rng, 1, 9999));
        b.Append("\n");
        for (int i = 0; i < 11; ++i) {
          b.Append(StrFormat("  m%02d=", i));
          b.Field(GenReal(&rng, 0, 100, 2));
          b.Append("\n");
        }
        b.Append("END\n");
        b.EndRecord();
        break;
      }
    }
  }
  GeneratedDataset ds = b.Build(StrFormat("gh_mni_%02d", variant),
                                DatasetLabel::kMultiNonInterleaved);
  ds.expect_hard = (family == 4);
  return ds;
}

// ----------------------------------------------------------------- M(I) --

GeneratedDataset BuildMultiI(int variant, size_t bytes, uint64_t seed) {
  Rng rng(seed);
  DatasetBuilder b;
  const int family = variant % 4;
  // Family 3 mixes a 12-line type with a short type: the long type exceeds
  // L and cannot be recovered (Section 9.4).
  while (b.size_bytes() < bytes) {
    switch (family) {
      case 0: {  // Figure 2 style: 7-line A records and 3-line B records
        if (rng.Bernoulli(0.55)) {
          b.BeginRecord(0);
          b.Append("A-");
          b.Target("a_id", GenInt(&rng, 1, 9999));
          b.Append("\n  ua: ");
          b.Target("ua", GenName(&rng));
          b.Append("\n  score: ");
          b.Target("score", GenReal(&rng, 0, 1, 3));
          b.Append("\n  flags: ");
          b.Field(GenInt(&rng, 0, 255));
          b.Append("\n  ref: ");
          b.Field(GenAlnum(&rng, 12));
          b.Append("\n  note: ");
          b.Field(GenWord(&rng));
          b.Append("\n--------\n");
        } else {
          b.BeginRecord(1);
          b.Append("B-");
          b.Target("b_id", GenInt(&rng, 1, 9999));
          b.Append("\n  peer: ");
          b.Target("peer", GenIp(&rng));
          b.Append("\n--------\n");
        }
        b.EndRecord();
        break;
      }
      case 1: {  // multi-line + single-line + noise
        if (rng.Bernoulli(0.07)) {
          b.NoiseLine("?? stray " + GenAlnum(&rng, 9));
          continue;
        }
        if (rng.Bernoulli(0.5)) {
          b.BeginRecord(0);
          b.Append("task ");
          b.Target("task", GenInt(&rng, 1, 99999));
          b.Append(" {\n  cpu: ");
          b.Target("cpu", GenReal(&rng, 0, 100, 1));
          b.Append("\n  mem: ");
          b.Target("mem", GenInt(&rng, 1, 64000));
          b.Append("\n}\n");
        } else {
          b.BeginRecord(1);
          b.Append("tick ");
          b.Target("tick", GenInt(&rng, 1, 1 << 30));
          b.Append("\n");
        }
        b.EndRecord();
        break;
      }
      case 2: {  // two multi-line types with shared field lines
        if (rng.Bernoulli(0.5)) {
          b.BeginRecord(0);
          b.Append("<<job>>\n  name: ");
          b.Target("name", GenName(&rng));
          b.Append("\n  prio: ");
          b.Target("prio", GenInt(&rng, 0, 9));
          b.Append("\n<<end>>\n");
        } else {
          b.BeginRecord(1);
          b.Append("<<node>>\n  name: ");
          b.Target("name", GenName(&rng));
          b.Append("\n  addr: ");
          b.Target("addr", GenIp(&rng));
          b.Append("\n  up: ");
          b.Field(GenInt(&rng, 0, 1));
          b.Append("\n<<end>>\n");
        }
        b.EndRecord();
        break;
      }
      default: {  // 12-line type (exceeds L) + 1-line type
        if (rng.Bernoulli(0.45)) {
          b.BeginRecord(0);
          b.Append("dump ");
          b.Target("dump_id", GenInt(&rng, 1, 999));
          b.Append("\n");
          for (int i = 0; i < 10; ++i) {
            b.Append("  r");
            b.Field(std::to_string(i));
            b.Append("=0x");
            b.Field(GenAlnum(&rng, 8));
            b.Append("\n");
          }
          b.Append("done\n");
        } else {
          b.BeginRecord(1);
          b.Append("ok ");
          b.Target("seq", GenInt(&rng, 1, 1 << 20));
          b.Append("\n");
        }
        b.EndRecord();
        break;
      }
    }
  }
  GeneratedDataset ds = b.Build(StrFormat("gh_mi_%02d", variant),
                                DatasetLabel::kMultiInterleaved);
  ds.expect_hard = (family == 3);
  return ds;
}

// ------------------------------------------------------------------- NS --

GeneratedDataset BuildNoStructure(int variant, size_t bytes, uint64_t seed) {
  Rng rng(seed);
  DatasetBuilder b;
  const int family = variant % 3;
  while (b.size_bytes() < bytes) {
    switch (family) {
      case 0:  // random tokens, random line lengths
        b.NoiseLine(GenAlnum(&rng, static_cast<int>(rng.Uniform(3, 70))));
        break;
      case 1: {  // natural-language-ish prose with an open vocabulary
        // (a tiny repeated vocabulary would be genuinely enum-compressible
        // and thus structured)
        std::string line;
        int words = static_cast<int>(rng.Uniform(3, 14));
        for (int w = 0; w < words; ++w) {
          if (w > 0) line += " ";
          line += GenAlnum(&rng, static_cast<int>(rng.Uniform(2, 9)));
        }
        // No trailing period: "every line ends with '.'" would itself be a
        // (thin but real) structure template.
        b.NoiseLine(line);
        break;
      }
      default: {  // hexdump-ish but with erratic widths and markers
        std::string line;
        int n = static_cast<int>(rng.Uniform(1, 6));
        for (int i = 0; i < n; ++i) {
          line += GenAlnum(&rng, static_cast<int>(rng.Uniform(2, 12)));
          line += rng.Bernoulli(0.5) ? " " : "";
        }
        b.NoiseLine(line);
        break;
      }
    }
  }
  return b.Build(StrFormat("gh_ns_%02d", variant),
                 DatasetLabel::kNoStructure);
}

}  // namespace

GeneratedDataset BuildGithubDataset(int index, size_t bytes) {
  DM_CHECK(index >= 0 && index < kGithubCorpusSize);
  const uint64_t seed = 0x9000 + static_cast<uint64_t>(index) * 7919;
  int i = index;
  if (i < kGithubSingleNI) return BuildSingleNI(i, bytes, seed);
  i -= kGithubSingleNI;
  if (i < kGithubSingleI) return BuildSingleI(i, bytes, seed);
  i -= kGithubSingleI;
  if (i < kGithubMultiNI) return BuildMultiNI(i, bytes, seed);
  i -= kGithubMultiNI;
  if (i < kGithubMultiI) return BuildMultiI(i, bytes, seed);
  i -= kGithubMultiI;
  return BuildNoStructure(i, bytes, seed);
}

std::vector<GeneratedDataset> BuildGithubCorpus(size_t bytes) {
  std::vector<GeneratedDataset> out;
  out.reserve(kGithubCorpusSize);
  for (int i = 0; i < kGithubCorpusSize; ++i) {
    out.push_back(BuildGithubDataset(i, bytes));
  }
  return out;
}

}  // namespace datamaran
