#include "datagen/values.h"

#include <array>

#include "util/strings.h"

namespace datamaran {

namespace {

constexpr std::array<const char*, 24> kWords = {
    "request", "failed",   "started", "stopped", "service",  "daemon",
    "timeout", "retry",    "cache",   "index",   "shutdown", "startup",
    "succeeded", "warning", "kernel",  "memory",  "disabled", "enabled",
    "nightly", "update",   "session", "client",  "server",   "queue"};

constexpr std::array<const char*, 12> kMonths = {"Jan", "Feb", "Mar", "Apr",
                                                 "May", "Jun", "Jul", "Aug",
                                                 "Sep", "Oct", "Nov", "Dec"};

}  // namespace

std::string GenIp(Rng* rng) {
  return StrFormat("%d.%d.%d.%d", static_cast<int>(rng->Uniform(1, 254)),
                   static_cast<int>(rng->Uniform(0, 255)),
                   static_cast<int>(rng->Uniform(0, 255)),
                   static_cast<int>(rng->Uniform(1, 254)));
}

std::string GenTime(Rng* rng) {
  return StrFormat("%02d:%02d:%02d", static_cast<int>(rng->Uniform(0, 23)),
                   static_cast<int>(rng->Uniform(0, 59)),
                   static_cast<int>(rng->Uniform(0, 59)));
}

std::string GenDate(Rng* rng) {
  return StrFormat("%04d-%02d-%02d", static_cast<int>(rng->Uniform(2014, 2018)),
                   static_cast<int>(rng->Uniform(1, 12)),
                   static_cast<int>(rng->Uniform(1, 28)));
}

std::string GenMonthDay(Rng* rng) {
  // Zero-padded day: real syslog space-pads single-digit days, which makes
  // two legitimate template variants ("Apr  7" vs "Apr 17"); we keep the
  // format stable so each generator has exactly one ground-truth template.
  return StrFormat("%s %02d",
                   kMonths[static_cast<size_t>(rng->Uniform(0, 11))],
                   static_cast<int>(rng->Uniform(1, 28)));
}

std::string GenWord(Rng* rng) {
  return kWords[static_cast<size_t>(rng->Uniform(0, kWords.size() - 1))];
}

std::string GenName(Rng* rng) {
  static constexpr const char* kOnsets[] = {"b", "d", "k", "l", "m",
                                            "n", "r", "s", "t", "v"};
  static constexpr const char* kVowels[] = {"a", "e", "i", "o", "u"};
  int syllables = static_cast<int>(rng->Uniform(2, 4));
  std::string out;
  for (int i = 0; i < syllables; ++i) {
    out += kOnsets[static_cast<size_t>(rng->Uniform(0, 9))];
    out += kVowels[static_cast<size_t>(rng->Uniform(0, 4))];
  }
  out[0] = static_cast<char>(out[0] - 'a' + 'A');
  return out;
}

std::string GenIdent(Rng* rng) {
  return GenWord(rng) + "_" + GenAlnum(rng, 4);
}

std::string GenPhrase(Rng* rng, int min_words, int max_words) {
  int n = static_cast<int>(rng->Uniform(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += " ";
    out += GenWord(rng);
  }
  return out;
}

std::string GenPath(Rng* rng, int min_depth, int max_depth) {
  int n = static_cast<int>(rng->Uniform(min_depth, max_depth));
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "/";
    out += GenWord(rng);
  }
  return out;
}

std::string GenAlnum(Rng* rng, int len) {
  static constexpr char kChars[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(kChars[static_cast<size_t>(rng->Uniform(0, 35))]);
  }
  return out;
}

std::string GenInt(Rng* rng, int64_t lo, int64_t hi) {
  return std::to_string(rng->Uniform(lo, hi));
}

std::string GenReal(Rng* rng, int64_t lo, int64_t hi, int frac) {
  std::string out = std::to_string(rng->Uniform(lo, hi));
  out.push_back('.');
  for (int i = 0; i < frac; ++i) {
    out.push_back(static_cast<char>('0' + rng->Uniform(0, 9)));
  }
  return out;
}

std::string GenHost(Rng* rng) {
  return StrFormat("srv%d", static_cast<int>(rng->Uniform(1, 9)));
}

std::string GenBases(Rng* rng, int len) {
  static constexpr char kBases[] = "ACGT";
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(kBases[static_cast<size_t>(rng->Uniform(0, 3))]);
  }
  return out;
}

}  // namespace datamaran
