#include "pruning/pruner.h"

#include <algorithm>

namespace datamaran {

std::vector<CandidateTemplate> PruneCandidates(
    std::vector<CandidateTemplate> candidates, int m) {
  std::sort(candidates.begin(), candidates.end(),
            [](const CandidateTemplate& a, const CandidateTemplate& b) {
              double ga = a.assimilation();
              double gb = b.assimilation();
              if (ga != gb) return ga > gb;
              if (a.canonical.size() != b.canonical.size()) {
                return a.canonical.size() < b.canonical.size();
              }
              return a.canonical < b.canonical;
            });
  if (m >= 0 && candidates.size() > static_cast<size_t>(m)) {
    candidates.resize(static_cast<size_t>(m));
  }
  return candidates;
}

}  // namespace datamaran
