#ifndef DATAMARAN_PRUNING_PRUNER_H_
#define DATAMARAN_PRUNING_PRUNER_H_

#include <vector>

#include "generation/candidates.h"

/// The pruning step (Section 4.2): order candidates by the assimilation
/// score G(T,S) = Cov(T,S) x Non_Field_Cov(T,S) and retain only the best M,
/// so that the expensive regularity-score evaluation runs on a small set.
/// Coverage alone cannot reject templates that misclassify structure as
/// field values (Figure 11's second redundancy source); the non-field
/// coverage term handles exactly that.

namespace datamaran {

/// Returns the top `m` candidates by assimilation score (descending).
/// Ties break toward smaller templates (shorter canonical), then
/// lexicographically, for determinism. Input order is irrelevant.
std::vector<CandidateTemplate> PruneCandidates(
    std::vector<CandidateTemplate> candidates, int m);

}  // namespace datamaran

#endif  // DATAMARAN_PRUNING_PRUNER_H_
