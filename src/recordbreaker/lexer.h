#ifndef DATAMARAN_RECORDBREAKER_LEXER_H_
#define DATAMARAN_RECORDBREAKER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

/// Flex-style lexer for the RecordBreaker baseline [Fisher et al. 2008,
/// RecordBreaker]. RecordBreaker's first step breaks every line into typed
/// tokens with a fixed lexer specification (the paper notes users must tune
/// a Flex file per dataset for good results — this built-in spec is the
/// "default configuration" our comparison uses, mirroring the paper's
/// unsupervised setting).
///
/// Token classes, longest-match, first-rule-wins:
///   IP     d+.d+.d+.d+            TIME   d+:d+(:d+)?
///   DATE   d+[-/]d+[-/]d+         FLOAT  [-]d+.d+
///   INT    [-]d+                  WORD   [A-Za-z_][A-Za-z0-9_]*
///   QUOTED "..." (no escapes)     SPACE  run of blanks
///   PUNCT  any other single character (carries the character)

namespace datamaran {

enum class RbTokenType : uint8_t {
  kIp,
  kTime,
  kDate,
  kFloat,
  kInt,
  kWord,
  kQuoted,
  kSpace,
  kPunct,
};

const char* RbTokenTypeName(RbTokenType type);

struct RbToken {
  RbTokenType type;
  char punct = 0;  // for kPunct: the character
  size_t begin = 0;
  size_t end = 0;

  /// True for tokens that carry data (extraction targets); punctuation and
  /// whitespace are structure.
  bool IsValue() const {
    return type != RbTokenType::kSpace && type != RbTokenType::kPunct;
  }

  /// Signature used for structure inference: type, plus the character for
  /// punctuation.
  uint16_t Signature() const {
    return static_cast<uint16_t>(
        (static_cast<uint16_t>(type) << 8) |
        static_cast<uint16_t>(static_cast<unsigned char>(punct)));
  }
};

/// Tokenizes one line (without its trailing newline).
std::vector<RbToken> RbTokenize(std::string_view line);

/// Renders a token sequence's signature as a readable string, e.g.
/// "IP _ TIME _ INT" (for tests and reports).
std::string RbSignatureString(const std::vector<RbToken>& tokens);

}  // namespace datamaran

#endif  // DATAMARAN_RECORDBREAKER_LEXER_H_
