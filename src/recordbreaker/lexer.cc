#include "recordbreaker/lexer.h"

namespace datamaran {

const char* RbTokenTypeName(RbTokenType type) {
  switch (type) {
    case RbTokenType::kIp:
      return "IP";
    case RbTokenType::kTime:
      return "TIME";
    case RbTokenType::kDate:
      return "DATE";
    case RbTokenType::kFloat:
      return "FLOAT";
    case RbTokenType::kInt:
      return "INT";
    case RbTokenType::kWord:
      return "WORD";
    case RbTokenType::kQuoted:
      return "QUOTED";
    case RbTokenType::kSpace:
      return "_";
    case RbTokenType::kPunct:
      return "P";
  }
  return "?";
}

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }
bool IsAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IsBlank(char c) { return c == ' ' || c == '\t'; }

/// Length of a digit run starting at `pos`, 0 if none.
size_t DigitRun(std::string_view s, size_t pos) {
  size_t n = 0;
  while (pos + n < s.size() && IsDigit(s[pos + n])) ++n;
  return n;
}

/// Matches d+ <sep> d+ [<sep> d+]; returns total length or 0.
size_t MatchNumberTriple(std::string_view s, size_t pos, char sep,
                         bool third_required, bool* has_third) {
  size_t a = DigitRun(s, pos);
  if (a == 0) return 0;
  size_t p = pos + a;
  if (p >= s.size() || s[p] != sep) return 0;
  ++p;
  size_t b = DigitRun(s, p);
  if (b == 0) return 0;
  p += b;
  if (p < s.size() && s[p] == sep) {
    size_t c = DigitRun(s, p + 1);
    if (c > 0) {
      if (has_third != nullptr) *has_third = true;
      return p + 1 + c - pos;
    }
  }
  if (third_required) return 0;
  if (has_third != nullptr) *has_third = false;
  return p - pos;
}

}  // namespace

std::vector<RbToken> RbTokenize(std::string_view line) {
  std::vector<RbToken> tokens;
  size_t pos = 0;
  while (pos < line.size()) {
    RbToken tok;
    tok.begin = pos;
    char c = line[pos];

    if (IsBlank(c)) {
      size_t p = pos;
      while (p < line.size() && IsBlank(line[p])) ++p;
      tok.type = RbTokenType::kSpace;
      tok.end = p;
      tokens.push_back(tok);
      pos = p;
      continue;
    }

    if (c == '"') {
      size_t close = line.find('"', pos + 1);
      if (close != std::string_view::npos) {
        tok.type = RbTokenType::kQuoted;
        tok.end = close + 1;
        tokens.push_back(tok);
        pos = close + 1;
        continue;
      }
    }

    if (IsDigit(c) || (c == '-' && pos + 1 < line.size() &&
                       IsDigit(line[pos + 1]))) {
      size_t start = pos + (c == '-' ? 1 : 0);
      // IP: four dotted digit runs.
      {
        size_t a = DigitRun(line, start);
        size_t p = start + a;
        int parts = 1;
        while (parts < 4 && p < line.size() && line[p] == '.' &&
               DigitRun(line, p + 1) > 0) {
          size_t r = DigitRun(line, p + 1);
          p += 1 + r;
          ++parts;
        }
        if (c != '-' && parts == 4) {
          tok.type = RbTokenType::kIp;
          tok.end = p;
          tokens.push_back(tok);
          pos = p;
          continue;
        }
      }
      // TIME hh:mm[:ss].
      if (c != '-') {
        size_t len = MatchNumberTriple(line, start, ':', false, nullptr);
        if (len > 0) {
          tok.type = RbTokenType::kTime;
          tok.end = start + len;
          tokens.push_back(tok);
          pos = tok.end;
          continue;
        }
      }
      // DATE with '-' or '/' separators, third part required.
      if (c != '-') {
        bool matched_date = false;
        for (char sep : {'-', '/'}) {
          size_t len = MatchNumberTriple(line, start, sep, true, nullptr);
          if (len > 0) {
            tok.type = RbTokenType::kDate;
            tok.end = start + len;
            tokens.push_back(tok);
            pos = tok.end;
            matched_date = true;
            break;
          }
        }
        if (matched_date) continue;
      }
      // FLOAT d+.d+ else INT.
      size_t a = DigitRun(line, start);
      size_t p = start + a;
      if (p + 1 < line.size() && line[p] == '.' && DigitRun(line, p + 1) > 0) {
        size_t frac = DigitRun(line, p + 1);
        tok.type = RbTokenType::kFloat;
        tok.end = p + 1 + frac;
      } else {
        tok.type = RbTokenType::kInt;
        tok.end = p;
      }
      tokens.push_back(tok);
      pos = tok.end;
      continue;
    }

    if (IsAlpha(c)) {
      size_t p = pos;
      while (p < line.size() && (IsAlpha(line[p]) || IsDigit(line[p]))) ++p;
      tok.type = RbTokenType::kWord;
      tok.end = p;
      tokens.push_back(tok);
      pos = p;
      continue;
    }

    tok.type = RbTokenType::kPunct;
    tok.punct = c;
    tok.end = pos + 1;
    tokens.push_back(tok);
    ++pos;
  }
  return tokens;
}

std::string RbSignatureString(const std::vector<RbToken>& tokens) {
  std::string out;
  for (const RbToken& t : tokens) {
    if (!out.empty()) out.push_back(' ');
    if (t.type == RbTokenType::kPunct) {
      out.push_back('\'');
      out.push_back(t.punct);
      out.push_back('\'');
    } else {
      out += RbTokenTypeName(t.type);
    }
  }
  return out;
}

}  // namespace datamaran
