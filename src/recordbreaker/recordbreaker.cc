#include "recordbreaker/recordbreaker.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/strings.h"

namespace datamaran {

namespace {

/// A view over a token subrange of one line.
struct Segment {
  size_t line = 0;
  const std::vector<RbToken>* tokens = nullptr;
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  const RbToken& at(size_t i) const { return (*tokens)[begin + i]; }
};

std::unique_ptr<RbSchema> MakeBase(uint16_t signature) {
  auto n = std::make_unique<RbSchema>();
  n->kind = RbSchema::Kind::kBase;
  n->signature = signature;
  return n;
}

std::unique_ptr<RbSchema> MakeEmpty() {
  auto n = std::make_unique<RbSchema>();
  n->kind = RbSchema::Kind::kEmpty;
  return n;
}

bool SameSignatureSequence(const Segment& a, const Segment& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.at(i).Signature() != b.at(i).Signature()) return false;
  }
  return true;
}

/// Histogram entry for one token signature across segments.
struct AnchorStats {
  size_t covering = 0;               // segments containing the signature
  std::map<size_t, size_t> counts;   // per-segment count -> segments

  size_t ModeCount(size_t* mode_mass) const {
    size_t best_count = 0, best = 0;
    for (const auto& [count, segs] : counts) {
      if (segs > best) {
        best = segs;
        best_count = count;
      }
    }
    if (mode_mass != nullptr) *mode_mass = best;
    return best_count;
  }
};

class Inferencer {
 public:
  explicit Inferencer(const RecordBreakerOptions& options)
      : options_(options) {}

  std::unique_ptr<RbSchema> Infer(const std::vector<Segment>& segments,
                                  int depth) const {
    // Base cases.
    std::vector<Segment> nonempty;
    for (const Segment& s : segments) {
      if (s.size() > 0) nonempty.push_back(s);
    }
    if (nonempty.empty()) return MakeEmpty();
    if (AllSingleSameToken(nonempty)) {
      return MakeBase(nonempty[0].at(0).Signature());
    }
    if (AllSameSignature(nonempty)) return StructOf(nonempty, depth);
    if (depth >= options_.max_depth) {
      return MakeBase(0);  // blob
    }

    // Histogram oracle.
    auto stats = BuildStats(nonempty);
    uint16_t anchor = 0;
    const AnchorStats* best = PickAnchor(stats, nonempty.size(), &anchor);
    if (best != nullptr) {
      size_t mode_mass = 0;
      size_t mode = best->ModeCount(&mode_mass);
      double mass = static_cast<double>(mode_mass) /
                    static_cast<double>(best->covering);
      if (mass >= options_.max_mass && mode >= 1) {
        return StructSplit(nonempty, anchor, mode, depth);
      }
      return ArraySplit(nonempty, anchor, depth);
    }

    // No anchor: union by signature clusters.
    return UnionBySignature(nonempty, depth);
  }

 private:
  bool AllSingleSameToken(const std::vector<Segment>& segs) const {
    if (segs[0].size() != 1) return false;
    for (const Segment& s : segs) {
      if (s.size() != 1 || s.at(0).Signature() != segs[0].at(0).Signature()) {
        return false;
      }
    }
    return true;
  }

  bool AllSameSignature(const std::vector<Segment>& segs) const {
    for (size_t i = 1; i < segs.size(); ++i) {
      if (!SameSignatureSequence(segs[0], segs[i])) return false;
    }
    return true;
  }

  std::unique_ptr<RbSchema> StructOf(const std::vector<Segment>& segs,
                                     int) const {
    auto n = std::make_unique<RbSchema>();
    n->kind = RbSchema::Kind::kStruct;
    for (size_t i = 0; i < segs[0].size(); ++i) {
      n->children.push_back(MakeBase(segs[0].at(i).Signature()));
    }
    return n;
  }

  std::unordered_map<uint16_t, AnchorStats> BuildStats(
      const std::vector<Segment>& segs) const {
    std::unordered_map<uint16_t, AnchorStats> stats;
    for (const Segment& s : segs) {
      std::unordered_map<uint16_t, size_t> local;
      for (size_t i = 0; i < s.size(); ++i) local[s.at(i).Signature()]++;
      for (const auto& [sig, count] : local) {
        AnchorStats& a = stats[sig];
        a.covering++;
        a.counts[count]++;
      }
    }
    return stats;
  }

  const AnchorStats* PickAnchor(
      const std::unordered_map<uint16_t, AnchorStats>& stats, size_t total,
      uint16_t* anchor) const {
    const AnchorStats* best = nullptr;
    uint16_t best_sig = 0;
    for (const auto& [sig, a] : stats) {
      double coverage =
          static_cast<double>(a.covering) / static_cast<double>(total);
      if (coverage < options_.min_coverage) continue;
      // Only structure tokens (punctuation / whitespace) anchor splits;
      // value tokens are payload.
      RbTokenType type = static_cast<RbTokenType>(sig >> 8);
      if (type != RbTokenType::kPunct && type != RbTokenType::kSpace) {
        continue;
      }
      if (best == nullptr || a.covering > best->covering ||
          (a.covering == best->covering && sig < best_sig)) {
        best = &a;
        best_sig = sig;
      }
    }
    *anchor = best_sig;
    return best;
  }

  /// Splits covering segments around the first `mode` anchor occurrences.
  std::unique_ptr<RbSchema> StructSplit(const std::vector<Segment>& segs,
                                        uint16_t anchor, size_t mode,
                                        int depth) const {
    std::vector<std::vector<Segment>> parts(mode + 1);
    std::vector<Segment> residue;
    for (const Segment& s : segs) {
      std::vector<size_t> hits;
      for (size_t i = 0; i < s.size(); ++i) {
        if (s.at(i).Signature() == anchor) hits.push_back(i);
      }
      if (hits.size() != mode) {
        residue.push_back(s);
        continue;
      }
      size_t prev = 0;
      for (size_t h = 0; h < hits.size(); ++h) {
        parts[h].push_back(
            Segment{s.line, s.tokens, s.begin + prev, s.begin + hits[h]});
        prev = hits[h] + 1;
      }
      parts[mode].push_back(
          Segment{s.line, s.tokens, s.begin + prev, s.end});
    }
    auto node = std::make_unique<RbSchema>();
    node->kind = RbSchema::Kind::kStruct;
    node->anchor = anchor;
    for (size_t p = 0; p <= mode; ++p) {
      node->children.push_back(Infer(parts[p], depth + 1));
      if (p < mode) node->children.push_back(MakeBase(anchor));
    }
    if (residue.empty()) return node;
    auto u = std::make_unique<RbSchema>();
    u->kind = RbSchema::Kind::kUnion;
    u->children.push_back(std::move(node));
    u->children.push_back(Infer(residue, depth + 1));
    return u;
  }

  std::unique_ptr<RbSchema> ArraySplit(const std::vector<Segment>& segs,
                                       uint16_t anchor, int depth) const {
    std::vector<Segment> pooled;
    std::vector<Segment> residue;
    for (const Segment& s : segs) {
      bool has = false;
      size_t prev = 0;
      for (size_t i = 0; i < s.size(); ++i) {
        if (s.at(i).Signature() == anchor) {
          pooled.push_back(
              Segment{s.line, s.tokens, s.begin + prev, s.begin + i});
          prev = i + 1;
          has = true;
        }
      }
      if (!has) {
        residue.push_back(s);
      } else {
        pooled.push_back(Segment{s.line, s.tokens, s.begin + prev, s.end});
      }
    }
    auto node = std::make_unique<RbSchema>();
    node->kind = RbSchema::Kind::kArray;
    node->anchor = anchor;
    node->children.push_back(Infer(pooled, depth + 1));
    if (residue.empty()) return node;
    auto u = std::make_unique<RbSchema>();
    u->kind = RbSchema::Kind::kUnion;
    u->children.push_back(std::move(node));
    u->children.push_back(Infer(residue, depth + 1));
    return u;
  }

  std::unique_ptr<RbSchema> UnionBySignature(const std::vector<Segment>& segs,
                                             int depth) const {
    std::vector<std::vector<Segment>> groups;
    for (const Segment& s : segs) {
      bool placed = false;
      for (auto& g : groups) {
        if (SameSignatureSequence(g[0], s)) {
          g.push_back(s);
          placed = true;
          break;
        }
      }
      if (!placed) groups.push_back({s});
    }
    std::sort(groups.begin(), groups.end(),
              [](const auto& a, const auto& b) { return a.size() > b.size(); });
    auto u = std::make_unique<RbSchema>();
    u->kind = RbSchema::Kind::kUnion;
    size_t limit = std::min<size_t>(
        groups.size(), static_cast<size_t>(options_.max_union_branches));
    for (size_t g = 0; g < limit; ++g) {
      u->children.push_back(Infer(groups[g], depth + 1));
    }
    if (groups.size() > limit) u->children.push_back(MakeBase(0));  // blob
    return u;
  }

  const RecordBreakerOptions& options_;
};

}  // namespace

std::string RbSchema::ToString() const {
  switch (kind) {
    case Kind::kEmpty:
      return "()";
    case Kind::kBase: {
      if (signature == 0) return "BLOB";
      RbTokenType type = static_cast<RbTokenType>(signature >> 8);
      if (type == RbTokenType::kPunct) {
        return StrFormat("'%c'", static_cast<char>(signature & 0xff));
      }
      return RbTokenTypeName(type);
    }
    case Kind::kStruct: {
      std::string out = "Struct[";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " ";
        out += children[i]->ToString();
      }
      return out + "]";
    }
    case Kind::kArray:
      return "Array[" + children[0]->ToString() + "]";
    case Kind::kUnion: {
      std::string out = "Union{";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += " | ";
        out += children[i]->ToString();
      }
      return out + "}";
    }
  }
  return "?";
}

RecordBreaker::RecordBreaker(RecordBreakerOptions options)
    : options_(options) {}

RecordBreakerResult RecordBreaker::Extract(const Dataset& data) const {
  RecordBreakerResult result;
  const size_t n = data.line_count();
  std::vector<std::vector<RbToken>> tokens(n);
  for (size_t li = 0; li < n; ++li) {
    tokens[li] = RbTokenize(data.line(li));
  }

  // Top-level loop: peel off one record type (branch) at a time, mirroring
  // the union construction. A branch is formed by a struct/array split when
  // the histogram supports one, otherwise by the largest signature cluster.
  std::vector<int> branch_of(n, -1);
  std::vector<Segment> remaining;
  for (size_t li = 0; li < n; ++li) {
    remaining.push_back(Segment{li, &tokens[li], 0, tokens[li].size()});
  }
  Inferencer inferencer(options_);
  auto root_union = std::make_unique<RbSchema>();
  root_union->kind = RbSchema::Kind::kUnion;
  int branch = 0;
  while (!remaining.empty() && branch < options_.max_union_branches) {
    // Decide this round's branch membership.
    std::vector<Segment> members;
    std::vector<Segment> rest;
    // Try an anchor split over the remaining lines.
    std::unordered_map<uint16_t, AnchorStats> stats;
    for (const Segment& s : remaining) {
      std::unordered_map<uint16_t, size_t> local;
      for (size_t i = 0; i < s.size(); ++i) local[s.at(i).Signature()]++;
      for (const auto& [sig, count] : local) {
        stats[sig].covering++;
        stats[sig].counts[count]++;
      }
    }
    const AnchorStats* best = nullptr;
    uint16_t anchor = 0;
    for (const auto& [sig, a] : stats) {
      double coverage = static_cast<double>(a.covering) /
                        static_cast<double>(remaining.size());
      if (coverage < options_.min_coverage) continue;
      RbTokenType type = static_cast<RbTokenType>(sig >> 8);
      if (type != RbTokenType::kPunct && type != RbTokenType::kSpace) {
        continue;
      }
      if (best == nullptr || a.covering > best->covering ||
          (a.covering == best->covering && sig < anchor)) {
        best = &a;
        anchor = sig;
      }
    }
    if (best != nullptr) {
      size_t mode_mass = 0;
      size_t mode = best->ModeCount(&mode_mass);
      double mass = static_cast<double>(mode_mass) /
                    static_cast<double>(best->covering);
      bool struct_like = mass >= options_.max_mass;
      for (const Segment& s : remaining) {
        size_t count = 0;
        for (size_t i = 0; i < s.size(); ++i) {
          if (s.at(i).Signature() == anchor) ++count;
        }
        bool member = struct_like ? (count == mode) : (count >= 1);
        (member ? members : rest).push_back(s);
      }
    }
    if (best == nullptr || members.empty()) {
      // Cluster by exact signature: the largest cluster becomes the branch.
      members.clear();
      rest.clear();
      for (const Segment& s : remaining) {
        if (SameSignatureSequence(remaining[0], s)) {
          members.push_back(s);
        } else {
          rest.push_back(s);
        }
      }
    }
    for (const Segment& s : members) {
      branch_of[s.line] = branch;
    }
    root_union->children.push_back(inferencer.Infer(members, 0));
    remaining = std::move(rest);
    ++branch;
  }
  // Overflow lines land in a final blob branch.
  if (!remaining.empty()) {
    for (const Segment& s : remaining) branch_of[s.line] = branch;
    root_union->children.push_back(MakeBase(0));
    ++branch;
  }
  result.branch_count = branch;
  if (root_union->children.size() == 1) {
    result.schema = std::move(root_union->children[0]);
  } else {
    result.schema = std::move(root_union);
  }

  // Every line is a record (Assumption 4); fields are its value tokens.
  result.records.reserve(n);
  for (size_t li = 0; li < n; ++li) {
    RbRecord rec;
    rec.line = li;
    rec.branch = branch_of[li] < 0 ? 0 : branch_of[li];
    const size_t base = data.line_begin(li);
    for (const RbToken& t : tokens[li]) {
      if (t.IsValue()) {
        rec.fields.emplace_back(base + t.begin, base + t.end);
      }
    }
    result.records.push_back(std::move(rec));
  }
  return result;
}

}  // namespace datamaran
