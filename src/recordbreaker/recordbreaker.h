#ifndef DATAMARAN_RECORDBREAKER_RECORDBREAKER_H_
#define DATAMARAN_RECORDBREAKER_RECORDBREAKER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "recordbreaker/lexer.h"

/// Reimplementation of RecordBreaker [3], the unsupervised line-by-line
/// adaptation of Fisher et al.'s PADS structure inference [20], used as the
/// paper's baseline (Section 5.3.2, Figure 17b).
///
/// RecordBreaker makes two assumptions Datamaran drops (Table 1):
///   Boundary (Assumption 4):     every record is exactly one line.
///   Tokenization (Assumption 5): a fixed lexer splits each record into
///                                structure and value tokens up front.
///
/// Structure inference is Fisher's top-down histogram "oracle", governed by
/// the two tunables the paper calls out:
///   MaxMass:     a token signature whose per-line occurrence count is
///                constant across at least this fraction of (covering)
///                lines anchors a Struct split.
///   MinCoverage: signatures appearing in fewer lines than this fraction
///                are not considered as split anchors.
/// Variable-count anchors produce Arrays; unsplittable mixtures produce
/// Unions (one branch per line cluster), which is why RecordBreaker emits
/// multiple output files for heterogeneous logs (Section 6's user study).

namespace datamaran {

struct RecordBreakerOptions {
  double max_mass = 0.8;
  double min_coverage = 0.7;
  int max_union_branches = 8;
  int max_depth = 6;
};

/// Inferred schema node.
struct RbSchema {
  enum class Kind { kBase, kStruct, kArray, kUnion, kEmpty };
  Kind kind = Kind::kEmpty;
  /// kBase: the token signature this position holds.
  uint16_t signature = 0;
  /// kStruct/kUnion: children; kArray: one child (the element schema).
  std::vector<std::unique_ptr<RbSchema>> children;
  /// kArray/kStruct anchors: the separating signature.
  uint16_t anchor = 0;

  std::string ToString() const;
};

/// One extracted line-record.
struct RbRecord {
  size_t line = 0;
  int branch = 0;  ///< top-level union branch (record type)
  /// Spans of the value tokens, in order (the extracted fields).
  std::vector<std::pair<size_t, size_t>> fields;
};

struct RecordBreakerResult {
  std::unique_ptr<RbSchema> schema;
  std::vector<RbRecord> records;
  int branch_count = 1;
};

class RecordBreaker {
 public:
  explicit RecordBreaker(RecordBreakerOptions options = {});

  /// Tokenizes every line, infers the schema and emits one record per line
  /// (RecordBreaker has no noise concept: every line is a record of some
  /// union branch).
  RecordBreakerResult Extract(const Dataset& data) const;

 private:
  RecordBreakerOptions options_;
};

}  // namespace datamaran

#endif  // DATAMARAN_RECORDBREAKER_RECORDBREAKER_H_
