#ifndef DATAMARAN_CORE_DATAMARAN_H_
#define DATAMARAN_CORE_DATAMARAN_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/options.h"
#include "extraction/extractor.h"
#include "scoring/mdl.h"
#include "template/catalog.h"
#include "template/template.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// Public entry point: the end-to-end Datamaran pipeline (Figure 9).
///
///   Generation  — enumerate RT-CharSets and candidate record boundaries,
///                 hash minimal structure templates, keep those with >=
///                 alpha% coverage (Section 4.1).
///   Pruning     — rank by assimilation score G = Cov x NonFieldCov and
///                 keep the top M (Section 4.2).
///   Evaluation  — score the survivors with the regularity score (MDL by
///                 default), refine the best one by array unfolding and
///                 structure shifting (Section 4.3), and accept it if it
///                 beats the pure-noise encoding.
///   Interleaved datasets are handled by re-running the three steps on the
///   unexplained residual (Section 9.1) until nothing else clears alpha%.
///   Finally the whole file is extracted with the accepted template set.
///
/// Memory model: the input file is one immutable backing buffer (owned or
/// mmap'd — see Dataset::FromFile), the discovery sample is a DatasetView
/// of its lines, and each residual round is produced by MaskMatchedLines —
/// an index-only mask-and-compact over the previous round's live lines.
/// No stage ever rewrites text, so the per-round cost is O(live lines) and
/// a mapped multi-GB file only faults in the pages the sample and the
/// final extraction actually touch.

namespace datamaran {

class ScoreCache;

/// Wall-clock seconds per pipeline step (Table 3's empirical counterpart).
struct StepTimings {
  /// Catalog fingerprinting (template/catalog.h MatchCatalog); 0 when no
  /// catalog is loaded. On a catalog hit this replaces the generation /
  /// pruning / evaluation / refinement steps, which then report 0.
  double catalog_match_s = 0;
  double generation_s = 0;
  double pruning_s = 0;
  double evaluation_s = 0;
  /// Refinement of the top-K scored candidates (unfold loop + structure
  /// shifting). Separate from evaluation_s so the candidate-scoring fast
  /// path (bound-based pruning) is measurable in isolation.
  double refinement_s = 0;
  double extraction_s = 0;
  double total_s = 0;
};

/// Per-accepted-template diagnostics.
struct TemplateReport {
  StructureTemplate st;
  double mdl_bits = 0;
  double noise_only_bits = 0;
  size_t sample_records = 0;
  double sample_coverage = 0;  // fraction of residual chars covered
};

/// Aggregate statistics of a pipeline run.
struct PipelineStats {
  size_t charsets_tried = 0;
  size_t candidates_generated = 0;  // K: survivors of generation, all rounds
  size_t candidates_evaluated = 0;
  /// Retained candidates skipped by the evaluation step's bound-based
  /// pruning (their MDL lower bound proved them outside the refinement
  /// top-K; see core/datamaran.cc). Always 0 with enable_mdl_pruning off.
  size_t candidates_pruned = 0;
  size_t sample_bytes = 0;
  int rounds = 0;
  /// Cross-round score cache effectiveness (0/0 when the cache is off).
  /// Counts may vary slightly with thread count (benign lookup races);
  /// results never do.
  size_t score_cache_hits = 0;
  size_t score_cache_misses = 0;
  /// Text bytes materialized by residual transitions. Index-only masking
  /// copies nothing except the rare candidate window that straddles a view
  /// gap, so this stays O(gaps x record) instead of O(rounds x sample).
  size_t residual_copy_bytes = 0;
  /// Input backing diagnostics (ExtractFile / ExtractDataset only).
  size_t input_bytes = 0;
  bool input_mapped = false;
  size_t input_resident_bytes = 0;
  /// Catalog fast path (options.catalog_in): whether the input was
  /// fingerprinted against a loaded catalog, and whether that produced a
  /// hit (discovery skipped; templates served from catalog_entry).
  bool catalog_checked = false;
  bool catalog_hit = false;
  int catalog_entry = -1;
  /// Fraction of sampled lines the accepted entry's records covered.
  double catalog_match_rate = 0;
};

struct PipelineResult {
  /// Accepted structure templates in discovery (priority) order.
  std::vector<StructureTemplate> templates;
  /// Full-file extraction with those templates.
  ExtractionResult extraction;
  StepTimings timings;
  PipelineStats stats;
  std::vector<TemplateReport> reports;
};

class Datamaran {
 public:
  /// When options.catalog_in is set the catalog is loaded here; a load
  /// failure is sticky (catalog_status()) and surfaced by ExtractFile,
  /// while the dataset entry points fall back to cold discovery.
  explicit Datamaran(DatamaranOptions options);

  const DatamaranOptions& options() const { return options_; }

  /// Load status of options().catalog_in (OK when unset). The in-memory
  /// catalog after any number of Extract* calls: loaded entries plus every
  /// format this instance discovered cold while options().catalog_out is
  /// set.
  const Status& catalog_status() const { return catalog_status_; }
  const TemplateCatalog& catalog() const { return catalog_; }

  /// Runs the full pipeline over the file at `path`, choosing the backing
  /// (mmap vs owned read) per options().mmap_mode.
  Result<PipelineResult> ExtractFile(const std::string& path) const;

  /// Runs the full pipeline over an already-opened dataset.
  PipelineResult ExtractDataset(const Dataset& data) const;

  /// Runs the full pipeline over an in-memory dataset.
  PipelineResult ExtractText(std::string text) const;

  /// Structure discovery only (no whole-file extraction); `data` is sampled
  /// internally. Used by parameter-sweep benchmarks.
  std::vector<StructureTemplate> DiscoverTemplates(const Dataset& data,
                                                   StepTimings* timings,
                                                   PipelineStats* stats,
                                                   std::vector<TemplateReport>*
                                                       reports) const;

 private:
  DatamaranOptions options_;
  MdlScorer scorer_;
  /// Shared worker pool for all parallel stages (options_.num_threads,
  /// 0 = hardware concurrency). Created once per Datamaran instance; a
  /// size-1 pool runs everything inline, reproducing the sequential
  /// reference behavior bit for bit.
  std::unique_ptr<ThreadPool> pool_;
  /// Catalog fast-path state. ExtractDataset is const (the pipeline is a
  /// pure function of options + input); folding a cold-discovered format
  /// back into the catalog is a cache fill, so the catalog is mutable and
  /// mutex-guarded for callers extracting from several threads.
  mutable std::mutex catalog_mu_;
  mutable TemplateCatalog catalog_;
  Status catalog_status_;
  bool catalog_loaded_ = false;
};

/// The index-only residual transition (replaces the old residual-string
/// rebuild): every live line covered by a greedy first-match scan of `st`
/// is masked out, and the survivors are compacted into the returned view.
/// The expensive per-line match attempts run on `pool` in parallel (pure
/// per-index work) through the selected match engine, the O(live) mask walk
/// is sequential, and the result is identical for every thread count and
/// either engine. No text is copied — only candidate windows straddling a
/// view gap are assembled transiently (`assembled_bytes` totals them).
struct ResidualMask {
  DatasetView view;                     ///< surviving lines
  std::vector<uint32_t> removed_lines;  ///< physical ids masked out, ascending
  size_t matched_records = 0;
  size_t assembled_bytes = 0;
};
ResidualMask MaskMatchedLines(const DatasetView& view,
                              const StructureTemplate& st,
                              ThreadPool* pool = nullptr,
                              MatchEngine engine = MatchEngine::kCompiled,
                              CharsetEngine charset_engine =
                                  CharsetEngine::kSimd);

}  // namespace datamaran

#endif  // DATAMARAN_CORE_DATAMARAN_H_
