#ifndef DATAMARAN_CORE_SUMMARY_H_
#define DATAMARAN_CORE_SUMMARY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/datamaran.h"
#include "core/options.h"
#include "util/json.h"

/// Machine-readable per-file run summary: the one struct behind both the
/// CLI's --summary-json flag and the crawler's lake manifest, so any
/// downstream consumer parses a single shape. Rendering is plain
/// hand-rolled JSON (like BENCH_micro.json and the NDJSON sink) — no
/// dependencies, deterministic key order.

namespace datamaran {

/// Everything a run knows about one input file. Timing fields are the only
/// nondeterministic content; all counts are byte-exact across thread count,
/// engine, and backing.
struct FileSummary {
  std::string path;
  size_t input_bytes = 0;
  bool input_mapped = false;
  /// Change-detection identity of the source file(s) behind this summary,
  /// filled by the crawler: total on-disk size and the newest member's
  /// mtime in nanoseconds. `--incremental` re-crawls compare these against
  /// the previous manifest and skip files whose pair is unchanged.
  size_t source_size = 0;
  int64_t source_mtime_ns = 0;
  /// True when an incremental re-crawl restored this summary from the
  /// previous manifest instead of re-extracting the file.
  bool skipped = false;

  /// Failure containment: when the input layer or extraction failed, the
  /// Status rendered as "CODE: message" (empty = the run succeeded). A
  /// summary with a non-empty error carries only the fields known before
  /// the failure; the crawler's manifest aggregates these into its errors
  /// section instead of aborting the crawl.
  std::string error;

  /// Structure: Display() forms of the templates used for extraction.
  std::vector<std::string> templates;

  /// Extraction counts (whole file).
  size_t total_lines = 0;
  size_t records = 0;
  std::vector<size_t> records_per_template;
  size_t noise_lines = 0;
  double match_rate = 0;  ///< ExtractionResult::line_match_rate()
  double coverage = 0;    ///< covered chars / total chars

  /// Catalog fast path.
  bool catalog_checked = false;
  bool catalog_hit = false;
  int catalog_entry = -1;
  double catalog_match_rate = 0;  ///< sample match rate of the hit
  /// Sample fingerprint matched a catalog entry but the whole file did
  /// not clear the threshold — the file's tail drifted from its format.
  bool drifted = false;

  /// Streaming (--follow) runs only: `streaming` marks the summary as
  /// produced by a live StreamingSession, and the stream_* counters mirror
  /// StreamStats. Batch summaries omit the whole "stream" JSON object and
  /// the parser defaults every field here, so pre-streaming manifests keep
  /// parsing unchanged.
  bool streaming = false;
  size_t stream_epochs = 0;       ///< 1 after warm-up, +1 per evolution
  size_t stream_evolutions = 0;   ///< drift evolutions that added templates
  size_t stream_discovery_runs = 0;
  size_t stream_checkpoints = 0;  ///< successful catalog saves
  size_t stream_oversized_lines = 0;

  /// Resolved configuration.
  std::string match_engine;
  std::string charset_engine;
  int threads = 0;

  StepTimings timings;
};

/// Fills the counts/config/catalog fields of a FileSummary from a pipeline
/// result. The records_per_template split comes from the extractor's own
/// per-template accounting, so it is populated on streaming-sink runs
/// exactly as on collecting ones. `drifted` is derived from the catalog
/// hit and options.catalog_min_match.
FileSummary SummarizeResult(const std::string& path, const PipelineResult& r,
                            const DatamaranOptions& options);

/// Appends `s` as a JSON object, each line prefixed by `indent` spaces; no
/// trailing newline. Keys are emitted in declaration order.
void AppendFileSummaryJson(const FileSummary& s, int indent, std::string* out);

/// Renders one summary as a standalone JSON document (trailing newline).
std::string FileSummaryToJson(const FileSummary& s);

/// Inverse of AppendFileSummaryJson: rebuilds a FileSummary from its parsed
/// JSON object (the incremental re-crawl restores unchanged files' summaries
/// from the previous manifest this way). Every field the writer emits is
/// required and type-checked; unknown keys are ignored. Counters round-trip
/// exactly and %.6f doubles re-render byte-identically, so restore +
/// AppendFileSummaryJson reproduces the original object.
Result<FileSummary> FileSummaryFromJson(const JsonValue& v);

}  // namespace datamaran

#endif  // DATAMARAN_CORE_SUMMARY_H_
