#ifndef DATAMARAN_CORE_SUMMARY_H_
#define DATAMARAN_CORE_SUMMARY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/datamaran.h"
#include "core/options.h"

/// Machine-readable per-file run summary: the one struct behind both the
/// CLI's --summary-json flag and the crawler's lake manifest, so any
/// downstream consumer parses a single shape. Rendering is plain
/// hand-rolled JSON (like BENCH_micro.json and the NDJSON sink) — no
/// dependencies, deterministic key order.

namespace datamaran {

/// Everything a run knows about one input file. Timing fields are the only
/// nondeterministic content; all counts are byte-exact across thread count,
/// engine, and backing.
struct FileSummary {
  std::string path;
  size_t input_bytes = 0;
  bool input_mapped = false;

  /// Failure containment: when the input layer or extraction failed, the
  /// Status rendered as "CODE: message" (empty = the run succeeded). A
  /// summary with a non-empty error carries only the fields known before
  /// the failure; the crawler's manifest aggregates these into its errors
  /// section instead of aborting the crawl.
  std::string error;

  /// Structure: Display() forms of the templates used for extraction.
  std::vector<std::string> templates;

  /// Extraction counts (whole file).
  size_t total_lines = 0;
  size_t records = 0;
  std::vector<size_t> records_per_template;
  size_t noise_lines = 0;
  double match_rate = 0;  ///< ExtractionResult::line_match_rate()
  double coverage = 0;    ///< covered chars / total chars

  /// Catalog fast path.
  bool catalog_checked = false;
  bool catalog_hit = false;
  int catalog_entry = -1;
  double catalog_match_rate = 0;  ///< sample match rate of the hit
  /// Sample fingerprint matched a catalog entry but the whole file did
  /// not clear the threshold — the file's tail drifted from its format.
  bool drifted = false;

  /// Resolved configuration.
  std::string match_engine;
  std::string charset_engine;
  int threads = 0;

  StepTimings timings;
};

/// Fills the counts/config/catalog fields of a FileSummary from a pipeline
/// result (the records_per_template split requires collected records, so it
/// is only filled when `r.extraction.records` is populated). `drifted` is
/// derived from the catalog hit and options.catalog_min_match.
FileSummary SummarizeResult(const std::string& path, const PipelineResult& r,
                            const DatamaranOptions& options);

/// Appends `s` as a JSON object, each line prefixed by `indent` spaces; no
/// trailing newline. Keys are emitted in declaration order.
void AppendFileSummaryJson(const FileSummary& s, int indent, std::string* out);

/// Renders one summary as a standalone JSON document (trailing newline).
std::string FileSummaryToJson(const FileSummary& s);

}  // namespace datamaran

#endif  // DATAMARAN_CORE_SUMMARY_H_
