#include "core/input.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "util/gzip.h"
#include "util/strings.h"

#if defined(__unix__) || defined(__APPLE__)
#define DM_HAVE_GLOB 1
#include <fcntl.h>
#include <glob.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace datamaran {

namespace {

/// Re-wraps `s` with a leading context (usually the offending path) so
/// multi-file errors name their file, preserving the status code.
Status WithContext(const Status& s, const std::string& context) {
  const std::string msg = context + ": " + s.message();
  switch (s.code()) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(msg);
    case StatusCode::kNotFound:
      return Status::NotFound(msg);
    case StatusCode::kParseError:
      return Status::ParseError(msg);
    case StatusCode::kInternal:
      return Status::Internal(msg);
    case StatusCode::kIoError:
    default:
      return Status::IoError(msg);
  }
}

/// First min(kCrlfProbeBytes, file size) bytes of the file; an unreadable
/// file reports the same IoError ReadFileToString would.
Result<std::string> ReadHead(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for read: " + path);
  }
  std::string head;
  head.resize(kCrlfProbeBytes);
  const size_t got = std::fread(head.data(), 1, head.size(), f);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IoError("read failed: " + path);
  head.resize(got);
  return head;
}

/// Applies the CRLF policy to an owned buffer (kAuto probes the buffer's
/// own head — for decompressed input the probe must see plain text).
void ApplyCrlfPolicy(std::string* text, CrlfPolicy policy) {
  if (policy == CrlfPolicy::kKeep) return;
  if (policy == CrlfPolicy::kAuto &&
      !DetectCrlf(std::string_view(*text).substr(
          0, std::min(text->size(), kCrlfProbeBytes)))) {
    return;
  }
  StripCrlfInPlace(text);
}

/// Loads one stitch member fully into memory: gzip members inflate, plain
/// members read, and the CRLF policy applies per member.
Result<std::string> LoadMemberBytes(const std::string& path,
                                    const InputOptions& options) {
  auto bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  std::string text = std::move(bytes.value());
  if (LooksGzip(text)) {
    auto inflated = GunzipToString(text, options.max_inflate_bytes);
    if (!inflated.ok()) return WithContext(inflated.status(), path);
    text = std::move(inflated.value());
  }
  ApplyCrlfPolicy(&text, options.crlf);
  return text;
}

}  // namespace

bool DetectCrlf(std::string_view head) {
  return head.find("\r\n") != std::string_view::npos;
}

size_t StripCrlfInPlace(std::string* text) {
  size_t stripped = 0;
  size_t w = 0;
  const size_t n = text->size();
  for (size_t r = 0; r < n; ++r) {
    if ((*text)[r] == '\r' && r + 1 < n && (*text)[r + 1] == '\n') {
      ++stripped;
      continue;  // drop the '\r'; the '\n' copies on the next iteration
    }
    (*text)[w++] = (*text)[r];
  }
  text->resize(w);
  return stripped;
}

RotationKey RotationKeyFor(std::string_view path) {
  RotationKey key;
  std::string_view rest = path;
  if (rest.size() > 3 && rest.substr(rest.size() - 3) == ".gz") {
    rest.remove_suffix(3);
  }
  // A short pure-numeric final component is a rotation generation; longer
  // numeric tails (dates like data.2023) are part of the name.
  const size_t dot = rest.rfind('.');
  if (dot != std::string_view::npos && dot + 1 < rest.size()) {
    const std::string_view digits = rest.substr(dot + 1);
    const bool numeric =
        digits.size() <= 3 &&
        std::all_of(digits.begin(), digits.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c)) != 0;
        });
    // The basename must not be empty or itself the whole name (".1").
    const size_t slash = rest.rfind('/');
    const size_t name_begin = slash == std::string_view::npos ? 0 : slash + 1;
    if (numeric && dot > name_begin) {
      key.base = std::string(rest.substr(0, dot));
      key.index = std::atoi(std::string(digits).c_str());
      return key;
    }
  }
  key.base = std::string(rest);
  key.index = -1;
  return key;
}

void SortByRotation(std::vector<std::string>* paths) {
  std::stable_sort(
      paths->begin(), paths->end(),
      [](const std::string& a, const std::string& b) {
        const RotationKey ka = RotationKeyFor(a);
        const RotationKey kb = RotationKeyFor(b);
        if (ka.base != kb.base) return ka.base < kb.base;
        if (ka.index != kb.index) {
          // Highest generation first (oldest data); the live file (-1)
          // comes last.
          if (ka.index == -1) return false;
          if (kb.index == -1) return true;
          return ka.index > kb.index;
        }
        return a < b;
      });
}

Result<std::vector<std::string>> ExpandInputSpec(std::string_view spec) {
  std::vector<std::string> paths;
  for (std::string_view token : Split(spec, ',')) {
    if (token.empty()) continue;
    const std::string pattern(token);
    const bool has_glob =
        pattern.find_first_of("*?[") != std::string::npos;
#if DM_HAVE_GLOB
    if (has_glob) {
      glob_t g{};
      const int rc = ::glob(pattern.c_str(), 0, nullptr, &g);
      if (rc == GLOB_NOMATCH) {
        ::globfree(&g);
        return Status::NotFound("no input matches pattern: " + pattern);
      }
      if (rc != 0) {
        ::globfree(&g);
        return Status::IoError("glob failed for pattern: " + pattern);
      }
      for (size_t i = 0; i < g.gl_pathc; ++i) {
        paths.emplace_back(g.gl_pathv[i]);
      }
      ::globfree(&g);
      continue;
    }
#else
    if (has_glob) {
      return Status::InvalidArgument(
          "glob patterns are not supported on this platform: " + pattern);
    }
#endif
    std::error_code ec;
    if (!std::filesystem::exists(pattern, ec)) {
      return Status::NotFound("no such input file: " + pattern);
    }
    paths.push_back(pattern);
  }
  if (paths.empty()) {
    return Status::InvalidArgument("empty --inputs spec");
  }
  // A literal path repeated, or overlapping globs, must not double the data.
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
  SortByRotation(&paths);
  return paths;
}

Result<Dataset> DatasetFromBytes(std::string bytes,
                                 const InputOptions& options) {
  if (LooksGzip(bytes)) {
    auto inflated = GunzipToString(bytes, options.max_inflate_bytes);
    if (!inflated.ok()) return inflated.status();
    bytes = std::move(inflated.value());
  }
  ApplyCrlfPolicy(&bytes, options.crlf);
  return Dataset(std::move(bytes));
}

Result<Dataset> OpenInput(const std::string& path,
                          const InputOptions& options) {
  auto head = ReadHead(path);
  if (!head.ok()) return head.status();

  if (LooksGzip(head.value())) {
    // Inflate from a lazy mapping of the compressed bytes into an owned
    // backing. The mapping (not a whole-file read) keeps the peak at
    // O(inflated) instead of O(compressed + inflated).
    auto region = MmapFile(path);
    if (!region.ok()) return region.status();
    auto inflated =
        GunzipToString(region.value().view(), options.max_inflate_bytes);
    if (!inflated.ok()) return WithContext(inflated.status(), path);
    std::string text = std::move(inflated.value());
    ApplyCrlfPolicy(&text, options.crlf);
    return Dataset(std::move(text));
  }

  const bool strip =
      options.crlf == CrlfPolicy::kStrip ||
      (options.crlf == CrlfPolicy::kAuto && DetectCrlf(head.value()));
  if (strip) {
    auto text = ReadFileToString(path);
    if (!text.ok()) return text.status();
    StripCrlfInPlace(&text.value());
    return Dataset(std::move(text.value()));
  }

  // Clean plain file: the zero-copy mmap fast path is preserved.
  return Dataset::FromFile(path, options.mmap_mode,
                           options.mmap_threshold_bytes);
}

Result<Dataset> OpenInputs(const std::vector<std::string>& paths,
                           const InputOptions& options) {
  if (paths.empty()) return Status::InvalidArgument("no input files");
  if (paths.size() == 1) return OpenInput(paths[0], options);
  // Pre-size the stitch buffer from the on-disk member sizes (+1 newline
  // terminator each) so appending never reallocates mid-stitch: peak
  // memory stays at one member plus the combined buffer, not 2x combined.
  // Gzip members inflate larger than their file size — the reserve is then
  // only a hint and growth proceeds as usual, never incorrectly.
  size_t reserve_hint = 0;
  for (const std::string& path : paths) {
    auto size = FileSizeBytes(path);
    if (size.ok()) reserve_hint += size.value() + 1;
  }
  std::string combined;
  bool first = true;
  for (const std::string& path : paths) {
    auto member = LoadMemberBytes(path, options);
    if (!member.ok()) return member.status();
    if (first) {
      // Adopt the first member's buffer wholesale instead of copying it.
      combined = std::move(member.value());
      if (combined.capacity() < reserve_hint) combined.reserve(reserve_hint);
      first = false;
    } else {
      combined += member.value();
    }
    // Newline-terminate each member so a truncated final line cannot merge
    // with the first line of the next rotation generation.
    if (!combined.empty() && combined.back() != '\n') combined += '\n';
  }
  return Dataset(std::move(combined));
}

// ------------------------------------------------------------ StreamFramer

StreamFramer::StreamFramer(CrlfPolicy crlf, size_t max_line_bytes)
    : crlf_(crlf),
      max_line_bytes_(max_line_bytes),
      crlf_decided_(crlf != CrlfPolicy::kAuto),
      crlf_strip_(crlf == CrlfPolicy::kStrip) {}

void StreamFramer::EmitLine(std::string_view content_with_newline,
                            bool carry_oversized, const LineFn& on_line) {
  // kAuto resolves the first time a line terminates: a CRLF terminator
  // whose '\n' sits inside the probe window means "strip everywhere"
  // (exactly DetectCrlf's condition — every "\r\n" in the text is a line
  // terminator, so the head probe can only ever see one at a boundary).
  // The first terminator at or past the window locks in "keep", mirroring
  // the batch probe's deterministic give-up: later terminators sit even
  // further out, so no future "\r\n" can be fully inside the window.
  // Lines emitted before the decision need no rewrite either way: they
  // did not end in CRLF. bytes_in_ is advanced by the caller through this
  // line's '\n', so the '\n' absolute offset is bytes_in_ - 1, and
  // "inside the probe window" (both bytes of "\r\n" within the first
  // kCrlfProbeBytes) is bytes_in_ <= kCrlfProbeBytes.
  const bool ends_crlf = content_with_newline.size() >= 2 &&
                         content_with_newline[content_with_newline.size() -
                                              2] == '\r';
  if (!crlf_decided_) {
    if (ends_crlf && bytes_in_ <= kCrlfProbeBytes) {
      crlf_strip_ = true;
      crlf_decided_ = true;
    } else if (bytes_in_ > kCrlfProbeBytes) {
      crlf_strip_ = false;
      crlf_decided_ = true;
    }
  }
  std::string_view out = content_with_newline;
  if (crlf_strip_ && ends_crlf) {
    // Strip the '\r' of the CRLF terminator (lone '\r' bytes elsewhere in
    // the line are data, exactly like StripCrlfInPlace).
    scratch_.assign(out.data(), out.size() - 2);
    scratch_.push_back('\n');
    out = scratch_;
    ++crlf_stripped_;
  }
  ++lines_out_;
  if (carry_oversized) ++oversized_lines_;
  on_line(out, carry_oversized);
}

void StreamFramer::Feed(std::string_view bytes, const LineFn& on_line) {
  while (!bytes.empty()) {
    const char* nl = static_cast<const char*>(
        std::memchr(bytes.data(), '\n', bytes.size()));
    if (nl == nullptr) {
      // No terminator in this chunk: everything joins the carry, subject
      // to the oversized cap (overflow is dropped, never buffered).
      bytes_in_ += bytes.size();
      size_t take = bytes.size();
      if (max_line_bytes_ != 0 && carry_.size() + take > max_line_bytes_) {
        take = max_line_bytes_ > carry_.size()
                   ? max_line_bytes_ - carry_.size()
                   : 0;
        carry_oversized_ = true;
      }
      carry_.append(bytes.data(), take);
      return;
    }
    const size_t head = static_cast<size_t>(nl - bytes.data()) + 1;
    bytes_in_ += head;
    if (carry_.empty() && !carry_oversized_) {
      if (max_line_bytes_ != 0 && head > max_line_bytes_) {
        // The cap applies here too — framing must be a pure function of
        // the byte stream, so a line delivered whole truncates exactly
        // like one accumulated through the carry.
        carry_.assign(bytes.data(), max_line_bytes_);
        carry_.push_back('\n');
        EmitLine(carry_, true, on_line);
        carry_.clear();
      } else {
        // Whole line inside this chunk: emit a direct view, no copy.
        EmitLine(bytes.substr(0, head), false, on_line);
      }
    } else {
      if (max_line_bytes_ != 0 && carry_.size() + head > max_line_bytes_) {
        // Keep the terminator but drop the overflowing tail bytes: the
        // truncated content is exactly max_line_bytes_ long, so callers
        // configuring the cap one past their downstream oversized guard
        // get a guaranteed over-cap (hence noise) line.
        const size_t take = max_line_bytes_ > carry_.size()
                                ? max_line_bytes_ - carry_.size()
                                : 0;
        carry_oversized_ = true;
        carry_.append(bytes.data(), take);
      } else {
        carry_.append(bytes.data(), head - 1);
      }
      carry_.push_back('\n');
      EmitLine(carry_, carry_oversized_, on_line);
      carry_.clear();
      carry_oversized_ = false;
    }
    bytes.remove_prefix(head);
  }
}

void StreamFramer::Finish(const LineFn& on_line) {
  if (carry_.empty() && !carry_oversized_) return;
  // Mirror Dataset's missing-final-newline append. Batch appends the
  // missing '\n' AFTER CRLF normalization, so a trailing lone '\r' keeps
  // its '\r' there — bypass EmitLine's CRLF handling (the synthetic
  // terminator never forms a strippable CRLF and never drives the kAuto
  // decision, which batch derives from the raw head alone).
  carry_.push_back('\n');
  ++lines_out_;
  if (carry_oversized_) ++oversized_lines_;
  on_line(carry_, carry_oversized_);
  carry_.clear();
  carry_oversized_ = false;
}

// ------------------------------------------------------------ FollowReader

FollowReader::FollowReader(std::string path)
    : path_(std::move(path)), stdin_(path_ == "-") {}

FollowReader::~FollowReader() {
#if defined(__unix__) || defined(__APPLE__)
  if (fd_ >= 0 && !stdin_) ::close(fd_);
#endif
}

#if defined(__unix__) || defined(__APPLE__)

Status FollowReader::Reopen() {
  if (fd_ >= 0 && !stdin_) ::close(fd_);
  fd_ = -1;
  offset_ = 0;
  if (stdin_) {
    fd_ = 0;
    return Status::Ok();
  }
  const int fd = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open " + path_ + ": " +
                           std::strerror(errno));
  }
  fd_ = fd;
  return Status::Ok();
}

Result<FollowReader::ReadResult> FollowReader::Read(std::string* out,
                                                    size_t max_bytes) {
  ReadResult result;
  if (fd_ < 0) {
    Status opened = Reopen();
    if (!opened.ok()) return opened;
  }
  char buf[64 * 1024];
  while (result.bytes < max_bytes) {
    const size_t want =
        std::min(sizeof(buf), max_bytes - result.bytes);
    const ssize_t n = ::read(fd_, buf, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("read " + path_ + ": " + std::strerror(errno));
    }
    if (n == 0) break;  // drained for now
    out->append(buf, static_cast<size_t>(n));
    offset_ += static_cast<uint64_t>(n);
    result.bytes += static_cast<size_t>(n);
  }
  if (result.bytes == static_cast<size_t>(max_bytes) && max_bytes > 0) {
    return result;  // budget filled; caller decides whether to continue
  }
  result.eof = true;
  if (stdin_) return result;
  // At EOF on a live file, check for the two rotation hazards. A stat
  // failure here (the path momentarily gone mid-rotation) is not an
  // error — the next poll finds the new file.
  struct stat by_path;
  struct stat by_fd;
  if (::stat(path_.c_str(), &by_path) != 0 || ::fstat(fd_, &by_fd) != 0) {
    return result;
  }
  if (by_path.st_ino != by_fd.st_ino || by_path.st_dev != by_fd.st_dev) {
    // Rotated: the old file is fully drained (we are at its EOF), so the
    // new inode starts clean at offset 0.
    Status opened = Reopen();
    if (!opened.ok()) return opened;
    result.rotated = true;
    result.eof = false;  // the new file may have content right now
  } else if (static_cast<uint64_t>(by_fd.st_size) < offset_) {
    // Truncated in place (copytruncate rotation): restart from the top.
    if (::lseek(fd_, 0, SEEK_SET) < 0) {
      return Status::IoError("lseek " + path_ + ": " + std::strerror(errno));
    }
    offset_ = 0;
    result.truncated = true;
    result.eof = false;
  }
  return result;
}

#else  // !(__unix__ || __APPLE__)

Status FollowReader::Reopen() {
  return Status::Internal("--follow requires a POSIX platform");
}

Result<FollowReader::ReadResult> FollowReader::Read(std::string*, size_t) {
  return Status::Internal("--follow requires a POSIX platform");
}

#endif

}  // namespace datamaran
