#ifndef DATAMARAN_CORE_DATASET_H_
#define DATAMARAN_CORE_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/file_io.h"
#include "util/status.h"

/// The dataset layer: one immutable backing buffer plus cheap line views.
///
/// `Dataset` holds the textual component T (Definition 2.4) behind one of
/// two backings — an owned string, or an mmap'd read-only file region whose
/// pages fault in lazily (the data-lake mode for multi-GB files) — plus a
/// line index. The text is immutable for the lifetime of the Dataset; all
/// downstream stages address content by line index, and records always
/// start at a line begin and end at a line end.
///
/// `DatasetView` is a Dataset plus a set of live line indices. It is the
/// pipeline's working currency: the discovery sample is a view (the sampled
/// lines of the backing file), and each residual round of the iterated
/// structure extraction (Section 9.1) is produced by masking the matched
/// lines out of the previous view — an O(live lines) index-only transition
/// with zero text copies, in place of the old rebuild-the-residual-string
/// approach. Because the backing text never moves, line identity is stable
/// across rounds, which is what makes cross-round score caching sound
/// (scoring/score_cache.h).

namespace datamaran {

/// Memory-mapping policy for Dataset::FromFile.
enum class MapMode {
  /// Map files at or above the threshold, read smaller ones.
  kAuto,
  /// Always try to map (still falls back to a read on mmap failure).
  kAlways,
  /// Always read into an owned buffer.
  kNever,
};

class Dataset {
 public:
  /// Default size cutoff for MapMode::kAuto.
  static constexpr size_t kDefaultMmapThreshold = 8 * 1024 * 1024;

  /// Takes ownership of `text`. A missing final newline is appended so the
  /// last block is well formed.
  explicit Dataset(std::string text);

  /// Serves the text from `region` without copying. One caveat keeps the
  /// two backings byte-for-byte interchangeable: a read-only mapping cannot
  /// have a missing final newline appended, so a mapped file that does not
  /// end in '\n' is copied into an owned buffer instead (the graceful
  /// fallback; well-formed log files are unaffected).
  explicit Dataset(MappedRegion region);

  /// Opens `path` with the given policy. Pipeline output is byte-identical
  /// whichever backing ends up being used.
  static Result<Dataset> FromFile(const std::string& path,
                                  MapMode mode = MapMode::kAuto,
                                  size_t mmap_threshold = kDefaultMmapThreshold);

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  std::string_view text() const {
    return use_region_ ? region_.view() : std::string_view(owned_);
  }
  size_t size_bytes() const { return text().size(); }
  size_t line_count() const { return line_begin_.size(); }

  /// True when the text is served by a lazy memory mapping.
  bool is_mapped() const { return use_region_; }

  /// Best-effort count of bytes currently resident in memory; equals
  /// size_bytes() for owned backings.
  size_t resident_bytes() const {
    return use_region_ ? region_.ResidentBytes() : owned_.size();
  }

  /// Forwards an access-pattern hint to a mapped backing (util/file_io's
  /// AccessHint): the pipeline advises kRandom while sampling/discovering
  /// and kSequential for the final whole-file scan. No-op for owned
  /// backings and platforms without madvise.
  void Advise(AccessHint hint) const {
    if (use_region_) region_.Advise(hint);
  }

  /// Byte offset of the first character of line `i`.
  size_t line_begin(size_t i) const { return line_begin_[i]; }

  /// One past the line's '\n' (== begin of line i+1).
  size_t line_end(size_t i) const {
    return i + 1 < line_begin_.size() ? line_begin_[i + 1] : text().size();
  }

  /// Line content including the trailing '\n'.
  std::string_view line_with_newline(size_t i) const {
    return text().substr(line_begin(i), line_end(i) - line_begin(i));
  }

  /// Line content without the trailing '\n'.
  std::string_view line(size_t i) const {
    auto l = line_with_newline(i);
    if (!l.empty() && l.back() == '\n') l.remove_suffix(1);
    return l;
  }

  /// Index of the line containing byte offset `pos` (binary search).
  size_t LineOfOffset(size_t pos) const;

 private:
  void BuildLineIndex();

  std::string owned_;
  MappedRegion region_;
  bool use_region_ = false;
  std::vector<size_t> line_begin_;
};

/// An ordered subset of a Dataset's lines ("live" lines). Copies are cheap
/// (the index is shared, immutable), and the backing Dataset must outlive
/// every view. View line indices are dense [0, line_count()); they map to
/// physical backing lines via physical_line().
///
/// Matching semantics across gaps: a record candidate spans consecutive
/// *live* lines. When those lines are physically contiguous in the backing
/// buffer — the overwhelmingly common case — matchers run in place, zero
/// copy. When a gap intervenes (a sampling chunk boundary, or lines removed
/// by an earlier residual round), ResolveSpan assembles just the candidate
/// window (at most max_record_span lines) into a caller-provided scratch
/// buffer, reproducing exactly the semantics of the old concatenated
/// residual string at O(record) instead of O(residual) cost.
class DatasetView {
 public:
  /// Identity view: every line of `data` is live. Implicit so call sites
  /// holding a Dataset can pass it directly to view-consuming stages.
  DatasetView(const Dataset& data);  // NOLINT(google-explicit-constructor)

  /// View of the given physical lines, which must be strictly ascending.
  DatasetView(const Dataset& data, std::vector<uint32_t> live_lines);

  const Dataset& dataset() const { return *data_; }
  bool is_identity() const { return live_ == nullptr; }

  /// Number of live lines.
  size_t line_count() const {
    return live_ != nullptr ? live_->size() : data_->line_count();
  }

  /// Total bytes of live-line content, trailing newlines included.
  size_t size_bytes() const { return size_bytes_; }

  /// Physical (backing-dataset) index of view line `v`.
  size_t physical_line(size_t v) const {
    return live_ != nullptr ? (*live_)[v] : v;
  }

  std::string_view line(size_t v) const {
    return data_->line(physical_line(v));
  }
  std::string_view line_with_newline(size_t v) const {
    return data_->line_with_newline(physical_line(v));
  }

  /// Text to run a matcher against for a candidate record spanning live
  /// lines [v, v+span). `assembled` is true when the window crossed a gap
  /// and was copied into `*scratch` (pos is then 0); otherwise `text` is
  /// the backing buffer and `pos` the window's byte offset, no copy made.
  struct SpanText {
    std::string_view text;
    size_t pos = 0;
    bool assembled = false;
  };
  SpanText ResolveSpan(size_t v, size_t span, std::string* scratch) const;

  /// True when live lines [v, v+span) exist and are physically contiguous.
  bool SpanIsContiguous(size_t v, size_t span) const;

 private:
  const Dataset* data_ = nullptr;
  /// nullptr == identity (all lines live); shared so view copies are O(1).
  std::shared_ptr<const std::vector<uint32_t>> live_;
  size_t size_bytes_ = 0;
};

}  // namespace datamaran

#endif  // DATAMARAN_CORE_DATASET_H_
