#ifndef DATAMARAN_CORE_DATASET_H_
#define DATAMARAN_CORE_DATASET_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

/// In-memory view of a log dataset's textual component T (Definition 2.4):
/// an owned text buffer plus a line index. All downstream stages address
/// content by line index; records always start at a line begin and end at a
/// line end.

namespace datamaran {

class Dataset {
 public:
  /// Takes ownership of `text`. A missing final newline is appended so the
  /// last block is well formed.
  explicit Dataset(std::string text);

  std::string_view text() const { return text_; }
  size_t size_bytes() const { return text_.size(); }
  size_t line_count() const { return line_begin_.size(); }

  /// Byte offset of the first character of line `i`.
  size_t line_begin(size_t i) const { return line_begin_[i]; }

  /// One past the line's '\n' (== begin of line i+1).
  size_t line_end(size_t i) const {
    return i + 1 < line_begin_.size() ? line_begin_[i + 1] : text_.size();
  }

  /// Line content including the trailing '\n'.
  std::string_view line_with_newline(size_t i) const {
    return std::string_view(text_).substr(line_begin(i),
                                          line_end(i) - line_begin(i));
  }

  /// Line content without the trailing '\n'.
  std::string_view line(size_t i) const {
    auto l = line_with_newline(i);
    if (!l.empty() && l.back() == '\n') l.remove_suffix(1);
    return l;
  }

  /// Index of the line containing byte offset `pos` (binary search).
  size_t LineOfOffset(size_t pos) const;

 private:
  std::string text_;
  std::vector<size_t> line_begin_;
};

}  // namespace datamaran

#endif  // DATAMARAN_CORE_DATASET_H_
