#ifndef DATAMARAN_CORE_OPTIONS_H_
#define DATAMARAN_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/dataset.h"
#include "core/input.h"
#include "template/match_engine.h"
#include "util/char_class.h"
#include "util/charset_engine.h"

/// Configuration for the Datamaran pipeline. Field names follow the paper's
/// notation (Table 2): alpha = minimum coverage threshold, L = maximum
/// record span in lines, M = number of structure templates retained after
/// the pruning step.

namespace datamaran {

/// RT-CharSet search strategy for the generation step (Section 9.1).
enum class CharsetSearch {
  /// Enumerate all subsets of the candidate special characters (2^c).
  kExhaustive,
  /// Grow the charset one character at a time, keeping the character whose
  /// addition yields the best assimilation score (O(c^2) subsets).
  kGreedy,
};

struct DatamaranOptions {
  /// alpha: a structure template must cover at least this fraction of the
  /// (sampled) dataset to survive the generation step. Paper default: 10%.
  double coverage_threshold = 0.10;

  /// L: maximum number of lines a record may span. Paper default: 10.
  int max_record_span = 10;

  /// M: number of candidates retained after pruning. The paper's initial
  /// default is 50 but Section 5.2.3 recommends 1000 in practice; 200 is a
  /// good cost/robustness point for this implementation (candidate
  /// duplicates are already collapsed by period/rotation canonicalization).
  int num_retained = 200;

  /// RT-CharSet enumeration strategy.
  CharsetSearch search = CharsetSearch::kExhaustive;

  /// Pool of characters that may appear in record templates
  /// (RT-CharSet-Candidate). '\n' is always added internally.
  CharSet special_chars = DefaultSpecialChars();

  /// Engineering cap: the exhaustive search enumerates subsets of at most
  /// this many (most frequent) special characters from the sample.
  int max_special_chars = 10;

  /// Sampling bounds for the generation and evaluation steps (Section 9.1);
  /// the final extraction pass always scans the whole file. The sample is a
  /// DatasetView into the backing file (line indices, no text copy).
  size_t max_sample_bytes = 256 * 1024;
  int sample_chunks = 8;

  /// Input backing for ExtractFile: memory-map files at/above
  /// mmap_threshold_bytes (kAuto), always map (kAlways, with read
  /// fallback), or always read (kNever). Pipeline output is byte-identical
  /// across backings; mapping keeps multi-GB extractions from requiring the
  /// whole file in memory.
  MapMode mmap_mode = MapMode::kAuto;
  size_t mmap_threshold_bytes = Dataset::kDefaultMmapThreshold;

  /// Input front-end hardening (core/input.h). `crlf` controls "\r\n"
  /// normalization (kAuto probes the head of the input and strips when CRLF
  /// is detected); `max_inflate_bytes` caps gzip decompression (bomb
  /// guard; 0 = unlimited); `max_line_bytes` is the oversized-line guard —
  /// a line longer than this is excluded from the discovery sample and
  /// degraded to noise by the extraction scan instead of being indexed,
  /// tokenized, or matched (0 = unlimited). All three are pure functions
  /// of the input bytes, so output stays byte-identical across threads,
  /// engines, and backings.
  CrlfPolicy crlf = CrlfPolicy::kAuto;
  size_t max_inflate_bytes = 4ull * 1024 * 1024 * 1024;
  size_t max_line_bytes = 4 * 1024 * 1024;

  /// Reuse candidate MDL scores across residual rounds (exact — cached
  /// values are bit-identical to fresh evaluation; see
  /// scoring/score_cache.h). Disable to measure the uncached cost.
  bool enable_score_cache = true;

  /// Matching engine for every match hot loop (generation-round masking,
  /// MDL scoring, refinement, extraction): kCompiled runs templates as flat
  /// bytecode programs with first-byte template-set dispatch
  /// (template/compiled.h, template/dispatch.h); kTree is the reference
  /// recursive walker. Pipeline output is byte-identical between engines —
  /// the switch trades nothing but speed.
  MatchEngine match_engine = MatchEngine::kCompiled;

  /// Byte-classification engine for the charset hot loops: generation's
  /// per-line tokenization (RunCharset's special-position index) and the
  /// compiled match engine's wide-stop-set field scans. kSimd resolves by
  /// runtime CPU detection (AVX2 > SSE2) and degrades down the ladder
  /// (kSwar, then kScalar) on hardware without vector support; kScalar is
  /// the per-byte reference. Pipeline output is byte-identical across all
  /// three — the switch trades nothing but speed (util/byte_class.h).
  CharsetEngine charset_engine = CharsetEngine::kSimd;

  /// Bound-based candidate pruning in the evaluation step: candidates whose
  /// running MDL lower bound already exceeds the current top-K threshold
  /// abort scoring early. Exact — the refined template and all pipeline
  /// output are identical with pruning on or off (the pruned candidates are
  /// provably outside the refinement top-K). Disable to measure the
  /// brute-force cost.
  bool enable_mdl_pruning = true;

  /// Maximum number of record types extracted from an interleaved dataset
  /// (the Generation-Pruning-Evaluation loop re-runs on the residual).
  int max_record_types = 8;

  /// Stop iterating when the unexplained residual falls below this fraction
  /// of the sample.
  double min_residual_fraction = 0.02;

  /// A discovered template is accepted only if its description length beats
  /// encoding the residual as pure noise by this relative margin.
  double min_mdl_gain = 0.01;

  /// Cap on array-unfolding variants tried per array node during refinement.
  int max_unfold_tries = 8;

  /// The evaluation step refines the best `refine_top_k` candidates (by
  /// unrefined score) and picks the best refined one. Refining before the
  /// final comparison matters: unfolding exposes per-column typing, which
  /// is what separates a true record type's template from an overly
  /// generic one that merges several types (Section 9.4).
  int refine_top_k = 8;

  /// Template catalog fast path (template/catalog.h). When `catalog_in`
  /// names a catalog file, every pipeline run first fingerprints a sample
  /// of the input against it (FIRST-byte prefilter, then MDL acceptance
  /// per the discovery noise model); a hit skips discovery entirely and
  /// extracts with the stored templates — byte-identical output to the
  /// fresh-discovery run that produced the entry, at compiled-match speed.
  /// A miss falls back to cold discovery unchanged. When `catalog_out` is
  /// set, the catalog (including any format discovered cold by this run)
  /// is written there after the run, so discovery cost amortizes across a
  /// lake's files.
  std::string catalog_in;
  std::string catalog_out;

  /// Minimum fraction of sampled lines a catalog entry must cover to count
  /// as a hit (CatalogMatchOptions::min_match).
  double catalog_min_match = 0.8;

  /// Merge-on-save for `catalog_out` (CatalogSaveOptions::merge): re-load
  /// the on-disk catalog under the advisory lock and write the union, so
  /// concurrent runs sharing one catalog never lose entries. false (the
  /// --catalog-no-merge escape hatch) overwrites with this run's catalog.
  bool catalog_merge = true;

  /// Emit INFO-level progress logging.
  bool verbose = false;

  /// Worker threads for the parallel hot paths: generation's independent
  /// charset trials, candidate scoring/refinement in the evaluation step,
  /// and chunked whole-file extraction. 0 = use all hardware threads
  /// (std::thread::hardware_concurrency); 1 = fully sequential reference
  /// behavior. Results are byte-identical across all values — parallel
  /// workers fill per-index slots that are merged in a fixed order — so
  /// this knob trades nothing but wall-clock time.
  int num_threads = 0;
};

/// The input-layer slice of the pipeline options, for OpenInput/OpenInputs.
inline InputOptions MakeInputOptions(const DatamaranOptions& options) {
  InputOptions in;
  in.mmap_mode = options.mmap_mode;
  in.mmap_threshold_bytes = options.mmap_threshold_bytes;
  in.crlf = options.crlf;
  in.max_inflate_bytes = options.max_inflate_bytes;
  return in;
}

}  // namespace datamaran

#endif  // DATAMARAN_CORE_OPTIONS_H_
