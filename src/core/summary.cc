#include "core/summary.h"

#include "extraction/sinks.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace datamaran {

namespace {

void AppendJsonString(std::string_view s, std::string* out) {
  *out += '"';
  AppendJsonEscaped(s, out);
  *out += '"';
}

}  // namespace

FileSummary SummarizeResult(const std::string& path, const PipelineResult& r,
                            const DatamaranOptions& options) {
  FileSummary s;
  s.path = path;
  s.input_bytes = r.stats.input_bytes;
  s.input_mapped = r.stats.input_mapped;
  for (const StructureTemplate& st : r.templates) {
    s.templates.push_back(st.Display());
  }
  s.total_lines = r.extraction.total_lines;
  s.records = r.extraction.matched_records;
  s.noise_lines = r.extraction.noise_line_count;
  s.match_rate = r.extraction.line_match_rate();
  s.coverage = r.extraction.coverage();
  if (!r.extraction.records.empty()) {
    s.records_per_template.assign(r.templates.size(), 0);
    for (const ExtractedRecord& rec : r.extraction.records) {
      const size_t t = static_cast<size_t>(rec.template_id);
      if (t < s.records_per_template.size()) s.records_per_template[t]++;
    }
  }
  s.catalog_checked = r.stats.catalog_checked;
  s.catalog_hit = r.stats.catalog_hit;
  s.catalog_entry = r.stats.catalog_entry;
  s.catalog_match_rate = r.stats.catalog_match_rate;
  s.drifted = r.stats.catalog_hit &&
              r.extraction.line_match_rate() < options.catalog_min_match;
  s.match_engine =
      options.match_engine == MatchEngine::kCompiled ? "compiled" : "tree";
  s.charset_engine =
      CharsetEngineName(ResolveCharsetEngine(options.charset_engine));
  s.threads = ThreadPool::ResolveThreadCount(options.num_threads);
  s.timings = r.timings;
  return s;
}

void AppendFileSummaryJson(const FileSummary& s, int indent,
                           std::string* out) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string field = pad + "  ";
  *out += pad + "{\n";
  *out += field + "\"path\": ";
  AppendJsonString(s.path, out);
  *out += ",\n";
  *out += field + StrFormat("\"input_bytes\": %zu,\n", s.input_bytes);
  *out += field +
          StrFormat("\"input_mapped\": %s,\n", s.input_mapped ? "true"
                                                              : "false");
  *out += field + "\"error\": ";
  AppendJsonString(s.error, out);
  *out += ",\n";
  *out += field + "\"templates\": [";
  for (size_t t = 0; t < s.templates.size(); ++t) {
    if (t > 0) *out += ", ";
    AppendJsonString(s.templates[t], out);
  }
  *out += "],\n";
  *out += field + StrFormat("\"total_lines\": %zu,\n", s.total_lines);
  *out += field + StrFormat("\"records\": %zu,\n", s.records);
  *out += field + "\"records_per_template\": [";
  for (size_t t = 0; t < s.records_per_template.size(); ++t) {
    if (t > 0) *out += ", ";
    *out += StrFormat("%zu", s.records_per_template[t]);
  }
  *out += "],\n";
  *out += field + StrFormat("\"noise_lines\": %zu,\n", s.noise_lines);
  *out += field + StrFormat("\"match_rate\": %.6f,\n", s.match_rate);
  *out += field + StrFormat("\"coverage\": %.6f,\n", s.coverage);
  *out += field +
          StrFormat("\"catalog\": {\"checked\": %s, \"hit\": %s, "
                    "\"entry\": %d, \"match_rate\": %.6f, \"drifted\": %s},\n",
                    s.catalog_checked ? "true" : "false",
                    s.catalog_hit ? "true" : "false", s.catalog_entry,
                    s.catalog_match_rate, s.drifted ? "true" : "false");
  *out += field + "\"match_engine\": ";
  AppendJsonString(s.match_engine, out);
  *out += ",\n";
  *out += field + "\"charset_engine\": ";
  AppendJsonString(s.charset_engine, out);
  *out += ",\n";
  *out += field + StrFormat("\"threads\": %d,\n", s.threads);
  *out += field +
          StrFormat("\"timings\": {\"catalog_match_s\": %.6f, "
                    "\"generation_s\": %.6f, \"pruning_s\": %.6f, "
                    "\"evaluation_s\": %.6f, \"refinement_s\": %.6f, "
                    "\"extraction_s\": %.6f, \"total_s\": %.6f}\n",
                    s.timings.catalog_match_s, s.timings.generation_s,
                    s.timings.pruning_s, s.timings.evaluation_s,
                    s.timings.refinement_s, s.timings.extraction_s,
                    s.timings.total_s);
  *out += pad + "}";
}

std::string FileSummaryToJson(const FileSummary& s) {
  std::string out;
  AppendFileSummaryJson(s, 0, &out);
  out += '\n';
  return out;
}

}  // namespace datamaran
