#include "core/summary.h"

#include "extraction/sinks.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace datamaran {

namespace {

void AppendJsonString(std::string_view s, std::string* out) {
  *out += '"';
  AppendJsonEscaped(s, out);
  *out += '"';
}

}  // namespace

FileSummary SummarizeResult(const std::string& path, const PipelineResult& r,
                            const DatamaranOptions& options) {
  FileSummary s;
  s.path = path;
  s.input_bytes = r.stats.input_bytes;
  s.input_mapped = r.stats.input_mapped;
  for (const StructureTemplate& st : r.templates) {
    s.templates.push_back(st.Display());
  }
  s.total_lines = r.extraction.total_lines;
  s.records = r.extraction.matched_records;
  s.noise_lines = r.extraction.noise_line_count;
  s.match_rate = r.extraction.line_match_rate();
  s.coverage = r.extraction.coverage();
  // Per-template counts come from the extractor's own accounting, which
  // every scan path fills — streaming-sink runs included, where the
  // collected records vector is empty by design.
  s.records_per_template = r.extraction.records_per_template;
  s.catalog_checked = r.stats.catalog_checked;
  s.catalog_hit = r.stats.catalog_hit;
  s.catalog_entry = r.stats.catalog_entry;
  s.catalog_match_rate = r.stats.catalog_match_rate;
  s.drifted = r.stats.catalog_hit &&
              r.extraction.line_match_rate() < options.catalog_min_match;
  s.match_engine =
      options.match_engine == MatchEngine::kCompiled ? "compiled" : "tree";
  s.charset_engine =
      CharsetEngineName(ResolveCharsetEngine(options.charset_engine));
  s.threads = ThreadPool::ResolveThreadCount(options.num_threads);
  s.timings = r.timings;
  return s;
}

void AppendFileSummaryJson(const FileSummary& s, int indent,
                           std::string* out) {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string field = pad + "  ";
  *out += pad + "{\n";
  *out += field + "\"path\": ";
  AppendJsonString(s.path, out);
  *out += ",\n";
  *out += field + StrFormat("\"input_bytes\": %zu,\n", s.input_bytes);
  *out += field +
          StrFormat("\"input_mapped\": %s,\n", s.input_mapped ? "true"
                                                              : "false");
  *out += field + StrFormat("\"source_size\": %zu,\n", s.source_size);
  *out += field + StrFormat("\"source_mtime_ns\": %lld,\n",
                            static_cast<long long>(s.source_mtime_ns));
  *out += field +
          StrFormat("\"skipped\": %s,\n", s.skipped ? "true" : "false");
  *out += field + "\"error\": ";
  AppendJsonString(s.error, out);
  *out += ",\n";
  *out += field + "\"templates\": [";
  for (size_t t = 0; t < s.templates.size(); ++t) {
    if (t > 0) *out += ", ";
    AppendJsonString(s.templates[t], out);
  }
  *out += "],\n";
  *out += field + StrFormat("\"total_lines\": %zu,\n", s.total_lines);
  *out += field + StrFormat("\"records\": %zu,\n", s.records);
  *out += field + "\"records_per_template\": [";
  for (size_t t = 0; t < s.records_per_template.size(); ++t) {
    if (t > 0) *out += ", ";
    *out += StrFormat("%zu", s.records_per_template[t]);
  }
  *out += "],\n";
  *out += field + StrFormat("\"noise_lines\": %zu,\n", s.noise_lines);
  *out += field + StrFormat("\"match_rate\": %.6f,\n", s.match_rate);
  *out += field + StrFormat("\"coverage\": %.6f,\n", s.coverage);
  *out += field +
          StrFormat("\"catalog\": {\"checked\": %s, \"hit\": %s, "
                    "\"entry\": %d, \"match_rate\": %.6f, \"drifted\": %s},\n",
                    s.catalog_checked ? "true" : "false",
                    s.catalog_hit ? "true" : "false", s.catalog_entry,
                    s.catalog_match_rate, s.drifted ? "true" : "false");
  if (s.streaming) {
    // Batch summaries omit this object entirely; its presence is what
    // round-trips `streaming` through FileSummaryFromJson.
    *out += field +
            StrFormat("\"stream\": {\"epochs\": %zu, \"evolutions\": %zu, "
                      "\"discovery_runs\": %zu, \"checkpoints\": %zu, "
                      "\"oversized_lines\": %zu},\n",
                      s.stream_epochs, s.stream_evolutions,
                      s.stream_discovery_runs, s.stream_checkpoints,
                      s.stream_oversized_lines);
  }
  *out += field + "\"match_engine\": ";
  AppendJsonString(s.match_engine, out);
  *out += ",\n";
  *out += field + "\"charset_engine\": ";
  AppendJsonString(s.charset_engine, out);
  *out += ",\n";
  *out += field + StrFormat("\"threads\": %d,\n", s.threads);
  *out += field +
          StrFormat("\"timings\": {\"catalog_match_s\": %.6f, "
                    "\"generation_s\": %.6f, \"pruning_s\": %.6f, "
                    "\"evaluation_s\": %.6f, \"refinement_s\": %.6f, "
                    "\"extraction_s\": %.6f, \"total_s\": %.6f}\n",
                    s.timings.catalog_match_s, s.timings.generation_s,
                    s.timings.pruning_s, s.timings.evaluation_s,
                    s.timings.refinement_s, s.timings.extraction_s,
                    s.timings.total_s);
  *out += pad + "}";
}

std::string FileSummaryToJson(const FileSummary& s) {
  std::string out;
  AppendFileSummaryJson(s, 0, &out);
  out += '\n';
  return out;
}

namespace {

Status MissingKey(const char* key) {
  return Status::ParseError(
      std::string("file summary: missing or mistyped key: ") + key);
}

}  // namespace

Result<FileSummary> FileSummaryFromJson(const JsonValue& v) {
  if (!v.is_object()) {
    return Status::ParseError("file summary: not a JSON object");
  }
  FileSummary s;
  const auto str = [&v](const char* key, std::string* out) {
    const JsonValue* m = v.Find(key);
    const std::string* sv = m != nullptr ? m->AsString() : nullptr;
    if (sv == nullptr) return false;
    *out = *sv;
    return true;
  };
  const auto u64 = [](const JsonValue* obj, const char* key, size_t* out) {
    const JsonValue* m = obj != nullptr ? obj->Find(key) : nullptr;
    const auto val =
        m != nullptr ? m->AsUint64() : std::optional<uint64_t>();
    if (!val.has_value()) return false;
    *out = static_cast<size_t>(*val);
    return true;
  };
  const auto boolean = [](const JsonValue* obj, const char* key, bool* out) {
    const JsonValue* m = obj != nullptr ? obj->Find(key) : nullptr;
    const auto val = m != nullptr ? m->AsBool() : std::optional<bool>();
    if (!val.has_value()) return false;
    *out = *val;
    return true;
  };
  const auto dbl = [](const JsonValue* obj, const char* key, double* out) {
    const JsonValue* m = obj != nullptr ? obj->Find(key) : nullptr;
    const auto val = m != nullptr ? m->AsDouble() : std::optional<double>();
    if (!val.has_value()) return false;
    *out = *val;
    return true;
  };

  if (!str("path", &s.path)) return MissingKey("path");
  if (!u64(&v, "input_bytes", &s.input_bytes)) return MissingKey("input_bytes");
  if (!boolean(&v, "input_mapped", &s.input_mapped)) {
    return MissingKey("input_mapped");
  }
  if (!u64(&v, "source_size", &s.source_size)) return MissingKey("source_size");
  {
    const JsonValue* m = v.Find("source_mtime_ns");
    const auto val = m != nullptr ? m->AsInt64() : std::optional<int64_t>();
    if (!val.has_value()) return MissingKey("source_mtime_ns");
    s.source_mtime_ns = *val;
  }
  if (!boolean(&v, "skipped", &s.skipped)) return MissingKey("skipped");
  if (!str("error", &s.error)) return MissingKey("error");
  {
    const JsonValue* m = v.Find("templates");
    if (m == nullptr || !m->is_array()) return MissingKey("templates");
    for (const JsonValue& item : m->items) {
      const std::string* t = item.AsString();
      if (t == nullptr) return MissingKey("templates");
      s.templates.push_back(*t);
    }
  }
  if (!u64(&v, "total_lines", &s.total_lines)) return MissingKey("total_lines");
  if (!u64(&v, "records", &s.records)) return MissingKey("records");
  {
    const JsonValue* m = v.Find("records_per_template");
    if (m == nullptr || !m->is_array()) {
      return MissingKey("records_per_template");
    }
    for (const JsonValue& item : m->items) {
      const auto n = item.AsUint64();
      if (!n.has_value()) return MissingKey("records_per_template");
      s.records_per_template.push_back(static_cast<size_t>(*n));
    }
  }
  if (!u64(&v, "noise_lines", &s.noise_lines)) return MissingKey("noise_lines");
  if (!dbl(&v, "match_rate", &s.match_rate)) return MissingKey("match_rate");
  if (!dbl(&v, "coverage", &s.coverage)) return MissingKey("coverage");
  {
    const JsonValue* c = v.Find("catalog");
    if (c == nullptr || !c->is_object()) return MissingKey("catalog");
    if (!boolean(c, "checked", &s.catalog_checked)) {
      return MissingKey("catalog.checked");
    }
    if (!boolean(c, "hit", &s.catalog_hit)) return MissingKey("catalog.hit");
    const JsonValue* e = c->Find("entry");
    const auto entry = e != nullptr ? e->AsInt64() : std::optional<int64_t>();
    if (!entry.has_value()) return MissingKey("catalog.entry");
    s.catalog_entry = static_cast<int>(*entry);
    if (!dbl(c, "match_rate", &s.catalog_match_rate)) {
      return MissingKey("catalog.match_rate");
    }
    if (!boolean(c, "drifted", &s.drifted)) return MissingKey("catalog.drifted");
  }
  {
    // Optional-with-default: only streaming runs write this object.
    const JsonValue* st = v.Find("stream");
    if (st != nullptr) {
      if (!st->is_object()) return MissingKey("stream");
      s.streaming = true;
      if (!u64(st, "epochs", &s.stream_epochs) ||
          !u64(st, "evolutions", &s.stream_evolutions) ||
          !u64(st, "discovery_runs", &s.stream_discovery_runs) ||
          !u64(st, "checkpoints", &s.stream_checkpoints) ||
          !u64(st, "oversized_lines", &s.stream_oversized_lines)) {
        return MissingKey("stream");
      }
    }
  }
  if (!str("match_engine", &s.match_engine)) return MissingKey("match_engine");
  if (!str("charset_engine", &s.charset_engine)) {
    return MissingKey("charset_engine");
  }
  {
    const JsonValue* m = v.Find("threads");
    const auto val = m != nullptr ? m->AsInt64() : std::optional<int64_t>();
    if (!val.has_value()) return MissingKey("threads");
    s.threads = static_cast<int>(*val);
  }
  {
    const JsonValue* t = v.Find("timings");
    if (t == nullptr || !t->is_object()) return MissingKey("timings");
    if (!dbl(t, "catalog_match_s", &s.timings.catalog_match_s) ||
        !dbl(t, "generation_s", &s.timings.generation_s) ||
        !dbl(t, "pruning_s", &s.timings.pruning_s) ||
        !dbl(t, "evaluation_s", &s.timings.evaluation_s) ||
        !dbl(t, "refinement_s", &s.timings.refinement_s) ||
        !dbl(t, "extraction_s", &s.timings.extraction_s) ||
        !dbl(t, "total_s", &s.timings.total_s)) {
      return MissingKey("timings");
    }
  }
  return s;
}

}  // namespace datamaran
