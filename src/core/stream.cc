#include "core/stream.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "template/catalog.h"

namespace datamaran {

namespace {

/// The session's internal discovery engine must never touch the caller's
/// catalog files: checkpointing is the session's own explicit protocol.
DatamaranOptions StripCatalogPaths(DatamaranOptions options) {
  options.catalog_in.clear();
  options.catalog_out.clear();
  return options;
}

}  // namespace

/// Per-segment EventSink the extractor drives. Forwards decided outcomes
/// to the session's sink, holds back the undecided tail (lines without
/// full record-span lookahead, or past an evolution trigger), and feeds
/// the drift monitor — strictly in decision order, which is what makes
/// the trigger point a pure function of the decided line sequence.
class StreamSegmentAdapter : public EventSink {
 public:
  static constexpr size_t kNone = std::numeric_limits<size_t>::max();

  StreamSegmentAdapter(StreamingSession* session, const Dataset* segment,
                       size_t boundary, uint64_t global_base)
      : session_(session),
        segment_(segment),
        boundary_(boundary),
        global_base_(global_base) {}

  void OnRecord(int template_id, size_t first_line, std::string_view text,
                size_t pos, size_t end, const MatchEvent* events,
                size_t num_events) override {
    if (Suppress(first_line)) return;
    session_->sink_->OnRecord(
        template_id, static_cast<size_t>(global_base_) + first_line, text,
        pos, end, events, num_events);
    const int span =
        session_->extractor_templates_[static_cast<size_t>(template_id)]
            .line_span();
    session_->stats_.records++;
    session_->stats_.lines_decided += static_cast<uint64_t>(span);
    for (int i = 0; i < span; ++i) {
      session_->ObserveDecided(/*noise=*/false, {});
    }
    MaybeTrigger();
  }

  void OnNoiseLine(size_t line_index) override {
    if (Suppress(line_index)) return;
    const std::string_view line = segment_->line_with_newline(line_index);
    session_->sink_->OnNoiseText(
        static_cast<size_t>(global_base_) + line_index, line);
    session_->stats_.noise_lines++;
    session_->stats_.lines_decided++;
    session_->ObserveDecided(/*noise=*/true, line);
    MaybeTrigger();
  }

  void OnWaveEnd() override { session_->sink_->OnWaveEnd(); }

  /// First undecided segment line (kNone = everything was decided).
  size_t undecided_from() const { return undecided_from_; }
  bool triggered() const { return triggered_; }

 private:
  /// Decisions arrive in scan order, so the first one at/past the
  /// boundary — or the first one after an evolution trigger — starts the
  /// undecided region; everything from there on is held back.
  bool Suppress(size_t first_line) {
    if (undecided_from_ != kNone) return true;
    if (first_line >= boundary_ || triggered_) {
      undecided_from_ = first_line;
      return true;
    }
    return false;
  }

  void MaybeTrigger() {
    if (!triggered_ && session_->evolution_pending_) triggered_ = true;
  }

  StreamingSession* session_;
  const Dataset* segment_;
  size_t boundary_;
  uint64_t global_base_;
  size_t undecided_from_ = kNone;
  bool triggered_ = false;
};

StreamingSession::StreamingSession(const DatamaranOptions& options,
                                   const StreamOptions& stream_options,
                                   EventSink* sink)
    : options_(options),
      stream_(stream_options),
      sink_(sink),
      dm_(StripCatalogPaths(options)),
      pool_(ThreadPool::ResolveThreadCount(options.num_threads)),
      // Cap truncated content one past the extraction guard so every
      // truncated line is refused there and decided as noise (stream.h).
      framer_(options.crlf,
              options.max_line_bytes == 0 ? 0 : options.max_line_bytes + 1),
      drift_(stream_options.drift_window_lines) {}

StreamingSession::~StreamingSession() = default;

void StreamingSession::FeedBytes(std::string_view bytes) {
  stats_.bytes_in += bytes.size();
  framer_.Feed(bytes, [this](std::string_view line, bool oversized) {
    FeedLine(line, oversized);
  });
}

void StreamingSession::FeedLine(std::string_view line_with_newline,
                                bool oversized) {
  stats_.lines_in++;
  if (oversized) stats_.oversized_lines++;
  window_.append(line_with_newline.data(), line_with_newline.size());
  window_line_count_++;
  const bool full = window_line_count_ >= stream_.window_lines ||
                    window_.size() >= stream_.window_bytes;
  if (!full) return;
  if (!discovered_) {
    RunInitialDiscovery();
    if (discovered_) ProcessSegment(/*final_flush=*/false);
  } else {
    ProcessSegment(/*final_flush=*/false);
  }
}

Status StreamingSession::Finish() {
  if (finished_) return status_;
  finished_ = true;
  framer_.Finish([this](std::string_view line, bool oversized) {
    FeedLine(line, oversized);
  });
  if (!discovered_ && window_line_count_ > 0) RunInitialDiscovery();
  if (discovered_) {
    ProcessSegment(/*final_flush=*/true);
    Checkpoint();
  }
  return status_;
}

std::vector<StructureTemplate> StreamingSession::Discover(std::string text) {
  stats_.discovery_runs++;
  Dataset data(std::move(text));
  StepTimings timings;
  PipelineStats pstats;
  return dm_.DiscoverTemplates(data, &timings, &pstats, nullptr);
}

void StreamingSession::RunInitialDiscovery() {
  std::vector<StructureTemplate> found = Discover(std::string(window_));
  if (found.empty()) {
    // Nothing structural in this window: its lines are decided as noise
    // (final — streaming never reprocesses history) and warm-up re-arms
    // on the next window's worth of lines.
    Dataset window_data{std::string(window_)};
    for (size_t i = 0; i < window_data.line_count(); ++i) {
      EmitNoiseDirect(window_data.line_with_newline(i));
    }
    sink_->OnWaveEnd();
    window_.clear();
    window_line_count_ = 0;
    return;
  }
  SpliceTemplates(std::move(found));
  discovered_ = true;
  stats_.epochs = 1;
  Checkpoint();
}

size_t StreamingSession::SpliceTemplates(
    std::vector<StructureTemplate> found) {
  std::vector<const StructureTemplate*> added;
  for (StructureTemplate& st : found) {
    if (!canon_seen_.insert(st.canonical()).second) continue;
    templates_.push_back(std::move(st));
    added.push_back(&templates_.back());
  }
  if (added.empty()) return 0;
  // The extractor wants a contiguous vector; rebuild the copy and leave
  // the deque (whose addresses the sinks hold) untouched. Sinks consume
  // match events positionally, never by node-pointer identity, so the
  // extractor matching on copies is sound.
  extractor_templates_.assign(templates_.begin(), templates_.end());
  extractor_ = std::make_unique<Extractor>(
      &extractor_templates_, &pool_, options_.match_engine,
      options_.charset_engine, options_.max_line_bytes, nullptr);
  sink_->OnTemplatesAdded(added);
  return added.size();
}

void StreamingSession::RunEvolution() {
  stats_.evolution_attempts++;
  std::string noise_text;
  noise_text.reserve(noise_ring_bytes_);
  for (const std::string& line : noise_ring_) noise_text += line;
  size_t added = 0;
  if (!noise_text.empty()) {
    added = SpliceTemplates(Discover(std::move(noise_text)));
  }
  if (added > 0) {
    stats_.evolutions++;
    stats_.epochs++;
    Checkpoint();
  }
  // Reset the monitor state either way: re-arming instantly on the same
  // noise would re-run discovery every segment (thrash) without new
  // evidence. The cooldown makes the next attempt wait for fresh lines.
  drift_.Reset();
  noise_ring_.clear();
  noise_ring_bytes_ = 0;
  decided_since_epoch_ = 0;
  evolution_pending_ = false;
  stats_.last_noise_rate = 0;
}

void StreamingSession::ProcessSegment(bool final_flush) {
  const size_t max_span =
      options_.max_record_span > 0
          ? static_cast<size_t>(options_.max_record_span)
          : 1;
  while (window_line_count_ > 0) {
    size_t boundary;
    if (final_flush) {
      boundary = StreamSegmentAdapter::kNone;
    } else if (window_line_count_ >= max_span) {
      // Decisions are final once max_span-1 lines of lookahead exist: a
      // record starting before the boundary fits entirely in the segment,
      // so the decided prefix equals the whole-stream greedy scan no
      // matter where segments break.
      boundary = window_line_count_ - (max_span - 1);
    } else {
      return;  // not enough lookahead to decide anything yet
    }
    Dataset segment{std::string(window_)};
    StreamSegmentAdapter adapter(this, &segment, boundary,
                                 stats_.lines_decided);
    extractor_->ExtractEvents(segment, &adapter);
    const size_t undecided = adapter.undecided_from();
    if (undecided == StreamSegmentAdapter::kNone) {
      window_.clear();
      window_line_count_ = 0;
    } else {
      window_.erase(0, segment.line_begin(undecided));
      window_line_count_ -= undecided;
    }
    if (adapter.triggered()) {
      RunEvolution();
      continue;  // re-extract the held-back tail with the evolved set
    }
    if (!final_flush) return;
  }
}

void StreamingSession::EmitNoiseDirect(std::string_view line_with_newline) {
  sink_->OnNoiseText(static_cast<size_t>(stats_.lines_decided),
                     line_with_newline);
  stats_.noise_lines++;
  stats_.lines_decided++;
  ObserveDecided(/*noise=*/true, line_with_newline);
}

void StreamingSession::ObserveDecided(bool noise,
                                      std::string_view line_with_newline) {
  drift_.Observe(noise);
  stats_.last_noise_rate = drift_.rate();
  decided_since_epoch_++;
  if (noise && !line_with_newline.empty()) {
    noise_ring_.emplace_back(line_with_newline);
    noise_ring_bytes_ += line_with_newline.size();
    // Bound the ring by both axes; keep at least one line so a single
    // oversized noise line cannot empty the evidence entirely.
    while (noise_ring_.size() > 1 &&
           (noise_ring_.size() > stream_.window_lines ||
            noise_ring_bytes_ > stream_.window_bytes)) {
      noise_ring_bytes_ -= noise_ring_.front().size();
      noise_ring_.pop_front();
    }
  }
  evolution_pending_ = EvolutionArmed();
}

bool StreamingSession::EvolutionArmed() const {
  return stream_.evolve && discovered_ && drift_.full() &&
         drift_.rate() >= stream_.drift_threshold &&
         decided_since_epoch_ >= stream_.min_epoch_lines &&
         noise_ring_.size() >= stream_.min_noise_lines;
}

void StreamingSession::Checkpoint() {
  if (stream_.checkpoint_path.empty() || templates_.empty()) return;
  TemplateCatalog catalog;
  CatalogEntry entry;
  entry.templates.assign(templates_.begin(), templates_.end());
  catalog.AddEntry(std::move(entry));
  CatalogSaveOptions save;
  save.merge = stream_.checkpoint_merge;
  Status saved = catalog.Save(stream_.checkpoint_path, save);
  if (saved.ok()) {
    stats_.checkpoints++;
  } else if (status_.ok()) {
    status_ = std::move(saved);
  }
}

}  // namespace datamaran
