#include "core/datamaran.h"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>

#include "core/input.h"
#include "generation/generator.h"
#include "pruning/pruner.h"
#include "refinement/refiner.h"
#include "scoring/score_cache.h"
#include "template/dispatch.h"
#include "util/file_io.h"
#include "util/logging.h"
#include "util/sampler.h"
#include "util/timer.h"

namespace datamaran {

Datamaran::Datamaran(DatamaranOptions options)
    : options_(std::move(options)),
      scorer_(options_.match_engine, options_.charset_engine),
      pool_(std::make_unique<ThreadPool>(
          ThreadPool::ResolveThreadCount(options_.num_threads))) {
  if (options_.verbose) SetLogLevel(LogLevel::kInfo);
  if (!options_.catalog_in.empty()) {
    auto loaded = TemplateCatalog::Load(options_.catalog_in);
    if (loaded.ok()) {
      catalog_ = std::move(loaded.value());
      catalog_loaded_ = true;
    } else {
      // Sticky: ExtractFile surfaces this instead of running; the
      // PipelineResult-returning entry points fall back to cold discovery.
      catalog_status_ = loaded.status();
    }
  }
}

ResidualMask MaskMatchedLines(const DatasetView& view,
                              const StructureTemplate& st, ThreadPool* pool,
                              MatchEngine engine,
                              CharsetEngine charset_engine) {
  const size_t n = view.line_count();
  const size_t span = static_cast<size_t>(std::max(1, st.line_span()));
  const RecordMatcher matcher(&st, engine, charset_engine);

  // Phase 1 (parallel): the match attempt at each live line is a pure
  // function of (window text, template), so all n attempts fan out across
  // the pool; per-worker scratch backs the rare cross-gap window. Lines
  // whose first byte is outside the template's FIRST set are rejected
  // without resolving the window at all.
  std::vector<uint8_t> matched(n, 0);
  const int workers = pool != nullptr ? pool->thread_count() : 1;
  std::vector<std::string> scratch(static_cast<size_t>(workers));
  std::vector<size_t> assembled(static_cast<size_t>(workers), 0);
  ForEachIndex(pool, n, [&](size_t v, int worker) {
    const unsigned char first =
        static_cast<unsigned char>(view.line_with_newline(v).front());
    if (!matcher.CanStartWith(first)) return;
    std::string* buf = &scratch[static_cast<size_t>(worker)];
    const DatasetView::SpanText win = view.ResolveSpan(v, span, buf);
    if (win.assembled) {
      assembled[static_cast<size_t>(worker)] += win.text.size();
    }
    matched[v] = matcher.TryMatch(win.text, win.pos).has_value() ? 1 : 0;
  });

  // Phase 2 (sequential, O(live)): the greedy first-match walk — identical
  // to the sequential scan's skip rule — decides which attempts count,
  // then compacts the survivors' physical indices.
  ResidualMask out{view, {}, 0, 0};
  for (size_t w = 0; w < static_cast<size_t>(workers); ++w) {
    out.assembled_bytes += assembled[w];
  }
  std::vector<uint32_t> live;
  live.reserve(n);
  size_t v = 0;
  while (v < n) {
    if (matched[v] != 0) {
      for (size_t k = v; k < v + span; ++k) {
        out.removed_lines.push_back(
            static_cast<uint32_t>(view.physical_line(k)));
      }
      out.matched_records += 1;
      v += span;
    } else {
      live.push_back(static_cast<uint32_t>(view.physical_line(v)));
      ++v;
    }
  }
  out.view = DatasetView(view.dataset(), std::move(live));
  return out;
}

std::vector<StructureTemplate> Datamaran::DiscoverTemplates(
    const Dataset& data, StepTimings* timings, PipelineStats* stats,
    std::vector<TemplateReport>* reports) const {
  SamplerOptions sampler_opts;
  sampler_opts.max_sample_bytes = options_.max_sample_bytes;
  sampler_opts.num_chunks = options_.sample_chunks;
  sampler_opts.max_line_bytes = options_.max_line_bytes;
  DatasetView residual = SampleView(data, sampler_opts);
  if (stats != nullptr) stats->sample_bytes = residual.size_bytes();

  std::vector<StructureTemplate> accepted;
  const size_t initial_bytes = residual.size_bytes();

  // Cross-round score reuse: the backing buffer never moves, so line
  // identity is stable and cached scores stay exact (score_cache.h). The
  // caching decorator serves both the candidate-scoring loop below and the
  // Refiner's unfold variants.
  ScoreCache cache(options_.match_engine, options_.charset_engine);
  const CachingScorer cached_scorer(&scorer_,
                                    options_.enable_score_cache ? &cache
                                                                : nullptr);

  for (int round = 0; round < options_.max_record_types; ++round) {
    if (residual.size_bytes() <
        options_.min_residual_fraction * static_cast<double>(initial_bytes)) {
      break;
    }

    // --- Generation ---
    Timer gen_timer;
    CandidateGenerator generator(residual, &options_, pool_.get());
    GenerationResult gen = generator.Run();
    if (timings != nullptr) timings->generation_s += gen_timer.Seconds();
    if (stats != nullptr) {
      stats->charsets_tried += gen.charsets_tried;
      stats->candidates_generated += gen.candidates.size();
    }
    if (gen.candidates.empty()) break;

    // --- Pruning ---
    Timer prune_timer;
    std::vector<CandidateTemplate> retained =
        PruneCandidates(std::move(gen.candidates), options_.num_retained);
    if (timings != nullptr) timings->pruning_s += prune_timer.Seconds();

    // --- Evaluation ---
    Timer eval_timer;
    struct Scored {
      StructureTemplate st;
      double score;
      size_t rank;  // retained-candidate index: the deterministic tie-break
    };
    const size_t refine_k =
        static_cast<size_t>(std::max(1, options_.refine_top_k));
    const bool prune = options_.enable_mdl_pruning;
    // Candidates score in waves. Within a wave all work is parallel over
    // read-only shared state, so the pruning decisions are a pure function
    // of the candidate order — never of thread count or timing. After each
    // wave the threshold tightens to the kth-smallest exact total seen so
    // far (k = refine_top_k): a later candidate whose MDL lower bound
    // exceeds it is provably outside the final refinement top-K, because
    // the final kth-best total can only be smaller. The retained list
    // arrives best-first from assimilation pruning, so the opening wave is
    // sized to exactly k — the minimum that can establish a threshold —
    // and waves double up to kScoreWave from there: every candidate past
    // the first k gets a bounded scan, and most of the tail aborts within
    // a few scanned lines. The schedule is a fixed function of the
    // options, and wave partitioning never affects which candidates
    // survive, so output is byte-identical to brute force
    // (PruningExactnessTest).
    constexpr size_t kScoreWave = 32;
    struct Prepared {
      StructureTemplate plain;
      StructureTemplate unfolded;
      bool has_unfolded = false;
      bool valid = false;
    };
    std::vector<std::optional<Scored>> slots(retained.size());
    std::vector<Prepared> prepared(std::min(kScoreWave, retained.size()));
    // Unique canonicals of the current wave -> bounded score (nullopt =
    // proved above threshold). Deduping batches the plain/unfolded variants
    // that share a canonical structure, so each distinct structure walks
    // the sample once per wave regardless of how many candidates cite it.
    std::vector<std::pair<const StructureTemplate*, std::optional<double>>>
        unique_scores;
    std::unordered_map<std::string_view, size_t> unique_index;
    std::vector<std::array<size_t, 2>> variant_of;
    // Canonicals that pruned keep the threshold they failed against; the
    // threshold only tightens, so a re-request at an equal-or-tighter one
    // is answered without rescanning.
    std::unordered_map<std::string, double> pruned_at;
    std::vector<double> top_heap;  // max-heap of the k smallest exact totals
    double threshold = std::numeric_limits<double>::infinity();
    size_t wave_cap = prune ? std::min(refine_k, kScoreWave) : kScoreWave;
    size_t wave_start = 0;
    while (wave_start < retained.size()) {
      const size_t wave = std::min(wave_cap, retained.size() - wave_start);
      prepared.resize(wave);
      wave_cap = std::min(wave_cap * 2, kScoreWave);
      // Phase A (parallel): parse, validate, auto-unfold.
      ForEachIndex(pool_.get(), wave, [&](size_t k, int) {
        Prepared& prep = prepared[k];
        prep = Prepared{};
        const CandidateTemplate& cand = retained[wave_start + k];
        auto parsed = StructureTemplate::FromCanonical(cand.canonical);
        if (!parsed.ok()) return;
        prep.plain = std::move(parsed.value());
        if (!prep.plain.Validate().ok()) return;
        prep.valid = true;
        // Score the candidate in its most-typed form: constant-count
        // arrays are unfolded first, otherwise a template whose payoff
        // only shows after unfolding (e.g. "(F;)*F" for a fixed-width
        // table) would rank below the trivial template and never reach
        // refinement.
        if (prep.plain.array_count() > 0) {
          prep.unfolded = AutoUnfoldConstantArrays(
              residual, prep.plain, /*max_passes=*/4, options_.match_engine,
              options_.charset_engine);
          prep.has_unfolded =
              prep.unfolded.canonical() != prep.plain.canonical();
        }
      });
      // Phase B (sequential): collect the wave's unique canonicals. The
      // string_view keys alias `prepared`, which is stable until phase D.
      unique_scores.clear();
      unique_index.clear();
      variant_of.assign(wave, {SIZE_MAX, SIZE_MAX});
      auto add_unique = [&](const StructureTemplate* st) {
        auto [it, fresh] =
            unique_index.emplace(st->canonical(), unique_scores.size());
        if (fresh) unique_scores.emplace_back(st, std::nullopt);
        return it->second;
      };
      for (size_t k = 0; k < wave; ++k) {
        if (!prepared[k].valid) continue;
        variant_of[k][0] = add_unique(&prepared[k].plain);
        if (prepared[k].has_unfolded) {
          variant_of[k][1] = add_unique(&prepared[k].unfolded);
        }
      }
      // Phase C (parallel): one bounded evaluation per unique canonical.
      ForEachIndex(pool_.get(), unique_scores.size(), [&](size_t u, int) {
        const StructureTemplate* st = unique_scores[u].first;
        if (!prune) {
          unique_scores[u].second = cached_scorer.Score(residual, *st);
          return;
        }
        auto memo = pruned_at.find(std::string(st->canonical()));
        if (memo != pruned_at.end() && threshold <= memo->second) {
          return;  // pruned before at a looser-or-equal threshold
        }
        unique_scores[u].second =
            cached_scorer.ScoreBounded(residual, *st, threshold);
      });
      // Phase D (sequential, candidate order): variant choice and
      // threshold/memo updates. A candidate survives only when its exact
      // score is determined: both variants exact -> min (ties keep plain,
      // like the brute-force `unfolded < plain` test); one exact at or
      // under the threshold while the other pruned -> the exact one wins
      // outright (the pruned variant's true total is strictly above the
      // threshold); anything else is provably above the threshold, hence
      // outside the top-K — drop it.
      for (size_t k = 0; k < wave; ++k) {
        if (!prepared[k].valid) continue;
        Prepared& prep = prepared[k];
        const std::optional<double>& plain_score =
            unique_scores[variant_of[k][0]].second;
        const std::optional<double> unfolded_score =
            variant_of[k][1] != SIZE_MAX
                ? unique_scores[variant_of[k][1]].second
                : std::nullopt;
        std::optional<Scored> pick;
        const size_t rank = wave_start + k;
        if (plain_score.has_value() && unfolded_score.has_value()) {
          pick = *unfolded_score < *plain_score
                     ? Scored{std::move(prep.unfolded), *unfolded_score, rank}
                     : Scored{std::move(prep.plain), *plain_score, rank};
        } else if (plain_score.has_value() && !prep.has_unfolded) {
          pick = Scored{std::move(prep.plain), *plain_score, rank};
        } else if (plain_score.has_value() && *plain_score <= threshold) {
          pick = Scored{std::move(prep.plain), *plain_score, rank};
        } else if (unfolded_score.has_value() &&
                   *unfolded_score <= threshold) {
          pick = Scored{std::move(prep.unfolded), *unfolded_score, rank};
        }
        if (!pick.has_value()) {
          if (stats != nullptr) stats->candidates_pruned++;
          continue;
        }
        if (stats != nullptr) stats->candidates_evaluated++;
        const double score = pick->score;
        slots[rank] = std::move(pick);
        if (top_heap.size() < refine_k) {
          top_heap.push_back(score);
          std::push_heap(top_heap.begin(), top_heap.end());
        } else if (score < top_heap.front()) {
          std::pop_heap(top_heap.begin(), top_heap.end());
          top_heap.back() = score;
          std::push_heap(top_heap.begin(), top_heap.end());
        }
      }
      for (const auto& [st, sc] : unique_scores) {
        if (prune && !sc.has_value()) {
          double& bound = pruned_at[std::string(st->canonical())];
          bound = std::max(bound, threshold);
        }
      }
      if (prune && top_heap.size() == refine_k) {
        threshold = top_heap.front();
      }
      wave_start += wave;
    }
    std::vector<Scored> scored;
    scored.reserve(retained.size());
    for (std::optional<Scored>& slot : slots) {
      if (!slot.has_value()) continue;
      scored.push_back(std::move(*slot));
    }
    if (scored.empty()) {
      if (timings != nullptr) timings->evaluation_s += eval_timer.Seconds();
      break;
    }
    // Total order (score, then retained rank): ties at the top-K boundary
    // resolve identically whether or not later candidates were pruned.
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                return a.score != b.score ? a.score < b.score
                                          : a.rank < b.rank;
              });

    if (timings != nullptr) timings->evaluation_s += eval_timer.Seconds();

    // --- Refinement: refine the best few candidates, then pick the best
    // refined score. Unfolding changes relative order (it exposes
    // per-column types), so refining only the unrefined winner would let
    // overly generic templates that merge record types slip through.
    Timer refine_timer;
    Refiner refiner(residual, &cached_scorer, &options_);
    size_t refine_count = std::min(
        scored.size(), static_cast<size_t>(std::max(1, options_.refine_top_k)));
    // Refinements are independent; the winner is picked by a strict-less
    // scan in rank order, the same tie-break as the sequential loop.
    std::vector<Refiner::Refined> refined_slots(refine_count);
    ForEachIndex(pool_.get(), refine_count, [&](size_t k, int) {
      refined_slots[k] = refiner.Refine(scored[k].st);
    });
    Refiner::Refined refined{scored[0].st, scored[0].score};
    bool have_refined = false;
    for (size_t k = 0; k < refine_count; ++k) {
      if (!have_refined || refined_slots[k].score < refined.score) {
        refined = std::move(refined_slots[k]);
        have_refined = true;
      }
    }

    if (timings != nullptr) timings->refinement_s += refine_timer.Seconds();

    // Accept only if the structure beats describing the residual as noise.
    Timer accept_timer;
    MdlBreakdown breakdown = scorer_.Evaluate(residual, refined.st);
    if (timings != nullptr) timings->evaluation_s += accept_timer.Seconds();
    if (breakdown.total_bits >
        breakdown.noise_only_bits * (1 - options_.min_mdl_gain)) {
      DM_LOG(kInfo, "round %d: best template rejected (%.0f vs noise %.0f)",
             round, breakdown.total_bits, breakdown.noise_only_bits);
      break;
    }
    DM_LOG(kInfo, "round %d: accepted %s (%.0f bits, %zu records)", round,
           refined.st.Display().c_str(), breakdown.total_bits,
           breakdown.records);
    if (reports != nullptr) {
      TemplateReport report;
      report.st = refined.st;
      report.mdl_bits = breakdown.total_bits;
      report.noise_only_bits = breakdown.noise_only_bits;
      report.sample_records = breakdown.records;
      report.sample_coverage =
          residual.size_bytes() == 0
              ? 0
              : static_cast<double>(breakdown.covered_chars) /
                    static_cast<double>(residual.size_bytes());
      reports->push_back(std::move(report));
    }
    accepted.push_back(refined.st);
    if (stats != nullptr) stats->rounds = round + 1;

    // --- Residual for the next round: index-only mask-and-compact ---
    ResidualMask mask = MaskMatchedLines(residual, refined.st, pool_.get(),
                                         options_.match_engine,
                                         options_.charset_engine);
    if (stats != nullptr) stats->residual_copy_bytes += mask.assembled_bytes;
    if (mask.removed_lines.empty()) break;  // nothing matched
    residual = std::move(mask.view);
    // Adjacency-aware invalidation (score_cache.h): entries whose matched
    // windows are untouched by the shrink — including multi-line ones —
    // survive into the next round.
    cache.InvalidateRemovedLines(mask.removed_lines, residual);
  }
  if (stats != nullptr) {
    stats->score_cache_hits = cache.hits();
    stats->score_cache_misses = cache.misses();
  }
  return accepted;
}

PipelineResult Datamaran::ExtractDataset(const Dataset& data) const {
  PipelineResult result;
  Timer total_timer;
  // Discovery touches scattered sample chunks of a mapped file; the final
  // scan streams through it once. Both hints are best-effort no-ops for
  // owned backings and platforms without madvise.
  data.Advise(AccessHint::kRandom);

  // Catalog fast path: fingerprint a sample against the loaded catalog
  // first. A hit serves the stored templates — discovery is skipped
  // entirely, and because the canonical forms round-trip exactly and the
  // extractor is a pure function of (templates, input), the output is
  // byte-identical to the fresh-discovery run that produced the entry.
  const bool use_catalog =
      catalog_loaded_ || !options_.catalog_out.empty();
  std::vector<std::string> entry_programs;
  if (use_catalog) {
    Timer match_timer;
    CatalogMatchOptions match_opts;
    match_opts.min_match = options_.catalog_min_match;
    match_opts.min_mdl_gain = options_.min_mdl_gain;
    match_opts.max_sample_bytes = options_.max_sample_bytes;
    match_opts.sample_chunks = options_.sample_chunks;
    match_opts.max_line_bytes = options_.max_line_bytes;
    match_opts.match_engine = options_.match_engine;
    match_opts.charset_engine = options_.charset_engine;
    std::lock_guard<std::mutex> lock(catalog_mu_);
    if (!catalog_.empty()) {
      result.stats.catalog_checked = true;
      const CatalogMatch match = MatchCatalog(catalog_, data, match_opts);
      result.timings.catalog_match_s = match_timer.Seconds();
      if (match.hit()) {
        const CatalogEntry& entry =
            catalog_.entry(static_cast<size_t>(match.entry));
        result.templates = entry.templates;
        entry_programs = entry.programs;
        result.stats.catalog_hit = true;
        result.stats.catalog_entry = match.entry;
        result.stats.catalog_match_rate = match.match_rate;
        for (size_t t = 0; t < entry.templates.size(); ++t) {
          TemplateReport report;
          report.st = entry.templates[t];
          report.mdl_bits = entry.meta[t].mdl_bits;
          report.noise_only_bits = entry.meta[t].noise_only_bits;
          report.sample_records = entry.meta[t].sample_records;
          report.sample_coverage = entry.meta[t].sample_coverage;
          result.reports.push_back(std::move(report));
        }
        DM_LOG(kInfo, "catalog hit: entry %d (%s), %.1f%% of sample lines",
               match.entry, entry.name.c_str(), match.match_rate * 100);
      }
    }
  }

  if (!result.stats.catalog_hit) {
    result.templates = DiscoverTemplates(data, &result.timings, &result.stats,
                                         &result.reports);
    // Fold the cold-discovered format back into the catalog so later files
    // of the same format (this process or, via catalog_out, any later run)
    // hit. AddEntry dedups by template-set signature.
    if (use_catalog && !result.templates.empty()) {
      CatalogEntry entry;
      entry.templates = result.templates;
      for (const TemplateReport& report : result.reports) {
        CatalogTemplateMeta meta;
        meta.mdl_bits = report.mdl_bits;
        meta.noise_only_bits = report.noise_only_bits;
        meta.sample_records = report.sample_records;
        meta.sample_coverage = report.sample_coverage;
        entry.meta.push_back(meta);
      }
      std::lock_guard<std::mutex> lock(catalog_mu_);
      catalog_.AddEntry(std::move(entry));
    }
  }
  if (!options_.catalog_out.empty()) {
    std::lock_guard<std::mutex> lock(catalog_mu_);
    const Status saved = catalog_.Save(options_.catalog_out,
                                       CatalogSaveOptions{options_.catalog_merge});
    if (!saved.ok()) {
      DM_LOG(kWarning, "catalog save to %s failed: %s",
             options_.catalog_out.c_str(), saved.ToString().c_str());
    }
  }

  Timer extract_timer;
  data.Advise(AccessHint::kSequential);
  Extractor extractor(&result.templates, pool_.get(), options_.match_engine,
                      options_.charset_engine, options_.max_line_bytes,
                      entry_programs.empty() ? nullptr : &entry_programs);
  result.extraction = extractor.Extract(data);
  data.Advise(AccessHint::kNormal);
  result.timings.extraction_s = extract_timer.Seconds();
  result.timings.total_s = total_timer.Seconds();
  result.stats.input_bytes = data.size_bytes();
  result.stats.input_mapped = data.is_mapped();
  result.stats.input_resident_bytes = data.resident_bytes();
  return result;
}

PipelineResult Datamaran::ExtractText(std::string text) const {
  Dataset data(std::move(text));
  return ExtractDataset(data);
}

Result<PipelineResult> Datamaran::ExtractFile(const std::string& path) const {
  // A requested catalog that failed to load is an input error, not a
  // silent fall-back to cold discovery.
  if (!catalog_status_.ok()) return catalog_status_;
  // The resilient front-end (core/input.h): gzip sniff + inflate, CRLF
  // normalization, descriptive error Status on corrupt/truncated input.
  // Plain clean files keep the mmap fast path.
  auto data = OpenInput(path, MakeInputOptions(options_));
  if (!data.ok()) return data.status();
  return ExtractDataset(data.value());
}

}  // namespace datamaran
