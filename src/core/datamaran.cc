#include "core/datamaran.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "generation/generator.h"
#include "pruning/pruner.h"
#include "refinement/refiner.h"
#include "template/matcher.h"
#include "util/file_io.h"
#include "util/logging.h"
#include "util/sampler.h"
#include "util/timer.h"

namespace datamaran {

Datamaran::Datamaran(DatamaranOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<ThreadPool>(
          ThreadPool::ResolveThreadCount(options_.num_threads))) {
  if (options_.verbose) SetLogLevel(LogLevel::kInfo);
}

std::string RemoveMatchedLines(const Dataset& data,
                               const StructureTemplate& st) {
  TemplateMatcher matcher(&st);
  const std::string_view text = data.text();
  const size_t span = static_cast<size_t>(std::max(1, st.line_span()));
  std::string residual;
  size_t li = 0;
  const size_t n = data.line_count();
  while (li < n) {
    if (matcher.TryMatch(text, data.line_begin(li)).has_value()) {
      li += span;
    } else {
      residual.append(data.line_with_newline(li));
      ++li;
    }
  }
  return residual;
}

std::vector<StructureTemplate> Datamaran::DiscoverTemplates(
    const Dataset& data, StepTimings* timings, PipelineStats* stats,
    std::vector<TemplateReport>* reports) const {
  SamplerOptions sampler_opts;
  sampler_opts.max_sample_bytes = options_.max_sample_bytes;
  sampler_opts.num_chunks = options_.sample_chunks;
  Dataset sample(SampleLines(data.text(), sampler_opts));
  if (stats != nullptr) stats->sample_bytes = sample.size_bytes();

  std::vector<StructureTemplate> accepted;
  Dataset residual = std::move(sample);
  const size_t initial_bytes = residual.size_bytes();

  for (int round = 0; round < options_.max_record_types; ++round) {
    if (residual.size_bytes() <
        options_.min_residual_fraction * static_cast<double>(initial_bytes)) {
      break;
    }

    // --- Generation ---
    Timer gen_timer;
    CandidateGenerator generator(&residual, &options_, pool_.get());
    GenerationResult gen = generator.Run();
    if (timings != nullptr) timings->generation_s += gen_timer.Seconds();
    if (stats != nullptr) {
      stats->charsets_tried += gen.charsets_tried;
      stats->candidates_generated += gen.candidates.size();
    }
    if (gen.candidates.empty()) break;

    // --- Pruning ---
    Timer prune_timer;
    std::vector<CandidateTemplate> retained =
        PruneCandidates(std::move(gen.candidates), options_.num_retained);
    if (timings != nullptr) timings->pruning_s += prune_timer.Seconds();

    // --- Evaluation ---
    Timer eval_timer;
    struct Scored {
      StructureTemplate st;
      double score;
    };
    // Each retained candidate scores independently (parse, validate,
    // auto-unfold, MDL) — the evaluation step's hot loop. Parallel workers
    // fill per-candidate slots; collecting them in candidate order makes
    // the scored list identical to the sequential loop's.
    std::vector<std::optional<Scored>> slots(retained.size());
    ForEachIndex(pool_.get(), retained.size(), [&](size_t i, int) {
      const CandidateTemplate& cand = retained[i];
      auto parsed = StructureTemplate::FromCanonical(cand.canonical);
      if (!parsed.ok()) return;
      StructureTemplate st = std::move(parsed.value());
      if (!st.Validate().ok()) return;
      // Score the candidate in its most-typed form: constant-count arrays
      // are unfolded first, otherwise a template whose payoff only shows
      // after unfolding (e.g. "(F;)*F" for a fixed-width table) would rank
      // below the trivial template and never reach refinement.
      if (st.array_count() > 0) {
        StructureTemplate unfolded = AutoUnfoldConstantArrays(residual, st);
        double unfolded_score = scorer_.Score(residual, unfolded);
        double plain_score = scorer_.Score(residual, st);
        if (unfolded_score < plain_score) {
          slots[i] = Scored{std::move(unfolded), unfolded_score};
        } else {
          slots[i] = Scored{std::move(st), plain_score};
        }
      } else {
        double score = scorer_.Score(residual, st);
        slots[i] = Scored{std::move(st), score};
      }
    });
    std::vector<Scored> scored;
    scored.reserve(retained.size());
    for (std::optional<Scored>& slot : slots) {
      if (!slot.has_value()) continue;
      if (stats != nullptr) stats->candidates_evaluated++;
      scored.push_back(std::move(*slot));
    }
    if (scored.empty()) {
      if (timings != nullptr) timings->evaluation_s += eval_timer.Seconds();
      break;
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                return a.score < b.score;
              });

    // --- Refinement: refine the best few candidates, then pick the best
    // refined score. Unfolding changes relative order (it exposes
    // per-column types), so refining only the unrefined winner would let
    // overly generic templates that merge record types slip through.
    Refiner refiner(&residual, &scorer_, &options_);
    size_t refine_count = std::min(
        scored.size(), static_cast<size_t>(std::max(1, options_.refine_top_k)));
    // Refinements are independent; the winner is picked by a strict-less
    // scan in rank order, the same tie-break as the sequential loop.
    std::vector<Refiner::Refined> refined_slots(refine_count);
    ForEachIndex(pool_.get(), refine_count, [&](size_t k, int) {
      refined_slots[k] = refiner.Refine(scored[k].st);
    });
    Refiner::Refined refined{scored[0].st, scored[0].score};
    bool have_refined = false;
    for (size_t k = 0; k < refine_count; ++k) {
      if (!have_refined || refined_slots[k].score < refined.score) {
        refined = std::move(refined_slots[k]);
        have_refined = true;
      }
    }

    // Accept only if the structure beats describing the residual as noise.
    MdlBreakdown breakdown = scorer_.Evaluate(residual, refined.st);
    if (timings != nullptr) timings->evaluation_s += eval_timer.Seconds();
    if (breakdown.total_bits >
        breakdown.noise_only_bits * (1 - options_.min_mdl_gain)) {
      DM_LOG(kInfo, "round %d: best template rejected (%.0f vs noise %.0f)",
             round, breakdown.total_bits, breakdown.noise_only_bits);
      break;
    }
    DM_LOG(kInfo, "round %d: accepted %s (%.0f bits, %zu records)", round,
           refined.st.Display().c_str(), breakdown.total_bits,
           breakdown.records);
    if (reports != nullptr) {
      TemplateReport report;
      report.st = refined.st;
      report.mdl_bits = breakdown.total_bits;
      report.noise_only_bits = breakdown.noise_only_bits;
      report.sample_records = breakdown.records;
      report.sample_coverage =
          residual.size_bytes() == 0
              ? 0
              : static_cast<double>(breakdown.covered_chars) /
                    static_cast<double>(residual.size_bytes());
      reports->push_back(std::move(report));
    }
    accepted.push_back(refined.st);
    if (stats != nullptr) stats->rounds = round + 1;

    // --- Residual for the next round ---
    std::string rest = RemoveMatchedLines(residual, refined.st);
    if (rest.size() == residual.size_bytes()) break;  // nothing matched
    residual = Dataset(std::move(rest));
  }
  return accepted;
}

PipelineResult Datamaran::ExtractText(std::string text) const {
  PipelineResult result;
  Timer total_timer;
  Dataset data(std::move(text));
  result.templates = DiscoverTemplates(data, &result.timings, &result.stats,
                                       &result.reports);
  Timer extract_timer;
  Extractor extractor(&result.templates, pool_.get());
  result.extraction = extractor.Extract(data);
  result.timings.extraction_s = extract_timer.Seconds();
  result.timings.total_s = total_timer.Seconds();
  return result;
}

Result<PipelineResult> Datamaran::ExtractFile(const std::string& path) const {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return ExtractText(std::move(text.value()));
}

}  // namespace datamaran
