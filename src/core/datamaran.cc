#include "core/datamaran.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "generation/generator.h"
#include "pruning/pruner.h"
#include "refinement/refiner.h"
#include "scoring/score_cache.h"
#include "template/dispatch.h"
#include "util/file_io.h"
#include "util/logging.h"
#include "util/sampler.h"
#include "util/timer.h"

namespace datamaran {

Datamaran::Datamaran(DatamaranOptions options)
    : options_(std::move(options)),
      scorer_(options_.match_engine),
      pool_(std::make_unique<ThreadPool>(
          ThreadPool::ResolveThreadCount(options_.num_threads))) {
  if (options_.verbose) SetLogLevel(LogLevel::kInfo);
}

ResidualMask MaskMatchedLines(const DatasetView& view,
                              const StructureTemplate& st, ThreadPool* pool,
                              MatchEngine engine) {
  const size_t n = view.line_count();
  const size_t span = static_cast<size_t>(std::max(1, st.line_span()));
  const RecordMatcher matcher(&st, engine);

  // Phase 1 (parallel): the match attempt at each live line is a pure
  // function of (window text, template), so all n attempts fan out across
  // the pool; per-worker scratch backs the rare cross-gap window. Lines
  // whose first byte is outside the template's FIRST set are rejected
  // without resolving the window at all.
  std::vector<uint8_t> matched(n, 0);
  const int workers = pool != nullptr ? pool->thread_count() : 1;
  std::vector<std::string> scratch(static_cast<size_t>(workers));
  std::vector<size_t> assembled(static_cast<size_t>(workers), 0);
  ForEachIndex(pool, n, [&](size_t v, int worker) {
    const unsigned char first =
        static_cast<unsigned char>(view.line_with_newline(v).front());
    if (!matcher.CanStartWith(first)) return;
    std::string* buf = &scratch[static_cast<size_t>(worker)];
    const DatasetView::SpanText win = view.ResolveSpan(v, span, buf);
    if (win.assembled) {
      assembled[static_cast<size_t>(worker)] += win.text.size();
    }
    matched[v] = matcher.TryMatch(win.text, win.pos).has_value() ? 1 : 0;
  });

  // Phase 2 (sequential, O(live)): the greedy first-match walk — identical
  // to the sequential scan's skip rule — decides which attempts count,
  // then compacts the survivors' physical indices.
  ResidualMask out{view, {}, 0, 0};
  for (size_t w = 0; w < static_cast<size_t>(workers); ++w) {
    out.assembled_bytes += assembled[w];
  }
  std::vector<uint32_t> live;
  live.reserve(n);
  size_t v = 0;
  while (v < n) {
    if (matched[v] != 0) {
      for (size_t k = v; k < v + span; ++k) {
        out.removed_lines.push_back(
            static_cast<uint32_t>(view.physical_line(k)));
      }
      out.matched_records += 1;
      v += span;
    } else {
      live.push_back(static_cast<uint32_t>(view.physical_line(v)));
      ++v;
    }
  }
  out.view = DatasetView(view.dataset(), std::move(live));
  return out;
}

std::vector<StructureTemplate> Datamaran::DiscoverTemplates(
    const Dataset& data, StepTimings* timings, PipelineStats* stats,
    std::vector<TemplateReport>* reports) const {
  SamplerOptions sampler_opts;
  sampler_opts.max_sample_bytes = options_.max_sample_bytes;
  sampler_opts.num_chunks = options_.sample_chunks;
  DatasetView residual = SampleView(data, sampler_opts);
  if (stats != nullptr) stats->sample_bytes = residual.size_bytes();

  std::vector<StructureTemplate> accepted;
  const size_t initial_bytes = residual.size_bytes();

  // Cross-round score reuse: the backing buffer never moves, so line
  // identity is stable and cached scores stay exact (score_cache.h). The
  // caching decorator serves both the candidate-scoring loop below and the
  // Refiner's unfold variants.
  ScoreCache cache(options_.match_engine);
  const CachingScorer cached_scorer(&scorer_,
                                    options_.enable_score_cache ? &cache
                                                                : nullptr);

  for (int round = 0; round < options_.max_record_types; ++round) {
    if (residual.size_bytes() <
        options_.min_residual_fraction * static_cast<double>(initial_bytes)) {
      break;
    }

    // --- Generation ---
    Timer gen_timer;
    CandidateGenerator generator(residual, &options_, pool_.get());
    GenerationResult gen = generator.Run();
    if (timings != nullptr) timings->generation_s += gen_timer.Seconds();
    if (stats != nullptr) {
      stats->charsets_tried += gen.charsets_tried;
      stats->candidates_generated += gen.candidates.size();
    }
    if (gen.candidates.empty()) break;

    // --- Pruning ---
    Timer prune_timer;
    std::vector<CandidateTemplate> retained =
        PruneCandidates(std::move(gen.candidates), options_.num_retained);
    if (timings != nullptr) timings->pruning_s += prune_timer.Seconds();

    // --- Evaluation ---
    Timer eval_timer;
    struct Scored {
      StructureTemplate st;
      double score;
    };
    // Each retained candidate scores independently (parse, validate,
    // auto-unfold, MDL) — the evaluation step's hot loop. Parallel workers
    // fill per-candidate slots; collecting them in candidate order makes
    // the scored list identical to the sequential loop's.
    std::vector<std::optional<Scored>> slots(retained.size());
    ForEachIndex(pool_.get(), retained.size(), [&](size_t i, int) {
      const CandidateTemplate& cand = retained[i];
      auto parsed = StructureTemplate::FromCanonical(cand.canonical);
      if (!parsed.ok()) return;
      StructureTemplate st = std::move(parsed.value());
      if (!st.Validate().ok()) return;
      // Score the candidate in its most-typed form: constant-count arrays
      // are unfolded first, otherwise a template whose payoff only shows
      // after unfolding (e.g. "(F;)*F" for a fixed-width table) would rank
      // below the trivial template and never reach refinement.
      if (st.array_count() > 0) {
        StructureTemplate unfolded = AutoUnfoldConstantArrays(
            residual, st, /*max_passes=*/4, options_.match_engine);
        double unfolded_score = cached_scorer.Score(residual, unfolded);
        double plain_score = cached_scorer.Score(residual, st);
        if (unfolded_score < plain_score) {
          slots[i] = Scored{std::move(unfolded), unfolded_score};
        } else {
          slots[i] = Scored{std::move(st), plain_score};
        }
      } else {
        double score = cached_scorer.Score(residual, st);
        slots[i] = Scored{std::move(st), score};
      }
    });
    std::vector<Scored> scored;
    scored.reserve(retained.size());
    for (std::optional<Scored>& slot : slots) {
      if (!slot.has_value()) continue;
      if (stats != nullptr) stats->candidates_evaluated++;
      scored.push_back(std::move(*slot));
    }
    if (scored.empty()) {
      if (timings != nullptr) timings->evaluation_s += eval_timer.Seconds();
      break;
    }
    std::sort(scored.begin(), scored.end(),
              [](const Scored& a, const Scored& b) {
                return a.score < b.score;
              });

    // --- Refinement: refine the best few candidates, then pick the best
    // refined score. Unfolding changes relative order (it exposes
    // per-column types), so refining only the unrefined winner would let
    // overly generic templates that merge record types slip through.
    Refiner refiner(residual, &cached_scorer, &options_);
    size_t refine_count = std::min(
        scored.size(), static_cast<size_t>(std::max(1, options_.refine_top_k)));
    // Refinements are independent; the winner is picked by a strict-less
    // scan in rank order, the same tie-break as the sequential loop.
    std::vector<Refiner::Refined> refined_slots(refine_count);
    ForEachIndex(pool_.get(), refine_count, [&](size_t k, int) {
      refined_slots[k] = refiner.Refine(scored[k].st);
    });
    Refiner::Refined refined{scored[0].st, scored[0].score};
    bool have_refined = false;
    for (size_t k = 0; k < refine_count; ++k) {
      if (!have_refined || refined_slots[k].score < refined.score) {
        refined = std::move(refined_slots[k]);
        have_refined = true;
      }
    }

    // Accept only if the structure beats describing the residual as noise.
    MdlBreakdown breakdown = scorer_.Evaluate(residual, refined.st);
    if (timings != nullptr) timings->evaluation_s += eval_timer.Seconds();
    if (breakdown.total_bits >
        breakdown.noise_only_bits * (1 - options_.min_mdl_gain)) {
      DM_LOG(kInfo, "round %d: best template rejected (%.0f vs noise %.0f)",
             round, breakdown.total_bits, breakdown.noise_only_bits);
      break;
    }
    DM_LOG(kInfo, "round %d: accepted %s (%.0f bits, %zu records)", round,
           refined.st.Display().c_str(), breakdown.total_bits,
           breakdown.records);
    if (reports != nullptr) {
      TemplateReport report;
      report.st = refined.st;
      report.mdl_bits = breakdown.total_bits;
      report.noise_only_bits = breakdown.noise_only_bits;
      report.sample_records = breakdown.records;
      report.sample_coverage =
          residual.size_bytes() == 0
              ? 0
              : static_cast<double>(breakdown.covered_chars) /
                    static_cast<double>(residual.size_bytes());
      reports->push_back(std::move(report));
    }
    accepted.push_back(refined.st);
    if (stats != nullptr) stats->rounds = round + 1;

    // --- Residual for the next round: index-only mask-and-compact ---
    ResidualMask mask = MaskMatchedLines(residual, refined.st, pool_.get(),
                                         options_.match_engine);
    if (stats != nullptr) stats->residual_copy_bytes += mask.assembled_bytes;
    if (mask.removed_lines.empty()) break;  // nothing matched
    residual = std::move(mask.view);
    // Adjacency-aware invalidation (score_cache.h): entries whose matched
    // windows are untouched by the shrink — including multi-line ones —
    // survive into the next round.
    cache.InvalidateRemovedLines(mask.removed_lines, residual);
  }
  if (stats != nullptr) {
    stats->score_cache_hits = cache.hits();
    stats->score_cache_misses = cache.misses();
  }
  return accepted;
}

PipelineResult Datamaran::ExtractDataset(const Dataset& data) const {
  PipelineResult result;
  Timer total_timer;
  // Discovery touches scattered sample chunks of a mapped file; the final
  // scan streams through it once. Both hints are best-effort no-ops for
  // owned backings and platforms without madvise.
  data.Advise(AccessHint::kRandom);
  result.templates = DiscoverTemplates(data, &result.timings, &result.stats,
                                       &result.reports);
  Timer extract_timer;
  data.Advise(AccessHint::kSequential);
  Extractor extractor(&result.templates, pool_.get(), options_.match_engine);
  result.extraction = extractor.Extract(data);
  data.Advise(AccessHint::kNormal);
  result.timings.extraction_s = extract_timer.Seconds();
  result.timings.total_s = total_timer.Seconds();
  result.stats.input_bytes = data.size_bytes();
  result.stats.input_mapped = data.is_mapped();
  result.stats.input_resident_bytes = data.resident_bytes();
  return result;
}

PipelineResult Datamaran::ExtractText(std::string text) const {
  Dataset data(std::move(text));
  return ExtractDataset(data);
}

Result<PipelineResult> Datamaran::ExtractFile(const std::string& path) const {
  auto data = Dataset::FromFile(path, options_.mmap_mode,
                                options_.mmap_threshold_bytes);
  if (!data.ok()) return data.status();
  return ExtractDataset(data.value());
}

}  // namespace datamaran
