#include "core/dataset.h"

#include <algorithm>
#include <utility>

#include "util/common.h"

namespace datamaran {

Dataset::Dataset(std::string text) : owned_(std::move(text)) {
  if (!owned_.empty() && owned_.back() != '\n') owned_.push_back('\n');
  BuildLineIndex();
}

Dataset::Dataset(MappedRegion region) {
  const std::string_view bytes = region.view();
  if (region.is_mapped()) {
    if (bytes.empty() || bytes.back() == '\n') {
      region_ = std::move(region);
      use_region_ = true;
    } else {
      // A mapped file without a final newline: a read-only mapping cannot
      // have one appended, so own a normalized copy instead.
      owned_.assign(bytes.begin(), bytes.end());
      owned_.push_back('\n');
    }
  } else {
    // Read fallback: adopt the region's buffer, no second copy.
    owned_ = std::move(region).ReleaseOwned();
    if (!owned_.empty() && owned_.back() != '\n') owned_.push_back('\n');
  }
  BuildLineIndex();
}

Result<Dataset> Dataset::FromFile(const std::string& path, MapMode mode,
                                  size_t mmap_threshold) {
  if (mode == MapMode::kAuto) {
    // One stat decides the mode: map large files, read small ones outright
    // so their pages are not pinned to a mapping.
    auto size = FileSizeBytes(path);
    if (!size.ok()) return size.status();
    mode = size.value() >= mmap_threshold ? MapMode::kAlways : MapMode::kNever;
  }
  if (mode == MapMode::kAlways) {
    auto region = MmapFile(path);
    if (!region.ok()) return region.status();
    return Dataset(std::move(region.value()));
  }
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return Dataset(std::move(text.value()));
}

void Dataset::BuildLineIndex() {
  const std::string_view t = text();
  line_begin_.clear();
  size_t begin = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i] == '\n') {
      line_begin_.push_back(begin);
      begin = i + 1;
    }
  }
}

size_t Dataset::LineOfOffset(size_t pos) const {
  auto it = std::upper_bound(line_begin_.begin(), line_begin_.end(), pos);
  if (it == line_begin_.begin()) return 0;
  return static_cast<size_t>(it - line_begin_.begin()) - 1;
}

DatasetView::DatasetView(const Dataset& data)
    : data_(&data), size_bytes_(data.size_bytes()) {}

DatasetView::DatasetView(const Dataset& data, std::vector<uint32_t> live_lines)
    : data_(&data) {
  for (size_t i = 0; i < live_lines.size(); ++i) {
    const size_t p = live_lines[i];
    DM_CHECK(p < data.line_count());
    DM_CHECK(i == 0 || live_lines[i - 1] < live_lines[i]);
    size_bytes_ += data.line_end(p) - data.line_begin(p);
  }
  live_ = std::make_shared<const std::vector<uint32_t>>(std::move(live_lines));
}

bool DatasetView::SpanIsContiguous(size_t v, size_t span) const {
  if (span == 0) span = 1;
  if (v + span > line_count()) return false;
  if (live_ == nullptr) return true;
  return (*live_)[v + span - 1] == (*live_)[v] + span - 1;
}

DatasetView::SpanText DatasetView::ResolveSpan(size_t v, size_t span,
                                               std::string* scratch) const {
  if (span == 0) span = 1;
  // Identity views are always in place: the backing text simply ends after
  // its last line, so a window that runs off the end fails to match exactly
  // as it would against a standalone buffer.
  if (live_ == nullptr) {
    return {data_->text(), data_->line_begin(v), false};
  }
  if (SpanIsContiguous(v, span)) {
    return {data_->text(), data_->line_begin((*live_)[v]), false};
  }
  // The window crosses a gap (or runs past the last live line, where the
  // backing text continues with dead lines an in-place matcher could
  // wrongly consume): assemble exactly the live window.
  scratch->clear();
  const size_t stop = std::min(v + span, line_count());
  for (size_t i = v; i < stop; ++i) {
    const std::string_view l = line_with_newline(i);
    scratch->append(l.data(), l.size());
  }
  return {std::string_view(*scratch), 0, true};
}

}  // namespace datamaran
