#include "core/dataset.h"

#include <algorithm>

namespace datamaran {

Dataset::Dataset(std::string text) : text_(std::move(text)) {
  if (!text_.empty() && text_.back() != '\n') text_.push_back('\n');
  size_t begin = 0;
  for (size_t i = 0; i < text_.size(); ++i) {
    if (text_[i] == '\n') {
      line_begin_.push_back(begin);
      begin = i + 1;
    }
  }
}

size_t Dataset::LineOfOffset(size_t pos) const {
  auto it = std::upper_bound(line_begin_.begin(), line_begin_.end(), pos);
  if (it == line_begin_.begin()) return 0;
  return static_cast<size_t>(it - line_begin_.begin()) - 1;
}

}  // namespace datamaran
