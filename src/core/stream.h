#ifndef DATAMARAN_CORE_STREAM_H_
#define DATAMARAN_CORE_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/datamaran.h"
#include "core/input.h"
#include "core/options.h"
#include "extraction/extractor.h"
#include "template/template.h"
#include "util/status.h"
#include "util/thread_pool.h"

/// Online streaming discovery (`datamaran_cli --follow`): structure
/// extraction over an unbounded stream at O(window) peak memory.
///
/// The batch pipeline assumes the whole file exists before structure can
/// emerge. A live stream never ends, so StreamingSession replaces "sample
/// the file" with a bounded protocol over recent lines:
///
///   1. Warm-up. Incoming lines accumulate in a pending window (capped in
///      lines and bytes). When the window fills — or the stream ends
///      first — initial discovery runs over exactly that window via the
///      unchanged batch pipeline (Datamaran::DiscoverTemplates). For a
///      finite corpus smaller than the window this makes streaming
///      discovery *identical* to batch discovery, which is what the
///      streaming-vs-batch differential test pins.
///   2. Steady state. Lines accumulate in a segment buffer processed at
///      window cadence: the current Extractor scans the segment and the
///      matched records / noise lines stream straight into the caller's
///      EventSink at wave cadence. Only decisions with full record-span
///      lookahead are emitted — the last max_record_span-1 lines of a
///      segment carry over to the next one — so the decided sequence is
///      the left-to-right greedy first-match scan of the *stream*, a pure
///      function of the line sequence, independent of segment cadence and
///      chunk delivery (the determinism gate).
///   3. Drift. A monitor tracks the rolling noise rate over the last
///      drift_window_lines decided lines, and every decided noise line
///      also enters a bounded noise ring. When the rate crosses the
///      threshold (with a cooldown of min_epoch_lines decided lines
///      between evolutions), re-discovery runs over the noise ring only —
///      never over history — and any *novel* templates (canonical-form
///      dedup against everything already live) are spliced onto the end
///      of the template set: existing template ids never change, so
///      already-written output files stay valid, and sinks learn about
///      the new types through EventSink::OnTemplatesAdded (which opens
///      their tables mid-stream). Undecided lines from the trigger point
///      on are re-extracted with the evolved set.
///   4. Checkpoint. When a catalog path is configured, the live template
///      set is folded into the catalog (the same locked merge-on-save the
///      crawler uses) after every evolution and at Finish, so a restarted
///      follower warm-starts from the formats this one learned.
///
/// Memory: pending window, segment buffer, noise ring, and drift ring are
/// all bounded by the window options; the framer carry is bounded by the
/// oversized-line cap; sinks are O(wave) by contract. Peak RSS is
/// therefore independent of stream length — the property the stream-soak
/// CI gate measures.
///
/// Determinism: every decision (record vs noise, template id, evolution
/// trigger point, re-discovery input) is a pure function of the decided
/// line sequence, which is itself a pure function of the input bytes. The
/// emitted output is byte-identical for every chunk-delivery schedule,
/// thread count, and match engine (tests/stream_test.cc,
/// tests/parallel_test.cc).
///
/// Oversized lines: the framer truncates a line whose content exceeds
/// max_line_bytes to max_line_bytes+1 bytes, which the extraction scan's
/// oversized guard (> max_line_bytes) then refuses — the line is decided
/// as noise without the stream ever buffering it whole. Batch mode keeps
/// the full bytes in noise.txt; the truncation is the documented
/// streaming-only trade for a bounded carry.

namespace datamaran {

/// Streaming-only knobs (the discovery/extraction knobs come from
/// DatamaranOptions unchanged).
struct StreamOptions {
  /// Lines per window: the warm-up discovery window and the steady-state
  /// segment cadence. Larger windows see more structure before deciding;
  /// smaller ones bound memory tighter and converge faster.
  size_t window_lines = 4096;
  /// Byte cap on the same buffers (whichever of lines/bytes fills first
  /// triggers processing). Defaults to the batch discovery sample cap so
  /// warm-up never holds more than batch sampling would.
  size_t window_bytes = 256 * 1024;
  /// Rolling window (in decided lines) of the drift monitor.
  size_t drift_window_lines = 256;
  /// Noise rate over that window at or above which evolution triggers.
  double drift_threshold = 0.5;
  /// Cooldown: decided lines required between evolution attempts (also
  /// gates the first attempt after warm-up).
  size_t min_epoch_lines = 256;
  /// Evolution runs only when the noise ring holds at least this many
  /// lines (re-discovery over a handful of lines is meaningless).
  size_t min_noise_lines = 32;
  /// false = monitor drift but never evolve (--no-evolve).
  bool evolve = true;
  /// Catalog checkpoint path ("" = no checkpointing); merge mirrors
  /// CatalogSaveOptions::merge.
  std::string checkpoint_path;
  bool checkpoint_merge = true;
};

/// Counters a streaming run accumulates (the streaming counterpart of
/// PipelineStats; surfaced in the CLI summary).
struct StreamStats {
  uint64_t bytes_in = 0;       ///< bytes fed (framer input)
  uint64_t lines_in = 0;       ///< lines framed
  uint64_t lines_decided = 0;  ///< lines emitted as record members or noise
  uint64_t records = 0;
  uint64_t noise_lines = 0;
  uint64_t oversized_lines = 0;
  /// Discovery epochs: 0 before warm-up discovery succeeds, 1 after, +1
  /// per successful evolution.
  uint64_t epochs = 0;
  uint64_t evolutions = 0;          ///< evolutions that added templates
  uint64_t evolution_attempts = 0;  ///< drift triggers (incl. fruitless)
  uint64_t discovery_runs = 0;      ///< batch-pipeline invocations
  uint64_t checkpoints = 0;         ///< successful catalog saves
  double last_noise_rate = 0;       ///< drift monitor's current rate
};

/// Rolling record/noise monitor: a fixed ring of the last `window` decided
/// lines. Triggering is a pure function of the decided sequence.
class DriftMonitor {
 public:
  explicit DriftMonitor(size_t window) : ring_(window > 0 ? window : 1, 0) {}

  void Observe(bool noise) {
    noise_count_ += static_cast<size_t>(noise) - ring_[idx_];
    ring_[idx_] = static_cast<uint8_t>(noise);
    idx_ = idx_ + 1 == ring_.size() ? 0 : idx_ + 1;
    if (count_ < ring_.size()) ++count_;
  }

  bool full() const { return count_ == ring_.size(); }
  double rate() const {
    return count_ == 0 ? 0
                       : static_cast<double>(noise_count_) /
                             static_cast<double>(count_);
  }

  void Reset() {
    std::fill(ring_.begin(), ring_.end(), 0);
    count_ = noise_count_ = idx_ = 0;
  }

 private:
  std::vector<uint8_t> ring_;
  size_t count_ = 0;
  size_t noise_count_ = 0;
  size_t idx_ = 0;
};

/// One live streaming extraction: feed bytes (or pre-framed lines), call
/// Finish at end of stream. Output goes to the caller's EventSink —
/// records via OnRecord, noise via OnNoiseText (the streaming noise hook:
/// there is no whole-stream DatasetView for OnNoiseLine to index), new
/// template types via OnTemplatesAdded. The sink must outlive the session;
/// so must the options. Not thread-safe (one feeder); extraction
/// parallelism happens internally via the session's pool.
class StreamingSession {
 public:
  StreamingSession(const DatamaranOptions& options,
                   const StreamOptions& stream_options, EventSink* sink);
  ~StreamingSession();

  StreamingSession(const StreamingSession&) = delete;
  StreamingSession& operator=(const StreamingSession&) = delete;

  /// Feeds raw stream bytes through the incremental framer.
  void FeedBytes(std::string_view bytes);

  /// Feeds one framed line (trailing '\n' included). The FeedBytes path
  /// lands here; exposed for tests that drive framed lines directly.
  void FeedLine(std::string_view line_with_newline, bool oversized);

  /// End of stream: runs warm-up discovery if it never triggered, decides
  /// every buffered line, flushes the final checkpoint. Returns the first
  /// sticky session error (checkpoint I/O; sink errors stay with the
  /// sink). Feed must not be called afterwards.
  Status Finish();

  const StreamStats& stats() const { return stats_; }

  /// Live template set in priority (id) order. Pointers are stable for
  /// the session's lifetime (a deque backs them) — the same pointers
  /// handed to EventSink::OnTemplatesAdded.
  const std::deque<StructureTemplate>& templates() const {
    return templates_;
  }

 private:
  friend class StreamSegmentAdapter;

  /// Runs batch discovery over `text`, returning accepted templates.
  std::vector<StructureTemplate> Discover(std::string text);

  /// Warm-up: discovery over the pending window; on success the window
  /// becomes the first segment. On failure the window is decided as noise
  /// (those lines are final — streaming never reprocesses history) and
  /// warm-up re-arms on the next window.
  void RunInitialDiscovery();

  /// Splices novel templates into the live set, notifies the sink, and
  /// rebuilds the extractor. Returns how many templates were added.
  size_t SpliceTemplates(std::vector<StructureTemplate> found);

  /// Drift response: re-discovery over the noise ring, splice, reset the
  /// monitor state, checkpoint on success.
  void RunEvolution();

  /// Extracts the segment buffer through the adapter. `final_flush` means
  /// end of stream: no lookahead is held back and the loop re-processes
  /// until every line is decided (evolution may interrupt mid-segment).
  void ProcessSegment(bool final_flush);

  /// Decides one line as noise directly (warm-up failure path).
  void EmitNoiseDirect(std::string_view line_with_newline);

  /// Folds the live template set into the checkpoint catalog and saves it
  /// (locked merge). Errors are sticky in status_.
  void Checkpoint();

  /// Called by the adapter for every decided line; updates the drift
  /// monitor and the noise ring and arms the evolution trigger.
  void ObserveDecided(bool noise, std::string_view line_with_newline);

  bool EvolutionArmed() const;

  DatamaranOptions options_;
  StreamOptions stream_;
  EventSink* sink_;
  Datamaran dm_;         ///< discovery engine (catalog paths cleared)
  ThreadPool pool_;      ///< extraction pool (options_.num_threads)
  StreamFramer framer_;

  /// Live templates. Deque: addresses stable across splices — sinks' row
  /// builders hold these pointers. extractor_templates_ is the per-epoch
  /// contiguous copy the Extractor requires; rebuilding it never touches
  /// the deque. Safe because sinks consume match events positionally and
  /// never compare event node pointers against their own template's.
  std::deque<StructureTemplate> templates_;
  std::unordered_set<std::string> canon_seen_;
  std::vector<StructureTemplate> extractor_templates_;
  std::unique_ptr<Extractor> extractor_;

  bool discovered_ = false;
  bool finished_ = false;
  std::string window_;       ///< pending warm-up window / segment buffer
  size_t window_line_count_ = 0;

  DriftMonitor drift_;
  std::deque<std::string> noise_ring_;  ///< last decided noise lines
  size_t noise_ring_bytes_ = 0;
  size_t decided_since_epoch_ = 0;
  bool evolution_pending_ = false;  ///< trigger seen, evolution not yet run

  StreamStats stats_;
  Status status_ = Status::Ok();
};

}  // namespace datamaran

#endif  // DATAMARAN_CORE_STREAM_H_
