#ifndef DATAMARAN_CORE_INPUT_H_
#define DATAMARAN_CORE_INPUT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/dataset.h"
#include "util/status.h"

/// The resilient input front-end: everything between "a path (or several)
/// on disk" and "a well-formed Dataset the pipeline can trust".
///
/// Real data lakes are hostile. Files arrive gzip'd (`app.log.2.gz`),
/// rotated into numbered generations, CRLF-terminated, sprinkled with NUL
/// bytes and invalid UTF-8, truncated mid-write, or occasionally containing
/// a single multi-GB line. This layer contains those hazards before any
/// pipeline stage runs:
///
///  * Compression: gzip files are sniffed by magic bytes and inflated
///    (streaming, multi-member, with a decompression-bomb cap) into the
///    Dataset's owned backing. Plain files keep the mmap fast path.
///  * Rotation stitching: `app.log` + `app.log.1` + `app.log.2.gz` open as
///    ONE logical dataset in chronological order (highest rotation index
///    first — that is the oldest data), each member newline-terminated so
///    records never merge across a file boundary.
///  * CRLF normalization: "\r\n" line endings are rewritten to "\n"
///    (policy-controlled; kAuto engages when a CRLF appears in the probe
///    window at the head of the file), so templates and goldens are
///    identical whether a producer ran on Windows or not.
///  * Failure containment: every hazard — unreadable file, corrupt or
///    truncated gzip stream, decompression bomb — surfaces as a
///    descriptive error Status, never a crash. The CLI turns that into a
///    non-zero exit; the crawler records it in the manifest's errors
///    section and keeps crawling.
///
/// NUL bytes and invalid UTF-8 need no normalization: the dataset layer
/// indexes lines by '\n' alone and every matcher/tokenizer operates on raw
/// bytes (charset engines are NUL-member safe), so hostile bytes simply
/// flow through into extracted fields. Oversized-line containment lives
/// downstream (SamplerOptions/Extractor `max_line_bytes`), where a line
/// over the cap degrades to noise instead of being indexed or matched.

namespace datamaran {

/// What to do about "\r\n" line endings.
enum class CrlfPolicy {
  /// Probe the first kCrlfProbeBytes of the (decompressed) input; if a
  /// CRLF appears there, normalize the whole input. A file whose first
  /// CRLF hides beyond the probe window is treated as kKeep — the
  /// deterministic, documented trade for not touching every page of a
  /// mapped multi-GB file.
  kAuto,
  /// Never normalize; '\r' stays in the line bytes.
  kKeep,
  /// Always scan and normalize the whole input (forces an owned backing).
  kStrip,
};

/// Bytes CrlfPolicy::kAuto inspects at the head of the input.
inline constexpr size_t kCrlfProbeBytes = 64 * 1024;

struct InputOptions {
  MapMode mmap_mode = MapMode::kAuto;
  size_t mmap_threshold_bytes = Dataset::kDefaultMmapThreshold;
  CrlfPolicy crlf = CrlfPolicy::kAuto;
  /// Decompression-bomb guard: inflating past this many bytes is an error.
  /// 0 = unlimited.
  size_t max_inflate_bytes = 4ull * 1024 * 1024 * 1024;
};

/// True when `head` contains a "\r\n" (the kAuto trigger).
bool DetectCrlf(std::string_view head);

/// Rewrites every "\r\n" to "\n" in place; lone '\r' bytes (not followed by
/// '\n') are data and are left alone. Returns the number of CRLFs stripped.
size_t StripCrlfInPlace(std::string* text);

/// Rotation identity of a path: `app.log.3.gz` -> base "app.log", index 3;
/// `app.log.1` -> base "app.log", index 1; `app.log` (the live file) ->
/// base "app.log", index -1. Only a short (1-3 digit) pure-numeric final
/// component counts as a rotation index — `data.2023` keeps its own name.
/// A trailing ".gz" is transparent to the identity.
struct RotationKey {
  std::string base;  ///< logical path, rotation suffix and .gz stripped
  int index = -1;    ///< rotation generation; -1 = the live (newest) file
};
RotationKey RotationKeyFor(std::string_view path);

/// Sorts `paths` into chronological read order: grouped by rotation base
/// (bases in lexicographic order), and within a base highest index first —
/// `app.log.2.gz`, `app.log.1`, `app.log` — because rotation renames
/// upward, making the highest generation the oldest data.
void SortByRotation(std::vector<std::string>* paths);

/// Expands a comma-separated `--inputs` spec into concrete paths: each
/// token is a literal path or a glob pattern (`logs/app.log*`). The result
/// is rotation-sorted (SortByRotation). A token that names no existing
/// file and matches nothing is a NotFound error — a silently-empty input
/// set hides typos.
Result<std::vector<std::string>> ExpandInputSpec(std::string_view spec);

/// Builds a Dataset from in-memory bytes, applying the gzip sniff and the
/// CRLF policy. The entry point the fuzz harness drives: any byte string
/// must produce either a Dataset or a clean error Status.
Result<Dataset> DatasetFromBytes(std::string bytes,
                                 const InputOptions& options);

/// Opens one file through the resilient front-end. Plain files below the
/// hazards keep Dataset::FromFile's mmap fast path; gzip input and CRLF
/// normalization produce an owned backing.
Result<Dataset> OpenInput(const std::string& path,
                          const InputOptions& options);

/// Incremental line framer: the streaming (--follow) counterpart of the
/// batch front-end above. Bytes arrive in arbitrary chunks — split
/// mid-line, mid-UTF-8 sequence, or between the '\r' and '\n' of a CRLF
/// pair — and complete lines come out. Framing is a pure function of the
/// concatenated byte stream: the emitted line sequence is identical for
/// every chunk-delivery schedule, which is what the chunk-boundary
/// determinism gate in tests/stream_test.cc pins down.
///
/// CRLF policy matches the batch path exactly for every input: a "\r\n"
/// can only ever sit at a line boundary (the '\n' *is* the boundary), so
/// batch StripCrlfInPlace is equivalent to per-line strip-trailing-"\r",
/// and the kAuto probe ("a CRLF appears within the first kCrlfProbeBytes")
/// is equivalent to "a line terminated by CRLF completes with its '\n'
/// inside the probe window". Both are implemented in those per-line terms
/// here, so a finite corpus framed incrementally yields byte-identical
/// lines to OpenInput on the same bytes.
///
/// Oversized-line containment: with max_line_bytes set, a line whose
/// content grows past the cap stops accumulating — overflow bytes are
/// dropped until the terminator — and is delivered with oversized=true so
/// the caller can degrade it to noise without ever buffering an unbounded
/// carry. (Batch mode keeps the full line bytes and degrades it to noise
/// downstream; the truncation is the streaming-only trade for O(window)
/// memory on a hostile unterminated stream.)
class StreamFramer {
 public:
  /// `line` includes its trailing '\n' (the final unterminated carry is
  /// newline-terminated on Finish, mirroring Dataset's missing-final-
  /// newline append); the view is valid only during the callback.
  using LineFn = std::function<void(std::string_view line, bool oversized)>;

  explicit StreamFramer(CrlfPolicy crlf = CrlfPolicy::kAuto,
                        size_t max_line_bytes = 0);

  /// Feeds one chunk; emits every line it completes.
  void Feed(std::string_view bytes, const LineFn& on_line);

  /// End of stream: emits the non-empty partial-line carry as a final
  /// newline-terminated line. Feed must not be called afterwards.
  void Finish(const LineFn& on_line);

  uint64_t bytes_in() const { return bytes_in_; }
  uint64_t lines_out() const { return lines_out_; }
  uint64_t crlf_stripped() const { return crlf_stripped_; }
  uint64_t oversized_lines() const { return oversized_lines_; }
  size_t carry_bytes() const { return carry_.size(); }

 private:
  void EmitLine(std::string_view content_with_newline, bool carry_oversized,
                const LineFn& on_line);

  CrlfPolicy crlf_;
  size_t max_line_bytes_;
  std::string carry_;        ///< partial line awaiting its '\n'
  bool carry_oversized_ = false;
  std::string scratch_;      ///< CRLF-stripped emission buffer
  /// kAuto state: undecided until the probe window resolves it.
  bool crlf_decided_;
  bool crlf_strip_;
  uint64_t bytes_in_ = 0;
  uint64_t lines_out_ = 0;
  uint64_t crlf_stripped_ = 0;
  uint64_t oversized_lines_ = 0;
};

/// Non-blocking byte source for `--follow`: reads whatever `path` has
/// appended since the last call, detecting the two live-log hazards —
/// rotation (the name now points at a different inode: finish draining the
/// old file, then reopen at offset 0) and truncation (the file shrank
/// below our offset: a copytruncate-style rotation, reread from 0). The
/// caller owns the poll/sleep loop; Read never sleeps. Path "-" reads
/// stdin (no rotation or truncation there — EOF is final).
class FollowReader {
 public:
  explicit FollowReader(std::string path);
  ~FollowReader();

  FollowReader(const FollowReader&) = delete;
  FollowReader& operator=(const FollowReader&) = delete;

  struct ReadResult {
    size_t bytes = 0;      ///< appended to *out this call
    bool eof = false;      ///< no more data right now (poll again later)
    bool rotated = false;  ///< reopened a new inode at this path
    bool truncated = false;///< file shrank; restarted from offset 0
  };

  /// Appends at most `max_bytes` of new content to *out. `eof` means the
  /// source is drained *for now* — for a live file the caller sleeps and
  /// calls again; for stdin it is final. Errors (vanished file between
  /// polls is NOT an error — it reads as eof until the new file appears)
  /// are returned as a Status.
  Result<ReadResult> Read(std::string* out, size_t max_bytes);

  bool is_stdin() const { return stdin_; }
  const std::string& path() const { return path_; }

 private:
  Status Reopen();

  std::string path_;
  bool stdin_ = false;
  int fd_ = -1;
  uint64_t offset_ = 0;  ///< bytes consumed from the current fd
};

/// Opens several files as one logical dataset, stitched in the order given
/// (callers wanting chronological rotation order sort with SortByRotation
/// first — ExpandInputSpec already does). Every member is decompressed and
/// normalized like OpenInput and newline-terminated before concatenation.
/// A single path defers to OpenInput, preserving its mmap fast path.
Result<Dataset> OpenInputs(const std::vector<std::string>& paths,
                           const InputOptions& options);

}  // namespace datamaran

#endif  // DATAMARAN_CORE_INPUT_H_
