#ifndef DATAMARAN_REFINEMENT_REFINER_H_
#define DATAMARAN_REFINEMENT_REFINER_H_

#include <cstddef>
#include <vector>

#include "core/dataset.h"
#include "core/options.h"
#include "scoring/mdl.h"
#include "template/template.h"

/// Structure refinement (Section 4.3): applied to the top-M templates
/// during the evaluation step. Two techniques:
///
///  * Array unfolding (4.3.1): generation always produces *minimal*
///    templates, but e.g. a CSV file's "(F,)*F\n" is better expressed as the
///    plain struct "F,F,...,F\n" (each column typed separately). Full
///    unfolding replaces an array whose repetition count is constant with
///    that many copies; partial unfolding peels a fixed prefix and keeps the
///    array tail (for "regular fields followed by free text"). A variant is
///    kept only if it improves the regularity score.
///
///  * Structure shifting (4.3.2): a multi-line template that is a cyclic
///    line-rotation of the true one scores almost identically; among all
///    rotations we keep the one whose first occurrence in the sample is
///    earliest.

namespace datamaran {

/// Per-array-node repetition statistics observed in a sample.
struct ArrayCountStats {
  size_t occurrences = 0;
  size_t min_count = 0;
  size_t max_count = 0;
  bool constant() const { return occurrences > 0 && min_count == max_count; }
};

/// Collects repetition stats for every array node (pre-order index) by
/// parsing all matches of `st` in the live lines of `sample`. Counts come
/// straight from the flat kArrayCount event stream — no ParsedValue tree is
/// materialized.
/// With `constancy_only` the scan stops as soon as every array has shown
/// two distinct counts (non-constancy is sticky, so no further record can
/// make any array constant again) — or once a bounded probe of matched
/// records has gone by with a count never varying, which is taken as
/// constant without walking the rest of the sample. The probe is a ranking
/// heuristic, not a correctness risk: the only consumer
/// (AutoUnfoldConstantArrays) picks which *extra* variant gets scored, the
/// plain template is always scored alongside it, and every pipeline scores
/// through the same decision — so a wrong guess can only add a
/// poorly-scoring variant, never change what a score means. Callers that
/// read exact `min_count`/`max_count` over the whole sample (the Refiner's
/// partial unfolds) need the full scan.
std::vector<ArrayCountStats> CollectArrayCounts(
    const DatasetView& sample, const StructureTemplate& st,
    MatchEngine engine = MatchEngine::kCompiled,
    CharsetEngine charset_engine = CharsetEngine::kSimd,
    bool constancy_only = false);

/// Rewrites array node `array_index` (pre-order). If `keep_array` is false
/// the array is fully expanded into `reps` copies (reps >= 1); otherwise
/// `reps` copies of (elem sep) are peeled off in front of the retained
/// array. Returns an empty template if the index is out of range.
StructureTemplate UnfoldArray(const StructureTemplate& st, int array_index,
                              size_t reps, bool keep_array);

/// All cyclic line-rotations of a multi-line template, excluding the
/// original. Empty for single-line templates.
std::vector<StructureTemplate> LineRotations(const StructureTemplate& st);

/// View-line index of the first match of `st` in `sample`, or SIZE_MAX.
size_t FirstOccurrenceLine(const DatasetView& sample,
                           const StructureTemplate& st,
                           MatchEngine engine = MatchEngine::kCompiled,
                           CharsetEngine charset_engine = CharsetEngine::kSimd);

/// Unfolds every array whose observed repetition count is constant across
/// the sample (iterated up to `max_passes`). A constant-count array is
/// semantically a struct (the paper's CSV example in Section 4.3.1), and
/// its unfolded form exposes per-column types; scoring candidates in this
/// form keeps the evaluation ranking honest. Returns the input when no
/// array qualifies or the unfold fails validation.
StructureTemplate AutoUnfoldConstantArrays(
    const DatasetView& sample, const StructureTemplate& st, int max_passes = 4,
    MatchEngine engine = MatchEngine::kCompiled,
    CharsetEngine charset_engine = CharsetEngine::kSimd);

class Refiner {
 public:
  /// Refinement reads `sample` through the view (cheap copy; the backing
  /// dataset must outlive the refiner).
  Refiner(DatasetView sample, const RegularityScorer* scorer,
          const DatamaranOptions* options);

  /// Convenience: all lines of `sample` (must outlive the refiner).
  Refiner(const Dataset* sample, const RegularityScorer* scorer,
          const DatamaranOptions* options)
      : Refiner(DatasetView(*sample), scorer, options) {}

  struct Refined {
    StructureTemplate st;
    double score = 0;
  };

  /// Runs the unfold-until-no-improvement loop followed by structure
  /// shifting; returns the refined template and its score.
  Refined Refine(const StructureTemplate& st) const;

 private:
  DatasetView sample_;
  const RegularityScorer* scorer_;
  const DatamaranOptions* options_;
};

}  // namespace datamaran

#endif  // DATAMARAN_REFINEMENT_REFINER_H_
