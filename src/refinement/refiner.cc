#include "refinement/refiner.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "template/dispatch.h"
#include "util/logging.h"

namespace datamaran {

namespace {

/// Maps every array node to its pre-order index (the numbering UnfoldArray
/// targets: a node before its element subtree, struct children in order).
void IndexArrays(const TemplateNode& node, int* next,
                 std::unordered_map<const TemplateNode*, int>* index) {
  if (node.kind == NodeKind::kArray) {
    index->emplace(&node, (*next)++);
  }
  for (const auto& child : node.children) {
    IndexArrays(*child, next, index);
  }
}

int CountArrays(const TemplateNode& node) {
  int n = 0;
  if (node.kind == NodeKind::kArray) ++n;
  for (const auto& c : node.children) n += CountArrays(*c);
  return n;
}

/// Clones `node`, replacing the array with pre-order index `target` using
/// the unfold parameters. Appends the resulting node(s) to `out` (an unfold
/// yields a sequence, which the caller splices).
void CloneUnfolding(const TemplateNode& node, int target, size_t reps,
                    bool keep_array, int* array_idx,
                    std::vector<std::unique_ptr<TemplateNode>>* out) {
  if (node.kind == NodeKind::kArray) {
    int idx = (*array_idx)++;
    if (idx == target) {
      const TemplateNode& elem = *node.children[0];
      size_t copies = keep_array ? reps : reps - 1;
      for (size_t r = 0; r < copies; ++r) {
        out->push_back(elem.Clone());
        out->push_back(TemplateNode::Char(node.ch));
      }
      if (keep_array) {
        out->push_back(node.Clone());
        // Do not descend: nested arrays keep their structure. Advance the
        // index counter past the subtree.
        *array_idx += CountArrays(elem);
      } else {
        out->push_back(elem.Clone());
        *array_idx += CountArrays(elem);
      }
      return;
    }
    // A different array: clone it, recursing into the element.
    std::vector<std::unique_ptr<TemplateNode>> elem_out;
    CloneUnfolding(*node.children[0], target, reps, keep_array, array_idx,
                   &elem_out);
    std::unique_ptr<TemplateNode> elem =
        elem_out.size() == 1 ? std::move(elem_out[0])
                             : TemplateNode::Struct(std::move(elem_out));
    out->push_back(TemplateNode::Array(std::move(elem), node.ch));
    return;
  }
  if (node.kind == NodeKind::kStruct) {
    std::vector<std::unique_ptr<TemplateNode>> children;
    for (const auto& c : node.children) {
      CloneUnfolding(*c, target, reps, keep_array, array_idx, &children);
    }
    out->push_back(TemplateNode::Struct(std::move(children)));
    return;
  }
  out->push_back(node.Clone());
}

}  // namespace

std::vector<ArrayCountStats> CollectArrayCounts(const DatasetView& sample,
                                                const StructureTemplate& st,
                                                MatchEngine engine,
                                                CharsetEngine charset_engine,
                                                bool constancy_only) {
  std::vector<ArrayCountStats> stats(
      static_cast<size_t>(CountArrays(st.root())));
  if (stats.empty()) return stats;
  std::unordered_map<const TemplateNode*, int> array_index;
  int next = 0;
  IndexArrays(st.root(), &next, &array_index);
  const RecordMatcher matcher(&st, engine, charset_engine);
  std::vector<MatchEvent> events;
  std::string scratch;
  size_t nonconstant = 0;
  size_t matched = 0;
  // Constancy-only callers decide from a bounded probe: past this many
  // matched records with a count that never varied, the count is taken as
  // constant without walking the rest of the sample — and past this many
  // parse *attempts*, the scan stops outright, so a template that matches
  // almost nothing cannot spend a full sample walk discovering that. See
  // the header contract for why this is a ranking heuristic, not a
  // correctness risk.
  constexpr size_t kConstancyProbe = 16;
  constexpr size_t kConstancyTries = 128;
  size_t tries = 0;
  size_t li = 0;
  const size_t n = sample.line_count();
  const size_t span = static_cast<size_t>(std::max(1, st.line_span()));
  while (li < n) {
    const unsigned char first =
        static_cast<unsigned char>(sample.line_with_newline(li).front());
    if (!matcher.CanStartWith(first)) {
      ++li;
      continue;
    }
    if (constancy_only && ++tries > kConstancyTries) break;
    const DatasetView::SpanText win = sample.ResolveSpan(li, span, &scratch);
    auto parsed = matcher.ParseFlat(win.text, win.pos, &events);
    if (parsed.has_value()) {
      ++matched;
      // Every array instantiation — outer arrays once per record, nested
      // arrays once per enclosing repetition — emits one kArrayCount event,
      // exactly the visits the old ParsedValue walk made.
      for (const MatchEvent& ev : events) {
        if (ev.kind != MatchEvent::kArrayCount) continue;
        ArrayCountStats& s =
            stats[static_cast<size_t>(array_index.at(ev.node))];
        if (s.occurrences == 0) {
          s.min_count = s.max_count = ev.count;
        } else if (s.min_count == s.max_count &&
                   ev.count != s.min_count) {
          s.min_count = std::min(s.min_count, ev.count);
          s.max_count = std::max(s.max_count, ev.count);
          ++nonconstant;  // constant -> non-constant, a one-way transition
        } else {
          s.min_count = std::min(s.min_count, ev.count);
          s.max_count = std::max(s.max_count, ev.count);
        }
        s.occurrences++;
      }
      if (constancy_only &&
          (nonconstant == stats.size() || matched >= kConstancyProbe)) {
        break;
      }
      li += span;
    } else {
      ++li;
    }
  }
  return stats;
}

StructureTemplate UnfoldArray(const StructureTemplate& st, int array_index,
                              size_t reps, bool keep_array) {
  if (reps == 0) return StructureTemplate();
  int idx = 0;
  std::vector<std::unique_ptr<TemplateNode>> out;
  CloneUnfolding(st.root(), array_index, reps, keep_array, &idx, &out);
  if (array_index >= idx) return StructureTemplate();  // index out of range
  std::unique_ptr<TemplateNode> root =
      out.size() == 1 ? std::move(out[0])
                      : TemplateNode::Struct(std::move(out));
  return StructureTemplate(std::move(root));
}

std::vector<StructureTemplate> LineRotations(const StructureTemplate& st) {
  std::vector<StructureTemplate> rotations;
  if (st.line_span() < 2) return rotations;
  // Split top-level children into line groups ending at '\n' literals.
  const TemplateNode& root = st.root();
  if (root.kind != NodeKind::kStruct) return rotations;
  std::vector<std::vector<const TemplateNode*>> groups;
  std::vector<const TemplateNode*> current;
  for (const auto& child : root.children) {
    current.push_back(child.get());
    if (child->kind == NodeKind::kChar && child->ch == '\n') {
      groups.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) return rotations;  // malformed (no trailing newline)
  if (groups.size() < 2) return rotations;
  for (size_t r = 1; r < groups.size(); ++r) {
    std::vector<std::unique_ptr<TemplateNode>> children;
    for (size_t g = 0; g < groups.size(); ++g) {
      for (const TemplateNode* n : groups[(r + g) % groups.size()]) {
        children.push_back(n->Clone());
      }
    }
    rotations.emplace_back(TemplateNode::Struct(std::move(children)));
  }
  return rotations;
}

size_t FirstOccurrenceLine(const DatasetView& sample,
                           const StructureTemplate& st, MatchEngine engine,
                           CharsetEngine charset_engine) {
  const RecordMatcher matcher(&st, engine, charset_engine);
  std::string scratch;
  const size_t span = static_cast<size_t>(std::max(1, st.line_span()));
  for (size_t li = 0; li < sample.line_count(); ++li) {
    const unsigned char first =
        static_cast<unsigned char>(sample.line_with_newline(li).front());
    if (!matcher.CanStartWith(first)) continue;
    const DatasetView::SpanText win = sample.ResolveSpan(li, span, &scratch);
    if (matcher.TryMatch(win.text, win.pos).has_value()) return li;
  }
  return std::numeric_limits<size_t>::max();
}

StructureTemplate AutoUnfoldConstantArrays(const DatasetView& sample,
                                           const StructureTemplate& st,
                                           int max_passes, MatchEngine engine,
                                           CharsetEngine charset_engine) {
  StructureTemplate current = st;
  for (int pass = 0; pass < max_passes; ++pass) {
    auto counts = CollectArrayCounts(sample, current, engine, charset_engine,
                                     /*constancy_only=*/true);
    bool changed = false;
    for (int a = 0; a < static_cast<int>(counts.size()); ++a) {
      const ArrayCountStats& s = counts[static_cast<size_t>(a)];
      if (!s.constant() || s.min_count < 2 || s.min_count > 64) continue;
      StructureTemplate unfolded =
          UnfoldArray(current, a, s.min_count, /*keep_array=*/false);
      if (unfolded.empty() || !unfolded.Validate().ok()) continue;
      current = std::move(unfolded);
      changed = true;
      break;  // indices shifted; recollect counts
    }
    if (!changed) break;
  }
  return current;
}

Refiner::Refiner(DatasetView sample, const RegularityScorer* scorer,
                 const DatamaranOptions* options)
    : sample_(std::move(sample)), scorer_(scorer), options_(options) {}

Refiner::Refined Refiner::Refine(const StructureTemplate& st) const {
  Refined current{st, scorer_->Score(sample_, st)};

  // --- Array unfolding: repeat until no variant improves the score. ---
  bool improved = true;
  while (improved) {
    improved = false;
    auto counts = CollectArrayCounts(sample_, current.st,
                                     options_->match_engine,
                                     options_->charset_engine);
    for (int a = 0; a < static_cast<int>(counts.size()) && !improved; ++a) {
      const ArrayCountStats& s = counts[static_cast<size_t>(a)];
      if (s.occurrences == 0) continue;
      std::vector<std::pair<size_t, bool>> variants;  // (reps, keep_array)
      if (s.constant() && s.min_count >= 2 &&
          s.min_count <= static_cast<size_t>(options_->max_unfold_tries) * 4) {
        variants.emplace_back(s.min_count, false);  // full unfold
      }
      size_t max_prefix = s.min_count > 0 ? s.min_count - 1 : 0;
      max_prefix = std::min(
          max_prefix, static_cast<size_t>(options_->max_unfold_tries));
      for (size_t p = 1; p <= max_prefix; ++p) {
        variants.emplace_back(p, true);  // partial unfold
      }
      for (const auto& [reps, keep] : variants) {
        StructureTemplate variant = UnfoldArray(current.st, a, reps, keep);
        if (variant.empty() || !variant.Validate().ok()) continue;
        // Bounded scoring is exact here: acceptance needs a score strictly
        // below current.score, and a pruned evaluation proves the variant's
        // total is strictly above it — rejected either way.
        std::optional<double> score =
            options_->enable_mdl_pruning
                ? scorer_->ScoreBounded(sample_, variant, current.score)
                : std::optional<double>(scorer_->Score(sample_, variant));
        if (score.has_value() && *score < current.score) {
          DM_LOG(kInfo, "refine: unfold a=%d reps=%zu keep=%d: %.0f -> %.0f",
                 a, reps, keep ? 1 : 0, current.score, *score);
          current.st = std::move(variant);
          current.score = *score;
          improved = true;
          break;
        }
      }
    }
  }

  // --- Structure shifting: earliest first occurrence wins. ---
  auto rotations = LineRotations(current.st);
  if (!rotations.empty()) {
    size_t best_line =
        FirstOccurrenceLine(sample_, current.st, options_->match_engine,
                            options_->charset_engine);
    const StructureTemplate* best = nullptr;
    for (const StructureTemplate& rot : rotations) {
      size_t line = FirstOccurrenceLine(sample_, rot, options_->match_engine,
                                        options_->charset_engine);
      if (line < best_line) {
        best_line = line;
        best = &rot;
      }
    }
    if (best != nullptr) {
      DM_LOG(kInfo, "refine: shifted to rotation first seen at line %zu",
             best_line);
      current.st = *best;
      current.score = scorer_->Score(sample_, current.st);
    }
  }
  return current;
}

}  // namespace datamaran
