#ifndef DATAMARAN_EVALHARNESS_WRANGLE_H_
#define DATAMARAN_EVALHARNESS_WRANGLE_H_

#include <optional>
#include <string>
#include <vector>

#include "extraction/relational.h"

/// The four Excel wrangling operations of the user study (Section 6.1) as
/// deterministic table transforms, used by the Figure 18 surrogate:
///
///   Concatenate — merge columns (with constant literal glue) into one.
///   Split       — split one column into parts on a delimiter.
///   FlashFill   — derive a column from one source column; modeled as the
///                 constant-prefix/suffix extraction it learns from a
///                 couple of examples (a Trim, in Section 9.3 terms).
///   Offset      — reshape a line-per-row table into k columns, one per
///                 line offset (the "copy contents every K rows" formula).
///
/// Delete/copy/paste are free, matching the paper ("we ignore the simple
/// operations like Delete, Copy, Paste").

namespace datamaran {

/// Appends a column named `name` = glue[0] col0 glue[1] col1 ... glue[n].
/// Returns false if any index is out of range.
bool OpConcatenate(Table* table, const std::vector<size_t>& columns,
                   const std::vector<std::string>& glues,
                   const std::string& name);

/// Splits column `col` on `delim`, appending the parts as new columns
/// part0..partN (rows with fewer parts get empty cells).
bool OpSplit(Table* table, size_t col, char delim);

/// FlashFill-style extraction: new column = cell minus `pre_len` leading
/// and `suf_len` trailing characters.
bool OpFlashFill(Table* table, size_t col, size_t pre_len, size_t suf_len,
                 const std::string& name);

/// Offset-reshape: input must have exactly one column and row count
/// divisible by `period`; produces a table with `period` columns where row
/// r column j = input row r*period + j.
std::optional<Table> OpOffsetReshape(const Table& table, size_t period);

/// True if `table` contains a column whose cells equal `cells` exactly.
std::optional<size_t> FindColumn(const Table& table,
                                 const std::vector<std::string>& cells);

}  // namespace datamaran

#endif  // DATAMARAN_EVALHARNESS_WRANGLE_H_
