#include "evalharness/wrangle_search.h"

#include <algorithm>

#include "evalharness/wrangle.h"
#include "util/strings.h"

namespace datamaran {

namespace {

constexpr std::string_view kSplitDelims = " ,.;:|/[]\"=<>@";
constexpr int kMaxSplits = 4;
constexpr size_t kMaxPieces = 8;

std::vector<std::string> TargetColumn(const Table& target, size_t c) {
  std::vector<std::string> cells;
  cells.reserve(target.rows.size());
  for (const auto& row : target.rows) cells.push_back(row[c]);
  return cells;
}

/// Longest common prefix of the remaining strings (capped).
std::string CommonPrefix(const std::vector<std::string>& remaining) {
  if (remaining.empty()) return "";
  std::string prefix = remaining[0].substr(0, 24);
  for (const std::string& s : remaining) {
    size_t k = 0;
    while (k < prefix.size() && k < s.size() && prefix[k] == s[k]) ++k;
    prefix.resize(k);
    if (prefix.empty()) break;
  }
  return prefix;
}

/// Tries to realize `cells` from the columns of `table` as
/// glue0 col_a glue1 col_b ... glueN with constant glue strings. On success
/// applies one Concatenate and returns the op count (pieces - 1, >= 1).
int TryConcat(Table* table, const std::vector<std::string>& cells,
              const std::string& name, std::vector<std::string>* steps) {
  if (table->rows.size() != cells.size() || cells.empty()) return -1;
  std::vector<std::string> remaining = cells;
  std::vector<size_t> pieces;
  std::vector<std::string> glues;

  while (pieces.size() < kMaxPieces) {
    std::string lcp = CommonPrefix(remaining);
    // Find a column that continues every row after some constant glue.
    size_t best_col = table->columns.size();
    size_t best_glue = 0;
    size_t best_gain = 0;
    for (size_t glue_len = 0; glue_len <= lcp.size(); ++glue_len) {
      for (size_t c = 0; c < table->columns.size(); ++c) {
        bool ok = true;
        size_t gain = 0;
        for (size_t r = 0; r < remaining.size(); ++r) {
          std::string_view rest =
              std::string_view(remaining[r]).substr(glue_len);
          const std::string& v = table->rows[r][c];
          if (v.empty() || !StartsWith(rest, v)) {
            ok = false;
            break;
          }
          gain += v.size();
        }
        if (ok && gain + glue_len * remaining.size() > best_gain) {
          best_gain = gain + glue_len * remaining.size();
          best_col = c;
          best_glue = glue_len;
        }
      }
    }
    if (best_col == table->columns.size()) break;
    pieces.push_back(best_col);
    glues.push_back(lcp.substr(0, best_glue));
    for (size_t r = 0; r < remaining.size(); ++r) {
      remaining[r] = remaining[r].substr(best_glue +
                                         table->rows[r][best_col].size());
    }
  }
  if (pieces.empty()) return -1;
  // The leftover must be one more constant glue.
  for (size_t r = 1; r < remaining.size(); ++r) {
    if (remaining[r] != remaining[0]) return -1;
  }
  glues.push_back(remaining.empty() ? "" : remaining[0]);
  if (!OpConcatenate(table, pieces, glues, name)) return -1;
  // Verify the executed op actually produced the target column.
  if (table->rows.empty() ||
      table->rows[0].back() != cells[0]) {
    return -1;
  }
  for (size_t r = 0; r < cells.size(); ++r) {
    if (table->rows[r].back() != cells[r]) return -1;
  }
  steps->push_back(StrFormat("Concatenate %zu pieces -> %s", pieces.size(),
                             name.c_str()));
  return static_cast<int>(pieces.size()) - 1 > 0
             ? static_cast<int>(pieces.size()) - 1
             : 1;
}

/// Tries FlashFill (constant prefix/suffix extraction) from any column.
int TryFlashFill(Table* table, const std::vector<std::string>& cells,
                 const std::string& name, std::vector<std::string>* steps) {
  if (table->rows.size() != cells.size() || cells.empty()) return -1;
  for (size_t c = 0; c < table->columns.size(); ++c) {
    const std::string& cell0 = table->rows[0][c];
    size_t at = cell0.find(cells[0]);
    if (at == std::string::npos) continue;
    size_t pre = at;
    if (cell0.size() < pre + cells[0].size()) continue;
    size_t suf = cell0.size() - pre - cells[0].size();
    bool ok = true;
    for (size_t r = 0; r < cells.size(); ++r) {
      const std::string& cell = table->rows[r][c];
      if (cell.size() < pre + suf ||
          cell.substr(pre, cell.size() - pre - suf) != cells[r]) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (!OpFlashFill(table, c, pre, suf, name)) continue;
    steps->push_back(StrFormat("FlashFill trim(%zu,%zu) %s -> %s", pre, suf,
                               table->columns[c].c_str(), name.c_str()));
    return 1;
  }
  return -1;
}

/// Builds one target column in any of the row-aligned tables; returns the
/// op cost or -1.
int BuildColumn(std::vector<Table*>* tables,
                const std::vector<std::string>& cells, const std::string& name,
                std::vector<std::string>* steps) {
  for (Table* t : *tables) {
    if (t->rows.size() != cells.size()) continue;
    if (FindColumn(*t, cells).has_value()) return 0;  // already there
  }
  for (Table* t : *tables) {
    if (t->rows.size() != cells.size()) continue;
    int c = TryFlashFill(t, cells, name, steps);
    if (c >= 0) return c;
    c = TryConcat(t, cells, name, steps);
    if (c >= 0) return c;
  }
  return -1;
}

}  // namespace

WranglePlan PlanTransformation(std::vector<Table> start, const Table& target) {
  WranglePlan plan;
  const size_t target_rows = target.rows.size();

  // --- Phase 1: row alignment (Offset for multi-line records). ---
  std::vector<Table> owned = std::move(start);
  std::vector<Table*> aligned;
  for (Table& t : owned) {
    if (t.rows.size() == target_rows) aligned.push_back(&t);
  }
  if (aligned.empty()) {
    bool reshaped = false;
    for (Table& t : owned) {
      if (t.columns.size() == 1 && target_rows > 0 &&
          t.rows.size() % target_rows == 0 &&
          t.rows.size() / target_rows > 1) {
        size_t period = t.rows.size() / target_rows;
        auto r = OpOffsetReshape(t, period);
        if (r.has_value()) {
          plan.ops += static_cast<int>(period);  // one formula per offset
          plan.steps.push_back(
              StrFormat("Offset reshape period=%zu on %s", period,
                        t.name.c_str()));
          owned.push_back(std::move(*r));
          aligned.push_back(&owned.back());
          reshaped = true;
          break;
        }
      }
    }
    if (!reshaped) {
      plan.failure_reason =
          "no table row-aligns with the records and Offset is inapplicable "
          "(noise / incomplete records / rows split across files)";
      return plan;
    }
  }

  // --- Phase 2: build every target column, inserting Splits as needed. ---
  int splits_used = 0;
  for (size_t c = 0; c < target.columns.size(); ++c) {
    std::vector<std::string> cells = TargetColumn(target, c);
    int cost = BuildColumn(&aligned, cells, target.columns[c], &plan.steps);
    while (cost < 0 && splits_used < kMaxSplits) {
      // Split the widest column of the first aligned table on the first
      // delimiter that actually occurs in it.
      bool split_done = false;
      for (Table* t : aligned) {
        size_t ncols = t->columns.size();
        for (size_t col = 0; col < ncols && !split_done; ++col) {
          for (char delim : kSplitDelims) {
            bool occurs = false;
            for (const auto& row : t->rows) {
              if (row[col].find(delim) != std::string::npos) {
                occurs = true;
                break;
              }
            }
            if (!occurs) continue;
            // Avoid re-splitting derived part columns endlessly.
            if (t->columns[col].find("_part") != std::string::npos) continue;
            if (OpSplit(t, col, delim)) {
              plan.steps.push_back(StrFormat("Split %s on '%c'",
                                             t->columns[col].c_str(), delim));
              ++splits_used;
              split_done = true;
              break;
            }
          }
        }
        if (split_done) break;
      }
      if (!split_done) break;
      plan.ops += 1;
      cost = BuildColumn(&aligned, cells, target.columns[c], &plan.steps);
    }
    if (cost < 0) {
      plan.failure_reason = StrFormat(
          "column '%s' cannot be reconstructed with "
          "Concatenate/Split/FlashFill/Offset", target.columns[c].c_str());
      return plan;
    }
    plan.ops += cost;
  }
  plan.feasible = true;
  return plan;
}

}  // namespace datamaran
