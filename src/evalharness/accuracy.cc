#include "evalharness/accuracy.h"

#include "core/datamaran.h"
#include "recordbreaker/recordbreaker.h"
#include "util/timer.h"

namespace datamaran {

DatasetOutcome EvaluateDataset(const GeneratedDataset& dataset,
                               const DatamaranOptions& base_options,
                               const EvalTools& tools) {
  DatasetOutcome outcome;
  outcome.name = dataset.name;
  outcome.label = dataset.label;
  outcome.expect_hard = dataset.expect_hard;

  if (tools.run_exhaustive) {
    DatamaranOptions opts = base_options;
    opts.search = CharsetSearch::kExhaustive;
    Datamaran dm(opts);
    Timer timer;
    PipelineResult result = dm.ExtractText(std::string(dataset.text));
    outcome.dm_exhaustive_seconds = timer.Seconds();
    SuccessReport report =
        CheckExtraction(dataset, UnitsFromPipeline(result, dataset.text));
    outcome.dm_exhaustive = report.success;
    outcome.dm_exhaustive_reason = report.failure_reason;
  }
  if (tools.run_greedy) {
    DatamaranOptions opts = base_options;
    opts.search = CharsetSearch::kGreedy;
    Datamaran dm(opts);
    Timer timer;
    PipelineResult result = dm.ExtractText(std::string(dataset.text));
    outcome.dm_greedy_seconds = timer.Seconds();
    SuccessReport report =
        CheckExtraction(dataset, UnitsFromPipeline(result, dataset.text));
    outcome.dm_greedy = report.success;
    outcome.dm_greedy_reason = report.failure_reason;
  }
  if (tools.run_recordbreaker) {
    RecordBreaker rb;
    Dataset data{std::string(dataset.text)};
    RecordBreakerResult result = rb.Extract(data);
    SuccessReport report =
        CheckExtraction(dataset, UnitsFromRecordBreaker(result, data));
    outcome.rb = report.success;
    outcome.rb_reason = report.failure_reason;
  }
  return outcome;
}

std::vector<LabelAccuracy> Aggregate(const std::vector<DatasetOutcome>& runs) {
  std::vector<LabelAccuracy> by_label(5);
  for (const DatasetOutcome& run : runs) {
    LabelAccuracy& acc = by_label[static_cast<size_t>(run.label)];
    acc.total++;
    if (run.dm_exhaustive) acc.dm_exhaustive++;
    if (run.dm_greedy) acc.dm_greedy++;
    if (run.rb) acc.rb++;
  }
  return by_label;
}

}  // namespace datamaran
