#include "evalharness/wrangle.h"

#include <algorithm>

#include "util/strings.h"

namespace datamaran {

bool OpConcatenate(Table* table, const std::vector<size_t>& columns,
                   const std::vector<std::string>& glues,
                   const std::string& name) {
  if (glues.size() != columns.size() + 1) return false;
  for (size_t c : columns) {
    if (c >= table->columns.size()) return false;
  }
  table->columns.push_back(name);
  for (auto& row : table->rows) {
    std::string cell = glues[0];
    for (size_t i = 0; i < columns.size(); ++i) {
      cell += row[columns[i]];
      cell += glues[i + 1];
    }
    row.push_back(std::move(cell));
  }
  return true;
}

bool OpSplit(Table* table, size_t col, char delim) {
  if (col >= table->columns.size()) return false;
  size_t max_parts = 1;
  // Own the parts: the views Split returns point into the row's cell
  // strings, which push_back below may reallocate (SSO cells move).
  std::vector<std::vector<std::string>> split_rows;
  split_rows.reserve(table->rows.size());
  for (const auto& row : table->rows) {
    std::vector<std::string> parts;
    for (std::string_view part : Split(row[col], delim)) {
      parts.emplace_back(part);
    }
    max_parts = std::max(max_parts, parts.size());
    split_rows.push_back(std::move(parts));
  }
  for (size_t p = 0; p < max_parts; ++p) {
    table->columns.push_back(
        StrFormat("%s_part%zu", table->columns[col].c_str(), p));
  }
  for (size_t r = 0; r < table->rows.size(); ++r) {
    for (size_t p = 0; p < max_parts; ++p) {
      table->rows[r].push_back(p < split_rows[r].size()
                                   ? std::move(split_rows[r][p])
                                   : std::string());
    }
  }
  return true;
}

bool OpFlashFill(Table* table, size_t col, size_t pre_len, size_t suf_len,
                 const std::string& name) {
  if (col >= table->columns.size()) return false;
  table->columns.push_back(name);
  for (auto& row : table->rows) {
    const std::string& cell = row[col];
    std::string out;
    if (cell.size() >= pre_len + suf_len) {
      out = cell.substr(pre_len, cell.size() - pre_len - suf_len);
    }
    row.push_back(std::move(out));
  }
  return true;
}

std::optional<Table> OpOffsetReshape(const Table& table, size_t period) {
  if (table.columns.size() != 1 || period == 0 ||
      table.rows.size() % period != 0) {
    return std::nullopt;
  }
  Table out;
  out.name = table.name + "_reshaped";
  for (size_t j = 0; j < period; ++j) {
    out.columns.push_back(StrFormat("line%zu", j));
  }
  for (size_t r = 0; r < table.rows.size(); r += period) {
    std::vector<std::string> row;
    for (size_t j = 0; j < period; ++j) row.push_back(table.rows[r + j][0]);
    out.rows.push_back(std::move(row));
  }
  return out;
}

std::optional<size_t> FindColumn(const Table& table,
                                 const std::vector<std::string>& cells) {
  if (table.rows.size() != cells.size()) return std::nullopt;
  for (size_t c = 0; c < table.columns.size(); ++c) {
    bool match = true;
    for (size_t r = 0; r < table.rows.size(); ++r) {
      if (table.rows[r][c] != cells[r]) {
        match = false;
        break;
      }
    }
    if (match) return c;
  }
  return std::nullopt;
}

}  // namespace datamaran
