#ifndef DATAMARAN_EVALHARNESS_CRITERION_H_
#define DATAMARAN_EVALHARNESS_CRITERION_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/datamaran.h"
#include "datagen/spec.h"
#include "recordbreaker/recordbreaker.h"

/// The extraction success criterion of Sections 5.1 / 9.3.
///
/// An extraction succeeds iff
///  (a) every ground-truth record's boundary is exactly one extracted
///      record's boundary, and the ground-truth type -> extracted type
///      mapping is an injective function (merging two record types, or
///      splitting one type across templates, loses information); and
///  (b) every intended extraction target can be reconstructed from the
///      extracted fields with the Section 9.3 relational operators: the
///      target interval must decompose into complete extracted units plus
///      gap strings that are constant across all records of the type
///      (Concat/GroupConcat supply the units, Append/Trim the constant
///      glue; splitting a unit is not allowed, which rejects extractions
///      that lump a target together with other text).
///
/// An extracted "unit" is a top-level field span, or the full contiguous
/// span of an array (whose denormalized cell reproduces that text exactly).

namespace datamaran {

/// Tool-agnostic record representation fed to the checker.
struct RecordUnits {
  int type = 0;
  size_t begin = 0;  ///< includes the trailing '\n'
  size_t end = 0;
  std::vector<std::pair<size_t, size_t>> units;
};

struct SuccessReport {
  bool success = false;
  bool boundaries_ok = false;
  bool targets_ok = false;
  std::string failure_reason;
};

/// Evaluates extraction output against one ground-truth segmentation.
SuccessReport CheckAgainstTruth(const std::vector<GroundTruthRecord>& truth,
                                const std::vector<RecordUnits>& extracted,
                                std::string_view text);

/// Evaluates against all alternatives of the dataset; success if any
/// alternative succeeds. No-structure datasets report success when nothing
/// (or only spurious noise templates) was extracted.
SuccessReport CheckExtraction(const GeneratedDataset& dataset,
                              const std::vector<RecordUnits>& extracted);

/// Converts a Datamaran pipeline result into checker records.
std::vector<RecordUnits> UnitsFromPipeline(const PipelineResult& result,
                                           std::string_view text);

/// Converts a RecordBreaker result into checker records (line-granularity
/// records with value-token units).
std::vector<RecordUnits> UnitsFromRecordBreaker(
    const RecordBreakerResult& result, const Dataset& data);

}  // namespace datamaran

#endif  // DATAMARAN_EVALHARNESS_CRITERION_H_
