#ifndef DATAMARAN_EVALHARNESS_WRANGLE_SEARCH_H_
#define DATAMARAN_EVALHARNESS_WRANGLE_SEARCH_H_

#include <string>
#include <vector>

#include "extraction/relational.h"

/// Plans the shortest wrangling-operation sequence that transforms a
/// starting extraction (one or more tables) into the target table — the
/// computational surrogate for a user-study participant (Figure 18). The
/// planner mirrors the strategies participants used:
///
///  1. Align rows: if no table has one row per target record, try the
///     Offset reshape (cost = record span, one formula per line offset);
///     aperiodic inputs (noise, interleaving, rows split across files)
///     make Offset inapplicable — the plan fails, like participants did.
///  2. Build each target column: an exact existing column costs 0;
///     a constant-trim FlashFill costs 1; concatenating k pieces with
///     constant glue costs k-1 Concatenate steps; a Split (one per
///     delimiter) may be inserted to expose pieces.
///
/// Every returned plan is *executed* against the real operation
/// implementations and verified to reproduce the target, so reported op
/// counts are grounded, not estimated.

namespace datamaran {

struct WranglePlan {
  bool feasible = false;
  int ops = 0;
  std::vector<std::string> steps;
  std::string failure_reason;
};

/// Computes and verifies a plan from `start` tables to `target`.
WranglePlan PlanTransformation(std::vector<Table> start, const Table& target);

}  // namespace datamaran

#endif  // DATAMARAN_EVALHARNESS_WRANGLE_SEARCH_H_
