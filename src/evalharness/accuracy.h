#ifndef DATAMARAN_EVALHARNESS_ACCURACY_H_
#define DATAMARAN_EVALHARNESS_ACCURACY_H_

#include <string>
#include <vector>

#include "core/options.h"
#include "datagen/spec.h"
#include "evalharness/criterion.h"

/// Corpus-level accuracy evaluation: runs Datamaran (exhaustive and/or
/// greedy) and RecordBreaker over generated datasets and scores each with
/// the Section 5.1 success criterion. Powers the Figure 17b and Table 5
/// benchmarks.

namespace datamaran {

struct DatasetOutcome {
  std::string name;
  DatasetLabel label = DatasetLabel::kSingleNonInterleaved;
  bool expect_hard = false;
  bool dm_exhaustive = false;
  bool dm_greedy = false;
  bool rb = false;
  std::string dm_exhaustive_reason;
  std::string dm_greedy_reason;
  std::string rb_reason;
  double dm_exhaustive_seconds = 0;
  double dm_greedy_seconds = 0;
};

struct EvalTools {
  bool run_exhaustive = true;
  bool run_greedy = false;
  bool run_recordbreaker = false;
};

/// Runs the selected tools on one dataset.
DatasetOutcome EvaluateDataset(const GeneratedDataset& dataset,
                               const DatamaranOptions& base_options,
                               const EvalTools& tools);

/// Per-label success counters.
struct LabelAccuracy {
  int total = 0;
  int dm_exhaustive = 0;
  int dm_greedy = 0;
  int rb = 0;
};

/// Aggregates outcomes by label (index by DatasetLabel cast to int).
std::vector<LabelAccuracy> Aggregate(const std::vector<DatasetOutcome>& runs);

}  // namespace datamaran

#endif  // DATAMARAN_EVALHARNESS_ACCURACY_H_
