#include "evalharness/criterion.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/strings.h"

namespace datamaran {

namespace {

/// How one target decomposes into a record's units.
struct TargetSignature {
  bool valid = false;
  size_t pre_len = 0, suf_len = 0;  // constant-length edge trims
  std::vector<size_t> unit_ordinals;
  std::vector<std::string> gaps;

  bool operator==(const TargetSignature& other) const {
    return valid == other.valid && pre_len == other.pre_len &&
           suf_len == other.suf_len && unit_ordinals == other.unit_ordinals &&
           gaps == other.gaps;
  }
};

TargetSignature DecomposeTarget(const TargetSpan& target,
                                const RecordUnits& record,
                                std::string_view text) {
  // The target decomposes into the ordered units overlapping it. Units
  // strictly inside contribute whole (Concat); the first/last unit may
  // cross the target boundary as long as its overhang length is constant
  // across records (Trim); between-unit gaps must be constant strings
  // (Append). Constancy is enforced by signature equality at the caller.
  TargetSignature sig;
  size_t pos = target.begin;
  bool saw_right_cross = false;
  for (size_t u = 0; u < record.units.size(); ++u) {
    const auto& [ub, ue] = record.units[u];
    if (ue <= target.begin || ub >= target.end) continue;  // outside
    if (saw_right_cross) {
      sig.valid = false;  // units after a right-crossing unit: no program
      return sig;
    }
    if (ub < target.begin) {
      if (!sig.unit_ordinals.empty()) {
        sig.valid = false;  // left-crossing unit must be the first
        return sig;
      }
      sig.pre_len = target.begin - ub;
    }
    if (ue > target.end) {
      sig.suf_len = ue - target.end;
      saw_right_cross = true;
    }
    const size_t clipped_begin = ub < target.begin ? target.begin : ub;
    const size_t clipped_end = ue > target.end ? target.end : ue;
    sig.gaps.emplace_back(text.substr(pos, clipped_begin - pos));
    sig.unit_ordinals.push_back(u);
    pos = clipped_end;
  }
  sig.gaps.emplace_back(text.substr(pos, target.end - pos));
  sig.valid = true;
  return sig;
}

}  // namespace

SuccessReport CheckAgainstTruth(const std::vector<GroundTruthRecord>& truth,
                                const std::vector<RecordUnits>& extracted,
                                std::string_view text) {
  SuccessReport report;

  std::unordered_map<size_t, const RecordUnits*> by_begin;
  by_begin.reserve(extracted.size());
  for (const RecordUnits& r : extracted) by_begin[r.begin] = &r;

  // (a) Boundaries and record types.
  std::map<int, int> type_map;                 // ground truth -> extracted
  std::map<int, int> reverse_map;              // extracted -> ground truth
  std::vector<const RecordUnits*> matched(truth.size(), nullptr);
  for (size_t i = 0; i < truth.size(); ++i) {
    const GroundTruthRecord& gt = truth[i];
    auto it = by_begin.find(gt.begin);
    if (it == by_begin.end() || it->second->end != gt.end) {
      report.failure_reason =
          StrFormat("record at byte %zu: boundary not identified", gt.begin);
      return report;
    }
    const RecordUnits* ex = it->second;
    auto [tm, inserted] = type_map.emplace(gt.type, ex->type);
    if (!inserted && tm->second != ex->type) {
      report.failure_reason = StrFormat(
          "ground-truth type %d split across extracted types %d and %d",
          gt.type, tm->second, ex->type);
      return report;
    }
    auto [rm, r_inserted] = reverse_map.emplace(ex->type, gt.type);
    if (!r_inserted && rm->second != gt.type) {
      report.failure_reason = StrFormat(
          "extracted type %d merges ground-truth types %d and %d", ex->type,
          rm->second, gt.type);
      return report;
    }
    matched[i] = ex;
  }
  report.boundaries_ok = true;

  // (b) Target reconstruction, per (type, target name).
  std::map<std::pair<int, std::string>, TargetSignature> signatures;
  for (size_t i = 0; i < truth.size(); ++i) {
    const GroundTruthRecord& gt = truth[i];
    for (const TargetSpan& target : gt.targets) {
      TargetSignature sig = DecomposeTarget(target, *matched[i], text);
      if (!sig.valid) {
        report.failure_reason = StrFormat(
            "target '%s': an extracted field straddles the target boundary",
            target.name.c_str());
        return report;
      }
      auto key = std::make_pair(gt.type, target.name);
      auto [it, inserted] = signatures.emplace(key, sig);
      if (!inserted && !(it->second == sig)) {
        report.failure_reason = StrFormat(
            "target '%s': reconstruction differs across records (no single "
            "Concat/Append/Trim program works)",
            target.name.c_str());
        return report;
      }
    }
  }
  report.targets_ok = true;
  report.success = true;
  return report;
}

SuccessReport CheckExtraction(const GeneratedDataset& dataset,
                              const std::vector<RecordUnits>& extracted) {
  if (dataset.label == DatasetLabel::kNoStructure) {
    SuccessReport report;
    report.boundaries_ok = report.targets_ok = extracted.empty();
    report.success = extracted.empty();
    if (!report.success) {
      report.failure_reason = "spurious structure extracted from noise";
    }
    return report;
  }
  SuccessReport last;
  for (const auto& alternative : dataset.alternatives) {
    last = CheckAgainstTruth(alternative, extracted, dataset.text);
    if (last.success) return last;
  }
  return last;
}

std::vector<RecordUnits> UnitsFromPipeline(const PipelineResult& result,
                                           std::string_view /*text*/) {
  std::vector<RecordUnits> out;
  out.reserve(result.extraction.records.size());
  for (const ExtractedRecord& rec : result.extraction.records) {
    RecordUnits r;
    r.type = rec.template_id;
    r.begin = rec.begin;
    r.end = rec.end;
    // Units: top-level fields as-is; each array contributes one contiguous
    // unit (its denormalized cell equals that exact text).
    const StructureTemplate& st =
        result.templates[static_cast<size_t>(rec.template_id)];
    struct Walker {
      std::vector<std::pair<size_t, size_t>>* units;
      void Walk(const TemplateNode& node, const ParsedValue& value) {
        switch (node.kind) {
          case NodeKind::kField:
            units->emplace_back(value.begin, value.end);
            break;
          case NodeKind::kChar:
            break;
          case NodeKind::kStruct:
            for (size_t i = 0; i < node.children.size(); ++i) {
              Walk(*node.children[i], value.children[i]);
            }
            break;
          case NodeKind::kArray:
            units->emplace_back(value.begin, value.end);
            break;
        }
      }
    };
    Walker walker{&r.units};
    walker.Walk(st.root(), rec.value);
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<RecordUnits> UnitsFromRecordBreaker(
    const RecordBreakerResult& result, const Dataset& data) {
  std::vector<RecordUnits> out;
  out.reserve(result.records.size());
  for (const RbRecord& rec : result.records) {
    RecordUnits r;
    r.type = rec.branch;
    r.begin = data.line_begin(rec.line);
    r.end = data.line_end(rec.line);
    r.units = rec.fields;
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace datamaran
