#include "generation/generator.h"

#include <algorithm>
#include <array>
#include <unordered_map>
#include <utility>

#include "template/record_template.h"
#include "util/common.h"
#include "util/hashing.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace datamaran {

namespace {

/// Hash-bin payload for one (minimal structure template) key.
///
/// Coverage counts *greedily non-overlapping* occurrences only: the O(nL)
/// boundary enumeration visits every window, but windows of a self-similar
/// template overlap (e.g. a stack of k identical lines matches at every
/// offset), which would overestimate the paper's "total length of the
/// instantiated records" by up to the span factor. Occurrences arrive in
/// increasing line order, so skipping windows that overlap the previously
/// counted one yields the unbiased greedy estimate in O(1) per occurrence.
struct Bin {
  double coverage = 0;
  double non_field_coverage = 0;
  size_t count = 0;
  uint32_t first_i = 0;   // line index of the first candidate occurrence
  uint16_t span = 0;      // lines per candidate
  uint32_t first_line = 0xffffffff;
  uint32_t next_free = 0;  // first line not covered by a counted occurrence
};

/// Extends `h` with the bytes of a per-line hash (little-endian order).
uint64_t ExtendWithHash(uint64_t h, uint64_t line_hash) {
  for (int b = 0; b < 8; ++b) {
    h = Fnv1aByte(h, static_cast<unsigned char>(line_hash >> (b * 8)));
  }
  return h;
}

int CountFieldsInCanonical(std::string_view canonical) {
  int fields = 0;
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (canonical[i] == '\\') {
      ++i;  // skip escaped literal
    } else if (canonical[i] == 'F') {
      ++fields;
    }
  }
  return fields;
}

}  // namespace

std::string ReduceLinePeriod(std::string_view canonical) {
  if (canonical.empty() || canonical.back() != '\n') {
    return std::string(canonical);
  }
  // Split into line groups; '\n' is always a literal top-level character in
  // generation-produced canonicals (arrays never span lines).
  std::vector<std::string_view> groups;
  size_t start = 0;
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (canonical[i] == '\n') {
      groups.push_back(canonical.substr(start, i + 1 - start));
      start = i + 1;
    }
  }
  const size_t s = groups.size();
  for (size_t p = 1; p < s; ++p) {
    if (s % p != 0) continue;
    bool periodic = true;
    for (size_t i = p; i < s && periodic; ++i) {
      periodic = groups[i] == groups[i % p];
    }
    if (periodic) {
      size_t len = 0;
      for (size_t i = 0; i < p; ++i) len += groups[i].size();
      return std::string(canonical.substr(0, len));
    }
  }
  return std::string(canonical);
}

std::string CanonicalizeRotation(std::string_view canonical) {
  if (canonical.empty() || canonical.back() != '\n') {
    return std::string(canonical);
  }
  std::vector<std::string_view> groups;
  size_t start = 0;
  for (size_t i = 0; i < canonical.size(); ++i) {
    if (canonical[i] == '\n') {
      groups.push_back(canonical.substr(start, i + 1 - start));
      start = i + 1;
    }
  }
  const size_t s = groups.size();
  if (s < 2) return std::string(canonical);
  size_t best = 0;
  for (size_t r = 1; r < s; ++r) {
    // Lexicographic comparison of rotation r vs rotation best.
    for (size_t i = 0; i < s; ++i) {
      const std::string_view a = groups[(r + i) % s];
      const std::string_view b = groups[(best + i) % s];
      if (a != b) {
        if (a < b) best = r;
        break;
      }
    }
  }
  if (best == 0) return std::string(canonical);
  std::string out;
  out.reserve(canonical.size());
  for (size_t i = 0; i < s; ++i) out += groups[(best + i) % s];
  return out;
}

CandidateGenerator::CandidateGenerator(DatasetView sample,
                                       const DatamaranOptions* options,
                                       ThreadPool* pool)
    : sample_(std::move(sample)), options_(options), pool_(pool) {
  // Histogram only the live lines; a gapped view must not let dead
  // (sampled-out or already-explained) text vote on the search alphabet.
  std::array<size_t, 256> counts{};
  for (size_t v = 0; v < sample_.line_count(); ++v) {
    for (char c : sample_.line_with_newline(v)) {
      counts[static_cast<unsigned char>(c)]++;
    }
  }
  auto ranked = SortSpecialCounts(counts, options_->special_chars);
  int limit = options_->max_special_chars;
  for (const auto& [c, freq] : ranked) {
    if (static_cast<int>(search_chars_.size()) >= limit) break;
    search_chars_.push_back(c);
  }
  for (char c : search_chars_) {
    pool_charset_.Add(static_cast<unsigned char>(c));
  }
  pool_charset_.Add('\n');
  charset_engine_ = ResolveCharsetEngine(options_->charset_engine);
  pool_classifier_ = ByteClassifier(pool_charset_, charset_engine_);
}

void CandidateGenerator::BuildSpecialIndex(GenerationWorkspace* ws) const {
  const size_t n = sample_.line_count();
  ws->special_pos.clear();
  ws->special_begin.resize(n + 1);
  for (size_t k = 0; k < n; ++k) {
    ws->special_begin[k] = ws->special_pos.size();
    pool_classifier_.AppendMemberPositions(sample_.line_with_newline(k),
                                           &ws->special_pos);
  }
  ws->special_begin[n] = ws->special_pos.size();
  ws->special_index_built = true;
}

double CandidateGenerator::RunCharset(const CharSet& rt_charset,
                                      std::vector<CandidateTemplate>* out) {
  return RunCharset(rt_charset, &scratch_, out);
}

double CandidateGenerator::RunCharset(const CharSet& rt_charset,
                                      GenerationWorkspace* ws,
                                      std::vector<CandidateTemplate>* out)
    const {
  CharSet charset = rt_charset;
  charset.Add('\n');
  const size_t n = sample_.line_count();
  if (n == 0) return 0;

  auto& line_canonical_ = ws->line_canonical;
  auto& line_hash_ = ws->line_hash;
  auto& prefix_len_ = ws->prefix_len;
  auto& prefix_field_len_ = ws->prefix_field_len;
  auto& line_has_field_ = ws->line_has_field;

  line_canonical_.resize(n);
  line_hash_.resize(n);
  prefix_len_.resize(n + 1);
  prefix_field_len_.resize(n + 1);
  line_has_field_.resize(n);

  // Per-line record templates, reduced and hashed once for this charset;
  // the field-character count falls out of the same single scan. With a
  // vector charset engine, membership was classified once per workspace
  // into the special-position index (every trial charset is a subset of
  // the pool), so each trial walks only the special positions — emitting a
  // member byte per position in the trial set and one 'F' per gap — which
  // is exactly what the per-byte reference scan produces. Charsets outside
  // the pool (only reachable via the public RunCharset) use the reference.
  const bool indexed = charset_engine_ != CharsetEngine::kScalar &&
                       charset.IsSubsetOf(pool_charset_);
  if (indexed && !ws->special_index_built) BuildSpecialIndex(ws);

  std::string& raw_template = ws->raw_template;
  prefix_len_[0] = prefix_field_len_[0] = 0;
  for (size_t k = 0; k < n; ++k) {
    std::string_view line = sample_.line_with_newline(k);
    raw_template.clear();
    size_t field_chars;
    if (indexed) {
      const size_t e = ws->special_begin[k + 1];
      size_t cursor = 0;   // offset just past the last consumed member
      size_t members = 0;  // trial-set members seen on this line
      for (size_t s = ws->special_begin[k]; s < e; ++s) {
        const uint32_t pos = ws->special_pos[s];
        const char c = line[pos];
        if (!charset.Contains(static_cast<unsigned char>(c))) continue;
        if (pos > cursor) raw_template.push_back('F');
        raw_template.push_back(c);
        cursor = pos + 1;
        ++members;
      }
      if (cursor < line.size()) raw_template.push_back('F');
      field_chars = line.size() - members;
    } else {
      field_chars = AppendRecordTemplateCounting(line, charset, &raw_template);
    }
    ReduceToCanonical(raw_template, &ws->reduce_ws, &line_canonical_[k]);
    line_hash_[k] = Fnv1a(line_canonical_[k]);
    prefix_len_[k + 1] = prefix_len_[k] + line.size();
    prefix_field_len_[k + 1] = prefix_field_len_[k] + field_chars;
    line_has_field_[k] =
        line_canonical_[k].find('F') != std::string::npos ? 1 : 0;
  }

  // Enumerate all candidate boundaries (i, span<=L) and hash them.
  std::unordered_map<uint64_t, Bin> bins;
  bins.reserve(n * 2);
  const int max_span = options_->max_record_span;
  for (size_t i = 0; i < n; ++i) {
    uint64_t h = kFnvOffset;
    for (int span = 1; span <= max_span && i + span <= n; ++span) {
      const size_t j = i + span;
      h = ExtendWithHash(h, line_hash_[j - 1]);
      Bin& bin = bins[h];
      if (bin.count == 0) {
        bin.first_i = static_cast<uint32_t>(i);
        bin.span = static_cast<uint16_t>(span);
      }
      if (i >= bin.next_free) {
        const double len =
            static_cast<double>(prefix_len_[j] - prefix_len_[i]);
        const double field_len =
            static_cast<double>(prefix_field_len_[j] - prefix_field_len_[i]);
        bin.coverage += len;
        bin.non_field_coverage += len - field_len;
        bin.count++;
        bin.next_free = static_cast<uint32_t>(i) + static_cast<uint32_t>(span);
      }
      bin.first_line = std::min<uint32_t>(bin.first_line,
                                          static_cast<uint32_t>(i));
      ++ws->records_hashed;
    }
  }

  // Keep bins meeting the alpha% coverage threshold (Assumption 1) that
  // contain at least one field (Definition 2.1 requires a placeholder).
  const double min_coverage =
      options_->coverage_threshold * static_cast<double>(sample_.size_bytes());
  double best_assimilation = 0;
  // Dedupe within this charset: stacked/rotated bins canonicalize to the
  // same template; keep the strongest stats.
  std::unordered_map<std::string, size_t> local_index;
  const size_t out_base = out->size();
  for (const auto& [hash, bin] : bins) {
    if (bin.coverage < min_coverage) continue;
    bool has_field = false;
    for (size_t k = bin.first_i; k < bin.first_i + bin.span; ++k) {
      if (line_has_field_[k]) {
        has_field = true;
        break;
      }
    }
    if (!has_field) continue;
    CandidateTemplate cand;
    for (size_t k = bin.first_i; k < bin.first_i + bin.span; ++k) {
      cand.canonical += line_canonical_[k];
    }
    cand.canonical = CanonicalizeRotation(ReduceLinePeriod(cand.canonical));
    cand.coverage = bin.coverage;
    cand.non_field_coverage = bin.non_field_coverage;
    cand.span = static_cast<int>(
        std::count(cand.canonical.begin(), cand.canonical.end(), '\n'));
    cand.count = bin.count;
    cand.first_line = bin.first_line;
    cand.field_count = CountFieldsInCanonical(cand.canonical);
    best_assimilation = std::max(best_assimilation, cand.assimilation());
    auto it = local_index.find(cand.canonical);
    if (it == local_index.end()) {
      local_index.emplace(cand.canonical, out->size());
      out->push_back(std::move(cand));
    } else {
      CandidateTemplate& existing = (*out)[it->second];
      DM_CHECK(it->second >= out_base);
      existing.first_line = std::min(existing.first_line, cand.first_line);
      if (cand.assimilation() > existing.assimilation()) {
        existing.coverage = cand.coverage;
        existing.non_field_coverage = cand.non_field_coverage;
        existing.count = cand.count;
        existing.span = cand.span;
      }
    }
  }
  return best_assimilation;
}

void CandidateGenerator::MergeCandidates(
    std::vector<CandidateTemplate>* accumulated, MergeIndex* index,
    std::vector<CandidateTemplate>&& fresh) const {
  // `index` persists across all of a search's merges, so each trial costs
  // O(fresh), not a full O(accumulated) re-index. Keys are owned copies:
  // views into `accumulated` would dangle when push_back reallocates and
  // SSO string bodies move.
  for (auto& cand : fresh) {
    auto it = index->find(cand.canonical);
    if (it == index->end()) {
      index->emplace(cand.canonical, accumulated->size());
      accumulated->push_back(std::move(cand));
    } else {
      CandidateTemplate& existing = (*accumulated)[it->second];
      // The same minimal template found under a different charset: keep the
      // strongest evidence.
      existing.first_line = std::min(existing.first_line, cand.first_line);
      if (cand.assimilation() > existing.assimilation()) {
        existing.coverage = cand.coverage;
        existing.non_field_coverage = cand.non_field_coverage;
        existing.count = cand.count;
      }
    }
  }
}

GenerationResult CandidateGenerator::ExhaustiveSearch() {
  GenerationResult result;
  MergeIndex index;
  const size_t c = search_chars_.size();
  const size_t subsets = size_t{1} << c;
  const int workers =
      pool_ != nullptr ? pool_->thread_count() : 1;
  std::vector<GenerationWorkspace> ws(static_cast<size_t>(workers));

  // Every subset is an independent trial; run them in parallel and merge
  // in ascending mask order — the sequential iteration order — so the
  // accumulated candidate list is identical for any thread count. Waves
  // of a few trials per thread bound the per-trial buffers held live at
  // once (2^c grows fast when max_special_chars is raised).
  const size_t wave_size = std::max<size_t>(static_cast<size_t>(workers) * 8,
                                            size_t{1});
  std::vector<std::vector<CandidateTemplate>> fresh(
      std::min(wave_size, subsets));
  for (size_t wave_start = 0; wave_start < subsets;
       wave_start += wave_size) {
    const size_t wave = std::min(wave_size, subsets - wave_start);
    ForEachIndex(pool_, wave, [&](size_t k, int worker) {
      const size_t mask = wave_start + k;
      CharSet charset;
      for (size_t b = 0; b < c; ++b) {
        if (mask & (size_t{1} << b)) {
          charset.Add(static_cast<unsigned char>(search_chars_[b]));
        }
      }
      fresh[k].clear();
      RunCharset(charset, &ws[static_cast<size_t>(worker)], &fresh[k]);
    });
    for (size_t k = 0; k < wave; ++k) {
      MergeCandidates(&result.candidates, &index, std::move(fresh[k]));
      ++result.charsets_tried;
    }
  }
  for (const GenerationWorkspace& w : ws) records_hashed_ += w.records_hashed;
  return result;
}

GenerationResult CandidateGenerator::GreedySearch() {
  GenerationResult result;
  MergeIndex index;
  CharSet current;  // '\n' is implicit
  std::vector<char> remaining = search_chars_;
  const int workers =
      pool_ != nullptr ? pool_->thread_count() : 1;
  std::vector<GenerationWorkspace> ws(static_cast<size_t>(workers));

  // Baseline: the empty charset (records delimited by '\n' only).
  {
    std::vector<CandidateTemplate> fresh;
    RunCharset(current, &ws[0], &fresh);
    MergeCandidates(&result.candidates, &index, std::move(fresh));
    ++result.charsets_tried;
  }

  while (!remaining.empty()) {
    // The trial extensions of this round are independent of one another:
    // run them in parallel, then merge and pick the winner in ascending
    // trial order exactly as the sequential loop would.
    const size_t trials = remaining.size();
    std::vector<double> scores(trials, 0.0);
    std::vector<std::vector<CandidateTemplate>> fresh(trials);
    ForEachIndex(pool_, trials, [&](size_t idx, int worker) {
      CharSet trial = current;
      trial.Add(static_cast<unsigned char>(remaining[idx]));
      scores[idx] =
          RunCharset(trial, &ws[static_cast<size_t>(worker)], &fresh[idx]);
    });
    double best_score = 0;
    size_t best_idx = trials;
    for (size_t idx = 0; idx < trials; ++idx) {
      MergeCandidates(&result.candidates, &index, std::move(fresh[idx]));
      ++result.charsets_tried;
      if (scores[idx] > best_score) {
        best_score = scores[idx];
        best_idx = idx;
      }
    }
    // Stop when no extension yields a template with alpha% coverage.
    if (best_idx == trials) break;
    current.Add(static_cast<unsigned char>(remaining[best_idx]));
    remaining.erase(remaining.begin() + static_cast<ptrdiff_t>(best_idx));
  }
  for (const GenerationWorkspace& w : ws) records_hashed_ += w.records_hashed;
  return result;
}

namespace {

/// Drops multi-line candidates that are concatenations of two independent
/// templates. For a true k-line record type, any line-split part co-occurs
/// with the whole (counts match); for a chance adjacency of two interleaved
/// single-line types, the composite occurs far less often than either part.
void FilterComposites(std::vector<CandidateTemplate>* candidates) {
  std::unordered_map<std::string_view, size_t> count_of;
  count_of.reserve(candidates->size());
  for (const auto& c : *candidates) count_of.emplace(c.canonical, c.count);
  // Only two-line composites of two single-line templates are tested: for
  // longer records the count heuristic misfires when a record contains
  // several copies of one line shape (its single-line part then occurs k
  // times per record and the ratio test would reject the true template).
  auto is_composite = [&](const CandidateTemplate& c) {
    if (c.span != 2) return false;
    const std::string& canon = c.canonical;
    size_t nl = canon.find('\n');
    if (nl == std::string::npos || nl + 1 >= canon.size()) return false;
    auto left = count_of.find(std::string_view(canon).substr(0, nl + 1));
    auto right = count_of.find(std::string_view(canon).substr(nl + 1));
    if (left == count_of.end() || right == count_of.end()) return false;
    size_t part_count = std::min(left->second, right->second);
    return static_cast<double>(c.count) <
           0.8 * static_cast<double>(part_count);
  };
  candidates->erase(
      std::remove_if(candidates->begin(), candidates->end(), is_composite),
      candidates->end());
}

}  // namespace

GenerationResult CandidateGenerator::Run() {
  records_hashed_ = 0;
  GenerationResult result = options_->search == CharsetSearch::kExhaustive
                                ? ExhaustiveSearch()
                                : GreedySearch();
  FilterComposites(&result.candidates);
  result.records_hashed = records_hashed_;
  DM_LOG(kInfo, "generation: %zu charsets, %zu candidates >= %.0f%% coverage",
         result.charsets_tried, result.candidates.size(),
         options_->coverage_threshold * 100);
  return result;
}

}  // namespace datamaran
