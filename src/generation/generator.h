#ifndef DATAMARAN_GENERATION_GENERATOR_H_
#define DATAMARAN_GENERATION_GENERATOR_H_

#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/options.h"
#include "generation/candidates.h"
#include "template/record_template.h"
#include "util/char_class.h"

/// The generation step (Section 4.1): find all structure templates with at
/// least alpha% coverage by (1) enumerating RT-CharSet values, (2)
/// enumerating O(nL) candidate record boundaries — every pair of '\n'
/// positions at most L lines apart, (3) extracting the record template of
/// each candidate, (4) reducing it to a minimal structure template and (5)
/// accumulating coverage in a hash table.
///
/// Implementation notes (hot path):
///  * For a fixed charset, each line's record template is extracted and
///    reduced once; a candidate spanning lines [i, i+span) is the
///    concatenation of per-line minimal templates, so its hash is computed
///    incrementally from per-line hashes in O(1) per candidate.
///  * Reduction is applied per line. Tandem repeats can therefore not fold
///    across line boundaries; such folds require an array whose separator
///    and terminator are both '\n', which Assumption 3 forbids anyway
///    (x != y), so no legal template is lost.
///  * '\n' is always a member of RT-CharSet (Definition 2.4: blocks are
///    '\n'-separated).

namespace datamaran {

/// Reduces a multi-line canonical template to its minimal line period:
/// "(F,)*F\n(F,)*F\n" is two copies of "(F,)*F\n" and describes the same
/// records, so only the one-period form is kept (Figure 11's first
/// redundancy source: subsets/stackings of the true template). Returns the
/// input unchanged when no smaller period exists.
std::string ReduceLinePeriod(std::string_view canonical);

/// Canonicalizes a multi-line template to the lexicographically smallest
/// cyclic rotation of its line groups. All rotations of a template are
/// found by the boundary enumeration and describe the same structure
/// shifted (Section 4.3.2); collapsing them keeps the top-M list from
/// filling up with shifted duplicates. Structure shifting during
/// refinement later picks the correctly aligned rotation.
std::string CanonicalizeRotation(std::string_view canonical);

/// Outcome of the generation step across all enumerated charsets.
struct GenerationResult {
  /// Deduplicated candidates meeting the coverage threshold, unordered.
  std::vector<CandidateTemplate> candidates;
  /// Number of RT-CharSet values enumerated.
  size_t charsets_tried = 0;
  /// Number of (boundary pair, charset) candidates hashed.
  size_t records_hashed = 0;
};

class CandidateGenerator {
 public:
  /// `sample` must outlive the generator.
  CandidateGenerator(const Dataset* sample, const DatamaranOptions* options);

  /// Runs the full generation step with the configured search strategy.
  GenerationResult Run();

  /// Runs steps 2-5 for one specific RT-CharSet ('\n' is added
  /// automatically); appends surviving candidates to `out` and returns the
  /// best assimilation score among them (0 if none survive).
  double RunCharset(const CharSet& rt_charset,
                    std::vector<CandidateTemplate>* out);

  /// The (at most max_special_chars) special characters present in the
  /// sample that the search enumerates over, most frequent first.
  const std::vector<char>& search_chars() const { return search_chars_; }

 private:
  GenerationResult ExhaustiveSearch();
  GenerationResult GreedySearch();
  void MergeCandidates(std::vector<CandidateTemplate>* accumulated,
                       std::vector<CandidateTemplate>&& fresh) const;

  const Dataset* sample_;
  const DatamaranOptions* options_;
  std::vector<char> search_chars_;
  size_t records_hashed_ = 0;

  // Reused per-charset scratch (sized to the line count once).
  ReduceWorkspace reduce_ws_;
  std::vector<std::string> line_canonical_;
  std::vector<uint64_t> line_hash_;
  std::vector<size_t> prefix_len_;         // raw chars, prefix sum
  std::vector<size_t> prefix_field_len_;   // field chars, prefix sum
  std::vector<uint8_t> line_has_field_;
};

}  // namespace datamaran

#endif  // DATAMARAN_GENERATION_GENERATOR_H_
