#ifndef DATAMARAN_GENERATION_GENERATOR_H_
#define DATAMARAN_GENERATION_GENERATOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "core/options.h"
#include "generation/candidates.h"
#include "template/record_template.h"
#include "util/byte_class.h"
#include "util/char_class.h"
#include "util/charset_engine.h"

/// The generation step (Section 4.1): find all structure templates with at
/// least alpha% coverage by (1) enumerating RT-CharSet values, (2)
/// enumerating O(nL) candidate record boundaries — every pair of '\n'
/// positions at most L lines apart, (3) extracting the record template of
/// each candidate, (4) reducing it to a minimal structure template and (5)
/// accumulating coverage in a hash table.
///
/// Implementation notes (hot path):
///  * For a fixed charset, each line's record template is extracted and
///    reduced once; a candidate spanning lines [i, i+span) is the
///    concatenation of per-line minimal templates, so its hash is computed
///    incrementally from per-line hashes in O(1) per candidate.
///  * Reduction is applied per line. Tandem repeats can therefore not fold
///    across line boundaries; such folds require an array whose separator
///    and terminator are both '\n', which Assumption 3 forbids anyway
///    (x != y), so no legal template is lost.
///  * '\n' is always a member of RT-CharSet (Definition 2.4: blocks are
///    '\n'-separated).

namespace datamaran {

class ThreadPool;

/// Reduces a multi-line canonical template to its minimal line period:
/// "(F,)*F\n(F,)*F\n" is two copies of "(F,)*F\n" and describes the same
/// records, so only the one-period form is kept (Figure 11's first
/// redundancy source: subsets/stackings of the true template). Returns the
/// input unchanged when no smaller period exists.
std::string ReduceLinePeriod(std::string_view canonical);

/// Canonicalizes a multi-line template to the lexicographically smallest
/// cyclic rotation of its line groups. All rotations of a template are
/// found by the boundary enumeration and describe the same structure
/// shifted (Section 4.3.2); collapsing them keeps the top-M list from
/// filling up with shifted duplicates. Structure shifting during
/// refinement later picks the correctly aligned rotation.
std::string CanonicalizeRotation(std::string_view canonical);

/// Outcome of the generation step across all enumerated charsets.
struct GenerationResult {
  /// Deduplicated candidates meeting the coverage threshold, unordered.
  std::vector<CandidateTemplate> candidates;
  /// Number of RT-CharSet values enumerated.
  size_t charsets_tried = 0;
  /// Number of (boundary pair, charset) candidates hashed.
  size_t records_hashed = 0;
};

/// Per-thread scratch for RunCharset. Each worker owns one workspace for
/// the lifetime of a search, so the steady state performs no per-charset
/// allocation and concurrent charset trials never share mutable state.
struct GenerationWorkspace {
  ReduceWorkspace reduce_ws;
  std::string raw_template;
  std::vector<std::string> line_canonical;
  std::vector<uint64_t> line_hash;
  std::vector<size_t> prefix_len;         // raw chars, prefix sum
  std::vector<size_t> prefix_field_len;   // field chars, prefix sum
  std::vector<uint8_t> line_has_field;
  /// The hoisted per-line class vector: for every line, the positions of
  /// the bytes in the generator's special-character pool (line-relative,
  /// ascending; line k owns special_pos[special_begin[k] ..
  /// special_begin[k+1])). Every trial RT-CharSet is a subset of the pool,
  /// so membership is classified once per workspace — with the configured
  /// charset engine — and each trial only walks these positions instead of
  /// re-scanning every byte of every line per charset.
  std::vector<uint32_t> special_pos;
  std::vector<size_t> special_begin;
  bool special_index_built = false;
  /// (boundary pair, charset) candidates hashed, accumulated across calls.
  size_t records_hashed = 0;
};

class CandidateGenerator {
 public:
  /// The generation step consumes a DatasetView — the sampled lines of the
  /// backing file, or a residual round's live lines — and only ever reads
  /// per-line content, so no sample text is materialized. The view's
  /// backing dataset must outlive the generator. When `pool` is non-null
  /// and has more than one thread, the independent charset trials of both
  /// search strategies run in parallel; per-trial results are merged in the
  /// same fixed order as the sequential search, so the output is identical
  /// for every pool size.
  CandidateGenerator(DatasetView sample, const DatamaranOptions* options,
                     ThreadPool* pool = nullptr);

  /// Convenience: all lines of `sample` (which must outlive the generator).
  CandidateGenerator(const Dataset* sample, const DatamaranOptions* options,
                     ThreadPool* pool = nullptr)
      : CandidateGenerator(DatasetView(*sample), options, pool) {}

  /// Runs the full generation step with the configured search strategy.
  GenerationResult Run();

  /// Runs steps 2-5 for one specific RT-CharSet ('\n' is added
  /// automatically); appends surviving candidates to `out` and returns the
  /// best assimilation score among them (0 if none survive). Uses the
  /// generator's own scratch workspace; not safe to call concurrently.
  double RunCharset(const CharSet& rt_charset,
                    std::vector<CandidateTemplate>* out);

  /// Re-entrant form: all mutable state lives in `ws`, so distinct
  /// workspaces may run distinct charsets concurrently.
  double RunCharset(const CharSet& rt_charset, GenerationWorkspace* ws,
                    std::vector<CandidateTemplate>* out) const;

  /// The (at most max_special_chars) special characters present in the
  /// sample that the search enumerates over, most frequent first.
  const std::vector<char>& search_chars() const { return search_chars_; }

 private:
  /// Canonical -> index into the accumulated candidate vector. Kept
  /// alongside the accumulator for the whole search so merging each trial
  /// is O(fresh) instead of O(accumulated + fresh).
  using MergeIndex = std::unordered_map<std::string, size_t>;

  GenerationResult ExhaustiveSearch();
  GenerationResult GreedySearch();
  void MergeCandidates(std::vector<CandidateTemplate>* accumulated,
                       MergeIndex* index,
                       std::vector<CandidateTemplate>&& fresh) const;
  /// Builds the workspace's special-position index (one classifier pass
  /// over every live line of the sample).
  void BuildSpecialIndex(GenerationWorkspace* ws) const;

  DatasetView sample_;
  const DatamaranOptions* options_;
  ThreadPool* pool_;
  std::vector<char> search_chars_;
  /// search_chars_ plus '\n' — the superset every trial charset draws from.
  CharSet pool_charset_;
  /// Resolved charset engine; kScalar keeps the original per-byte path.
  CharsetEngine charset_engine_ = CharsetEngine::kScalar;
  /// Pool-charset classifier driving BuildSpecialIndex.
  ByteClassifier pool_classifier_;
  size_t records_hashed_ = 0;

  // Scratch for the single-threaded public RunCharset overload.
  GenerationWorkspace scratch_;
};

}  // namespace datamaran

#endif  // DATAMARAN_GENERATION_GENERATOR_H_
