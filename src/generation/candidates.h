#ifndef DATAMARAN_GENERATION_CANDIDATES_H_
#define DATAMARAN_GENERATION_CANDIDATES_H_

#include <cstddef>
#include <string>

/// A structure-template candidate produced by the generation step, with the
/// coverage statistics accumulated in its hash bin (Section 4.1 step 5).

namespace datamaran {

struct CandidateTemplate {
  /// Canonical serialization of the minimal structure template.
  std::string canonical;

  /// Estimated coverage: total characters of all candidate records hashed
  /// into this bin. Because boundary enumeration overlaps, this can exceed
  /// the sample size; it is only used for thresholding and ranking.
  double coverage = 0;

  /// Coverage minus the characters inside field values — the
  /// Non-Field-Coverage term of the assimilation score (Section 4.2).
  double non_field_coverage = 0;

  /// Number of lines a record spans.
  int span = 1;

  /// Number of candidate records hashed into the bin.
  size_t count = 0;

  /// Earliest line index at which the template was instantiated (used by
  /// structure shifting to prefer the earliest-first-occurrence variant).
  size_t first_line = 0;

  /// Number of field leaves in the minimal template.
  int field_count = 0;

  /// Assimilation score G(T,S) = Cov x Non_Field_Cov (Section 4.2).
  double assimilation() const { return coverage * non_field_coverage; }
};

}  // namespace datamaran

#endif  // DATAMARAN_GENERATION_CANDIDATES_H_
