#include "template/compiled.h"

#include <cstring>

namespace datamaran {

namespace {

CharSet FirstBytesOfNode(const TemplateNode& node, const CharSet& rt_charset) {
  switch (node.kind) {
    case NodeKind::kChar: {
      CharSet s;
      s.Add(static_cast<unsigned char>(node.ch));
      return s;
    }
    case NodeKind::kField: {
      // Fields are non-empty runs of non-charset bytes, so any byte outside
      // the RT-CharSet can start one.
      CharSet s;
      for (int c = 0; c < 256; ++c) {
        if (!rt_charset.Contains(static_cast<unsigned char>(c))) {
          s.Add(static_cast<unsigned char>(c));
        }
      }
      return s;
    }
    case NodeKind::kStruct:
      // Every node consumes at least one character (validated), so only the
      // first child contributes.
      return FirstBytesOfNode(*node.children[0], rt_charset);
    case NodeKind::kArray:
      return FirstBytesOfNode(*node.children[0], rt_charset);
  }
  return CharSet();
}

/// Per-byte high-bit mask of the zero bytes of `v` (classic SWAR zero-byte
/// trick). Borrow propagation can only disturb bytes *above* a true zero,
/// so the lowest set high-bit always marks the first zero byte exactly —
/// which is all the position scan consumes.
inline uint64_t ZeroByteMask(uint64_t v) {
  return (v - 0x0101010101010101ull) & ~v & 0x8080808080808080ull;
}

inline uint64_t BroadcastByte(uint8_t b) {
  return 0x0101010101010101ull * b;
}

constexpr bool kLittleEndian =
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
    true;
#else
    false;
#endif

}  // namespace

CharSet TemplateFirstBytes(const StructureTemplate& st) {
  if (st.empty()) return CharSet();
  return FirstBytesOfNode(st.root(), st.charset());
}

CompiledTemplate::CompiledTemplate(const StructureTemplate* st,
                                   CharsetEngine charset_engine)
    : st_(st) {
  const CharSet& charset = st_->charset();
  for (int c = 0; c < 256; ++c) {
    stop_[static_cast<size_t>(c)] =
        charset.Contains(static_cast<unsigned char>(c)) ? 1 : 0;
  }
  const std::string members = charset.ToString();
  if (members.size() == 1) {
    // Fields run to the line terminator: long scans, vectorized memchr.
    scan_kind_ = ScanKind::kMemchr;
    memchr_stop_ = static_cast<uint8_t>(members[0]);
  } else if (members.size() >= 2 && members.size() <= 4 && kLittleEndian) {
    // (An empty charset — reachable via unvalidated templates like "F" —
    // must stay on the table path: zeroed SWAR masks would stop at NUL.)
    // The common CSV/log shape (separators + '\n'): one 8-byte SWAR step
    // finds the first stop byte's position without a per-byte loop.
    scan_kind_ = members.size() == 2   ? ScanKind::kSwar2
                 : members.size() == 3 ? ScanKind::kSwar3
                                       : ScanKind::kSwar4;
    for (size_t i = 0; i < members.size(); ++i) {
      swar_[i] = BroadcastByte(static_cast<uint8_t>(members[i]));
    }
  } else if (members.size() >= 5 &&
             ResolveCharsetEngine(charset_engine) == CharsetEngine::kSimd) {
    // Wide stop sets previously fell back to the per-byte table; the
    // classifier scans them 16/32 bytes at a time (first-stop position
    // semantics are identical, so match results don't change).
    scan_kind_ = ScanKind::kClass;
    classifier_.emplace(charset, charset_engine);
  }
  first_bytes_ = TemplateFirstBytes(*st_);
  Compile(st_->root(), /*depth=*/0);
  FlushPendingField();
  FlushLiteral();
  pending_literal_.shrink_to_fit();
}

void CompiledTemplate::FlushLiteral() {
  if (pending_literal_.empty()) return;
  Inst inst;
  if (pending_literal_.size() == 1) {
    inst.op = Inst::kLit1;
    inst.byte = static_cast<uint8_t>(pending_literal_[0]);
  } else {
    inst.op = Inst::kLit;
    inst.a = static_cast<uint32_t>(pool_.size());
    inst.b = static_cast<uint32_t>(pending_literal_.size());
    pool_ += pending_literal_;
  }
  insts_.push_back(inst);
  pending_literal_.clear();
}

void CompiledTemplate::FlushPendingField() {
  if (pending_field_ == nullptr) return;
  Inst inst;
  inst.op = Inst::kField;
  inst.a = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(pending_field_);
  insts_.push_back(inst);
  pending_field_ = nullptr;
}

void CompiledTemplate::Compile(const TemplateNode& node, int depth) {
  switch (node.kind) {
    case NodeKind::kChar:
      if (pending_field_ != nullptr) {
        // The dominant token pair: field terminated by a fixed literal.
        // Adjacent pairs chain into one kFieldLitRun — a whole "F,F,F,F\n"
        // line body executes as a single instruction. Adjacency guarantees
        // the run's field nodes are consecutive in nodes_ and its literal
        // bytes contiguous in pool_.
        if (!insts_.empty() && (insts_.back().op == Inst::kFieldLit1 ||
                                insts_.back().op == Inst::kFieldLitRun)) {
          Inst& prev = insts_.back();
          if (prev.op == Inst::kFieldLit1) {
            prev.op = Inst::kFieldLitRun;
            prev.c = static_cast<uint32_t>(pool_.size());
            pool_.push_back(static_cast<char>(prev.byte));
            prev.b = 1;
          }
          pool_.push_back(node.ch);
          prev.b += 1;
          nodes_.push_back(pending_field_);
          pending_field_ = nullptr;
          return;
        }
        Inst inst;
        inst.op = Inst::kFieldLit1;
        inst.byte = static_cast<uint8_t>(node.ch);
        inst.a = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back(pending_field_);
        insts_.push_back(inst);
        pending_field_ = nullptr;
        return;
      }
      pending_literal_.push_back(node.ch);
      return;
    case NodeKind::kField:
      FlushLiteral();
      FlushPendingField();  // adjacent fields are invalid, but stay safe
      pending_field_ = &node;
      return;
    case NodeKind::kStruct:
      for (const auto& child : node.children) Compile(*child, depth);
      return;
    case NodeKind::kArray: {
      FlushLiteral();
      FlushPendingField();
      const TemplateNode& elem = *node.children[0];
      if (elem.kind == NodeKind::kField) {
        // The dominant generated shape, e.g. a CSV row's "(F,)*F": one
        // fused instruction alternates field scan and separator lookahead.
        Inst inst;
        inst.op = Inst::kFieldArray;
        inst.byte = static_cast<uint8_t>(node.ch);
        inst.a = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back(&elem);
        inst.b = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back(&node);
        insts_.push_back(inst);
        return;
      }
      if (depth + 1 > kMaxArrayDepth) {
        ok_ = false;
        return;
      }
      Inst begin;
      begin.op = Inst::kArrayBegin;
      begin.b = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(&node);
      insts_.push_back(begin);
      const uint32_t elem_start = static_cast<uint32_t>(insts_.size());
      Compile(elem, depth + 1);
      FlushPendingField();
      FlushLiteral();
      Inst next;
      next.op = Inst::kArrayNext;
      next.byte = static_cast<uint8_t>(node.ch);
      next.a = elem_start;
      insts_.push_back(next);
      return;
    }
  }
}

template <bool kEmitEvents, CompiledTemplate::ScanKind kScan>
bool CompiledTemplate::Run(std::string_view text, size_t* pos,
                           size_t* field_chars,
                           std::vector<MatchEvent>* events) const {
  const char* const data = text.data();
  const size_t size = text.size();
  size_t p = *pos;
  size_t fields = 0;

  // Hoisted scan state; with kScan a compile-time constant the per-field
  // scan below inlines into the dispatch loop with no branching on mode.
  const uint64_t b0 = swar_[0];
  const uint64_t b1 = swar_[1];
  const uint64_t b2 = swar_[2];
  const uint64_t b3 = swar_[3];
  constexpr int kStops = kScan == ScanKind::kSwar2   ? 2
                         : kScan == ScanKind::kSwar3 ? 3
                         : kScan == ScanKind::kSwar4 ? 4
                                                     : 0;
  (void)b0;
  (void)b1;
  (void)b2;
  (void)b3;
  auto scan_field_end = [&](size_t q) -> size_t {
    if constexpr (kScan == ScanKind::kMemchr) {
      const void* hit = std::memchr(data + q, memchr_stop_, size - q);
      return hit != nullptr
                 ? static_cast<size_t>(static_cast<const char*>(hit) - data)
                 : size;
    } else if constexpr (kStops > 0) {
      // Log tokens are mostly 1-3 characters: with three or more stop
      // bytes, probe a few bytes with the stop table first so short fields
      // never pay the word-scan setup (two broadcast masks are cheap
      // enough that the word scan wins outright).
      if constexpr (kStops > 2) {
        const size_t lead = q + 4 < size ? q + 4 : size;
        while (q < lead) {
          if (stop_[static_cast<uint8_t>(data[q])]) return q;
          ++q;
        }
      }
      while (q + 8 <= size) {
        uint64_t word;
        std::memcpy(&word, data + q, 8);
        uint64_t mask = ZeroByteMask(word ^ b0);
        if constexpr (kStops > 1) mask |= ZeroByteMask(word ^ b1);
        if constexpr (kStops > 2) mask |= ZeroByteMask(word ^ b2);
        if constexpr (kStops > 3) mask |= ZeroByteMask(word ^ b3);
        if (mask != 0) {
          // Lowest set high-bit == first stop byte (little-endian layout).
          return q + (static_cast<size_t>(__builtin_ctzll(mask)) >> 3);
        }
        q += 8;
      }
      while (q < size && !stop_[static_cast<uint8_t>(data[q])]) ++q;
      return q;
    } else if constexpr (kScan == ScanKind::kClass) {
      // Short tokens resolve in the table lead-in; longer ones hand off to
      // the vectorized classifier (identical first-stop position).
      const size_t lead = q + 4 < size ? q + 4 : size;
      while (q < lead) {
        if (stop_[static_cast<uint8_t>(data[q])]) return q;
        ++q;
      }
      return classifier_->FindFirstMember(text, q);
    } else {
      while (q < size && !stop_[static_cast<uint8_t>(data[q])]) ++q;
      return q;
    }
  };

  struct ArrayFrame {
    size_t count_idx;  ///< index of the kArrayCount event to patch
    size_t reps;
  };
  // Only the event stream consumes repetition counts; the frame stack is
  // compiled out of the capture-free path entirely.
  ArrayFrame frames[kMaxArrayDepth];
  int fp = 0;
  (void)frames;
  (void)fp;

  const Inst* const insts = insts_.data();
  const uint32_t n_insts = static_cast<uint32_t>(insts_.size());
  for (uint32_t ip = 0; ip != n_insts; ++ip) {
    const Inst inst = insts[ip];
    switch (inst.op) {
      case Inst::kLit1:
        if (p >= size || static_cast<uint8_t>(data[p]) != inst.byte) {
          return false;
        }
        ++p;
        break;
      case Inst::kLit:
        if (size - p < inst.b ||
            std::memcmp(data + p, pool_.data() + inst.a, inst.b) != 0) {
          return false;
        }
        p += inst.b;
        break;
      case Inst::kField: {
        const size_t start = p;
        p = scan_field_end(p);
        if (p == start) return false;  // fields are non-empty
        fields += p - start;
        if constexpr (kEmitEvents) {
          MatchEvent ev;
          ev.kind = MatchEvent::kFieldValue;
          ev.node = nodes_[inst.a];
          ev.begin = start;
          ev.end = p;
          events->push_back(ev);
        }
        break;
      }
      case Inst::kFieldLit1: {
        const size_t start = p;
        p = scan_field_end(p);
        if (p == start) return false;
        fields += p - start;
        if constexpr (kEmitEvents) {
          MatchEvent ev;
          ev.kind = MatchEvent::kFieldValue;
          ev.node = nodes_[inst.a];
          ev.begin = start;
          ev.end = p;
          events->push_back(ev);
        }
        if (p >= size || static_cast<uint8_t>(data[p]) != inst.byte) {
          return false;
        }
        ++p;
        break;
      }
      case Inst::kFieldLitRun: {
        const char* const lits = pool_.data() + inst.c;
        for (uint32_t i = 0; i < inst.b; ++i) {
          const size_t start = p;
          p = scan_field_end(p);
          if (p == start) return false;
          fields += p - start;
          if constexpr (kEmitEvents) {
            MatchEvent ev;
            ev.kind = MatchEvent::kFieldValue;
            ev.node = nodes_[inst.a + i];
            ev.begin = start;
            ev.end = p;
            events->push_back(ev);
          }
          if (p >= size ||
              static_cast<uint8_t>(data[p]) != static_cast<uint8_t>(lits[i])) {
            return false;
          }
          ++p;
        }
        break;
      }
      case Inst::kFieldArray: {
        size_t count_idx = 0;
        if constexpr (kEmitEvents) {
          count_idx = events->size();
          MatchEvent ev;
          ev.kind = MatchEvent::kArrayCount;
          ev.node = nodes_[inst.b];
          events->push_back(ev);
        }
        size_t reps = 0;
        for (;;) {
          const size_t start = p;
          p = scan_field_end(p);
          if (p == start) return false;
          fields += p - start;
          if constexpr (kEmitEvents) {
            MatchEvent ev;
            ev.kind = MatchEvent::kFieldValue;
            ev.node = nodes_[inst.a];
            ev.begin = start;
            ev.end = p;
            events->push_back(ev);
          }
          ++reps;
          if (p < size && static_cast<uint8_t>(data[p]) == inst.byte) {
            ++p;  // consume separator; LL(1) says another element follows
            continue;
          }
          break;
        }
        if constexpr (kEmitEvents) {
          (*events)[count_idx].count = reps;
        }
        break;
      }
      case Inst::kArrayBegin: {
        if constexpr (kEmitEvents) {
          ArrayFrame& frame = frames[fp++];
          frame.reps = 1;
          frame.count_idx = events->size();
          MatchEvent ev;
          ev.kind = MatchEvent::kArrayCount;
          ev.node = nodes_[inst.b];
          events->push_back(ev);
        }
        break;
      }
      case Inst::kArrayNext: {
        if (p < size && static_cast<uint8_t>(data[p]) == inst.byte) {
          ++p;  // consume separator; another element follows
          if constexpr (kEmitEvents) ++frames[fp - 1].reps;
          ip = inst.a - 1;  // loop back to the element program
        } else if constexpr (kEmitEvents) {
          const ArrayFrame& frame = frames[--fp];
          (*events)[frame.count_idx].count = frame.reps;
        }
        break;
      }
    }
  }
  *pos = p;
  *field_chars += fields;
  return true;
}

template <bool kEmitEvents>
bool CompiledTemplate::Dispatch(std::string_view text, size_t* pos,
                                size_t* field_chars,
                                std::vector<MatchEvent>* events) const {
  switch (scan_kind_) {
    case ScanKind::kMemchr:
      return Run<kEmitEvents, ScanKind::kMemchr>(text, pos, field_chars,
                                                 events);
    case ScanKind::kSwar2:
      return Run<kEmitEvents, ScanKind::kSwar2>(text, pos, field_chars,
                                                events);
    case ScanKind::kSwar3:
      return Run<kEmitEvents, ScanKind::kSwar3>(text, pos, field_chars,
                                                events);
    case ScanKind::kSwar4:
      return Run<kEmitEvents, ScanKind::kSwar4>(text, pos, field_chars,
                                                events);
    case ScanKind::kClass:
      return Run<kEmitEvents, ScanKind::kClass>(text, pos, field_chars,
                                                events);
    case ScanKind::kTable:
      break;
  }
  return Run<kEmitEvents, ScanKind::kTable>(text, pos, field_chars, events);
}

std::optional<MatchStats> CompiledTemplate::TryMatch(std::string_view text,
                                                     size_t pos) const {
  MatchStats stats;
  size_t p = pos;
  if (!Dispatch<false>(text, &p, &stats.field_chars, nullptr)) {
    return std::nullopt;
  }
  stats.end = p;
  return stats;
}

std::optional<MatchStats> CompiledTemplate::ParseFlat(
    std::string_view text, size_t pos, std::vector<MatchEvent>* events) const {
  events->clear();
  MatchStats stats;
  size_t p = pos;
  if (!Dispatch<true>(text, &p, &stats.field_chars, events)) {
    return std::nullopt;
  }
  stats.end = p;
  return stats;
}

}  // namespace datamaran
