#include "template/compiled.h"

#include <cstring>
#include <unordered_map>

namespace datamaran {

namespace {

CharSet FirstBytesOfNode(const TemplateNode& node, const CharSet& rt_charset) {
  switch (node.kind) {
    case NodeKind::kChar: {
      CharSet s;
      s.Add(static_cast<unsigned char>(node.ch));
      return s;
    }
    case NodeKind::kField: {
      // Fields are non-empty runs of non-charset bytes, so any byte outside
      // the RT-CharSet can start one.
      CharSet s;
      for (int c = 0; c < 256; ++c) {
        if (!rt_charset.Contains(static_cast<unsigned char>(c))) {
          s.Add(static_cast<unsigned char>(c));
        }
      }
      return s;
    }
    case NodeKind::kStruct:
      // Every node consumes at least one character (validated), so only the
      // first child contributes.
      return FirstBytesOfNode(*node.children[0], rt_charset);
    case NodeKind::kArray:
      return FirstBytesOfNode(*node.children[0], rt_charset);
  }
  return CharSet();
}

/// Per-byte high-bit mask of the zero bytes of `v` (classic SWAR zero-byte
/// trick). Borrow propagation can only disturb bytes *above* a true zero,
/// so the lowest set high-bit always marks the first zero byte exactly —
/// which is all the position scan consumes.
inline uint64_t ZeroByteMask(uint64_t v) {
  return (v - 0x0101010101010101ull) & ~v & 0x8080808080808080ull;
}

inline uint64_t BroadcastByte(uint8_t b) {
  return 0x0101010101010101ull * b;
}

constexpr bool kLittleEndian =
#if defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
    true;
#else
    false;
#endif

/// Bump whenever instruction semantics or the blob layout change; stale
/// persisted programs are then rejected by fingerprint and recompiled.
constexpr int kProgramFormatVersion = 1;

// The blob stores multi-byte integers explicitly little-endian, so
// serialized programs are portable across hosts.
void PutU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xffu));
  out->push_back(static_cast<char>((v >> 8) & 0xffu));
  out->push_back(static_cast<char>((v >> 16) & 0xffu));
  out->push_back(static_cast<char>((v >> 24) & 0xffu));
}

uint32_t Fnv1a(std::string_view bytes) {
  uint32_t h = 2166136261u;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

/// Bounds-checked cursor over a serialized program blob.
struct ByteReader {
  const uint8_t* p;
  const uint8_t* end;

  bool ReadU8(uint8_t* out) {
    if (p >= end) return false;
    *out = *p++;
    return true;
  }
  bool ReadU32(uint32_t* out) {
    if (end - p < 4) return false;
    *out = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    p += 4;
    return true;
  }
  bool ReadBytes(size_t n, std::string_view* out) {
    if (static_cast<size_t>(end - p) < n) return false;
    *out = std::string_view(reinterpret_cast<const char*>(p), n);
    p += n;
    return true;
  }
};

void CollectPreorder(const TemplateNode& node,
                     std::vector<const TemplateNode*>* out) {
  out->push_back(&node);
  for (const auto& child : node.children) CollectPreorder(*child, out);
}

void Put256Bitmap(std::string* out, const uint8_t* flags) {
  for (int base = 0; base < 256; base += 8) {
    uint8_t byte = 0;
    for (int bit = 0; bit < 8; ++bit) {
      if (flags[base + bit]) byte |= static_cast<uint8_t>(1u << bit);
    }
    out->push_back(static_cast<char>(byte));
  }
}

}  // namespace

CharSet TemplateFirstBytes(const StructureTemplate& st) {
  if (st.empty()) return CharSet();
  return FirstBytesOfNode(st.root(), st.charset());
}

CompiledTemplate::CompiledTemplate(const StructureTemplate* st,
                                   CharsetEngine charset_engine)
    : st_(st) {
  const CharSet& charset = st_->charset();
  for (int c = 0; c < 256; ++c) {
    stop_[static_cast<size_t>(c)] =
        charset.Contains(static_cast<unsigned char>(c)) ? 1 : 0;
  }
  InitScanStrategy(charset.ToString(), charset_engine);
  first_bytes_ = TemplateFirstBytes(*st_);
  Compile(st_->root(), /*depth=*/0);
  FlushPendingField();
  FlushLiteral();
  pending_literal_.shrink_to_fit();
}

void CompiledTemplate::InitScanStrategy(const std::string& members,
                                        CharsetEngine charset_engine) {
  if (members.size() == 1) {
    // Fields run to the line terminator: long scans, vectorized memchr.
    scan_kind_ = ScanKind::kMemchr;
    memchr_stop_ = static_cast<uint8_t>(members[0]);
  } else if (members.size() >= 2 && members.size() <= 4 && kLittleEndian) {
    // (An empty charset — reachable via unvalidated templates like "F" —
    // must stay on the table path: zeroed SWAR masks would stop at NUL.)
    // The common CSV/log shape (separators + '\n'): one 8-byte SWAR step
    // finds the first stop byte's position without a per-byte loop.
    scan_kind_ = members.size() == 2   ? ScanKind::kSwar2
                 : members.size() == 3 ? ScanKind::kSwar3
                                       : ScanKind::kSwar4;
    for (size_t i = 0; i < members.size(); ++i) {
      swar_[i] = BroadcastByte(static_cast<uint8_t>(members[i]));
    }
  } else if (members.size() >= 5 &&
             ResolveCharsetEngine(charset_engine) == CharsetEngine::kSimd) {
    // Wide stop sets previously fell back to the per-byte table; the
    // classifier scans them 16/32 bytes at a time (first-stop position
    // semantics are identical, so match results don't change).
    scan_kind_ = ScanKind::kClass;
    classifier_.emplace(st_->charset(), charset_engine);
  }
}

void CompiledTemplate::FlushLiteral() {
  if (pending_literal_.empty()) return;
  Inst inst;
  if (pending_literal_.size() == 1) {
    inst.op = Inst::kLit1;
    inst.byte = static_cast<uint8_t>(pending_literal_[0]);
  } else {
    inst.op = Inst::kLit;
    inst.a = static_cast<uint32_t>(pool_.size());
    inst.b = static_cast<uint32_t>(pending_literal_.size());
    pool_ += pending_literal_;
  }
  insts_.push_back(inst);
  pending_literal_.clear();
}

void CompiledTemplate::FlushPendingField() {
  if (pending_field_ == nullptr) return;
  Inst inst;
  inst.op = Inst::kField;
  inst.a = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(pending_field_);
  insts_.push_back(inst);
  pending_field_ = nullptr;
}

void CompiledTemplate::Compile(const TemplateNode& node, int depth) {
  switch (node.kind) {
    case NodeKind::kChar:
      if (pending_field_ != nullptr) {
        // The dominant token pair: field terminated by a fixed literal.
        // Adjacent pairs chain into one kFieldLitRun — a whole "F,F,F,F\n"
        // line body executes as a single instruction. Adjacency guarantees
        // the run's field nodes are consecutive in nodes_ and its literal
        // bytes contiguous in pool_.
        if (!insts_.empty() && (insts_.back().op == Inst::kFieldLit1 ||
                                insts_.back().op == Inst::kFieldLitRun)) {
          Inst& prev = insts_.back();
          if (prev.op == Inst::kFieldLit1) {
            prev.op = Inst::kFieldLitRun;
            prev.c = static_cast<uint32_t>(pool_.size());
            pool_.push_back(static_cast<char>(prev.byte));
            prev.b = 1;
          }
          pool_.push_back(node.ch);
          prev.b += 1;
          nodes_.push_back(pending_field_);
          pending_field_ = nullptr;
          return;
        }
        Inst inst;
        inst.op = Inst::kFieldLit1;
        inst.byte = static_cast<uint8_t>(node.ch);
        inst.a = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back(pending_field_);
        insts_.push_back(inst);
        pending_field_ = nullptr;
        return;
      }
      pending_literal_.push_back(node.ch);
      return;
    case NodeKind::kField:
      FlushLiteral();
      FlushPendingField();  // adjacent fields are invalid, but stay safe
      pending_field_ = &node;
      return;
    case NodeKind::kStruct:
      for (const auto& child : node.children) Compile(*child, depth);
      return;
    case NodeKind::kArray: {
      FlushLiteral();
      FlushPendingField();
      const TemplateNode& elem = *node.children[0];
      if (elem.kind == NodeKind::kField) {
        // The dominant generated shape, e.g. a CSV row's "(F,)*F": one
        // fused instruction alternates field scan and separator lookahead.
        Inst inst;
        inst.op = Inst::kFieldArray;
        inst.byte = static_cast<uint8_t>(node.ch);
        inst.a = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back(&elem);
        inst.b = static_cast<uint32_t>(nodes_.size());
        nodes_.push_back(&node);
        insts_.push_back(inst);
        return;
      }
      if (depth + 1 > kMaxArrayDepth) {
        ok_ = false;
        return;
      }
      Inst begin;
      begin.op = Inst::kArrayBegin;
      begin.b = static_cast<uint32_t>(nodes_.size());
      nodes_.push_back(&node);
      insts_.push_back(begin);
      const uint32_t elem_start = static_cast<uint32_t>(insts_.size());
      Compile(elem, depth + 1);
      FlushPendingField();
      FlushLiteral();
      Inst next;
      next.op = Inst::kArrayNext;
      next.byte = static_cast<uint8_t>(node.ch);
      next.a = elem_start;
      insts_.push_back(next);
      return;
    }
  }
}

template <bool kEmitEvents, CompiledTemplate::ScanKind kScan>
bool CompiledTemplate::Run(std::string_view text, size_t* pos,
                           size_t* field_chars,
                           std::vector<MatchEvent>* events) const {
  const char* const data = text.data();
  const size_t size = text.size();
  size_t p = *pos;
  size_t fields = 0;

  // Hoisted scan state; with kScan a compile-time constant the per-field
  // scan below inlines into the dispatch loop with no branching on mode.
  const uint64_t b0 = swar_[0];
  const uint64_t b1 = swar_[1];
  const uint64_t b2 = swar_[2];
  const uint64_t b3 = swar_[3];
  constexpr int kStops = kScan == ScanKind::kSwar2   ? 2
                         : kScan == ScanKind::kSwar3 ? 3
                         : kScan == ScanKind::kSwar4 ? 4
                                                     : 0;
  (void)b0;
  (void)b1;
  (void)b2;
  (void)b3;
  auto scan_field_end = [&](size_t q) -> size_t {
    if constexpr (kScan == ScanKind::kMemchr) {
      const void* hit = std::memchr(data + q, memchr_stop_, size - q);
      return hit != nullptr
                 ? static_cast<size_t>(static_cast<const char*>(hit) - data)
                 : size;
    } else if constexpr (kStops > 0) {
      // Log tokens are mostly 1-3 characters: with three or more stop
      // bytes, probe a few bytes with the stop table first so short fields
      // never pay the word-scan setup (two broadcast masks are cheap
      // enough that the word scan wins outright).
      if constexpr (kStops > 2) {
        const size_t lead = q + 4 < size ? q + 4 : size;
        while (q < lead) {
          if (stop_[static_cast<uint8_t>(data[q])]) return q;
          ++q;
        }
      }
      while (q + 8 <= size) {
        uint64_t word;
        std::memcpy(&word, data + q, 8);
        uint64_t mask = ZeroByteMask(word ^ b0);
        if constexpr (kStops > 1) mask |= ZeroByteMask(word ^ b1);
        if constexpr (kStops > 2) mask |= ZeroByteMask(word ^ b2);
        if constexpr (kStops > 3) mask |= ZeroByteMask(word ^ b3);
        if (mask != 0) {
          // Lowest set high-bit == first stop byte (little-endian layout).
          return q + (static_cast<size_t>(__builtin_ctzll(mask)) >> 3);
        }
        q += 8;
      }
      while (q < size && !stop_[static_cast<uint8_t>(data[q])]) ++q;
      return q;
    } else if constexpr (kScan == ScanKind::kClass) {
      // Short tokens resolve in the table lead-in; longer ones hand off to
      // the vectorized classifier (identical first-stop position).
      const size_t lead = q + 4 < size ? q + 4 : size;
      while (q < lead) {
        if (stop_[static_cast<uint8_t>(data[q])]) return q;
        ++q;
      }
      return classifier_->FindFirstMember(text, q);
    } else {
      while (q < size && !stop_[static_cast<uint8_t>(data[q])]) ++q;
      return q;
    }
  };

  struct ArrayFrame {
    size_t count_idx;  ///< index of the kArrayCount event to patch
    size_t reps;
  };
  // Only the event stream consumes repetition counts; the frame stack is
  // compiled out of the capture-free path entirely.
  ArrayFrame frames[kMaxArrayDepth];
  int fp = 0;
  (void)frames;
  (void)fp;

  const Inst* const insts = insts_.data();
  const uint32_t n_insts = static_cast<uint32_t>(insts_.size());
  for (uint32_t ip = 0; ip != n_insts; ++ip) {
    const Inst inst = insts[ip];
    switch (inst.op) {
      case Inst::kLit1:
        if (p >= size || static_cast<uint8_t>(data[p]) != inst.byte) {
          return false;
        }
        ++p;
        break;
      case Inst::kLit:
        if (size - p < inst.b ||
            std::memcmp(data + p, pool_.data() + inst.a, inst.b) != 0) {
          return false;
        }
        p += inst.b;
        break;
      case Inst::kField: {
        const size_t start = p;
        p = scan_field_end(p);
        if (p == start) return false;  // fields are non-empty
        fields += p - start;
        if constexpr (kEmitEvents) {
          MatchEvent ev;
          ev.kind = MatchEvent::kFieldValue;
          ev.node = nodes_[inst.a];
          ev.begin = start;
          ev.end = p;
          events->push_back(ev);
        }
        break;
      }
      case Inst::kFieldLit1: {
        const size_t start = p;
        p = scan_field_end(p);
        if (p == start) return false;
        fields += p - start;
        if constexpr (kEmitEvents) {
          MatchEvent ev;
          ev.kind = MatchEvent::kFieldValue;
          ev.node = nodes_[inst.a];
          ev.begin = start;
          ev.end = p;
          events->push_back(ev);
        }
        if (p >= size || static_cast<uint8_t>(data[p]) != inst.byte) {
          return false;
        }
        ++p;
        break;
      }
      case Inst::kFieldLitRun: {
        const char* const lits = pool_.data() + inst.c;
        for (uint32_t i = 0; i < inst.b; ++i) {
          const size_t start = p;
          p = scan_field_end(p);
          if (p == start) return false;
          fields += p - start;
          if constexpr (kEmitEvents) {
            MatchEvent ev;
            ev.kind = MatchEvent::kFieldValue;
            ev.node = nodes_[inst.a + i];
            ev.begin = start;
            ev.end = p;
            events->push_back(ev);
          }
          if (p >= size ||
              static_cast<uint8_t>(data[p]) != static_cast<uint8_t>(lits[i])) {
            return false;
          }
          ++p;
        }
        break;
      }
      case Inst::kFieldArray: {
        size_t count_idx = 0;
        if constexpr (kEmitEvents) {
          count_idx = events->size();
          MatchEvent ev;
          ev.kind = MatchEvent::kArrayCount;
          ev.node = nodes_[inst.b];
          events->push_back(ev);
        }
        size_t reps = 0;
        for (;;) {
          const size_t start = p;
          p = scan_field_end(p);
          if (p == start) return false;
          fields += p - start;
          if constexpr (kEmitEvents) {
            MatchEvent ev;
            ev.kind = MatchEvent::kFieldValue;
            ev.node = nodes_[inst.a];
            ev.begin = start;
            ev.end = p;
            events->push_back(ev);
          }
          ++reps;
          if (p < size && static_cast<uint8_t>(data[p]) == inst.byte) {
            ++p;  // consume separator; LL(1) says another element follows
            continue;
          }
          break;
        }
        if constexpr (kEmitEvents) {
          (*events)[count_idx].count = reps;
        }
        break;
      }
      case Inst::kArrayBegin: {
        if constexpr (kEmitEvents) {
          ArrayFrame& frame = frames[fp++];
          frame.reps = 1;
          frame.count_idx = events->size();
          MatchEvent ev;
          ev.kind = MatchEvent::kArrayCount;
          ev.node = nodes_[inst.b];
          events->push_back(ev);
        }
        break;
      }
      case Inst::kArrayNext: {
        if (p < size && static_cast<uint8_t>(data[p]) == inst.byte) {
          ++p;  // consume separator; another element follows
          if constexpr (kEmitEvents) ++frames[fp - 1].reps;
          ip = inst.a - 1;  // loop back to the element program
        } else if constexpr (kEmitEvents) {
          const ArrayFrame& frame = frames[--fp];
          (*events)[frame.count_idx].count = frame.reps;
        }
        break;
      }
    }
  }
  *pos = p;
  *field_chars += fields;
  return true;
}

template <bool kEmitEvents>
bool CompiledTemplate::Dispatch(std::string_view text, size_t* pos,
                                size_t* field_chars,
                                std::vector<MatchEvent>* events) const {
  switch (scan_kind_) {
    case ScanKind::kMemchr:
      return Run<kEmitEvents, ScanKind::kMemchr>(text, pos, field_chars,
                                                 events);
    case ScanKind::kSwar2:
      return Run<kEmitEvents, ScanKind::kSwar2>(text, pos, field_chars,
                                                events);
    case ScanKind::kSwar3:
      return Run<kEmitEvents, ScanKind::kSwar3>(text, pos, field_chars,
                                                events);
    case ScanKind::kSwar4:
      return Run<kEmitEvents, ScanKind::kSwar4>(text, pos, field_chars,
                                                events);
    case ScanKind::kClass:
      return Run<kEmitEvents, ScanKind::kClass>(text, pos, field_chars,
                                                events);
    case ScanKind::kTable:
      break;
  }
  return Run<kEmitEvents, ScanKind::kTable>(text, pos, field_chars, events);
}

std::optional<MatchStats> CompiledTemplate::TryMatch(std::string_view text,
                                                     size_t pos) const {
  MatchStats stats;
  size_t p = pos;
  if (!Dispatch<false>(text, &p, &stats.field_chars, nullptr)) {
    return std::nullopt;
  }
  stats.end = p;
  return stats;
}

std::optional<MatchStats> CompiledTemplate::ParseFlat(
    std::string_view text, size_t pos, std::vector<MatchEvent>* events) const {
  events->clear();
  MatchStats stats;
  size_t p = pos;
  if (!Dispatch<true>(text, &p, &stats.field_chars, events)) {
    return std::nullopt;
  }
  stats.end = p;
  return stats;
}

std::string CompiledTemplate::ProgramFingerprint() {
  return "dmprog v" + std::to_string(kProgramFormatVersion) +
         " ops=" + std::to_string(static_cast<int>(Inst::kArrayNext) + 1) +
         " depth=" + std::to_string(kMaxArrayDepth);
}

std::string CompiledTemplate::SerializeProgram() const {
  if (!ok_ || st_ == nullptr || st_->empty()) return std::string();
  std::vector<const TemplateNode*> preorder;
  CollectPreorder(st_->root(), &preorder);
  std::unordered_map<const TemplateNode*, uint32_t> index;
  index.reserve(preorder.size());
  for (size_t i = 0; i < preorder.size(); ++i) {
    index.emplace(preorder[i], static_cast<uint32_t>(i));
  }

  std::string payload;
  payload.reserve(insts_.size() * 14 + pool_.size() + nodes_.size() * 4 + 96);
  PutU32(&payload, static_cast<uint32_t>(insts_.size()));
  for (const Inst& inst : insts_) {
    payload.push_back(static_cast<char>(inst.op));
    payload.push_back(static_cast<char>(inst.byte));
    PutU32(&payload, inst.a);
    PutU32(&payload, inst.b);
    PutU32(&payload, inst.c);
  }
  PutU32(&payload, static_cast<uint32_t>(pool_.size()));
  payload += pool_;
  PutU32(&payload, static_cast<uint32_t>(nodes_.size()));
  for (const TemplateNode* node : nodes_) {
    auto it = index.find(node);
    if (it == index.end()) return std::string();  // foreign node: no program
    PutU32(&payload, it->second);
  }
  // Charset-derived scan state, so loading skips the CharSet walks: stop
  // table as a 256-bit bitmap, the member string (scan-kind selection),
  // and the FIRST-set bitmap.
  Put256Bitmap(&payload, stop_.data());
  const std::string members = st_->charset().ToString();
  PutU32(&payload, static_cast<uint32_t>(members.size()));
  payload += members;
  std::array<uint8_t, 256> first{};
  for (int c = 0; c < 256; ++c) {
    first[static_cast<size_t>(c)] =
        first_bytes_.Contains(static_cast<unsigned char>(c)) ? 1 : 0;
  }
  Put256Bitmap(&payload, first.data());

  const std::string fp = ProgramFingerprint();
  std::string blob;
  blob.reserve(4 + fp.size() + 4 + payload.size());
  PutU32(&blob, static_cast<uint32_t>(fp.size()));
  blob += fp;
  PutU32(&blob, Fnv1a(payload));
  blob += payload;
  return blob;
}

std::optional<CompiledTemplate> CompiledTemplate::FromSerialized(
    const StructureTemplate* st, std::string_view blob,
    CharsetEngine charset_engine) {
  if (st == nullptr || st->empty() || blob.empty()) return std::nullopt;
  ByteReader r{reinterpret_cast<const uint8_t*>(blob.data()),
               reinterpret_cast<const uint8_t*>(blob.data()) + blob.size()};
  uint32_t fp_len = 0;
  std::string_view fp;
  if (!r.ReadU32(&fp_len) || fp_len > 256 || !r.ReadBytes(fp_len, &fp)) {
    return std::nullopt;
  }
  if (fp != ProgramFingerprint()) return std::nullopt;
  uint32_t checksum = 0;
  if (!r.ReadU32(&checksum)) return std::nullopt;
  const std::string_view payload(reinterpret_cast<const char*>(r.p),
                                 static_cast<size_t>(r.end - r.p));
  if (Fnv1a(payload) != checksum) return std::nullopt;

  CompiledTemplate ct;
  ct.st_ = st;
  uint32_t n_insts = 0;
  if (!r.ReadU32(&n_insts) || n_insts > (1u << 22)) return std::nullopt;
  ct.insts_.reserve(n_insts);
  for (uint32_t i = 0; i < n_insts; ++i) {
    uint8_t op = 0;
    Inst inst;
    if (!r.ReadU8(&op) || op > static_cast<uint8_t>(Inst::kArrayNext) ||
        !r.ReadU8(&inst.byte) || !r.ReadU32(&inst.a) || !r.ReadU32(&inst.b) ||
        !r.ReadU32(&inst.c)) {
      return std::nullopt;
    }
    inst.op = static_cast<Inst::Op>(op);
    ct.insts_.push_back(inst);
  }
  uint32_t pool_len = 0;
  std::string_view pool;
  if (!r.ReadU32(&pool_len) || !r.ReadBytes(pool_len, &pool)) {
    return std::nullopt;
  }
  ct.pool_.assign(pool);
  std::vector<const TemplateNode*> preorder;
  CollectPreorder(st->root(), &preorder);
  uint32_t n_nodes = 0;
  if (!r.ReadU32(&n_nodes) || n_nodes > (1u << 22)) return std::nullopt;
  ct.nodes_.reserve(n_nodes);
  for (uint32_t i = 0; i < n_nodes; ++i) {
    uint32_t idx = 0;
    if (!r.ReadU32(&idx) || idx >= preorder.size()) return std::nullopt;
    ct.nodes_.push_back(preorder[idx]);
  }
  std::string_view stop_bits, first_bits;
  if (!r.ReadBytes(32, &stop_bits)) return std::nullopt;
  for (int c = 0; c < 256; ++c) {
    ct.stop_[static_cast<size_t>(c)] =
        (static_cast<uint8_t>(stop_bits[static_cast<size_t>(c >> 3)]) >>
         (c & 7)) &
        1u;
  }
  uint32_t members_len = 0;
  std::string_view members;
  if (!r.ReadU32(&members_len) || members_len > 256 ||
      !r.ReadBytes(members_len, &members)) {
    return std::nullopt;
  }
  if (!r.ReadBytes(32, &first_bits)) return std::nullopt;
  for (int c = 0; c < 256; ++c) {
    if ((static_cast<uint8_t>(first_bits[static_cast<size_t>(c >> 3)]) >>
         (c & 7)) &
        1u) {
      ct.first_bytes_.Add(static_cast<unsigned char>(c));
    }
  }
  if (r.p != r.end) return std::nullopt;  // trailing bytes: not our blob
  if (!ct.ValidateProgram()) return std::nullopt;
  ct.InitScanStrategy(std::string(members), charset_engine);
  ct.ok_ = true;
  return ct;
}

bool CompiledTemplate::ValidateProgram() const {
  const size_t n_nodes = nodes_.size();
  const size_t pool_size = pool_.size();
  const uint32_t n = static_cast<uint32_t>(insts_.size());
  // depth_before[i] = frame-stack depth when inst i begins executing.
  // Control flow is linear except validated backward jumps, so one pass
  // both computes it and checks every jump lands at matching depth — the
  // invariant that keeps Run's frame stack in [0, kMaxArrayDepth] for any
  // (possibly hostile) deserialized program.
  std::vector<int> depth_before(n, 0);
  std::vector<uint32_t> begins;
  int depth = 0;
  for (uint32_t i = 0; i < n; ++i) {
    depth_before[i] = depth;
    const Inst& inst = insts_[i];
    switch (inst.op) {
      case Inst::kLit:
        if (inst.b == 0 || inst.b > pool_size || inst.a > pool_size - inst.b) {
          return false;
        }
        break;
      case Inst::kLit1:
        break;
      case Inst::kField:
      case Inst::kFieldLit1:
        if (inst.a >= n_nodes || nodes_[inst.a]->kind != NodeKind::kField) {
          return false;
        }
        break;
      case Inst::kFieldLitRun: {
        if (inst.b == 0 || inst.b > n_nodes || inst.a > n_nodes - inst.b) {
          return false;
        }
        for (uint32_t k = 0; k < inst.b; ++k) {
          if (nodes_[inst.a + k]->kind != NodeKind::kField) return false;
        }
        if (inst.b > pool_size || inst.c > pool_size - inst.b) return false;
        break;
      }
      case Inst::kFieldArray:
        if (inst.a >= n_nodes || nodes_[inst.a]->kind != NodeKind::kField) {
          return false;
        }
        if (inst.b >= n_nodes || nodes_[inst.b]->kind != NodeKind::kArray) {
          return false;
        }
        break;
      case Inst::kArrayBegin:
        if (inst.b >= n_nodes || nodes_[inst.b]->kind != NodeKind::kArray) {
          return false;
        }
        if (depth + 1 > kMaxArrayDepth) return false;
        begins.push_back(i);
        ++depth;
        break;
      case Inst::kArrayNext: {
        if (begins.empty()) return false;
        const uint32_t begin = begins.back();
        // The separator branch must jump strictly inside this array's
        // element program, to an instruction at the same static depth.
        if (inst.a <= begin || inst.a > i) return false;
        if (depth_before[inst.a] != depth) return false;
        begins.pop_back();
        --depth;
        break;
      }
    }
  }
  return depth == 0;
}

}  // namespace datamaran
