#ifndef DATAMARAN_TEMPLATE_RECORD_TEMPLATE_H_
#define DATAMARAN_TEMPLATE_RECORD_TEMPLATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/char_class.h"

/// Record-template extraction and reduction (Section 4.1 steps 3-4, §9.1).
///
/// Under Assumption 2 (Non-Overlapping), given the RT-CharSet the record
/// template of an instantiated record is unique: every maximal run of
/// non-RT-CharSet characters is one field value and is replaced by the field
/// placeholder 'F'; RT-CharSet characters are kept verbatim.
///
/// Reduction maps a record template to its *minimal structure template* by
/// collapsing adjacent tandem repeats: a unit X = (elem sep) that occurs two
/// or more times in a row and is followed by one more `elem` becomes the
/// array (elem sep)* elem. Iterated to fixpoint, shortest unit first,
/// leftmost first, so the mapping is deterministic. As the paper notes, not
/// every instantiation of a structure template reduces to the same minimal
/// template (e.g. a one-element list); the generation step's coverage is
/// therefore an underestimate, which is acceptable.

namespace datamaran {

/// Replaces maximal field-value runs in `text` with 'F' and appends the
/// result to `out` (which is not cleared). `text` may span multiple lines.
void AppendRecordTemplate(std::string_view text, const CharSet& rt_charset,
                          std::string* out);

/// Single-pass variant that also returns the number of field characters
/// (bytes outside `rt_charset`) in `text`. The generation hot loop needs
/// both the record template and the field-character count of every line;
/// folding them into one scan halves the per-line traffic.
size_t AppendRecordTemplateCounting(std::string_view text,
                                    const CharSet& rt_charset,
                                    std::string* out);

/// Convenience form returning a fresh string.
std::string ExtractRecordTemplate(std::string_view text,
                                  const CharSet& rt_charset);

/// Reusable scratch space for ReduceToCanonical so the generation hot loop
/// performs no per-call allocation in the steady state.
struct ReduceWorkspace {
  struct Tok {
    enum Kind : uint8_t { kField, kChar, kComposite };
    Kind kind;
    char ch;            // kChar: literal; others: 0
    uint32_t comp = 0;  // kComposite: index into `composites`
  };
  std::vector<Tok> tokens;
  std::vector<std::string> composites;
  /// First literal character of each composite's element (0 when the
  /// element starts with a field). Used for LL(1) fold legality checks.
  std::vector<char> composite_first;
  std::string scratch;
};

/// Reduces a raw record template (chars + 'F' placeholders, no escapes) to
/// the canonical serialization of its minimal structure template.
/// `out` is cleared first.
void ReduceToCanonical(std::string_view record_template, ReduceWorkspace* ws,
                       std::string* out);

/// Convenience form returning a fresh string.
std::string ReduceToCanonical(std::string_view record_template);

}  // namespace datamaran

#endif  // DATAMARAN_TEMPLATE_RECORD_TEMPLATE_H_
