#include "template/matcher.h"

namespace datamaran {

TemplateMatcher::TemplateMatcher(const StructureTemplate* st)
    : st_(st), rt_charset_(st->charset()) {}

std::optional<MatchStats> TemplateMatcher::TryMatch(std::string_view text,
                                                    size_t pos) const {
  MatchStats stats;
  size_t p = pos;
  if (!ParseFlatNode(st_->root(), text, &p, &stats.field_chars, nullptr)) {
    return std::nullopt;
  }
  stats.end = p;
  return stats;
}

bool TemplateMatcher::ParseNode(const TemplateNode& node,
                                std::string_view text, size_t* pos,
                                ParsedValue* out) const {
  out->kind = node.kind;
  out->begin = *pos;
  switch (node.kind) {
    case NodeKind::kChar:
      if (*pos >= text.size() || text[*pos] != node.ch) return false;
      ++*pos;
      break;
    case NodeKind::kField: {
      size_t p = *pos;
      while (p < text.size() &&
             !rt_charset_.Contains(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      if (p == *pos) return false;
      *pos = p;
      break;
    }
    case NodeKind::kStruct: {
      out->children.reserve(node.children.size());
      for (const auto& child : node.children) {
        ParsedValue v;
        if (!ParseNode(*child, text, pos, &v)) return false;
        out->children.push_back(std::move(v));
      }
      break;
    }
    case NodeKind::kArray: {
      const TemplateNode& elem = *node.children[0];
      ParsedValue first;
      if (!ParseNode(elem, text, pos, &first)) return false;
      out->children.push_back(std::move(first));
      while (*pos < text.size() && text[*pos] == node.ch) {
        ++*pos;
        ParsedValue next;
        if (!ParseNode(elem, text, pos, &next)) return false;
        out->children.push_back(std::move(next));
      }
      break;
    }
  }
  out->end = *pos;
  return true;
}

std::optional<ParsedValue> TemplateMatcher::Parse(std::string_view text,
                                                  size_t pos) const {
  ParsedValue root;
  size_t p = pos;
  if (!ParseNode(st_->root(), text, &p, &root)) return std::nullopt;
  return root;
}

bool TemplateMatcher::ParseFlatNode(const TemplateNode& node,
                                    std::string_view text, size_t* pos,
                                    size_t* field_chars,
                                    std::vector<MatchEvent>* events) const {
  switch (node.kind) {
    case NodeKind::kChar:
      if (*pos >= text.size() || text[*pos] != node.ch) return false;
      ++*pos;
      return true;
    case NodeKind::kField: {
      size_t start = *pos;
      size_t p = *pos;
      while (p < text.size() &&
             !rt_charset_.Contains(static_cast<unsigned char>(text[p]))) {
        ++p;
      }
      if (p == start) return false;  // fields are non-empty
      *field_chars += p - start;
      *pos = p;
      if (events != nullptr) {
        MatchEvent ev;
        ev.kind = MatchEvent::kFieldValue;
        ev.node = &node;
        ev.begin = start;
        ev.end = p;
        events->push_back(ev);
      }
      return true;
    }
    case NodeKind::kStruct:
      for (const auto& child : node.children) {
        if (!ParseFlatNode(*child, text, pos, field_chars, events)) {
          return false;
        }
      }
      return true;
    case NodeKind::kArray: {
      const TemplateNode& elem = *node.children[0];
      // Emit the count event up front and patch the count afterwards so the
      // stream stays in template (pre-)order without a second pass.
      size_t count_idx = 0;
      if (events != nullptr) {
        count_idx = events->size();
        MatchEvent ev;
        ev.kind = MatchEvent::kArrayCount;
        ev.node = &node;
        events->push_back(ev);
      }
      size_t reps = 1;
      if (!ParseFlatNode(elem, text, pos, field_chars, events)) return false;
      while (*pos < text.size() && text[*pos] == node.ch) {
        ++*pos;  // consume separator; LL(1) says another element follows
        if (!ParseFlatNode(elem, text, pos, field_chars, events)) {
          return false;
        }
        ++reps;
      }
      if (events != nullptr) (*events)[count_idx].count = reps;
      return true;
    }
  }
  return false;
}

std::optional<MatchStats> TemplateMatcher::ParseFlat(
    std::string_view text, size_t pos,
    std::vector<MatchEvent>* events) const {
  events->clear();
  MatchStats stats;
  size_t p = pos;
  if (!ParseFlatNode(st_->root(), text, &p, &stats.field_chars, events)) {
    return std::nullopt;
  }
  stats.end = p;
  return stats;
}

}  // namespace datamaran
