#ifndef DATAMARAN_TEMPLATE_TEMPLATE_H_
#define DATAMARAN_TEMPLATE_TEMPLATE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/char_class.h"
#include "util/status.h"

/// Structure-template AST (Assumption 3).
///
/// A structure template is a restricted regular expression over record
/// templates. The paper's two constructors are:
///   Struct:  a sequence of simple strings / sub-expressions.
///   Array:   ({regexA}x)*{regexA}y  -- a list of regexA separated by the
///            character x and terminated by the character y.
///
/// We represent Array as Array{elem, sep} := (elem sep)* elem with at least
/// one element; the terminating character y is simply the first character
/// following the array in the parent Struct (validated to differ from x so
/// the whole template stays LL(1)-parseable). This is equivalent to the
/// paper's form and composes better under reduction and unfolding.
///
/// Canonical serialization (used for hashing, equality and MDL's len(ST)):
///   Field          -> 'F'
///   Char c         -> c, preceded by a backslash if c is ( ) * or backslash
///   Struct         -> concatenation of children
///   Array{elem,x}  -> '(' ser(elem) esc(x) ')' '*' ser(elem)
/// e.g. a CSV row is "(F,)*F\n". Letters never appear literally in templates
/// (RT-CharSets contain only special characters), so 'F' is unambiguous.

namespace datamaran {

enum class NodeKind { kField, kChar, kStruct, kArray };

/// One node of a structure-template tree. Trees are immutable after
/// construction by convention; use Clone() to derive modified copies.
struct TemplateNode {
  NodeKind kind;
  /// For kChar: the literal character. For kArray: the separator x.
  char ch = 0;
  /// For kStruct: the sequence. For kArray: exactly one child, the element.
  std::vector<std::unique_ptr<TemplateNode>> children;

  static std::unique_ptr<TemplateNode> Field();
  static std::unique_ptr<TemplateNode> Char(char c);
  static std::unique_ptr<TemplateNode> Struct(
      std::vector<std::unique_ptr<TemplateNode>> children);
  static std::unique_ptr<TemplateNode> Array(
      std::unique_ptr<TemplateNode> elem, char sep);

  std::unique_ptr<TemplateNode> Clone() const;
  bool Equals(const TemplateNode& other) const;
};

/// A complete structure template: a root Struct (possibly with nested
/// arrays) that must end with the '\n' character (records are line-blocks,
/// Definition 2.4).
class StructureTemplate {
 public:
  StructureTemplate() = default;
  explicit StructureTemplate(std::unique_ptr<TemplateNode> root);

  StructureTemplate(const StructureTemplate& other);
  StructureTemplate& operator=(const StructureTemplate& other);
  StructureTemplate(StructureTemplate&&) = default;
  StructureTemplate& operator=(StructureTemplate&&) = default;

  /// Parses a canonical serialization back into a template.
  static Result<StructureTemplate> FromCanonical(std::string_view canonical);

  const TemplateNode& root() const { return *root_; }
  bool empty() const { return root_ == nullptr; }

  /// Canonical serialization (cached at construction).
  const std::string& canonical() const { return canonical_; }

  /// RT-CharSet of this template: every literal character it contains.
  const CharSet& charset() const { return charset_; }

  /// Number of field leaves (relational columns before array expansion).
  int field_count() const { return field_count_; }

  /// Number of array nodes.
  int array_count() const { return array_count_; }

  /// Number of '\n' literals, i.e. the number of lines a record spans
  /// (arrays never contain '\n' by construction).
  int line_span() const { return line_span_; }

  /// Validates LL(1) restrictions: arrays have non-empty elements whose
  /// serialization does not start with their own separator, the template is
  /// non-empty and ends with '\n', and fields are never adjacent.
  Status Validate() const;

  /// Display form with escapes, e.g. "(F,)*F\\n".
  std::string Display() const;

  friend bool operator==(const StructureTemplate& a,
                         const StructureTemplate& b) {
    return a.canonical_ == b.canonical_;
  }

 private:
  void RecomputeDerived();

  std::unique_ptr<TemplateNode> root_;
  std::string canonical_;
  CharSet charset_;
  int field_count_ = 0;
  int array_count_ = 0;
  int line_span_ = 0;
};

/// Appends the canonical serialization of `node` to `out`.
void SerializeNode(const TemplateNode& node, std::string* out);

/// Escapes a literal template character into `out` per the canonical rules.
void AppendEscapedChar(char c, std::string* out);

}  // namespace datamaran

#endif  // DATAMARAN_TEMPLATE_TEMPLATE_H_
