#ifndef DATAMARAN_TEMPLATE_MATCHER_H_
#define DATAMARAN_TEMPLATE_MATCHER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "template/template.h"

/// LL(1) matching of structure templates against raw text (Section 3.3
/// remark: Assumption 3 templates form an LL(1) grammar, so extraction runs
/// in linear time with single-character lookahead and no backtracking).
///
/// A field matches the maximal non-empty run of characters outside the
/// template's RT-CharSet; a literal matches itself; an array repeats its
/// element as long as the lookahead equals the separator.
///
/// Two engines implement these semantics with byte-identical results:
///  - TemplateMatcher (this header): the reference recursive tree walker.
///  - CompiledTemplate (template/compiled.h): the template lowered once
///    into a flat bytecode program run by a non-recursive loop — what the
///    pipeline's hot paths use by default.
/// Call sites go through RecordMatcher (template/dispatch.h), which binds
/// one template to the engine selected by DatamaranOptions::match_engine;
/// multi-template sites dispatch through a TemplateSetIndex so only
/// templates whose FIRST set admits a line's first byte are attempted.
/// Both engines emit the MatchEvent stream defined here, and a ParsedValue
/// tree can be replayed from it without re-scanning the text
/// (BuildParsedValue in dispatch.h).

namespace datamaran {

/// Parsed shape of one instantiated record, mirroring the template tree.
///  - field: [begin,end) is the field value span in the input text.
///  - char:  no payload (span covers the single character).
///  - struct: children parallel the template's children.
///  - array: children are the parsed elements, one per repetition.
struct ParsedValue {
  NodeKind kind;
  size_t begin = 0;
  size_t end = 0;
  std::vector<ParsedValue> children;
};

/// Result of a successful capture-free match.
struct MatchStats {
  size_t end = 0;          ///< one past the last matched character
  size_t field_chars = 0;  ///< total characters inside field values
};

/// One entry of a flat (allocation-free) parse. Instead of materializing
/// the ParsedValue tree — a vector-of-children allocation per node per
/// record — ParseFlat appends plain events to a caller-owned buffer that
/// is reused across records. `node` identifies the template node, which is
/// all a consumer needs to attribute the event to a relational column
/// (each distinct kField node is one column; array repetitions revisit the
/// same element nodes and pool into the same columns).
struct MatchEvent {
  enum Kind : uint8_t {
    kFieldValue,  ///< `node` is a kField leaf; [begin, end) is the value
    kArrayCount,  ///< `node` is a kArray; `count` repetitions were parsed
  };
  Kind kind;
  const TemplateNode* node;
  size_t begin = 0;  ///< kFieldValue: value span start
  size_t end = 0;    ///< kFieldValue: value span end
  size_t count = 0;  ///< kArrayCount: number of repetitions
};

/// The reference tree-walking matcher, bound to one structure template.
/// Cheap to construct; holds only pointers/derived sets, so the template
/// must outlive the matcher. Kept as the differential-testing baseline for
/// the compiled engine (tests/compiled_test.cc) and selectable pipeline-
/// wide via MatchEngine::kTree.
class TemplateMatcher {
 public:
  explicit TemplateMatcher(const StructureTemplate* st);

  /// Attempts to match one record starting exactly at `pos`.
  /// Returns std::nullopt if the text does not match.
  std::optional<MatchStats> TryMatch(std::string_view text, size_t pos) const;

  /// Like TryMatch but also produces the parsed value tree.
  std::optional<ParsedValue> Parse(std::string_view text, size_t pos) const;

  /// Like Parse but emits a flat event stream instead of a tree: `events`
  /// is cleared, then one kFieldValue event is appended per field value
  /// and one kArrayCount event per array node (in template order, the
  /// array's count preceding its elements' fields). Performs no heap
  /// allocation once the buffer's capacity is warm, which is what makes
  /// the scoring hot loop allocation-free. On a failed match `events` is
  /// left partially filled and must be ignored.
  std::optional<MatchStats> ParseFlat(std::string_view text, size_t pos,
                                      std::vector<MatchEvent>* events) const;

  const StructureTemplate& structure_template() const { return *st_; }

 private:
  bool ParseNode(const TemplateNode& node, std::string_view text, size_t* pos,
                 ParsedValue* out) const;
  /// Shared LL(1) walker for TryMatch (events == nullptr) and ParseFlat:
  /// one implementation keeps capture-free matching and flat parsing in
  /// lockstep by construction.
  bool ParseFlatNode(const TemplateNode& node, std::string_view text,
                     size_t* pos, size_t* field_chars,
                     std::vector<MatchEvent>* events) const;

  const StructureTemplate* st_;
  CharSet rt_charset_;
};

}  // namespace datamaran

#endif  // DATAMARAN_TEMPLATE_MATCHER_H_
