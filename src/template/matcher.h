#ifndef DATAMARAN_TEMPLATE_MATCHER_H_
#define DATAMARAN_TEMPLATE_MATCHER_H_

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "template/template.h"

/// LL(1) matching of structure templates against raw text (Section 3.3
/// remark: Assumption 3 templates form an LL(1) grammar, so extraction runs
/// in linear time with single-character lookahead and no backtracking).
///
/// A field matches the maximal non-empty run of characters outside the
/// template's RT-CharSet; a literal matches itself; an array repeats its
/// element as long as the lookahead equals the separator.

namespace datamaran {

/// Parsed shape of one instantiated record, mirroring the template tree.
///  - field: [begin,end) is the field value span in the input text.
///  - char:  no payload (span covers the single character).
///  - struct: children parallel the template's children.
///  - array: children are the parsed elements, one per repetition.
struct ParsedValue {
  NodeKind kind;
  size_t begin = 0;
  size_t end = 0;
  std::vector<ParsedValue> children;
};

/// Result of a successful capture-free match.
struct MatchStats {
  size_t end = 0;          ///< one past the last matched character
  size_t field_chars = 0;  ///< total characters inside field values
};

/// Matcher bound to one structure template. Cheap to construct; holds only
/// pointers/derived sets, so the template must outlive the matcher.
class TemplateMatcher {
 public:
  explicit TemplateMatcher(const StructureTemplate* st);

  /// Attempts to match one record starting exactly at `pos`.
  /// Returns std::nullopt if the text does not match.
  std::optional<MatchStats> TryMatch(std::string_view text, size_t pos) const;

  /// Like TryMatch but also produces the parsed value tree.
  std::optional<ParsedValue> Parse(std::string_view text, size_t pos) const;

  const StructureTemplate& structure_template() const { return *st_; }

 private:
  bool MatchNode(const TemplateNode& node, std::string_view text, size_t* pos,
                 size_t* field_chars) const;
  bool ParseNode(const TemplateNode& node, std::string_view text, size_t* pos,
                 ParsedValue* out) const;

  const StructureTemplate* st_;
  CharSet rt_charset_;
};

}  // namespace datamaran

#endif  // DATAMARAN_TEMPLATE_MATCHER_H_
