#ifndef DATAMARAN_TEMPLATE_DISPATCH_H_
#define DATAMARAN_TEMPLATE_DISPATCH_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "template/compiled.h"
#include "template/matcher.h"
#include "template/template.h"

/// Engine selection and template-set dispatch for the match hot loops.
///
/// RecordMatcher is the facade every pipeline stage matches through: one
/// template, bound to either the compiled bytecode engine (compiled.h) or
/// the reference tree walker (matcher.h) per DatamaranOptions::match_engine.
/// Both produce identical MatchStats, MatchEvent streams, and ParsedValue
/// trees, so the switch trades nothing but speed.
///
/// TemplateSetIndex serves the multi-template call sites (the extraction
/// scan, multi-template MDL evaluation): templates are bucketed by the 256
/// possible first bytes of a window using each template's FIRST set
/// (TemplateFirstBytes). A line whose first byte is outside a template's
/// FIRST set can never match it, so dispatching through the index attempts
/// only plausible templates per line while preserving the exact
/// first-match-in-priority-order semantics.

namespace datamaran {

/// Reconstructs the ParsedValue tree of a successful match from its flat
/// event stream (field spans + array counts) by replaying the template:
/// literals advance the cursor by their length, fields adopt their event's
/// span, arrays iterate their recorded count. Produces exactly the tree
/// TemplateMatcher::Parse builds, without re-scanning the text.
ParsedValue BuildParsedValue(const StructureTemplate& st, size_t pos,
                             const MatchEvent* events, size_t num_events);

inline ParsedValue BuildParsedValue(const StructureTemplate& st, size_t pos,
                                    const std::vector<MatchEvent>& events) {
  return BuildParsedValue(st, pos, events.data(), events.size());
}

/// One template bound to one engine. Cheap to construct and move; the
/// template must outlive the matcher (same contract as TemplateMatcher).
class RecordMatcher {
 public:
  /// `charset_engine` tunes the compiled engine's wide-stop-set field scans
  /// (util/charset_engine.h); the tree walker ignores it. Results are
  /// byte-identical for every combination. `program`, when non-null and
  /// non-empty, is a persisted CompiledTemplate::SerializeProgram blob for
  /// `st` (catalog warm loads): the compiled engine deserializes it instead
  /// of re-lowering the tree, falling back to a fresh compile when the blob
  /// fails its fingerprint/checksum/validation — never to different output.
  RecordMatcher(const StructureTemplate* st, MatchEngine engine,
                CharsetEngine charset_engine = CharsetEngine::kSimd,
                const std::string* program = nullptr);

  std::optional<MatchStats> TryMatch(std::string_view text, size_t pos) const {
    if (compiled_.has_value()) return compiled_->TryMatch(text, pos);
    return tree_.TryMatch(text, pos);
  }

  std::optional<MatchStats> ParseFlat(std::string_view text, size_t pos,
                                      std::vector<MatchEvent>* events) const {
    if (compiled_.has_value()) return compiled_->ParseFlat(text, pos, events);
    return tree_.ParseFlat(text, pos, events);
  }

  /// Tree-shaped parse. The compiled engine parses flat into a transient
  /// buffer and replays it; hot loops that parse repeatedly should instead
  /// call ParseFlat with a reused buffer and BuildParsedValue on hits.
  std::optional<ParsedValue> Parse(std::string_view text, size_t pos) const;

  const StructureTemplate& structure_template() const { return tree_.structure_template(); }

  /// Bytes that can begin a match (TemplateFirstBytes).
  const CharSet& first_bytes() const { return first_bytes_; }

  /// True when a window starting with `b` could match; false windows are
  /// rejected without resolving or scanning them.
  bool CanStartWith(unsigned char b) const { return first_bytes_.Contains(b); }

 private:
  TemplateMatcher tree_;
  /// Engaged for MatchEngine::kCompiled when the template compiles (the
  /// tree walker is the fallback for programs past engine limits).
  std::optional<CompiledTemplate> compiled_;
  CharSet first_bytes_;
};

/// First-byte dispatch over a set of RecordMatchers in priority order.
/// Candidates(b) lists, in that same order, exactly the templates whose
/// FIRST set contains `b` — a complete, never-skipping filter.
class TemplateSetIndex {
 public:
  TemplateSetIndex() = default;
  explicit TemplateSetIndex(const std::vector<RecordMatcher>& matchers);

  const std::vector<uint16_t>& Candidates(unsigned char first_byte) const {
    return buckets_[first_byte];
  }

 private:
  std::array<std::vector<uint16_t>, 256> buckets_;
};

/// Builds one RecordMatcher per template, in order. The templates vector
/// must outlive the result (matchers hold pointers into it). `programs`,
/// when non-null, is the parallel vector of persisted program blobs from a
/// catalog entry (missing/short/invalid elements compile fresh).
std::vector<RecordMatcher> BuildMatchers(
    const std::vector<StructureTemplate>& templates, MatchEngine engine,
    CharsetEngine charset_engine = CharsetEngine::kSimd,
    const std::vector<std::string>* programs = nullptr);

}  // namespace datamaran

#endif  // DATAMARAN_TEMPLATE_DISPATCH_H_
