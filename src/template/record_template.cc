#include "template/record_template.h"

#include "template/template.h"
#include "util/common.h"

namespace datamaran {

void AppendRecordTemplate(std::string_view text, const CharSet& rt_charset,
                          std::string* out) {
  AppendRecordTemplateCounting(text, rt_charset, out);
}

size_t AppendRecordTemplateCounting(std::string_view text,
                                    const CharSet& rt_charset,
                                    std::string* out) {
  size_t field_chars = 0;
  bool in_field = false;
  for (char c : text) {
    if (rt_charset.Contains(static_cast<unsigned char>(c))) {
      out->push_back(c);
      in_field = false;
    } else {
      if (!in_field) out->push_back('F');
      in_field = true;
      ++field_chars;
    }
  }
  return field_chars;
}

std::string ExtractRecordTemplate(std::string_view text,
                                  const CharSet& rt_charset) {
  std::string out;
  out.reserve(text.size());
  AppendRecordTemplate(text, rt_charset, &out);
  return out;
}

namespace {

using Tok = ReduceWorkspace::Tok;

bool TokEq(const ReduceWorkspace& ws, const Tok& a, const Tok& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Tok::kField:
      return true;
    case Tok::kChar:
      return a.ch == b.ch;
    case Tok::kComposite:
      return a.comp == b.comp ||
             ws.composites[a.comp] == ws.composites[b.comp];
  }
  return false;
}

void SerializeTok(const ReduceWorkspace& ws, const Tok& t, std::string* out) {
  switch (t.kind) {
    case Tok::kField:
      out->push_back('F');
      break;
    case Tok::kChar:
      AppendEscapedChar(t.ch, out);
      break;
    case Tok::kComposite:
      out->append(ws.composites[t.comp]);
      break;
  }
}

/// First literal character a token can start with (0 = starts with a field).
char FirstLiteral(const ReduceWorkspace& ws, const Tok& t) {
  switch (t.kind) {
    case Tok::kField:
      return 0;
    case Tok::kChar:
      return t.ch;
    case Tok::kComposite:
      return ws.composite_first[t.comp];
  }
  return 0;
}

/// Attempts one fold; returns true if the token sequence changed.
bool ReduceOnce(ReduceWorkspace* ws) {
  auto& seq = ws->tokens;
  const size_t n = seq.size();
  // Shortest unit first, then leftmost, for a deterministic minimal form.
  for (size_t l = 2; 2 * l <= n; ++l) {
    for (size_t s = 0; s + 2 * l <= n; ++s) {
      // The unit must end with a literal separator character.
      if (seq[s + l - 1].kind != Tok::kChar) continue;
      const char sep = seq[s + l - 1].ch;
      // The unit must contain at least one field or composite; pure
      // punctuation runs (e.g. "-----") stay literal.
      bool has_value = false;
      for (size_t i = s; i + 1 < s + l; ++i) {
        if (seq[i].kind != Tok::kChar) {
          has_value = true;
          break;
        }
      }
      if (!has_value) continue;
      // Adjacent repeat?
      bool repeat = true;
      for (size_t i = 0; i < l; ++i) {
        if (!TokEq(*ws, seq[s + i], seq[s + l + i])) {
          repeat = false;
          break;
        }
      }
      if (!repeat) continue;
      // Extend to the maximal run of k >= 2 units.
      size_t k = 2;
      while (s + (k + 1) * l <= n) {
        bool more = true;
        for (size_t i = 0; i < l; ++i) {
          if (!TokEq(*ws, seq[s + i], seq[s + k * l + i])) {
            more = false;
            break;
          }
        }
        if (!more) break;
        ++k;
      }
      // Require the trailing element (unit minus separator) right after.
      if (s + k * l + (l - 1) > n) continue;
      bool trailing = true;
      for (size_t i = 0; i + 1 < l; ++i) {
        if (!TokEq(*ws, seq[s + i], seq[s + k * l + i])) {
          trailing = false;
          break;
        }
      }
      if (!trailing) continue;
      // LL(1) legality: the paper's array form ({A}x)*{A}y requires the
      // terminator y to differ from the separator x. The token right after
      // the folded range provides y; it must exist and not start with x.
      const size_t next_idx = s + k * l + (l - 1);
      if (next_idx >= n) continue;  // template would end in an array
      if (FirstLiteral(*ws, seq[next_idx]) == sep) continue;
      // Build the composite canonical: "(" elem sep ")*" elem.
      std::string comp;
      comp.push_back('(');
      for (size_t i = s; i + 1 < s + l; ++i) SerializeTok(*ws, seq[i], &comp);
      AppendEscapedChar(sep, &comp);
      comp.push_back(')');
      comp.push_back('*');
      for (size_t i = s; i + 1 < s + l; ++i) SerializeTok(*ws, seq[i], &comp);
      uint32_t comp_idx = static_cast<uint32_t>(ws->composites.size());
      ws->composites.push_back(std::move(comp));
      ws->composite_first.push_back(FirstLiteral(*ws, seq[s]));
      // Replace seq[s .. s + k*l + l - 1) with the composite token.
      Tok folded;
      folded.kind = Tok::kComposite;
      folded.ch = 0;
      folded.comp = comp_idx;
      size_t replaced = k * l + (l - 1);
      seq[s] = folded;
      seq.erase(seq.begin() + static_cast<ptrdiff_t>(s + 1),
                seq.begin() + static_cast<ptrdiff_t>(s + replaced));
      return true;
    }
  }
  return false;
}

}  // namespace

void ReduceToCanonical(std::string_view record_template, ReduceWorkspace* ws,
                       std::string* out) {
  ws->tokens.clear();
  ws->composites.clear();
  ws->composite_first.clear();
  ws->tokens.reserve(record_template.size());
  for (char c : record_template) {
    Tok t;
    if (c == 'F') {
      t.kind = Tok::kField;
      t.ch = 0;
    } else {
      t.kind = Tok::kChar;
      t.ch = c;
    }
    ws->tokens.push_back(t);
  }
  while (ReduceOnce(ws)) {
  }
  out->clear();
  for (const Tok& t : ws->tokens) SerializeTok(*ws, t, out);
}

std::string ReduceToCanonical(std::string_view record_template) {
  ReduceWorkspace ws;
  std::string out;
  ReduceToCanonical(record_template, &ws, &out);
  return out;
}

}  // namespace datamaran
