#ifndef DATAMARAN_TEMPLATE_MATCH_ENGINE_H_
#define DATAMARAN_TEMPLATE_MATCH_ENGINE_H_

/// The match-engine selector, in its own header so configuration surfaces
/// (core/options.h) can name it without pulling in the engines themselves
/// (template/compiled.h, template/matcher.h).

namespace datamaran {

/// Which matching engine the pipeline's hot loops use. Output is
/// byte-identical between the two; kTree is the reference tree walker kept
/// for differential testing and as a fallback.
enum class MatchEngine {
  kCompiled,
  kTree,
};

}  // namespace datamaran

#endif  // DATAMARAN_TEMPLATE_MATCH_ENGINE_H_
