#include "template/catalog.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <system_error>
#include <utility>

#include "scoring/mdl.h"
#include "template/compiled.h"
#include "util/file_io.h"
#include "util/sampler.h"
#include "util/strings.h"

namespace datamaran {

namespace {

bool IsPrintableToken(unsigned char c) {
  // Space-free printable ASCII: anything else is escaped so every token
  // survives the line/space-based catalog grammar.
  return c > 0x20 && c < 0x7f && c != '\\';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Renders a FIRST set compactly: small sets list their members, large ones
/// (a leading field admits every byte outside the RT-CharSet) list the
/// complement prefixed with '!'. Advisory — recomputed on load.
std::string FirstSetToken(const CharSet& first) {
  if (first.Size() <= 128) return CatalogEscape(first.ToString());
  CharSet complement;
  for (int b = 0; b < 256; ++b) {
    if (!first.Contains(static_cast<unsigned char>(b))) {
      complement.Add(static_cast<unsigned char>(b));
    }
  }
  return "!" + CatalogEscape(complement.ToString());
}

std::optional<double> ParseDoubleToken(std::string_view s) {
  // strtod needs NUL termination; metadata tokens are short.
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

}  // namespace

std::string CatalogEscape(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size());
  for (char raw : bytes) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case ' ':  out += "\\s"; break;
      default:
        if (IsPrintableToken(c)) {
          out += static_cast<char>(c);
        } else {
          static const char kHex[] = "0123456789ABCDEF";
          out += "\\x";
          out += kHex[c >> 4];
          out += kHex[c & 0xf];
        }
    }
  }
  return out;
}

Result<std::string> CatalogUnescape(std::string_view token) {
  std::string out;
  out.reserve(token.size());
  for (size_t i = 0; i < token.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(token[i]);
    if (c != '\\') {
      if (!IsPrintableToken(c)) {
        return Status::ParseError(
            StrFormat("catalog: raw byte 0x%02X in token", c));
      }
      out += static_cast<char>(c);
      continue;
    }
    if (++i >= token.size()) {
      return Status::ParseError("catalog: dangling escape in token");
    }
    switch (token[i]) {
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 's': out += ' '; break;
      case 'x': {
        if (i + 2 >= token.size()) {
          return Status::ParseError("catalog: truncated \\x escape");
        }
        const int hi = HexValue(token[i + 1]);
        const int lo = HexValue(token[i + 2]);
        if (hi < 0 || lo < 0) {
          return Status::ParseError("catalog: bad \\x escape");
        }
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
        break;
      }
      default:
        return Status::ParseError(
            StrFormat("catalog: unknown escape \\%c", token[i]));
    }
  }
  return out;
}

std::string ScanStrategyHint(const StructureTemplate& st) {
  switch (st.charset().Size()) {
    case 0:
    case 1: return "memchr";
    case 2: return "swar2";
    case 3: return "swar3";
    case 4: return "swar4";
    default: return "wide";
  }
}

std::string CatalogEntry::Signature() const {
  // Length-prefixed concatenation: unambiguous for arbitrary canonical
  // bytes, order-sensitive (priority order is part of extraction identity).
  std::string sig;
  for (const StructureTemplate& st : templates) {
    sig += std::to_string(st.canonical().size());
    sig += ':';
    sig += st.canonical();
  }
  return sig;
}

size_t TemplateCatalog::AddEntry(CatalogEntry entry) {
  const std::string sig = entry.Signature();
  auto it = by_signature_.find(sig);
  if (it != by_signature_.end()) return it->second;
  // Distinct signatures must keep distinct names (a merge of two
  // independently grown catalogs collides on "fmt0"): the incoming entry
  // yields and takes a fresh generated name.
  if (entry.name.empty() || used_names_.count(entry.name) != 0) {
    size_t k = entries_.size();
    do {
      entry.name = "fmt" + std::to_string(k++);
    } while (used_names_.count(entry.name) != 0);
  }
  entry.meta.resize(entry.templates.size());
  entry.programs.resize(entry.templates.size());
  used_names_.insert(entry.name);
  by_signature_.emplace(sig, entries_.size());
  entries_.push_back(std::move(entry));
  return entries_.size() - 1;
}

void TemplateCatalog::PopulatePrograms() {
  for (CatalogEntry& e : entries_) {
    e.programs.resize(e.templates.size());
    for (size_t t = 0; t < e.templates.size(); ++t) {
      if (!e.programs[t].empty()) continue;
      // Serialized programs are engine-independent (the per-engine scan
      // strategy is re-derived on load), so any engine compiles the blob.
      const CompiledTemplate ct(&e.templates[t]);
      if (ct.ok()) e.programs[t] = ct.SerializeProgram();
    }
  }
}

int TemplateCatalog::FindSignature(
    const std::vector<StructureTemplate>& templates) const {
  CatalogEntry probe;
  probe.templates = templates;
  auto it = by_signature_.find(probe.Signature());
  return it == by_signature_.end() ? -1 : static_cast<int>(it->second);
}

std::string TemplateCatalog::Serialize() const {
  std::string out = StrFormat("datamaran-catalog v%d\n", kFormatVersion);
  for (const CatalogEntry& e : entries_) {
    out += StrFormat("entry %s templates=%zu\n", e.name.c_str(),
                     e.templates.size());
    for (size_t t = 0; t < e.templates.size(); ++t) {
      const StructureTemplate& st = e.templates[t];
      const CatalogTemplateMeta& m = e.meta[t];
      out += "template ";
      out += CatalogEscape(st.canonical());
      out += StrFormat(" mdl=%.17g noise=%.17g records=%zu coverage=%.17g",
                       m.mdl_bits, m.noise_only_bits, m.sample_records,
                       m.sample_coverage);
      out += " first=" + FirstSetToken(TemplateFirstBytes(st));
      out += " scan=" + ScanStrategyHint(st);
      out += '\n';
      if (t < e.programs.size() && !e.programs[t].empty()) {
        out += "program ";
        out += CatalogEscape(e.programs[t]);
        out += '\n';
      }
    }
    for (const auto& [key, value] : e.extensions) {
      out += "kv ";
      out += CatalogEscape(key);
      out += ' ';
      out += CatalogEscape(value);
      out += '\n';
    }
    out += "end\n";
  }
  return out;
}

Result<TemplateCatalog> TemplateCatalog::Parse(std::string_view text) {
  const std::vector<std::string_view> lines = SplitLines(text);
  constexpr std::string_view kHeader = "datamaran-catalog v";
  if (lines.empty() || !StartsWith(lines[0], kHeader)) {
    return Status::ParseError("catalog: missing datamaran-catalog header");
  }
  const auto version = ParseInt64(lines[0].substr(kHeader.size()));
  if (!version.has_value() || *version < kMinFormatVersion ||
      *version > kFormatVersion) {
    return Status::ParseError(
        StrFormat("catalog: unsupported version '%s' (expected v%d..v%d)",
                  std::string(lines[0]).c_str(), kMinFormatVersion,
                  kFormatVersion));
  }
  // v1 files migrate in memory: same entry/template grammar, no program or
  // kv lines. The next Save rewrites them at the current version.
  const bool v2 = *version >= 2;
  TemplateCatalog cat;
  size_t i = 1;
  while (i < lines.size()) {
    if (lines[i].empty()) {
      ++i;
      continue;
    }
    std::vector<std::string_view> toks = Split(lines[i], ' ');
    if (toks.size() != 3 || toks[0] != "entry" ||
        !StartsWith(toks[2], "templates=")) {
      return Status::ParseError(StrFormat("catalog line %zu: expected "
                                          "'entry <name> templates=N'",
                                          i + 1));
    }
    // Names round-trip through "entry %s ..." lines: anything outside
    // printable non-space ASCII (embedded NUL, control bytes, UTF-8) would
    // serialize to a line this parser reads back differently. Reject at
    // the boundary (fuzz-found).
    for (char c : toks[1]) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (u < 0x21 || u > 0x7E) {
        return Status::ParseError(StrFormat(
            "catalog line %zu: entry name must be printable ASCII", i + 1));
      }
    }
    CatalogEntry entry;
    entry.name = std::string(toks[1]);
    const auto count = ParseInt64(toks[2].substr(strlen("templates=")));
    if (!count.has_value() || *count < 1) {
      return Status::ParseError(
          StrFormat("catalog line %zu: bad template count", i + 1));
    }
    ++i;
    while (true) {
      if (i >= lines.size()) {
        return Status::ParseError("catalog: truncated entry");
      }
      if (lines[i] == "end") break;
      toks = Split(lines[i], ' ');
      if (v2 && !toks.empty() && toks[0] == "program") {
        if (toks.size() != 2 ||
            entry.programs.size() == entry.templates.size()) {
          return Status::ParseError(StrFormat(
              "catalog line %zu: program line must follow its template",
              i + 1));
        }
        auto blob = CatalogUnescape(toks[1]);
        if (!blob.ok()) return blob.status();
        entry.programs.resize(entry.templates.size());
        entry.programs.back() = std::move(blob.value());
        ++i;
        continue;
      }
      if (v2 && !toks.empty() && toks[0] == "kv") {
        if (toks.size() != 3) {
          return Status::ParseError(StrFormat(
              "catalog line %zu: expected 'kv <key> <value>'", i + 1));
        }
        auto key = CatalogUnescape(toks[1]);
        if (!key.ok()) return key.status();
        auto value = CatalogUnescape(toks[2]);
        if (!value.ok()) return value.status();
        entry.extensions.emplace_back(std::move(key.value()),
                                      std::move(value.value()));
        ++i;
        continue;
      }
      if (toks.size() < 2 || toks[0] != "template") {
        return Status::ParseError(
            StrFormat("catalog line %zu: expected 'template <canonical> "
                      "key=value...'",
                      i + 1));
      }
      if (static_cast<int64_t>(entry.templates.size()) == *count) {
        return Status::ParseError(StrFormat(
            "catalog line %zu: more templates than declared", i + 1));
      }
      auto canonical = CatalogUnescape(toks[1]);
      if (!canonical.ok()) return canonical.status();
      auto st = StructureTemplate::FromCanonical(canonical.value());
      if (!st.ok()) return st.status();
      // Exact round-trip is the contract reloaded compiled programs rest
      // on; a canonical that re-serializes differently is corrupt.
      if (st->canonical() != canonical.value()) {
        return Status::ParseError(
            StrFormat("catalog line %zu: canonical form does not round-trip",
                      i + 1));
      }
      DM_RETURN_IF_ERROR(st->Validate());
      CatalogTemplateMeta meta;
      for (size_t k = 2; k < toks.size(); ++k) {
        const std::string_view tok = toks[k];
        const size_t eq = tok.find('=');
        if (eq == std::string_view::npos) {
          return Status::ParseError(
              StrFormat("catalog line %zu: bad metadata token", i + 1));
        }
        const std::string_view key = tok.substr(0, eq);
        const std::string_view val = tok.substr(eq + 1);
        if (key == "mdl" || key == "noise" || key == "coverage") {
          const auto v = ParseDoubleToken(val);
          if (!v.has_value()) {
            return Status::ParseError(
                StrFormat("catalog line %zu: bad numeric metadata", i + 1));
          }
          if (key == "mdl") meta.mdl_bits = *v;
          if (key == "noise") meta.noise_only_bits = *v;
          if (key == "coverage") meta.sample_coverage = *v;
        } else if (key == "records") {
          const auto v = ParseInt64(val);
          if (!v.has_value() || *v < 0) {
            return Status::ParseError(
                StrFormat("catalog line %zu: bad record count", i + 1));
          }
          meta.sample_records = static_cast<size_t>(*v);
        }
        // Unknown keys (and the derived first=/scan= fields) are skipped:
        // derived data is recomputed from the canonical form.
      }
      entry.templates.push_back(std::move(st.value()));
      entry.meta.push_back(meta);
      ++i;
    }
    if (static_cast<int64_t>(entry.templates.size()) != *count) {
      return Status::ParseError(
          StrFormat("catalog line %zu: entry has %zu templates, declared %lld",
                    i + 1, entry.templates.size(),
                    static_cast<long long>(*count)));
    }
    ++i;  // consume "end"
    cat.AddEntry(std::move(entry));
  }
  return cat;
}

Result<TemplateCatalog> TemplateCatalog::Load(const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) return text.status();
  return Parse(text.value());
}

Status TemplateCatalog::Save(const std::string& path,
                             const CatalogSaveOptions& options) const {
  // The advisory lock serializes the whole read-merge-write cycle across
  // processes; the write itself stays atomic (temp + rename), so a crashed
  // or killed run can never leave a truncated catalog that a later
  // --catalog-in load would reject, and readers that skip the lock still
  // see a complete snapshot.
  auto lock = FileLock::Acquire(path);
  if (!lock.ok()) return lock.status();
  TemplateCatalog merged = *this;
  if (options.merge) {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      auto disk = Load(path);
      if (!disk.ok()) {
        // Never clobber a file we cannot parse under merge semantics — it
        // may be another writer's data (or not a catalog at all).
        return Status::ParseError("catalog merge: existing file " + path +
                                  " failed to load (" +
                                  disk.status().message() +
                                  "); pass no-merge to overwrite");
      }
      for (CatalogEntry& e : disk.value().entries_) {
        merged.AddEntry(std::move(e));
      }
    }
  }
  // Persisted catalogs always carry compiled programs: entries discovered
  // this run compile once here, reloaded entries keep their blobs.
  merged.PopulatePrograms();
  Status written = WriteFileAtomic(path, merged.Serialize());
  if (written.ok()) {
    // A successful save is done with the sidecar: clean it up (still under
    // the lock — Acquire's inode re-check makes this race-safe) so crawl
    // and output directories hold only real artifacts, not stray ".lock"
    // files. Best-effort: waiters already blocked on this inode still
    // serialize, and the next saver recreates the sidecar.
    lock.value().UnlinkSidecar();
  }
  return written;
}

CatalogMatch MatchCatalog(const TemplateCatalog& catalog, const Dataset& data,
                          const CatalogMatchOptions& options) {
  CatalogMatch out;
  if (catalog.empty() || data.size_bytes() == 0) return out;
  SamplerOptions sampler_opts;
  sampler_opts.max_sample_bytes = options.max_sample_bytes;
  sampler_opts.num_chunks = options.sample_chunks;
  sampler_opts.max_line_bytes = options.max_line_bytes;
  const DatasetView sample = SampleView(data, sampler_opts);
  const size_t n = sample.line_count();
  if (n == 0) return out;

  // One pass over the sample's line-leading bytes; every entry's prefilter
  // is then an O(256) histogram sum instead of a match scan.
  std::array<size_t, 256> first_counts{};
  for (size_t li = 0; li < n; ++li) {
    first_counts[static_cast<unsigned char>(
        sample.line_with_newline(li).front())]++;
  }

  const MdlScorer scorer(options.match_engine, options.charset_engine);
  double best_bits = std::numeric_limits<double>::infinity();
  for (size_t e = 0; e < catalog.size(); ++e) {
    const CatalogEntry& entry = catalog.entry(e);
    CharSet first;
    size_t max_span = 1;
    for (const StructureTemplate& st : entry.templates) {
      first = first.Union(TemplateFirstBytes(st));
      max_span = std::max(max_span,
                          static_cast<size_t>(std::max(1, st.line_span())));
    }
    size_t admissible = 0;
    for (int b = 0; b < 256; ++b) {
      if (first.Contains(static_cast<unsigned char>(b))) {
        admissible += first_counts[static_cast<size_t>(b)];
      }
    }
    // Every covered line belongs to a record of at most max_span lines
    // whose first line starts with a FIRST-set byte, so admissible *
    // max_span bounds the coverable lines from above: an entry below the
    // threshold is rejected without a single match attempt.
    if (static_cast<double>(admissible) * static_cast<double>(max_span) <
        options.min_match * static_cast<double>(n)) {
      out.entries_prefiltered++;
      continue;
    }
    out.entries_scored++;
    std::vector<const StructureTemplate*> ts;
    ts.reserve(entry.templates.size());
    for (const StructureTemplate& st : entry.templates) ts.push_back(&st);
    const MdlBreakdown breakdown = scorer.EvaluateSet(sample, ts);
    out.noise_only_bits = breakdown.noise_only_bits;
    const size_t lines_seen = breakdown.record_lines + breakdown.noise_lines;
    const double rate =
        lines_seen == 0 ? 0
                        : static_cast<double>(breakdown.record_lines) /
                              static_cast<double>(lines_seen);
    // The paper's noise-model acceptance, applied to the catalog entry as
    // if it were the freshly refined candidate: enough of the sample must
    // parse as records, and the structural encoding must beat pure noise
    // by the discovery margin.
    if (rate < options.min_match ||
        breakdown.total_bits >
            breakdown.noise_only_bits * (1 - options.min_mdl_gain)) {
      continue;
    }
    if (breakdown.total_bits < best_bits) {
      best_bits = breakdown.total_bits;
      out.entry = static_cast<int>(e);
      out.match_rate = rate;
      out.mdl_bits = breakdown.total_bits;
    }
  }
  return out;
}

}  // namespace datamaran
