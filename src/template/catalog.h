#ifndef DATAMARAN_TEMPLATE_CATALOG_H_
#define DATAMARAN_TEMPLATE_CATALOG_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/dataset.h"
#include "template/match_engine.h"
#include "template/template.h"
#include "util/charset_engine.h"
#include "util/status.h"

/// Template catalog: the persisted output of structure discovery, so a data
/// lake's few dozen formats pay full discovery (generation + MDL evaluation
/// + refinement) once instead of once per file.
///
/// A catalog is a list of *entries*, one per discovered format; each entry
/// is the format's accepted structure templates in priority order plus
/// per-template discovery metadata (MDL score against the discovery sample,
/// FIRST set, field-scan strategy hint). Templates are stored in their
/// canonical serialization (template.h), which round-trips exactly through
/// FromCanonical — and a CompiledTemplate is a pure function of (canonical,
/// charset engine), so templates reloaded from a catalog compile to
/// byte-identical programs and extraction output is byte-identical to the
/// fresh-discovery run that produced the entry.
///
/// On-disk format (versioned, line-based text):
///
///   datamaran-catalog v2
///   entry fmt0 templates=2
///   template (F,)*F\n mdl=1234.5 noise=5678.9 records=42 coverage=0.97
///       first=... scan=swar2            (one line; wrapped here for width)
///   program <escaped-bytecode-blob>     (optional, attaches to the
///       preceding template: CompiledTemplate::SerializeProgram output,
///       fingerprint-guarded — stale or corrupt blobs recompile)
///   template F\sF\n ...
///   kv <key> <value>                    (per-entry extension area: opaque
///       key/value pairs, preserved byte-exact across load/save)
///   end
///
/// v1 (no program/kv lines) is still accepted by Parse and migrated in
/// memory; Serialize always writes the current version. Tools exchanging
/// catalogs across builds therefore upgrade files in place on their next
/// save, and unknown per-entry state from future minor revisions rides
/// through the kv area.
///
/// Canonical forms and FIRST sets are arbitrary bytes (templates always
/// contain '\n'; separators may be NUL or non-UTF8), so every byte-valued
/// token is escaped into a space-free printable form (CatalogEscape /
/// CatalogUnescape, exact inverses over all 256 byte values). The numeric
/// metadata is advisory — parsing revalidates each template and recomputes
/// derived data from the canonical form, which is the only load-bearing
/// field.
///
/// MatchCatalog is the fingerprint step of the catalog-hit fast path: given
/// a new input, sample it (util/sampler.h, same policy as discovery),
/// prefilter entries by FIRST-byte dispatch — an entry none of whose
/// templates can start at enough sample lines is discarded without a single
/// match attempt — then score the survivors with the MDL noise model
/// (scoring/mdl.h) and accept the best entry that both covers at least
/// `min_match` of the sample lines and beats the pure-noise encoding by the
/// discovery margin. A miss falls back to cold discovery.

namespace datamaran {

/// Escapes arbitrary bytes into a printable token with no whitespace:
/// backslash escapes for \\ \n \r \t, "\s" for space, "\xHH" for the
/// remaining non-printable or non-ASCII bytes. CatalogUnescape inverts
/// exactly (round-trips all 256 byte values).
std::string CatalogEscape(std::string_view bytes);
Result<std::string> CatalogUnescape(std::string_view token);

/// Per-template discovery metadata carried by a catalog entry. Advisory:
/// the canonical template form is authoritative and derived fields (FIRST
/// set, scan hint) are recomputed on load.
struct CatalogTemplateMeta {
  double mdl_bits = 0;         ///< MDL total on the discovery sample
  double noise_only_bits = 0;  ///< pure-noise cost of that sample
  size_t sample_records = 0;
  double sample_coverage = 0;
};

/// One discovered format: structure templates in priority (discovery)
/// order, with parallel per-template metadata.
struct CatalogEntry {
  std::string name;  ///< e.g. "fmt0"; unique within the catalog
  std::vector<StructureTemplate> templates;
  std::vector<CatalogTemplateMeta> meta;  ///< parallel to `templates`
  /// Serialized compiled programs (CompiledTemplate::SerializeProgram),
  /// parallel to `templates`; an empty element means "compile fresh".
  /// Purely an optimization: a blob that fails its fingerprint, checksum,
  /// or validation is ignored and the canonical form recompiled, so
  /// extraction output never depends on this field.
  std::vector<std::string> programs;
  /// v2 extension area: opaque key/value pairs (arbitrary bytes) preserved
  /// byte-exact across load/save. Forward-compatibility hook for minor
  /// revisions that don't warrant a version bump.
  std::vector<std::pair<std::string, std::string>> extensions;

  /// Identity of the template *set* (order-sensitive, length-prefixed
  /// canonicals): two entries with equal signatures extract identically.
  std::string Signature() const;
};

/// Field-scan strategy hint for `st` (the compiled engine's choice is a
/// function of the RT-CharSet size): "memchr", "swar2".."swar4", or "wide"
/// (classifier/table scan). Stored in the catalog for inspection.
std::string ScanStrategyHint(const StructureTemplate& st);

/// How TemplateCatalog::Save treats an existing file at the target path.
struct CatalogSaveOptions {
  /// Merge-on-save (the default): re-load the on-disk catalog under the
  /// advisory file lock, fold its entries into this catalog's by signature,
  /// and write the union — N parallel crawlers sharing one --catalog-out
  /// never lose each other's entries. false clobbers the file with exactly
  /// this catalog (the --catalog-no-merge escape hatch).
  bool merge = true;
};

class TemplateCatalog {
 public:
  static constexpr int kFormatVersion = 2;
  /// Oldest version Parse still accepts (migrated in memory on load).
  static constexpr int kMinFormatVersion = 1;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const CatalogEntry& entry(size_t i) const { return entries_[i]; }
  const std::vector<CatalogEntry>& entries() const { return entries_; }

  /// Adds `entry` and returns its index — or, when an entry with the same
  /// template-set signature already exists, returns that entry's index
  /// without adding (folding a rediscovered format is idempotent). An empty
  /// name — or one already taken by a different entry, as happens when two
  /// independently grown catalogs merge — is assigned a fresh "fmt<k>".
  size_t AddEntry(CatalogEntry entry);

  /// Index of the entry whose signature matches `templates`, or -1.
  int FindSignature(const std::vector<StructureTemplate>& templates) const;

  /// Fills in the serialized compiled program for every template that does
  /// not have one yet (entries past engine limits keep an empty slot).
  /// Save runs this on the written snapshot, so persisted catalogs always
  /// carry programs and warm loads skip compilation.
  void PopulatePrograms();

  /// The versioned text form (see file comment).
  std::string Serialize() const;

  /// Inverse of Serialize, also accepting the previous format version
  /// (migrated in memory; the next Save rewrites the file as v%d). Every
  /// template is parsed back via FromCanonical and revalidated; any
  /// malformed line, unknown version, or invalid template fails the whole
  /// parse. Program blobs are carried opaquely — they are verified by
  /// CompiledTemplate::FromSerialized at use.
  static Result<TemplateCatalog> Parse(std::string_view text);

  static Result<TemplateCatalog> Load(const std::string& path);

  /// Persists the catalog atomically, serialized against concurrent savers
  /// by an advisory lock on `path` + ".lock" (util/file_io FileLock). With
  /// options.merge (default), the on-disk catalog is re-loaded under the
  /// lock and its entries folded in by signature before writing, so
  /// concurrent writers union rather than overwrite; a merge against an
  /// unparseable existing file fails rather than destroy it.
  Status Save(const std::string& path,
              const CatalogSaveOptions& options = {}) const;

 private:
  std::vector<CatalogEntry> entries_;
  std::unordered_map<std::string, size_t> by_signature_;
  std::unordered_set<std::string> used_names_;
};

struct CatalogMatchOptions {
  /// Minimum fraction of sample lines an entry's templates must cover.
  double min_match = 0.8;
  /// MDL acceptance margin vs. the pure-noise encoding — the same noise
  /// model the discovery accept/reject step applies (options.h
  /// min_mdl_gain).
  double min_mdl_gain = 0.01;
  /// Sampling policy (mirrors DatamaranOptions), including the
  /// oversized-line guard so the fingerprint sample excludes exactly the
  /// lines discovery's sample would.
  size_t max_sample_bytes = 256 * 1024;
  int sample_chunks = 8;
  size_t max_line_bytes = 0;
  MatchEngine match_engine = MatchEngine::kCompiled;
  CharsetEngine charset_engine = CharsetEngine::kSimd;
};

/// Outcome of fingerprinting one input against a catalog.
struct CatalogMatch {
  int entry = -1;  ///< accepted entry index; -1 = miss (cold discovery)
  /// Fraction of sample lines covered by the accepted entry's records.
  double match_rate = 0;
  double mdl_bits = 0;        ///< accepted entry's MDL total on the sample
  double noise_only_bits = 0; ///< pure-noise cost of the sample
  /// Diagnostics: entries discarded by the FIRST-byte prefilter vs. scored.
  size_t entries_prefiltered = 0;
  size_t entries_scored = 0;

  bool hit() const { return entry >= 0; }
};

/// Fingerprints `data` against `catalog`: samples, prefilters by FIRST
/// bytes, MDL-scores surviving entries, and returns the best acceptable one
/// (lowest MDL total; ties break to the lowest entry index). Deterministic:
/// a pure function of the input bytes, the catalog, and the options.
CatalogMatch MatchCatalog(const TemplateCatalog& catalog, const Dataset& data,
                          const CatalogMatchOptions& options);

}  // namespace datamaran

#endif  // DATAMARAN_TEMPLATE_CATALOG_H_
