#ifndef DATAMARAN_TEMPLATE_CATALOG_H_
#define DATAMARAN_TEMPLATE_CATALOG_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/dataset.h"
#include "template/match_engine.h"
#include "template/template.h"
#include "util/charset_engine.h"
#include "util/status.h"

/// Template catalog: the persisted output of structure discovery, so a data
/// lake's few dozen formats pay full discovery (generation + MDL evaluation
/// + refinement) once instead of once per file.
///
/// A catalog is a list of *entries*, one per discovered format; each entry
/// is the format's accepted structure templates in priority order plus
/// per-template discovery metadata (MDL score against the discovery sample,
/// FIRST set, field-scan strategy hint). Templates are stored in their
/// canonical serialization (template.h), which round-trips exactly through
/// FromCanonical — and a CompiledTemplate is a pure function of (canonical,
/// charset engine), so templates reloaded from a catalog compile to
/// byte-identical programs and extraction output is byte-identical to the
/// fresh-discovery run that produced the entry.
///
/// On-disk format (versioned, line-based text):
///
///   datamaran-catalog v1
///   entry fmt0 templates=2
///   template (F,)*F\n mdl=1234.5 noise=5678.9 records=42 coverage=0.97
///       first=... scan=swar2            (one line; wrapped here for width)
///   template F\sF\n ...
///   end
///
/// Canonical forms and FIRST sets are arbitrary bytes (templates always
/// contain '\n'; separators may be NUL or non-UTF8), so every byte-valued
/// token is escaped into a space-free printable form (CatalogEscape /
/// CatalogUnescape, exact inverses over all 256 byte values). The numeric
/// metadata is advisory — parsing revalidates each template and recomputes
/// derived data from the canonical form, which is the only load-bearing
/// field.
///
/// MatchCatalog is the fingerprint step of the catalog-hit fast path: given
/// a new input, sample it (util/sampler.h, same policy as discovery),
/// prefilter entries by FIRST-byte dispatch — an entry none of whose
/// templates can start at enough sample lines is discarded without a single
/// match attempt — then score the survivors with the MDL noise model
/// (scoring/mdl.h) and accept the best entry that both covers at least
/// `min_match` of the sample lines and beats the pure-noise encoding by the
/// discovery margin. A miss falls back to cold discovery.

namespace datamaran {

/// Escapes arbitrary bytes into a printable token with no whitespace:
/// backslash escapes for \\ \n \r \t, "\s" for space, "\xHH" for the
/// remaining non-printable or non-ASCII bytes. CatalogUnescape inverts
/// exactly (round-trips all 256 byte values).
std::string CatalogEscape(std::string_view bytes);
Result<std::string> CatalogUnescape(std::string_view token);

/// Per-template discovery metadata carried by a catalog entry. Advisory:
/// the canonical template form is authoritative and derived fields (FIRST
/// set, scan hint) are recomputed on load.
struct CatalogTemplateMeta {
  double mdl_bits = 0;         ///< MDL total on the discovery sample
  double noise_only_bits = 0;  ///< pure-noise cost of that sample
  size_t sample_records = 0;
  double sample_coverage = 0;
};

/// One discovered format: structure templates in priority (discovery)
/// order, with parallel per-template metadata.
struct CatalogEntry {
  std::string name;  ///< e.g. "fmt0"; unique within the catalog
  std::vector<StructureTemplate> templates;
  std::vector<CatalogTemplateMeta> meta;  ///< parallel to `templates`

  /// Identity of the template *set* (order-sensitive, length-prefixed
  /// canonicals): two entries with equal signatures extract identically.
  std::string Signature() const;
};

/// Field-scan strategy hint for `st` (the compiled engine's choice is a
/// function of the RT-CharSet size): "memchr", "swar2".."swar4", or "wide"
/// (classifier/table scan). Stored in the catalog for inspection.
std::string ScanStrategyHint(const StructureTemplate& st);

class TemplateCatalog {
 public:
  static constexpr int kFormatVersion = 1;

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const CatalogEntry& entry(size_t i) const { return entries_[i]; }
  const std::vector<CatalogEntry>& entries() const { return entries_; }

  /// Adds `entry` and returns its index — or, when an entry with the same
  /// template-set signature already exists, returns that entry's index
  /// without adding (folding a rediscovered format is idempotent). An empty
  /// name is assigned "fmt<index>".
  size_t AddEntry(CatalogEntry entry);

  /// Index of the entry whose signature matches `templates`, or -1.
  int FindSignature(const std::vector<StructureTemplate>& templates) const;

  /// The versioned text form (see file comment).
  std::string Serialize() const;

  /// Exact inverse of Serialize: every template is parsed back via
  /// FromCanonical and revalidated; any malformed line, unknown version, or
  /// invalid template fails the whole parse.
  static Result<TemplateCatalog> Parse(std::string_view text);

  static Result<TemplateCatalog> Load(const std::string& path);
  Status Save(const std::string& path) const;

 private:
  std::vector<CatalogEntry> entries_;
  std::unordered_map<std::string, size_t> by_signature_;
};

struct CatalogMatchOptions {
  /// Minimum fraction of sample lines an entry's templates must cover.
  double min_match = 0.8;
  /// MDL acceptance margin vs. the pure-noise encoding — the same noise
  /// model the discovery accept/reject step applies (options.h
  /// min_mdl_gain).
  double min_mdl_gain = 0.01;
  /// Sampling policy (mirrors DatamaranOptions), including the
  /// oversized-line guard so the fingerprint sample excludes exactly the
  /// lines discovery's sample would.
  size_t max_sample_bytes = 256 * 1024;
  int sample_chunks = 8;
  size_t max_line_bytes = 0;
  MatchEngine match_engine = MatchEngine::kCompiled;
  CharsetEngine charset_engine = CharsetEngine::kSimd;
};

/// Outcome of fingerprinting one input against a catalog.
struct CatalogMatch {
  int entry = -1;  ///< accepted entry index; -1 = miss (cold discovery)
  /// Fraction of sample lines covered by the accepted entry's records.
  double match_rate = 0;
  double mdl_bits = 0;        ///< accepted entry's MDL total on the sample
  double noise_only_bits = 0; ///< pure-noise cost of the sample
  /// Diagnostics: entries discarded by the FIRST-byte prefilter vs. scored.
  size_t entries_prefiltered = 0;
  size_t entries_scored = 0;

  bool hit() const { return entry >= 0; }
};

/// Fingerprints `data` against `catalog`: samples, prefilters by FIRST
/// bytes, MDL-scores surviving entries, and returns the best acceptable one
/// (lowest MDL total; ties break to the lowest entry index). Deterministic:
/// a pure function of the input bytes, the catalog, and the options.
CatalogMatch MatchCatalog(const TemplateCatalog& catalog, const Dataset& data,
                          const CatalogMatchOptions& options);

}  // namespace datamaran

#endif  // DATAMARAN_TEMPLATE_CATALOG_H_
