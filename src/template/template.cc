#include "template/template.h"

#include <utility>

#include "util/strings.h"

namespace datamaran {

std::unique_ptr<TemplateNode> TemplateNode::Field() {
  auto n = std::make_unique<TemplateNode>();
  n->kind = NodeKind::kField;
  return n;
}

std::unique_ptr<TemplateNode> TemplateNode::Char(char c) {
  auto n = std::make_unique<TemplateNode>();
  n->kind = NodeKind::kChar;
  n->ch = c;
  return n;
}

std::unique_ptr<TemplateNode> TemplateNode::Struct(
    std::vector<std::unique_ptr<TemplateNode>> children) {
  auto n = std::make_unique<TemplateNode>();
  n->kind = NodeKind::kStruct;
  n->children = std::move(children);
  return n;
}

std::unique_ptr<TemplateNode> TemplateNode::Array(
    std::unique_ptr<TemplateNode> elem, char sep) {
  auto n = std::make_unique<TemplateNode>();
  n->kind = NodeKind::kArray;
  n->ch = sep;
  n->children.push_back(std::move(elem));
  return n;
}

std::unique_ptr<TemplateNode> TemplateNode::Clone() const {
  auto n = std::make_unique<TemplateNode>();
  n->kind = kind;
  n->ch = ch;
  n->children.reserve(children.size());
  for (const auto& c : children) n->children.push_back(c->Clone());
  return n;
}

bool TemplateNode::Equals(const TemplateNode& other) const {
  if (kind != other.kind || ch != other.ch ||
      children.size() != other.children.size()) {
    return false;
  }
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->Equals(*other.children[i])) return false;
  }
  return true;
}

void AppendEscapedChar(char c, std::string* out) {
  if (c == '(' || c == ')' || c == '*' || c == '\\') out->push_back('\\');
  out->push_back(c);
}

void SerializeNode(const TemplateNode& node, std::string* out) {
  switch (node.kind) {
    case NodeKind::kField:
      out->push_back('F');
      break;
    case NodeKind::kChar:
      AppendEscapedChar(node.ch, out);
      break;
    case NodeKind::kStruct:
      for (const auto& c : node.children) SerializeNode(*c, out);
      break;
    case NodeKind::kArray: {
      out->push_back('(');
      SerializeNode(*node.children[0], out);
      AppendEscapedChar(node.ch, out);
      out->push_back(')');
      out->push_back('*');
      SerializeNode(*node.children[0], out);
      break;
    }
  }
}

namespace {

/// Recursive-descent parser for the canonical form. `pos` advances through
/// `s`; parsing stops at end of input or an unbalanced ')'.
class CanonicalParser {
 public:
  explicit CanonicalParser(std::string_view s) : s_(s) {}

  Result<std::unique_ptr<TemplateNode>> ParseSequence() {
    std::vector<std::unique_ptr<TemplateNode>> children;
    while (pos_ < s_.size() && s_[pos_] != ')') {
      auto item = ParseItem();
      if (!item.ok()) return item.status();
      children.push_back(std::move(item.value()));
    }
    if (children.size() == 1) return std::move(children[0]);
    return TemplateNode::Struct(std::move(children));
  }

  bool AtEnd() const { return pos_ == s_.size(); }
  size_t pos() const { return pos_; }

 private:
  Result<std::unique_ptr<TemplateNode>> ParseItem() {
    char c = s_[pos_];
    if (c == 'F') {
      ++pos_;
      return TemplateNode::Field();
    }
    if (c == '\\') {
      if (pos_ + 1 >= s_.size()) {
        return Status::ParseError("dangling escape in template");
      }
      char lit = s_[pos_ + 1];
      pos_ += 2;
      return TemplateNode::Char(lit);
    }
    if (c == '(') {
      return ParseArray();
    }
    if (c == ')' || c == '*') {
      return Status::ParseError("unexpected metacharacter in template");
    }
    ++pos_;
    return TemplateNode::Char(c);
  }

  Result<std::unique_ptr<TemplateNode>> ParseArray() {
    DM_CHECK(s_[pos_] == '(');
    ++pos_;
    // Parse the paren contents: elem tokens followed by one separator char.
    std::vector<std::unique_ptr<TemplateNode>> inner;
    while (pos_ < s_.size() && s_[pos_] != ')') {
      auto item = ParseItem();
      if (!item.ok()) return item.status();
      inner.push_back(std::move(item.value()));
    }
    if (pos_ >= s_.size()) return Status::ParseError("unterminated '('");
    ++pos_;  // consume ')'
    if (pos_ >= s_.size() || s_[pos_] != '*') {
      return Status::ParseError("expected '*' after ')'");
    }
    ++pos_;  // consume '*'
    if (inner.size() < 2) {
      return Status::ParseError("array must contain elem + separator");
    }
    if (inner.back()->kind != NodeKind::kChar) {
      return Status::ParseError("array separator must be a character");
    }
    char sep = inner.back()->ch;
    inner.pop_back();
    std::unique_ptr<TemplateNode> elem;
    if (inner.size() == 1) {
      elem = std::move(inner[0]);
    } else {
      elem = TemplateNode::Struct(std::move(inner));
    }
    // The canonical form repeats ser(elem) after ")*"; verify and skip it.
    std::string elem_ser;
    SerializeNode(*elem, &elem_ser);
    if (s_.substr(pos_, elem_ser.size()) != elem_ser) {
      return Status::ParseError("array trailing element mismatch");
    }
    pos_ += elem_ser.size();
    return TemplateNode::Array(std::move(elem), sep);
  }

  std::string_view s_;
  size_t pos_ = 0;
};

void CollectStats(const TemplateNode& node, CharSet* charset, int* fields,
                  int* arrays, int* newlines) {
  switch (node.kind) {
    case NodeKind::kField:
      ++*fields;
      break;
    case NodeKind::kChar:
      charset->Add(static_cast<unsigned char>(node.ch));
      if (node.ch == '\n') ++*newlines;
      break;
    case NodeKind::kStruct:
      for (const auto& c : node.children) {
        CollectStats(*c, charset, fields, arrays, newlines);
      }
      break;
    case NodeKind::kArray:
      ++*arrays;
      charset->Add(static_cast<unsigned char>(node.ch));
      CollectStats(*node.children[0], charset, fields, arrays, newlines);
      break;
  }
}

/// First literal character a node can start with, or 0 if it starts with a
/// field (fields begin with non-RT-CharSet characters, which can never
/// collide with a separator, so 0 means "no conflict possible").
char FirstChar(const TemplateNode& node) {
  switch (node.kind) {
    case NodeKind::kField:
      return 0;
    case NodeKind::kChar:
      return node.ch;
    case NodeKind::kStruct:
      return node.children.empty() ? 0 : FirstChar(*node.children.front());
    case NodeKind::kArray:
      return FirstChar(*node.children[0]);
  }
  return 0;
}

/// LL(1) validation with FOLLOW sets: `follow` is the set of literal
/// characters that may immediately follow `node`. An array with separator x
/// is legal iff x is not in its FOLLOW set (the paper's x != y condition,
/// generalized to nested arrays: an inner array's terminator may be the
/// outer separator or the outer terminator).
/// True if the subtree contains a literal '\n'.
bool ContainsNewline(const TemplateNode& node) {
  if (node.kind == NodeKind::kChar && node.ch == '\n') return true;
  for (const auto& child : node.children) {
    if (ContainsNewline(*child)) return true;
  }
  return false;
}

Status ValidateNode(const TemplateNode& node, const CharSet& follow) {
  switch (node.kind) {
    case NodeKind::kField:
    case NodeKind::kChar:
      return Status::Ok();
    case NodeKind::kStruct: {
      if (node.children.empty()) {
        return Status::InvalidArgument("empty struct");
      }
      for (size_t i = 0; i < node.children.size(); ++i) {
        CharSet child_follow;
        if (i + 1 < node.children.size()) {
          char fc = FirstChar(*node.children[i + 1]);
          if (fc != 0) child_follow.Add(static_cast<unsigned char>(fc));
        } else {
          child_follow = follow;
        }
        DM_RETURN_IF_ERROR(ValidateNode(*node.children[i], child_follow));
        // Adjacent fields are ambiguous (a single field run would have been
        // extracted instead).
        if (i + 1 < node.children.size() &&
            node.children[i]->kind == NodeKind::kField &&
            node.children[i + 1]->kind == NodeKind::kField) {
          return Status::InvalidArgument("adjacent fields");
        }
      }
      return Status::Ok();
    }
    case NodeKind::kArray: {
      const TemplateNode& elem = *node.children[0];
      if (elem.kind == NodeKind::kChar) {
        return Status::InvalidArgument("array element must not be a bare char");
      }
      if (follow.Contains(static_cast<unsigned char>(node.ch))) {
        return Status::InvalidArgument(
            "array terminator equals separator (x == y)");
      }
      // Records are line-aligned with a span fixed by the template's '\n'
      // literals (Definition 2.4); an array whose separator or element
      // contains '\n' would make the matched line count repetition-
      // dependent, which every line-indexed scan (scoring, residual
      // masking, extraction, the score cache) relies on being constant.
      // Generation cannot produce such templates (reduction is per line);
      // reject them so hand-built ones cannot slip in either.
      if (node.ch == '\n' || ContainsNewline(elem)) {
        return Status::InvalidArgument("array must not span lines");
      }
      CharSet elem_follow = follow;
      elem_follow.Add(static_cast<unsigned char>(node.ch));
      return ValidateNode(elem, elem_follow);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

StructureTemplate::StructureTemplate(std::unique_ptr<TemplateNode> root)
    : root_(std::move(root)) {
  RecomputeDerived();
}

StructureTemplate::StructureTemplate(const StructureTemplate& other)
    : root_(other.root_ ? other.root_->Clone() : nullptr),
      canonical_(other.canonical_),
      charset_(other.charset_),
      field_count_(other.field_count_),
      array_count_(other.array_count_),
      line_span_(other.line_span_) {}

StructureTemplate& StructureTemplate::operator=(
    const StructureTemplate& other) {
  if (this == &other) return *this;
  root_ = other.root_ ? other.root_->Clone() : nullptr;
  canonical_ = other.canonical_;
  charset_ = other.charset_;
  field_count_ = other.field_count_;
  array_count_ = other.array_count_;
  line_span_ = other.line_span_;
  return *this;
}

void StructureTemplate::RecomputeDerived() {
  canonical_.clear();
  charset_ = CharSet();
  field_count_ = array_count_ = line_span_ = 0;
  if (root_ == nullptr) return;
  SerializeNode(*root_, &canonical_);
  CollectStats(*root_, &charset_, &field_count_, &array_count_, &line_span_);
}

Result<StructureTemplate> StructureTemplate::FromCanonical(
    std::string_view canonical) {
  CanonicalParser parser(canonical);
  auto root = parser.ParseSequence();
  if (!root.ok()) return root.status();
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing characters in canonical template");
  }
  StructureTemplate st(std::move(root.value()));
  return st;
}

Status StructureTemplate::Validate() const {
  if (root_ == nullptr) return Status::InvalidArgument("empty template");
  if (canonical_.empty() || canonical_.back() != '\n') {
    return Status::InvalidArgument("template must end with newline");
  }
  return ValidateNode(*root_, CharSet());
}

std::string StructureTemplate::Display() const {
  return EscapeForDisplay(canonical_);
}

}  // namespace datamaran
