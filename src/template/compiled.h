#ifndef DATAMARAN_TEMPLATE_COMPILED_H_
#define DATAMARAN_TEMPLATE_COMPILED_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "template/match_engine.h"
#include "template/matcher.h"
#include "template/template.h"
#include "util/byte_class.h"
#include "util/char_class.h"
#include "util/charset_engine.h"

/// Compiled template matching: each StructureTemplate is lowered once into
/// a flat bytecode program executed by a tight non-recursive loop, instead
/// of re-walking the template tree per record. Both engines implement the
/// same LL(1) semantics (matcher.h) and emit byte-identical MatchStats and
/// MatchEvent streams; the tree walker remains the reference implementation
/// (DatamaranOptions::match_engine selects one pipeline-wide).
///
/// Lowering collapses the tree into four instruction shapes:
///   - literal runs: consecutive kChar nodes become one memcmp against a
///     shared literal pool (single-byte runs compare inline);
///   - field scans: a maximal run of bytes outside the RT-CharSet. The scan
///     strategy is picked per template (the stop set is the same for every
///     field): a plain memchr when the charset has a single member (fields
///     then run to end of line — long, and memchr is vectorized), a
///     word-at-a-time SWAR scan for two to four members that finds the
///     *position* of the first stop byte branchlessly (one 8-byte step
///     usually resolves a whole short field, with no per-byte loop and no
///     data-dependent exit branch), and — for five or more members — a
///     vectorized ByteClassifier scan (16/32 bytes per step under
///     CharsetEngine::kSimd, after a 4-byte table lead-in for short
///     tokens) or the precomputed 256-entry stop-byte table (the scalar
///     reference, also the fallback when the charset engine resolves below
///     kSimd). A field followed by a fixed literal byte fuses into
///     one instruction (scan + compare, the dominant token pair);
///   - fused field arrays: an array whose element is a single field — the
///     dominant generated shape, e.g. "(F,)*F" — becomes one instruction
///     whose inner loop alternates field scan and separator lookahead with
///     no dispatch in between;
///   - general arrays: ArrayBegin pushes a repetition frame, the element
///     program runs in place, and ArrayNext peeks one character of
///     lookahead — the separator jumps back to the element start, anything
///     else pops the frame and falls through (Assumption 3's
///     single-character lookahead, now an explicit branch instead of a
///     recursive call).

namespace datamaran {

/// The set of bytes that can begin a match of `st` (FIRST set of the LL(1)
/// grammar): a leading literal contributes itself, a leading field
/// contributes every byte outside the RT-CharSet (fields are non-empty), a
/// leading array defers to its element. A window whose first byte is not in
/// this set can never match — the property TemplateSetIndex dispatches on.
CharSet TemplateFirstBytes(const StructureTemplate& st);

/// A StructureTemplate lowered to bytecode. Cheap to move; holds a pointer
/// to the template (which must outlive the program) only for MatchEvent
/// node attribution and structure_template().
class CompiledTemplate {
 public:
  /// `charset_engine` selects the field-scan strategy for wide stop sets
  /// (five or more charset members): a resolved kSimd engages the
  /// vectorized classifier scan, anything lower keeps the stop-byte table.
  /// Match results are byte-identical for every engine.
  explicit CompiledTemplate(
      const StructureTemplate* st,
      CharsetEngine charset_engine = CharsetEngine::kSimd);

  /// False when the template exceeds engine limits (array nesting deeper
  /// than kMaxArrayDepth); callers must then fall back to the tree walker.
  bool ok() const { return ok_; }

  /// Drop-in equivalents of TemplateMatcher::TryMatch / ParseFlat: same
  /// match decisions, same MatchStats, same event stream (events cleared on
  /// entry, partially filled on failure).
  std::optional<MatchStats> TryMatch(std::string_view text, size_t pos) const;
  std::optional<MatchStats> ParseFlat(std::string_view text, size_t pos,
                                      std::vector<MatchEvent>* events) const;

  const StructureTemplate& structure_template() const { return *st_; }
  const CharSet& first_bytes() const { return first_bytes_; }

  /// Deepest array nesting the execution stack supports.
  static constexpr int kMaxArrayDepth = 16;

  /// Serializes the lowered program to a compact binary blob that
  /// FromSerialized can rebuild without re-running Compile: instruction
  /// stream, literal pool, event-attribution nodes as pre-order tree
  /// indices, plus the charset-derived scan tables (all engine-independent;
  /// the per-engine scan strategy is re-derived on load). The blob starts
  /// with ProgramFingerprint() and a checksum of the payload. Returns an
  /// empty string when !ok().
  std::string SerializeProgram() const;

  /// The program-format fingerprint this build emits and accepts. Encodes
  /// the bytecode format version plus automatic tripwires (opcode count,
  /// array-depth limit); bump kProgramFormatVersion whenever instruction
  /// semantics change so stale persisted programs are rejected, not
  /// misexecuted.
  static std::string ProgramFingerprint();

  /// Rebuilds a program for `st` from a SerializeProgram blob. Returns
  /// nullopt — callers fall back to compiling fresh — on any fingerprint
  /// mismatch, checksum failure, truncation, or structural-validation
  /// failure (out-of-range pool/node references, malformed array jumps,
  /// stack depth past kMaxArrayDepth). A non-nullopt result is safe to
  /// execute and behaves identically to CompiledTemplate(st, engine).
  static std::optional<CompiledTemplate> FromSerialized(
      const StructureTemplate* st, std::string_view blob,
      CharsetEngine charset_engine = CharsetEngine::kSimd);

 private:
  struct Inst {
    enum Op : uint8_t {
      kLit,          ///< memcmp(pool + a, text + p, b)
      kLit1,         ///< single literal byte
      kField,        ///< field scan; a = node index
      kFieldLit1,    ///< fused field scan + literal byte; a = node index
      kFieldLitRun,  ///< b fused (field, literal) pairs; a = first field
                     ///< node (consecutive), c = pool offset of literals
      kFieldArray,   ///< fused (field sep)* field; a = field node, b = array
      kArrayBegin,   ///< push frame; b = node index
      kArrayNext,    ///< byte == separator: jump to a; else pop frame
    };
    Op op;
    uint8_t byte = 0;  ///< kLit1/kFieldLit1 literal; array separator
    uint32_t a = 0;    ///< kLit pool offset; field node; kArrayNext target
    uint32_t b = 0;    ///< kLit length; array node; kFieldLitRun pair count
    uint32_t c = 0;    ///< kFieldLitRun literal-pool offset
  };

  /// Field-scan strategy, a function of the template-wide stop set. The
  /// mode is baked into the execution loop as a template parameter so the
  /// per-field scan inlines with no dispatch inside the hot loop.
  enum class ScanKind : uint8_t {
    kTable,
    kMemchr,
    kSwar2,
    kSwar3,
    kSwar4,
    /// Vectorized classifier scan (util/byte_class.h) for stop sets of
    /// five or more members under CharsetEngine::kSimd; a short table
    /// lead-in keeps 1-3 character tokens off the vector setup.
    kClass,
  };

  CompiledTemplate() = default;  // FromSerialized scaffolding

  void Compile(const TemplateNode& node, int depth);
  void FlushLiteral();
  void FlushPendingField();

  /// Derives the per-engine scan strategy (stop table already populated):
  /// scan kind, memchr byte / SWAR masks / classifier. `members` is the
  /// RT-CharSet in CharSet::ToString() order.
  void InitScanStrategy(const std::string& members,
                        CharsetEngine charset_engine);

  /// Structural validation of a deserialized program: every reference in
  /// bounds, array begin/next properly nested with consistent static stack
  /// depth at every jump target, depth within kMaxArrayDepth. Guarantees
  /// Run cannot read out of bounds or over/underflow its frame stack.
  bool ValidateProgram() const;

  template <bool kEmitEvents, ScanKind kScan>
  bool Run(std::string_view text, size_t* pos, size_t* field_chars,
           std::vector<MatchEvent>* events) const;

  /// Picks the Run instantiation for this template's scan kind.
  template <bool kEmitEvents>
  bool Dispatch(std::string_view text, size_t* pos, size_t* field_chars,
                std::vector<MatchEvent>* events) const;

  const StructureTemplate* st_ = nullptr;
  std::vector<Inst> insts_;
  std::string pool_;                    ///< concatenated literal runs
  std::vector<const TemplateNode*> nodes_;  ///< event attribution targets
  std::array<uint8_t, 256> stop_{};     ///< RT-CharSet membership
  ScanKind scan_kind_ = ScanKind::kTable;
  uint8_t memchr_stop_ = 0;             ///< the stop byte (charset size 1)
  std::array<uint64_t, 4> swar_{};      ///< broadcast stop bytes
  std::optional<ByteClassifier> classifier_;  ///< engaged for kClass
  std::string pending_literal_;         ///< compile-time scratch
  const TemplateNode* pending_field_ = nullptr;  ///< compile-time scratch
  CharSet first_bytes_;
  bool ok_ = true;
};

}  // namespace datamaran

#endif  // DATAMARAN_TEMPLATE_COMPILED_H_
