#include "template/dispatch.h"

namespace datamaran {

namespace {

struct ReplayCursor {
  const MatchEvent* events;
  size_t next_event = 0;
  size_t pos = 0;
};

/// Mirrors TemplateMatcher::ParseNode exactly, with event payloads standing
/// in for the text scans.
void ReplayNode(const TemplateNode& node, ReplayCursor* cursor,
                ParsedValue* out) {
  out->kind = node.kind;
  out->begin = cursor->pos;
  switch (node.kind) {
    case NodeKind::kChar:
      ++cursor->pos;
      break;
    case NodeKind::kField: {
      const MatchEvent& ev = cursor->events[cursor->next_event++];
      cursor->pos = ev.end;
      break;
    }
    case NodeKind::kStruct: {
      out->children.reserve(node.children.size());
      for (const auto& child : node.children) {
        ParsedValue v;
        ReplayNode(*child, cursor, &v);
        out->children.push_back(std::move(v));
      }
      break;
    }
    case NodeKind::kArray: {
      const MatchEvent& ev = cursor->events[cursor->next_event++];
      const TemplateNode& elem = *node.children[0];
      out->children.reserve(ev.count);
      for (size_t r = 0; r < ev.count; ++r) {
        if (r > 0) ++cursor->pos;  // the separator between repetitions
        ParsedValue v;
        ReplayNode(elem, cursor, &v);
        out->children.push_back(std::move(v));
      }
      break;
    }
  }
  out->end = cursor->pos;
}

}  // namespace

ParsedValue BuildParsedValue(const StructureTemplate& st, size_t pos,
                             const MatchEvent* events, size_t /*num_events*/) {
  ReplayCursor cursor{events, 0, pos};
  ParsedValue root;
  ReplayNode(st.root(), &cursor, &root);
  return root;
}

RecordMatcher::RecordMatcher(const StructureTemplate* st, MatchEngine engine,
                             CharsetEngine charset_engine,
                             const std::string* program)
    : tree_(st), first_bytes_(TemplateFirstBytes(*st)) {
  if (engine == MatchEngine::kCompiled) {
    if (program != nullptr && !program->empty()) {
      compiled_ = CompiledTemplate::FromSerialized(st, *program, charset_engine);
      if (compiled_.has_value()) return;
      // Stale or corrupt persisted program: recompile from the canonical
      // form — identical behavior, just without the warm-load shortcut.
    }
    compiled_.emplace(st, charset_engine);
    if (!compiled_->ok()) compiled_.reset();
  }
}

std::optional<ParsedValue> RecordMatcher::Parse(std::string_view text,
                                                size_t pos) const {
  if (!compiled_.has_value()) return tree_.Parse(text, pos);
  std::vector<MatchEvent> events;
  auto stats = compiled_->ParseFlat(text, pos, &events);
  if (!stats.has_value()) return std::nullopt;
  return BuildParsedValue(structure_template(), pos, events);
}

TemplateSetIndex::TemplateSetIndex(const std::vector<RecordMatcher>& matchers) {
  for (size_t t = 0; t < matchers.size(); ++t) {
    const CharSet& first = matchers[t].first_bytes();
    for (int b = 0; b < 256; ++b) {
      if (first.Contains(static_cast<unsigned char>(b))) {
        buckets_[static_cast<size_t>(b)].push_back(static_cast<uint16_t>(t));
      }
    }
  }
}

std::vector<RecordMatcher> BuildMatchers(
    const std::vector<StructureTemplate>& templates, MatchEngine engine,
    CharsetEngine charset_engine, const std::vector<std::string>* programs) {
  std::vector<RecordMatcher> matchers;
  matchers.reserve(templates.size());
  for (size_t t = 0; t < templates.size(); ++t) {
    const std::string* program =
        programs != nullptr && t < programs->size() ? &(*programs)[t]
                                                    : nullptr;
    matchers.emplace_back(&templates[t], engine, charset_engine, program);
  }
  return matchers;
}

}  // namespace datamaran
