#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/dataset.h"
#include "core/options.h"
#include "generation/generator.h"
#include "pruning/pruner.h"
#include "util/rng.h"

namespace datamaran {
namespace {

bool HasCandidate(const std::vector<CandidateTemplate>& cands,
                  std::string_view canonical) {
  return std::any_of(cands.begin(), cands.end(),
                     [&](const CandidateTemplate& c) {
                       return c.canonical == canonical;
                     });
}

std::string CsvText(int rows) {
  std::string text;
  Rng rng(42);
  for (int i = 0; i < rows; ++i) {
    text += std::to_string(rng.Uniform(0, 999)) + "," +
            std::to_string(rng.Uniform(0, 999)) + "," +
            std::to_string(rng.Uniform(0, 999)) + "\n";
  }
  return text;
}

DatamaranOptions TestOptions() {
  DatamaranOptions opts;
  opts.max_special_chars = 6;
  return opts;
}

// --------------------------------------------------------------- dataset --

TEST(DatasetTest, LineIndex) {
  Dataset d("ab\ncd\n");
  EXPECT_EQ(d.line_count(), 2u);
  EXPECT_EQ(d.line(0), "ab");
  EXPECT_EQ(d.line(1), "cd");
  EXPECT_EQ(d.line_with_newline(1), "cd\n");
  EXPECT_EQ(d.line_begin(1), 3u);
  EXPECT_EQ(d.LineOfOffset(0), 0u);
  EXPECT_EQ(d.LineOfOffset(4), 1u);
}

TEST(DatasetTest, AppendsMissingFinalNewline) {
  Dataset d("ab\ncd");
  EXPECT_EQ(d.line_count(), 2u);
  EXPECT_EQ(d.text().back(), '\n');
}

TEST(DatasetTest, EmptyText) {
  Dataset d("");
  EXPECT_EQ(d.line_count(), 0u);
  EXPECT_EQ(d.size_bytes(), 0u);
}

// ------------------------------------------------------------ generation --

TEST(GenerationTest, FindsCsvTemplateWithExplicitCharset) {
  Dataset data(CsvText(200));
  DatamaranOptions opts = TestOptions();
  CandidateGenerator gen(&data, &opts);
  std::vector<CandidateTemplate> out;
  double best = gen.RunCharset(CharSet::Of(","), &out);
  EXPECT_GT(best, 0);
  ASSERT_TRUE(HasCandidate(out, "(F,)*F\n"));
  // The true single-line template covers essentially everything. (The
  // surviving stats may come from any of the period-equivalent bins, so
  // only coverage — which they share — is asserted.)
  bool found = false;
  for (const auto& c : out) {
    if (c.canonical == "(F,)*F\n") {
      EXPECT_FALSE(found) << "duplicate candidates not deduped";
      found = true;
      EXPECT_GE(c.coverage, 0.9 * data.size_bytes());
      EXPECT_GE(c.count, 20u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(GenerationTest, StackedVariantsReducedToOnePeriod) {
  Dataset data(CsvText(200));
  DatamaranOptions opts = TestOptions();
  CandidateGenerator gen(&data, &opts);
  std::vector<CandidateTemplate> out;
  gen.RunCharset(CharSet::Of(","), &out);
  // The doubled two-line stacking of the true template (Figure 11's first
  // redundancy source) is canonicalized back to one period at generation.
  EXPECT_FALSE(HasCandidate(out, "(F,)*F\n(F,)*F\n"));
  EXPECT_TRUE(HasCandidate(out, "(F,)*F\n"));
}

TEST(GenerationTest, ReduceLinePeriodBasics) {
  EXPECT_EQ(ReduceLinePeriod("(F,)*F\n(F,)*F\n"), "(F,)*F\n");
  EXPECT_EQ(ReduceLinePeriod("F\nF\nF\nF\n"), "F\n");
  EXPECT_EQ(ReduceLinePeriod("a: F\nb: F\na: F\nb: F\n"), "a: F\nb: F\n");
  // Non-periodic templates are untouched.
  EXPECT_EQ(ReduceLinePeriod("a: F\nb: F\n"), "a: F\nb: F\n");
  EXPECT_EQ(ReduceLinePeriod("F,F\n"), "F,F\n");
  // Three groups with only two equal: not periodic.
  EXPECT_EQ(ReduceLinePeriod("x\nx\ny\n"), "x\nx\ny\n");
}

TEST(GenerationTest, EmptyCharsetYieldsTrivialTemplate) {
  Dataset data(CsvText(50));
  DatamaranOptions opts = TestOptions();
  CandidateGenerator gen(&data, &opts);
  std::vector<CandidateTemplate> out;
  gen.RunCharset(CharSet(), &out);
  ASSERT_TRUE(HasCandidate(out, "F\n"));
}

TEST(GenerationTest, TrivialTemplateHasLowNonFieldCoverage) {
  Dataset data(CsvText(100));
  DatamaranOptions opts = TestOptions();
  CandidateGenerator gen(&data, &opts);
  std::vector<CandidateTemplate> out;
  gen.RunCharset(CharSet(), &out);
  gen.RunCharset(CharSet::Of(","), &out);
  const CandidateTemplate* trivial = nullptr;
  const CandidateTemplate* real = nullptr;
  for (const auto& c : out) {
    if (c.canonical == "F\n" && c.span == 1) trivial = &c;
    if (c.canonical == "(F,)*F\n") real = &c;
  }
  ASSERT_NE(trivial, nullptr);
  ASSERT_NE(real, nullptr);
  // This is the pruning-step insight: the second redundancy source keeps
  // high coverage but loses non-field coverage.
  EXPECT_LT(trivial->non_field_coverage, real->non_field_coverage);
  EXPECT_LT(trivial->assimilation(), real->assimilation());
}

TEST(GenerationTest, ExhaustiveSearchFindsCsvTemplate) {
  Dataset data(CsvText(200));
  DatamaranOptions opts = TestOptions();
  CandidateGenerator gen(&data, &opts);
  GenerationResult result = gen.Run();
  EXPECT_GT(result.charsets_tried, 1u);
  EXPECT_TRUE(HasCandidate(result.candidates, "(F,)*F\n"));
}

TEST(GenerationTest, GreedySearchFindsCsvTemplate) {
  Dataset data(CsvText(200));
  DatamaranOptions opts = TestOptions();
  opts.search = CharsetSearch::kGreedy;
  CandidateGenerator gen(&data, &opts);
  GenerationResult result = gen.Run();
  EXPECT_TRUE(HasCandidate(result.candidates, "(F,)*F\n"));
}

TEST(GenerationTest, GreedyTriesFewerCharsetsThanExhaustive) {
  std::string text;
  Rng rng(7);
  for (int i = 0; i < 150; ++i) {
    text += "[" + std::to_string(rng.Uniform(10, 99)) + ":" +
            std::to_string(rng.Uniform(10, 99)) + "] user=" +
            std::to_string(rng.Uniform(0, 9)) + ";host=" +
            std::to_string(rng.Uniform(0, 9)) + "\n";
  }
  Dataset data(std::move(text));
  DatamaranOptions opts = TestOptions();
  opts.max_special_chars = 7;
  CandidateGenerator ex(&data, &opts);
  GenerationResult exhaustive = ex.Run();
  opts.search = CharsetSearch::kGreedy;
  CandidateGenerator gr(&data, &opts);
  GenerationResult greedy = gr.Run();
  EXPECT_LT(greedy.charsets_tried, exhaustive.charsets_tried);
}

TEST(GenerationTest, MultiLineRecordTemplateFound) {
  // Three-line records: header, key-value, terminator.
  std::string text;
  Rng rng(3);
  for (int i = 0; i < 80; ++i) {
    text += "== entry " + std::to_string(i) + " ==\n";
    text += "value: " + std::to_string(rng.Uniform(0, 99)) + "\n";
    text += "end.\n";
  }
  Dataset data(std::move(text));
  DatamaranOptions opts = TestOptions();
  CandidateGenerator gen(&data, &opts);
  std::vector<CandidateTemplate> out;
  gen.RunCharset(CharSet::Of("=: ."), &out);
  bool found_three_line = false;
  for (const auto& c : out) {
    if (c.span == 3 && c.coverage >= 0.9 * data.size_bytes()) {
      found_three_line = true;
    }
  }
  EXPECT_TRUE(found_three_line);
}

TEST(GenerationTest, CoverageThresholdFiltersRareTemplates) {
  // 95% csv lines, 5% key=value lines: with alpha=10% only csv survives
  // under the ','-charset.
  std::string text = CsvText(190);
  for (int i = 0; i < 10; ++i) {
    text += "key=value" + std::to_string(i) + "\n";
  }
  Dataset data(std::move(text));
  DatamaranOptions opts = TestOptions();
  opts.coverage_threshold = 0.10;
  CandidateGenerator gen(&data, &opts);
  std::vector<CandidateTemplate> out;
  gen.RunCharset(CharSet::Of(",="), &out);
  EXPECT_TRUE(HasCandidate(out, "(F,)*F\n"));
  EXPECT_FALSE(HasCandidate(out, "F=F\n"));
}

TEST(GenerationTest, SearchCharsCappedAndFrequencySorted) {
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += "a,b,c;d|e\n";  // ',' twice per line; ';' and '|' once
  }
  Dataset data(std::move(text));
  DatamaranOptions opts = TestOptions();
  opts.max_special_chars = 2;
  CandidateGenerator gen(&data, &opts);
  ASSERT_EQ(gen.search_chars().size(), 2u);
  EXPECT_EQ(gen.search_chars()[0], ',');
}

// --------------------------------------------------------------- pruning --

TEST(PruningTest, OrdersByAssimilationAndTruncates) {
  std::vector<CandidateTemplate> cands(5);
  for (int i = 0; i < 5; ++i) {
    cands[static_cast<size_t>(i)].canonical = "t" + std::to_string(i) + "\n";
    cands[static_cast<size_t>(i)].coverage = 10 * (i + 1);
    cands[static_cast<size_t>(i)].non_field_coverage = 2 * (i + 1);
  }
  auto pruned = PruneCandidates(std::move(cands), 3);
  ASSERT_EQ(pruned.size(), 3u);
  EXPECT_EQ(pruned[0].canonical, "t4\n");
  EXPECT_EQ(pruned[1].canonical, "t3\n");
  EXPECT_EQ(pruned[2].canonical, "t2\n");
}

TEST(PruningTest, TieBreaksTowardShorterTemplate) {
  std::vector<CandidateTemplate> cands(2);
  cands[0].canonical = "(F,)*F\n(F,)*F\n";
  cands[0].coverage = 100;
  cands[0].non_field_coverage = 10;
  cands[1].canonical = "(F,)*F\n";
  cands[1].coverage = 100;
  cands[1].non_field_coverage = 10;
  auto pruned = PruneCandidates(std::move(cands), 2);
  EXPECT_EQ(pruned[0].canonical, "(F,)*F\n");
}

TEST(PruningTest, NegativeMKeepsAll) {
  std::vector<CandidateTemplate> cands(4);
  for (size_t i = 0; i < 4; ++i) cands[i].canonical = std::to_string(i);
  EXPECT_EQ(PruneCandidates(std::move(cands), -1).size(), 4u);
}

}  // namespace
}  // namespace datamaran
