// Developer scratch tool: compare MDL scores of specific templates on a
// manual dataset. Usage: debug_scores <dataset_index> <canonical>...
#include <cstdio>
#include <cstdlib>
#include "core/dataset.h"
#include "datagen/manual_datasets.h"
#include "scoring/mdl.h"
#include "util/strings.h"
using namespace datamaran;
int main(int argc, char** argv) {
  int index = argc > 1 ? std::atoi(argv[1]) : 10;
  GeneratedDataset ds = BuildManualDataset(index, 24 * 1024);
  Dataset data{std::string(ds.text)};
  MdlScorer scorer;
  for (int a = 2; a < argc; ++a) {
    std::string canon = ReplaceAll(argv[a], "\\n", "\n");
    canon = ReplaceAll(canon, "\\t", "\t");
    auto st = StructureTemplate::FromCanonical(canon);
    if (!st.ok()) { std::printf("parse fail: %s\n", argv[a]); continue; }
    auto b = scorer.Evaluate(data, st.value());
    std::printf("%-40s total=%.0f rec=%.0f noise=%.0f records=%zu noiselines=%zu\n",
                argv[a], b.total_bits, b.record_bits, b.noise_bits, b.records,
                b.noise_lines);
  }
  return 0;
}
