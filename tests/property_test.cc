// Whole-pipeline property tests: random structure templates are sampled,
// instantiated into synthetic datasets, and the pipeline must recover a
// template that (a) matches every record at its true boundary and (b)
// passes the Section 9.3 success criterion.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/datamaran.h"
#include "datagen/spec.h"
#include "datagen/values.h"
#include "evalharness/criterion.h"
#include "generation/generator.h"
#include "scoring/mdl.h"
#include "template/matcher.h"
#include "util/rng.h"

namespace datamaran {
namespace {

/// A randomly shaped single-line record format: fields separated by random
/// delimiters, with typed values.
struct RandomFormat {
  std::vector<char> seps;        // seps[i] after field i; last is '\n'
  std::vector<int> kinds;        // 0=int 1=word 2=real 3=alnum
  std::string lead;              // literal prefix
};

RandomFormat MakeFormat(Rng* rng) {
  // Well-posed random formats: distinct separators (a repeated separator
  // creates array folds whose column pooling is a different — equally
  // valid — reading of the structure, which the strict per-target check
  // would flag).
  RandomFormat fmt;
  std::string sep_pool = ",;|: =#";
  for (size_t i = sep_pool.size(); i > 1; --i) {  // Fisher-Yates shuffle
    std::swap(sep_pool[i - 1],
              sep_pool[static_cast<size_t>(rng->Uniform(0, i - 1))]);
  }
  int fields = static_cast<int>(rng->Uniform(2, 6));
  if (rng->Bernoulli(0.4)) {
    fmt.lead = std::string(1, sep_pool[static_cast<size_t>(fields)]);
  }
  bool prev_stringy = true;
  for (int i = 0; i < fields; ++i) {
    // No two adjacent string-typed fields: a separator between two
    // untyped strings is MDL-neutral (merging them costs the same bits),
    // so the minimal-description reading legitimately merges them — that
    // would make the strict per-target check ill-posed, not wrong.
    int kind = prev_stringy ? (rng->Bernoulli(0.5) ? 0 : 2)
                            : static_cast<int>(rng->Uniform(0, 3));
    prev_stringy = (kind == 1 || kind == 3);
    fmt.kinds.push_back(kind);
    fmt.seps.push_back(i + 1 == fields ? '\n'
                                       : sep_pool[static_cast<size_t>(i)]);
  }
  return fmt;
}

std::string RenderValue(Rng* rng, int kind) {
  switch (kind) {
    case 0:
      return GenInt(rng, 0, 99999);
    case 1:
      return GenName(rng);
    case 2:
      return GenReal(rng, 0, 999, 2);
    default:
      return GenAlnum(rng, static_cast<int>(rng->Uniform(2, 10)));
  }
}

GeneratedDataset MakeDataset(Rng* rng, const RandomFormat& fmt, int records,
                             double noise_rate) {
  DatasetBuilder b;
  for (int r = 0; r < records; ++r) {
    if (rng->Bernoulli(noise_rate)) {
      b.NoiseLine("?? " + GenAlnum(rng, static_cast<int>(rng->Uniform(4, 30))));
    }
    b.BeginRecord(0);
    b.Append(fmt.lead);
    for (size_t i = 0; i < fmt.kinds.size(); ++i) {
      b.Target("f" + std::to_string(i), RenderValue(rng, fmt.kinds[i]));
      b.Append(std::string_view(&fmt.seps[i], 1));
    }
    b.EndRecord();
  }
  return b.Build("random", DatasetLabel::kSingleNonInterleaved);
}

class PipelineProperty : public ::testing::TestWithParam<int> {};

TEST_P(PipelineProperty, RecoversRandomSingleLineFormats) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int iter = 0; iter < 3; ++iter) {
    RandomFormat fmt = MakeFormat(&rng);
    GeneratedDataset ds = MakeDataset(&rng, fmt, 400, 0.05);
    DatamaranOptions opts;
    opts.max_special_chars = 8;
    Datamaran dm(opts);
    PipelineResult result = dm.ExtractText(std::string(ds.text));
    SuccessReport report =
        CheckExtraction(ds, UnitsFromPipeline(result, ds.text));
    EXPECT_TRUE(report.success)
        << "iter " << iter << ": " << report.failure_reason << "\nsample: "
        << ds.text.substr(0, 120);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// Property: for any accepted template set, every extracted record's span
// re-parses under its template, and the MDL of the accepted set is no
// worse than pure noise.
class InvariantProperty : public ::testing::TestWithParam<int> {};

TEST_P(InvariantProperty, AcceptedTemplatesExplainTheirRecords) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  RandomFormat fmt = MakeFormat(&rng);
  GeneratedDataset ds = MakeDataset(&rng, fmt, 300, 0.1);
  DatamaranOptions opts;
  opts.max_special_chars = 8;
  Datamaran dm(opts);
  PipelineResult result = dm.ExtractText(std::string(ds.text));
  if (result.templates.empty()) GTEST_SKIP();

  Dataset data{std::string(ds.text)};
  std::vector<TemplateMatcher> matchers;
  for (const auto& st : result.templates) matchers.emplace_back(&st);
  for (const auto& rec : result.extraction.records) {
    auto m = matchers[static_cast<size_t>(rec.template_id)].TryMatch(
        data.text(), rec.begin);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->end, rec.end);
  }
  MdlScorer scorer;
  std::vector<const StructureTemplate*> set;
  for (const auto& st : result.templates) set.push_back(&st);
  MdlBreakdown b = scorer.EvaluateSet(data, set);
  EXPECT_LT(b.total_bits, b.noise_only_bits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantProperty,
                         ::testing::Values(1, 2, 3, 4));

// Property: generation canonicalization — for random single-line formats,
// no surviving candidate is a multi-line stack of another candidate.
class CanonicalizationProperty : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalizationProperty, NoPeriodicCandidatesSurvive) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  RandomFormat fmt = MakeFormat(&rng);
  GeneratedDataset ds = MakeDataset(&rng, fmt, 300, 0.0);
  Dataset data{std::string(ds.text)};
  DatamaranOptions opts;
  opts.max_special_chars = 6;
  CandidateGenerator gen(&data, &opts);
  GenerationResult result = gen.Run();
  for (const auto& cand : result.candidates) {
    EXPECT_EQ(ReduceLinePeriod(cand.canonical), cand.canonical)
        << cand.canonical;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalizationProperty,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace datamaran
