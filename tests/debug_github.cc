#include <cstdio>
#include <cstdlib>
#include "core/datamaran.h"
#include "datagen/github_corpus.h"
#include "evalharness/criterion.h"
using namespace datamaran;
int main(int argc, char** argv) {
  int idx = argc > 1 ? std::atoi(argv[1]) : 44;
  GeneratedDataset ds = BuildGithubDataset(idx);
  DatamaranOptions opts; opts.verbose = true;
  Datamaran dm(opts);
  PipelineResult r = dm.ExtractText(std::string(ds.text));
  for (auto& t : r.templates) printf("T: %s\n", t.Display().c_str());
  auto rep = CheckExtraction(ds, UnitsFromPipeline(r, ds.text));
  printf("%s success=%d %s\n", ds.name.c_str(), rep.success?1:0,
         rep.failure_reason.c_str());
  return 0;
}
