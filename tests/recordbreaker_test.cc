#include <gtest/gtest.h>

#include <string>

#include "core/dataset.h"
#include "recordbreaker/lexer.h"
#include "recordbreaker/recordbreaker.h"
#include "util/rng.h"

namespace datamaran {
namespace {

// ----------------------------------------------------------------- lexer --

std::string Sig(std::string_view line) {
  return RbSignatureString(RbTokenize(line));
}

TEST(RbLexerTest, BasicClasses) {
  EXPECT_EQ(Sig("hello 42"), "WORD _ INT");
  EXPECT_EQ(Sig("3.25"), "FLOAT");
  EXPECT_EQ(Sig("-17"), "INT");
  EXPECT_EQ(Sig("a,b"), "WORD ',' WORD");
}

TEST(RbLexerTest, IpAndTime) {
  EXPECT_EQ(Sig("192.168.0.1"), "IP");
  EXPECT_EQ(Sig("14:23:07"), "TIME");
  EXPECT_EQ(Sig("14:23"), "TIME");
  EXPECT_EQ(Sig("2016-04-22"), "DATE");
  EXPECT_EQ(Sig("22/04/2016"), "DATE");
}

TEST(RbLexerTest, QuotedString) {
  EXPECT_EQ(Sig("\"GET /x\" 200"), "QUOTED _ INT");
  // Unterminated quote degrades to punctuation + rest.
  EXPECT_EQ(Sig("\"abc"), "'\"' WORD");
}

TEST(RbLexerTest, SpansAreExact) {
  auto tokens = RbTokenize("ab 12");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].begin, 0u);
  EXPECT_EQ(tokens[0].end, 2u);
  EXPECT_EQ(tokens[2].begin, 3u);
  EXPECT_EQ(tokens[2].end, 5u);
}

TEST(RbLexerTest, ValueVsStructureTokens) {
  auto tokens = RbTokenize("a, b");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].IsValue());
  EXPECT_FALSE(tokens[1].IsValue());  // ','
  EXPECT_FALSE(tokens[2].IsValue());  // space
  EXPECT_TRUE(tokens[3].IsValue());
}

TEST(RbLexerTest, DotsBetweenNumbersPreferIpThenFloat) {
  EXPECT_EQ(Sig("1.2.3"), "FLOAT '.' INT");  // not an IP (3 parts)
  EXPECT_EQ(Sig("1.2.3.4.5"), "IP '.' INT");
}

// ------------------------------------------------------------- inference --

TEST(RecordBreakerTest, UniformCsvIsOneBranchStruct) {
  Rng rng(1);
  std::string text;
  for (int i = 0; i < 100; ++i) {
    text += std::to_string(rng.Uniform(0, 99)) + "," +
            std::to_string(rng.Uniform(0, 99)) + "\n";
  }
  Dataset data(std::move(text));
  RecordBreaker rb;
  auto result = rb.Extract(data);
  EXPECT_EQ(result.branch_count, 1);
  ASSERT_EQ(result.records.size(), 100u);
  EXPECT_EQ(result.records[0].fields.size(), 2u);
}

TEST(RecordBreakerTest, EveryLineBecomesARecord) {
  Dataset data("a,1\nnot structured at all here\nb,2\n");
  RecordBreaker rb;
  auto result = rb.Extract(data);
  // Assumption 4: no noise concept, three lines -> three records.
  EXPECT_EQ(result.records.size(), 3u);
}

TEST(RecordBreakerTest, VariableWordCountsUnifyViaArray) {
  Rng rng(2);
  std::string text;
  for (int i = 0; i < 120; ++i) {
    int words = static_cast<int>(rng.Uniform(2, 7));
    std::string line = "w0";
    for (int w = 1; w < words; ++w) line += " w" + std::to_string(w);
    text += line + "\n";
  }
  Dataset data(std::move(text));
  RecordBreaker rb;
  auto result = rb.Extract(data);
  // The space anchor has varying counts -> one array-unified branch.
  EXPECT_EQ(result.branch_count, 1);
  ASSERT_NE(result.schema, nullptr);
  EXPECT_NE(result.schema->ToString().find("Array"), std::string::npos)
      << result.schema->ToString();
}

TEST(RecordBreakerTest, MixedTypeColumnUnifiedByStructSplit) {
  Rng rng(3);
  std::string text;
  for (int i = 0; i < 100; ++i) {
    // 'user' is sometimes a word, sometimes a number; the ':' anchor still
    // struct-splits every line into one branch (the union sits below).
    text += "login:";
    text += rng.Bernoulli(0.5) ? "alice" : "1234";
    text += "\n";
  }
  Dataset data(std::move(text));
  RecordBreaker rb;
  auto result = rb.Extract(data);
  EXPECT_EQ(result.branch_count, 1);
}

TEST(RecordBreakerTest, DisjointSignaturesSplitBranches) {
  Rng rng(4);
  std::string text;
  for (int i = 0; i < 100; ++i) {
    if (rng.Bernoulli(0.5)) {
      text += "alpha=" + std::to_string(rng.Uniform(0, 99)) + "\n";
    } else {
      text += std::to_string(rng.Uniform(0, 9)) + "," +
              std::to_string(rng.Uniform(0, 9)) + "," +
              std::to_string(rng.Uniform(0, 9)) + "\n";
    }
  }
  Dataset data(std::move(text));
  RecordBreaker rb;
  auto result = rb.Extract(data);
  // Neither '=' nor ',' reaches MinCoverage, so the lines cluster into two
  // union branches.
  EXPECT_GE(result.branch_count, 2);
}

TEST(RecordBreakerTest, SchemaToStringSmoke) {
  Dataset data("a=1\nb=2\nc=3\n");
  RecordBreaker rb;
  auto result = rb.Extract(data);
  std::string s = result.schema->ToString();
  EXPECT_NE(s.find("WORD"), std::string::npos);
  EXPECT_NE(s.find("'='"), std::string::npos);
  EXPECT_NE(s.find("INT"), std::string::npos);
}

TEST(RecordBreakerTest, FieldSpansAreAbsoluteOffsets) {
  Dataset data("xy 1\nzw 2\n");
  RecordBreaker rb;
  auto result = rb.Extract(data);
  ASSERT_EQ(result.records.size(), 2u);
  const auto& rec1 = result.records[1];
  ASSERT_EQ(rec1.fields.size(), 2u);
  EXPECT_EQ(data.text().substr(rec1.fields[0].first,
                               rec1.fields[0].second - rec1.fields[0].first),
            "zw");
}

}  // namespace
}  // namespace datamaran
