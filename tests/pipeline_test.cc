#include <gtest/gtest.h>

#include <string>

#include "core/datamaran.h"
#include "util/file_io.h"
#include "util/rng.h"

namespace datamaran {
namespace {

DatamaranOptions FastOptions() {
  DatamaranOptions opts;
  opts.max_special_chars = 6;
  opts.max_sample_bytes = 64 * 1024;
  return opts;
}

// Simple web-server-style log: ip - time "request" status size.
std::string WebLog(int rows, uint64_t seed) {
  Rng rng(seed);
  std::string text;
  for (int i = 0; i < rows; ++i) {
    text += std::to_string(rng.Uniform(1, 255)) + "." +
            std::to_string(rng.Uniform(0, 255)) + "." +
            std::to_string(rng.Uniform(0, 255)) + "." +
            std::to_string(rng.Uniform(1, 255)) + " " +
            std::to_string(rng.Uniform(10, 23)) + ":" +
            std::to_string(rng.Uniform(10, 59)) + ":" +
            std::to_string(rng.Uniform(10, 59)) + " " +
            std::to_string(rng.Uniform(200, 504)) + "\n";
  }
  return text;
}

TEST(PipelineTest, SingleLineCsv) {
  Rng rng(1);
  std::string text;
  for (int i = 0; i < 400; ++i) {
    text += std::to_string(rng.Uniform(0, 99)) + "," +
            std::to_string(rng.Uniform(100, 999)) + "," +
            std::to_string(rng.Uniform(0, 9)) + "\n";
  }
  Datamaran dm(FastOptions());
  PipelineResult result = dm.ExtractText(std::move(text));
  ASSERT_EQ(result.templates.size(), 1u);
  // Refinement should unfold the fixed-width CSV into a plain struct.
  EXPECT_EQ(result.templates[0].canonical(), "F,F,F\n");
  EXPECT_EQ(result.extraction.records.size(), 400u);
  EXPECT_TRUE(result.extraction.noise_lines.empty());
}

TEST(PipelineTest, WebLogWithNoise) {
  std::string text = WebLog(300, 2);
  // Sprinkle noise lines through the file.
  Rng rng(3);
  std::string noisy;
  size_t pos = 0;
  int line = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    noisy.append(text, pos, nl - pos + 1);
    pos = nl + 1;
    if (++line % 10 == 0) {
      noisy += "### server restarted unexpectedly corrupt"
               + std::to_string(rng.Uniform(0, 999999)) + "\n";
    }
  }
  Datamaran dm(FastOptions());
  PipelineResult result = dm.ExtractText(std::move(noisy));
  ASSERT_GE(result.templates.size(), 1u);
  // All 300 real records extracted by the first template.
  size_t first_template_records = 0;
  for (const auto& r : result.extraction.records) {
    if (r.template_id == 0) ++first_template_records;
  }
  EXPECT_EQ(first_template_records, 300u);
  EXPECT_EQ(result.templates[0].line_span(), 1);
}

TEST(PipelineTest, MultiLineRecords) {
  Rng rng(4);
  std::string text;
  for (int i = 0; i < 150; ++i) {
    text += "{\n";
    text += "  id: " + std::to_string(i) + ",\n";
    text += "  lat: " + std::to_string(rng.Uniform(0, 90)) + "." +
            std::to_string(rng.Uniform(0, 9999)) + ",\n";
    text += "}\n";
  }
  Datamaran dm(FastOptions());
  PipelineResult result = dm.ExtractText(std::move(text));
  ASSERT_EQ(result.templates.size(), 1u);
  EXPECT_EQ(result.templates[0].line_span(), 4);
  EXPECT_EQ(result.extraction.records.size(), 150u);
  EXPECT_TRUE(result.extraction.noise_lines.empty());
}

TEST(PipelineTest, InterleavedRecordTypes) {
  Rng rng(5);
  std::string text;
  int type_a = 0, type_b = 0;
  for (int i = 0; i < 400; ++i) {
    if (rng.Bernoulli(0.5)) {
      text += "GET /idx/" + std::to_string(rng.Uniform(0, 9999)) + " " +
              std::to_string(rng.Uniform(200, 404)) + "\n";
      ++type_a;
    } else {
      text += "user=" + std::to_string(rng.Uniform(0, 999)) + ";action=" +
              std::to_string(rng.Uniform(0, 20)) + ";\n";
      ++type_b;
    }
  }
  Datamaran dm(FastOptions());
  PipelineResult result = dm.ExtractText(std::move(text));
  ASSERT_EQ(result.templates.size(), 2u);
  size_t a = 0, b = 0;
  for (const auto& r : result.extraction.records) {
    (r.template_id == 0 ? a : b)++;
  }
  EXPECT_EQ(a + b, 400u);
  EXPECT_TRUE(result.extraction.noise_lines.empty());
}

TEST(PipelineTest, PureNoiseYieldsNoTemplates) {
  Rng rng(6);
  std::string text;
  for (int i = 0; i < 200; ++i) {
    int len = static_cast<int>(rng.Uniform(5, 60));
    for (int j = 0; j < len; ++j) {
      // Random letters and digits with no repeated delimiter structure.
      text += static_cast<char>('a' + rng.Uniform(0, 25));
    }
    text += "\n";
  }
  Datamaran dm(FastOptions());
  PipelineResult result = dm.ExtractText(std::move(text));
  EXPECT_TRUE(result.templates.empty());
  EXPECT_EQ(result.extraction.records.size(), 0u);
}

TEST(PipelineTest, TimingsAndStatsPopulated) {
  Datamaran dm(FastOptions());
  PipelineResult result = dm.ExtractText(WebLog(200, 7));
  EXPECT_GT(result.stats.charsets_tried, 0u);
  EXPECT_GT(result.stats.candidates_generated, 0u);
  EXPECT_GT(result.stats.sample_bytes, 0u);
  EXPECT_GE(result.timings.generation_s, 0.0);
  EXPECT_GT(result.timings.total_s, 0.0);
  ASSERT_EQ(result.reports.size(), result.templates.size());
  if (!result.reports.empty()) {
    EXPECT_LT(result.reports[0].mdl_bits, result.reports[0].noise_only_bits);
    EXPECT_GT(result.reports[0].sample_records, 0u);
  }
}

TEST(PipelineTest, GreedyAlsoSolvesSimpleCase) {
  DatamaranOptions opts = FastOptions();
  opts.search = CharsetSearch::kGreedy;
  Datamaran dm(opts);
  PipelineResult result = dm.ExtractText(WebLog(300, 8));
  ASSERT_GE(result.templates.size(), 1u);
  EXPECT_GE(result.extraction.coverage(), 0.95);
}

TEST(PipelineTest, ExtractFileRoundTrip) {
  std::string path = testing::TempDir() + "/dm_pipeline_file.log";
  ASSERT_TRUE(WriteStringToFile(path, WebLog(150, 9)).ok());
  Datamaran dm(FastOptions());
  auto result = dm.ExtractFile(path);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->templates.size(), 1u);
  std::remove(path.c_str());
}

TEST(PipelineTest, MissingFileErrors) {
  Datamaran dm(FastOptions());
  auto result = dm.ExtractFile("/no/such/file.log");
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace datamaran
