#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "core/dataset.h"
#include "util/char_class.h"
#include "util/file_io.h"
#include "util/hashing.h"
#include "util/rng.h"
#include "util/sampler.h"
#include "util/status.h"
#include "util/strings.h"

namespace datamaran {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IoError("nope");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.ToString(), "IO_ERROR: nope");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// --------------------------------------------------------------- Strings --

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingle) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitLinesDropsTrailingNewline) {
  auto lines = SplitLines("a\nb\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
}

TEST(StringsTest, SplitLinesWithoutTrailingNewline) {
  auto lines = SplitLines("a\nb");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "b");
}

TEST(StringsTest, JoinRoundTrip) {
  std::vector<std::string> v = {"a", "b", "c"};
  EXPECT_EQ(Join(v, ","), "a,b,c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x \t\n"), "x");
  EXPECT_EQ(Trim("\t \n"), "");
  EXPECT_EQ(Trim("ab"), "ab");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("h", "he"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_FALSE(EndsWith("o", "lo"));
}

TEST(StringsTest, ParseInt64Basics) {
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("0042").value(), 42);  // zero padding accepted
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("-").has_value());
  EXPECT_FALSE(ParseInt64("12a").has_value());
  EXPECT_FALSE(ParseInt64("1.5").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").has_value());
}

TEST(StringsTest, ParseDecimalBasics) {
  int exp = -1;
  EXPECT_DOUBLE_EQ(ParseDecimal("3.25", &exp).value(), 3.25);
  EXPECT_EQ(exp, 2);
  EXPECT_DOUBLE_EQ(ParseDecimal("-1.5", &exp).value(), -1.5);
  EXPECT_EQ(exp, 1);
  EXPECT_DOUBLE_EQ(ParseDecimal("7", &exp).value(), 7.0);
  EXPECT_EQ(exp, 0);
  EXPECT_FALSE(ParseDecimal("12.", &exp).has_value());
  EXPECT_FALSE(ParseDecimal(".5", &exp).has_value());
  EXPECT_FALSE(ParseDecimal("1e5", &exp).has_value());
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
}

TEST(StringsTest, EscapeForDisplay) {
  EXPECT_EQ(EscapeForDisplay("a\nb\t"), "a\\nb\\t");
  EXPECT_EQ(EscapeForDisplay(std::string_view("\x01", 1)), "\\x01");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
}

// ------------------------------------------------------------- CharClass --

TEST(CharClassTest, OfAndContains) {
  CharSet s = CharSet::Of(",;");
  EXPECT_TRUE(s.Contains(','));
  EXPECT_TRUE(s.Contains(';'));
  EXPECT_FALSE(s.Contains('a'));
  EXPECT_EQ(s.Size(), 2);
}

TEST(CharClassTest, AddRemove) {
  CharSet s;
  s.Add('x');
  EXPECT_TRUE(s.Contains('x'));
  s.Remove('x');
  EXPECT_FALSE(s.Contains('x'));
  EXPECT_TRUE(s.Empty());
}

TEST(CharClassTest, SubsetUnionIntersect) {
  CharSet a = CharSet::Of("ab");
  CharSet b = CharSet::Of("abc");
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_EQ(a.Union(b).Size(), 3);
  EXPECT_EQ(a.Intersect(b).Size(), 2);
}

TEST(CharClassTest, DefaultSpecialsContainPunctuationNotLetters) {
  EXPECT_TRUE(IsDefaultSpecial(','));
  EXPECT_TRUE(IsDefaultSpecial(' '));
  EXPECT_TRUE(IsDefaultSpecial('\t'));
  EXPECT_FALSE(IsDefaultSpecial('a'));
  EXPECT_FALSE(IsDefaultSpecial('7'));
  EXPECT_FALSE(IsDefaultSpecial('\n'));  // handled separately
}

TEST(CharClassTest, CountSpecialCharsSortsByFrequency) {
  auto counts = CountSpecialChars("a,b,c;d", DefaultSpecialChars());
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0].first, ',');
  EXPECT_EQ(counts[0].second, 2u);
  EXPECT_EQ(counts[1].first, ';');
}

// --------------------------------------------------------------- File IO --

TEST(FileIoTest, RoundTrip) {
  std::string path = testing::TempDir() + "/dm_fileio_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n").ok());
  auto r = ReadFileToString(path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsIoError) {
  auto r = ReadFileToString("/nonexistent/dir/file.txt");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// --------------------------------------------------------------- Hashing --

TEST(HashingTest, DistinctStringsDistinctHashes) {
  EXPECT_NE(Fnv1a("(F,)*F\n"), Fnv1a("F,F\n"));
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
}

TEST(HashingTest, IncrementalMatchesBulk) {
  uint64_t h = kFnvOffset;
  for (char c : std::string_view("hello")) {
    h = Fnv1aByte(h, static_cast<unsigned char>(c));
  }
  EXPECT_EQ(h, Fnv1a("hello"));
}

// --------------------------------------------------------------- Sampler --

TEST(SamplerTest, SmallInputReturnedWhole) {
  SamplerOptions opts;
  opts.max_sample_bytes = 1024;
  std::string text = "a\nb\nc\n";
  auto ranges = SampleRanges(text, opts);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, text.size());
  Dataset data{std::string(text)};
  DatasetView view = SampleView(data, opts);
  EXPECT_TRUE(view.is_identity());
  EXPECT_EQ(view.line_count(), 3u);
  EXPECT_EQ(view.size_bytes(), text.size());
}

TEST(SamplerTest, LargeInputIsLineAlignedAndBounded) {
  std::string text;
  for (int i = 0; i < 20000; ++i) {
    text += "line-" + std::to_string(i) + ",field,value\n";
  }
  SamplerOptions opts;
  opts.max_sample_bytes = 8 * 1024;
  opts.num_chunks = 4;
  Dataset data{std::string(text)};
  DatasetView view = SampleView(data, opts);
  EXPECT_FALSE(view.is_identity());
  EXPECT_LE(view.size_bytes(), opts.max_sample_bytes + 4096u);
  ASSERT_GT(view.line_count(), 0u);
  // Every sampled line must be a complete line from the original, and the
  // ranges must be line-aligned, ascending, and non-overlapping.
  for (size_t v = 0; v < view.line_count(); ++v) {
    auto line = view.line(v);
    EXPECT_TRUE(StartsWith(line, "line-")) << line;
    EXPECT_TRUE(EndsWith(line, ",field,value")) << line;
  }
  auto ranges = SampleRanges(text, opts);
  size_t total = 0;
  size_t prev_end = 0;
  for (const SampleRange& r : ranges) {
    EXPECT_GE(r.begin, prev_end);
    EXPECT_LT(r.begin, r.end);
    EXPECT_TRUE(r.begin == 0 || text[r.begin - 1] == '\n');
    EXPECT_EQ(text[r.end - 1], '\n');
    total += r.end - r.begin;
    prev_end = r.end;
  }
  EXPECT_EQ(total, view.size_bytes());
}

TEST(SamplerTest, ChunksSpreadThroughFile) {
  std::string text;
  for (int i = 0; i < 10000; ++i) {
    text += "row" + std::to_string(i) + "\n";
  }
  SamplerOptions opts;
  opts.max_sample_bytes = 4096;
  opts.num_chunks = 4;
  Dataset data{std::string(text)};
  DatasetView view = SampleView(data, opts);
  // The sample should contain rows from both the beginning and the end half.
  EXPECT_EQ(view.line(0), "row0");
  EXPECT_GE(view.physical_line(view.line_count() - 1), data.line_count() / 2);
}

}  // namespace
}  // namespace datamaran
