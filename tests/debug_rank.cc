// Developer scratch tool: dump top candidates by MDL with refined scores.
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include "datagen/manual_datasets.h"
#include "generation/generator.h"
#include "pruning/pruner.h"
#include "refinement/refiner.h"
#include "scoring/mdl.h"
#include "util/sampler.h"
#include "util/strings.h"
using namespace datamaran;
int main(int argc, char** argv) {
  int index = argc > 1 ? std::atoi(argv[1]) : 2;
  GeneratedDataset ds = BuildManualDataset(index, 24 * 1024);
  Dataset data{std::string(ds.text)};
  DatasetView sample = SampleView(data, SamplerOptions());
  DatamaranOptions opts;
  CandidateGenerator gen(sample, &opts);
  auto retained = PruneCandidates(gen.Run().candidates, 50);
  MdlScorer scorer;
  struct Row { std::string canon; double score; double refined; std::string rcanon; };
  std::vector<Row> rows;
  Refiner refiner(sample, &scorer, &opts);
  for (auto& c : retained) {
    auto st = StructureTemplate::FromCanonical(c.canonical);
    if (!st.ok() || !st->Validate().ok()) continue;
    double s = scorer.Score(sample, st.value());
    rows.push_back({c.canonical, s, 0, ""});
  }
  std::sort(rows.begin(), rows.end(), [](auto&a, auto&b){return a.score<b.score;});
  for (size_t i = 0; i < rows.size() && i < 10; ++i) {
    auto st = StructureTemplate::FromCanonical(rows[i].canon);
    auto r = refiner.Refine(st.value());
    std::printf("#%zu pre=%.0f post=%.0f\n   %s\n-> %s\n", i, rows[i].score,
                r.score, EscapeForDisplay(rows[i].canon).c_str(),
                r.st.Display().c_str());
  }
  return 0;
}
