// Developer scratch tool: inspect pipeline behavior on a manual dataset.
#include <cstdio>
#include <cstdlib>

#include "core/datamaran.h"
#include "datagen/manual_datasets.h"
#include "evalharness/criterion.h"
#include "util/strings.h"

using namespace datamaran;

int main(int argc, char** argv) {
  int index = argc > 1 ? std::atoi(argv[1]) : 10;
  GeneratedDataset ds = BuildManualDataset(index, 24 * 1024);
  std::printf("dataset %s, %zu records\n", ds.name.c_str(),
              ds.records().size());
  std::printf("first 300 bytes:\n%s\n---\n",
              EscapeForDisplay(ds.text.substr(0, 300)).c_str());
  DatamaranOptions opts;
  opts.verbose = true;
  Datamaran dm(opts);
  PipelineResult result = dm.ExtractText(std::string(ds.text));
  for (size_t t = 0; t < result.templates.size(); ++t) {
    std::printf("template %zu: %s\n", t, result.templates[t].Display().c_str());
  }
  std::printf("records=%zu noise=%zu\n", result.extraction.records.size(),
              result.extraction.noise_lines.size());
  auto report = CheckExtraction(ds, UnitsFromPipeline(result, ds.text));
  std::printf("success=%d reason=%s\n", report.success ? 1 : 0,
              report.failure_reason.c_str());
  return 0;
}
