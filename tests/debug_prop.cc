#include <cstdio>
#include "core/datamaran.h"
#include "datagen/spec.h"
#include "datagen/values.h"
#include "evalharness/criterion.h"
#include "util/rng.h"
#include "scoring/mdl.h"
#include "util/strings.h"
using namespace datamaran;
// replicate property test format logic for seed 1
struct RandomFormat { std::vector<char> seps; std::vector<int> kinds; std::string lead; };
RandomFormat MakeFormat(Rng* rng) {
  RandomFormat fmt;
  std::string sep_pool = ",;|: =#";
  for (size_t i = sep_pool.size(); i > 1; --i)
    std::swap(sep_pool[i-1], sep_pool[(size_t)rng->Uniform(0, i-1)]);
  int fields = (int)rng->Uniform(2, 6);
  if (rng->Bernoulli(0.4)) fmt.lead = std::string(1, sep_pool[(size_t)fields]);
  for (int i = 0; i < fields; ++i) {
    fmt.kinds.push_back((int)rng->Uniform(0, 3));
    fmt.seps.push_back(i+1==fields ? '\n' : sep_pool[(size_t)i]);
  }
  return fmt;
}
std::string RenderValue(Rng* rng, int kind) {
  switch (kind) {
    case 0: return GenInt(rng, 0, 99999);
    case 1: return GenName(rng);
    case 2: return GenReal(rng, 0, 999, 2);
    default: return GenAlnum(rng, (int)rng->Uniform(2, 10));
  }
}
int main() {
  Rng rng(1 * 7919 + 13);
  for (int iter = 0; iter < 3; ++iter) {
    RandomFormat fmt = MakeFormat(&rng);
    DatasetBuilder b;
    for (int r = 0; r < 400; ++r) {
      if (rng.Bernoulli(0.05)) b.NoiseLine("?? " + GenAlnum(&rng, (int)rng.Uniform(4, 30)));
      b.BeginRecord(0);
      b.Append(fmt.lead);
      for (size_t i = 0; i < fmt.kinds.size(); ++i) {
        b.Target("f" + std::to_string(i), RenderValue(&rng, fmt.kinds[i]));
        b.Append(std::string_view(&fmt.seps[i], 1));
      }
      b.EndRecord();
    }
    GeneratedDataset ds = b.Build("random", DatasetLabel::kSingleNonInterleaved);
    if (iter != 2) continue;
    printf("sample:\n%s\n", EscapeForDisplay(ds.text.substr(0, 200)).c_str());
    DatamaranOptions opts; opts.max_special_chars = 8;
    Datamaran dm(opts);
    PipelineResult result = dm.ExtractText(std::string(ds.text));
    for (auto& t : result.templates) printf("T: %s\n", t.Display().c_str());
    {
      MdlScorer scorer; Dataset d2{std::string(ds.text)};
      for (const char* c : {"=F;F|F,F\n", "=F F:F;F.F|F.F,F\n", "=F F:F;F|F,F\n"}) {
        auto st = StructureTemplate::FromCanonical(c);
        if (!st.ok()) { printf("parse fail %s\n", c); continue; }
        auto bb = scorer.Evaluate(d2, st.value());
        printf("score %-24s total=%.0f rec=%zu noise=%zu\n",
               EscapeForDisplay(c).c_str(), bb.total_bits, bb.records, bb.noise_lines);
      }
    }
    auto rep = CheckExtraction(ds, UnitsFromPipeline(result, ds.text));
    printf("success=%d %s\n", rep.success?1:0, rep.failure_reason.c_str());
  }
  return 0;
}
