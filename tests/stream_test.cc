#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/datamaran.h"
#include "core/input.h"
#include "core/stream.h"
#include "extraction/extractor.h"
#include "template/catalog.h"
#include "util/file_io.h"
#include "util/strings.h"

// Differential harness for online streaming discovery (core/stream.h) —
// the gate behind `datamaran_cli --follow`:
//
//  (a) Streaming-vs-batch equivalence: on a finite corpus that fits the
//      warm-up window, a StreamingSession must make byte-for-byte the same
//      decisions (templates, record stream, noise stream) as the batch
//      pipeline on the same bytes.
//  (b) Drift recovery: on the committed A -> A+B -> B corpus
//      (tests/data/stream_drift.log, fixed-seed generator), the drift
//      monitor must trigger evolution, splice the new format's template
//      without renumbering the old one, and recover the match rate on the
//      evolved stream's tail.
//  (c) Chunk-boundary determinism: the same byte stream delivered in any
//      chunk schedule — 1-byte chunks, huge chunks, splits mid-UTF-8 and
//      between the '\r' and '\n' of a CRLF pair — must produce a
//      byte-identical decision transcript.

namespace datamaran {
namespace {

std::string SourcePath(const std::string& rel) {
  return std::string(DM_SOURCE_DIR) + "/" + rel;
}

std::string MustRead(const std::string& path) {
  auto text = ReadFileToString(path);
  EXPECT_TRUE(text.ok()) << path;
  return text.ok() ? std::move(text.value()) : std::string();
}

/// Serializes every extraction decision into one comparable string. Works
/// as both a batch sink (noise arrives as OnNoiseLine, resolved against
/// `view`) and a streaming sink (noise arrives as OnNoiseText carrying the
/// bytes), so one transcript format spans both paths.
class TranscriptSink : public EventSink {
 public:
  explicit TranscriptSink(const DatasetView* view = nullptr) : view_(view) {}

  void OnRecord(int template_id, size_t first_line, std::string_view text,
                size_t pos, size_t end, const MatchEvent* /*events*/,
                size_t /*num_events*/) override {
    log += StrFormat("R%d@%zu:", template_id, first_line);
    log.append(text.data() + pos, end - pos);
    log += '\x1f';
  }

  void OnNoiseLine(size_t line_index) override {
    log += StrFormat("N@%zu:", line_index);
    const std::string_view line = view_->line_with_newline(line_index);
    log.append(line.data(), line.size());
    log += '\x1f';
  }

  void OnNoiseText(size_t line_index,
                   std::string_view line_with_newline) override {
    log += StrFormat("N@%zu:", line_index);
    log.append(line_with_newline.data(), line_with_newline.size());
    log += '\x1f';
  }

  void OnTemplatesAdded(
      const std::vector<const StructureTemplate*>& added) override {
    for (const StructureTemplate* st : added) added_templates.push_back(st);
  }

  std::string log;
  std::vector<const StructureTemplate*> added_templates;

 private:
  const DatasetView* view_;
};

std::vector<std::string> DisplayAll(
    const std::vector<StructureTemplate>& templates) {
  std::vector<std::string> out;
  for (const StructureTemplate& st : templates) out.push_back(st.Display());
  return out;
}

std::vector<std::string> DisplayAll(
    const std::deque<StructureTemplate>& templates) {
  std::vector<std::string> out;
  for (const StructureTemplate& st : templates) out.push_back(st.Display());
  return out;
}

/// Batch reference: the unchanged pipeline (front-end normalization,
/// discovery, event-stream extraction) over the whole corpus at once.
struct BatchRun {
  std::vector<std::string> templates;
  std::string transcript;
};

BatchRun RunBatch(const std::string& bytes, const DatamaranOptions& options) {
  BatchRun run;
  auto data = DatasetFromBytes(bytes, InputOptions());
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  if (!data.ok()) return run;
  Datamaran dm(options);
  StepTimings timings;
  PipelineStats stats;
  std::vector<StructureTemplate> templates =
      dm.DiscoverTemplates(data.value(), &timings, &stats, nullptr);
  run.templates = DisplayAll(templates);
  DatasetView view(data.value());
  TranscriptSink sink(&view);
  Extractor extractor(&templates, nullptr, options.match_engine,
                      options.charset_engine, options.max_line_bytes);
  extractor.ExtractEvents(view, &sink);
  run.transcript = std::move(sink.log);
  return run;
}

/// Streaming run: feeds `bytes` in chunks of `chunk` bytes (0 = one shot).
struct StreamRun {
  std::vector<std::string> templates;
  std::string transcript;
  StreamStats stats;
};

StreamRun RunStream(const std::string& bytes, const DatamaranOptions& options,
                    const StreamOptions& stream_options, size_t chunk = 0) {
  StreamRun run;
  TranscriptSink sink;
  StreamingSession session(options, stream_options, &sink);
  if (chunk == 0) {
    session.FeedBytes(bytes);
  } else {
    for (size_t off = 0; off < bytes.size(); off += chunk) {
      session.FeedBytes(
          std::string_view(bytes).substr(off, chunk));
    }
  }
  EXPECT_TRUE(session.Finish().ok());
  run.templates = DisplayAll(session.templates());
  run.transcript = std::move(sink.log);
  run.stats = session.stats();
  return run;
}

// ----------------------------------------------------- (a) batch parity ---

// On a finite corpus that fits the warm-up window, streaming discovery IS
// batch discovery over the same bytes, and the decided stream equals the
// batch scan — for every committed CLI corpus, including the hostile one
// (NUL bytes, invalid UTF-8), CRLF line endings, multi-line records, and a
// missing final newline.
TEST(StreamBatchParity, FiniteCorporaAreByteIdentical) {
  const char* corpora[] = {"cli_basic",   "cli_multiline", "cli_interleaved",
                           "cli_hostile", "cli_arrays",    "cli_crlf",
                           "cli_crlf_noeol"};
  for (const char* corpus : corpora) {
    SCOPED_TRACE(corpus);
    const std::string bytes =
        MustRead(SourcePath(std::string("tests/data/") + corpus + ".log"));
    DatamaranOptions options;
    options.num_threads = 1;
    const BatchRun batch = RunBatch(bytes, options);
    const StreamRun stream = RunStream(bytes, options, StreamOptions());
    EXPECT_EQ(batch.templates, stream.templates);
    EXPECT_EQ(batch.transcript, stream.transcript);
    EXPECT_EQ(stream.stats.evolutions, 0u) << "no drift in a uniform corpus";
  }
}

// Warm-up failure path: a window with no discoverable structure is decided
// as noise (once, in order) and the session keeps running.
TEST(StreamBatchParity, StructurelessStreamDecidesEverythingAsNoise) {
  std::string bytes;
  for (int i = 0; i < 100; ++i) {
    bytes += StrFormat("%x9f!!%d@@@%x", i * 2654435761u, i, i * 40503u);
    bytes += '\n';
  }
  DatamaranOptions options;
  options.num_threads = 1;
  StreamOptions stream_options;
  stream_options.window_lines = 32;  // several warm-up attempts
  const StreamRun stream = RunStream(bytes, options, stream_options);
  const BatchRun batch = RunBatch(bytes, options);
  if (batch.templates.empty()) {
    EXPECT_TRUE(stream.templates.empty());
    EXPECT_EQ(stream.stats.noise_lines, 100u);
    EXPECT_EQ(stream.stats.lines_decided, 100u);
  }
}

// --------------------------------------------- (b) drift and evolution ---

// The committed fixed-seed drift corpus: 1200 lines of format A
// ("n,n,n"), 400 alternating A/B, 1200 lines of format B ("n|n|n|n").
// The session must evolve exactly once, keep template 0's identity, and
// the evolved set must recover the match on the B-only tail.
TEST(StreamDrift, EvolutionRecoversMatchRate) {
  const std::string bytes =
      MustRead(SourcePath("tests/data/stream_drift.log"));
  DatamaranOptions options;
  options.num_threads = 1;
  StreamOptions stream_options;
  stream_options.window_lines = 128;
  stream_options.drift_window_lines = 64;
  stream_options.drift_threshold = 0.5;
  stream_options.min_epoch_lines = 128;
  stream_options.min_noise_lines = 32;

  TranscriptSink sink;
  StreamingSession session(options, stream_options, &sink);
  session.FeedBytes(bytes);
  ASSERT_TRUE(session.Finish().ok());

  const StreamStats& stats = session.stats();
  EXPECT_EQ(stats.lines_in, 2800u);
  EXPECT_EQ(stats.lines_decided, 2800u);
  EXPECT_GE(stats.evolutions, 1u);
  EXPECT_EQ(stats.epochs, stats.evolutions + 1);
  ASSERT_EQ(session.templates().size(), 2u);
  EXPECT_EQ(session.templates().front().Display(), "F,F,F\\n");
  EXPECT_EQ(session.templates().back().Display(), "F|F|F|F\\n");

  // The sink learned the spliced template through OnTemplatesAdded, and the
  // pointer is the session's own (stable deque storage).
  ASSERT_EQ(sink.added_templates.size(), 2u);
  EXPECT_EQ(sink.added_templates[0], &session.templates().front());
  EXPECT_EQ(sink.added_templates[1], &session.templates().back());

  // Match-rate recovery on the tail: after the trigger burst, B lines
  // match. Count noise decisions in the last 1000 lines of the stream.
  size_t tail_noise = 0;
  size_t pos = 0;
  while ((pos = sink.log.find("N@", pos)) != std::string::npos) {
    pos += 2;
    const size_t line = std::strtoull(sink.log.c_str() + pos, nullptr, 10);
    if (line >= 1800) tail_noise++;
  }
  EXPECT_LE(tail_noise, 100u) << "evolved set must match >= 90% of the tail";
  // And overall: only the pre-trigger burst is lost.
  EXPECT_LE(stats.noise_lines, 200u);
}

// --no-evolve: the monitor runs but the template set never changes, so the
// B-phase stays noise.
TEST(StreamDrift, EvolveDisabledKeepsInitialTemplates) {
  const std::string bytes =
      MustRead(SourcePath("tests/data/stream_drift.log"));
  DatamaranOptions options;
  options.num_threads = 1;
  StreamOptions stream_options;
  stream_options.window_lines = 128;
  stream_options.drift_window_lines = 64;
  stream_options.evolve = false;
  const StreamRun run = RunStream(bytes, options, stream_options);
  EXPECT_EQ(run.stats.evolutions, 0u);
  EXPECT_EQ(run.stats.evolution_attempts, 0u);
  EXPECT_EQ(run.templates.size(), 1u);
  EXPECT_GE(run.stats.noise_lines, 1200u);  // the whole B phase
}

// Checkpointing folds the live template set into a catalog with the same
// locked merge-on-save the crawler uses — and leaves no stray .lock file.
TEST(StreamDrift, CheckpointPersistsEvolvedTemplates) {
  const std::string bytes =
      MustRead(SourcePath("tests/data/stream_drift.log"));
  const std::string dir = ::testing::TempDir() + "dm_stream_ckpt";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(MakeDirs(dir).ok());
  const std::string catalog_path = dir + "/catalog.json";

  DatamaranOptions options;
  options.num_threads = 1;
  StreamOptions stream_options;
  stream_options.window_lines = 128;
  stream_options.drift_window_lines = 64;
  stream_options.checkpoint_path = catalog_path;
  const StreamRun run = RunStream(bytes, options, stream_options);
  EXPECT_GE(run.stats.checkpoints, 2u);  // warm-up + evolution (+ finish)

  auto loaded = TemplateCatalog::Load(catalog_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const TemplateCatalog& catalog = loaded.value();
  // Warm-up checkpointed {A}, the evolution checkpoint {A,B}: distinct
  // signatures, so the merge keeps both entries; the evolved one carries
  // the full set.
  ASSERT_GE(catalog.entries().size(), 1u);
  bool found_full = false;
  for (const CatalogEntry& entry : catalog.entries()) {
    if (DisplayAll(entry.templates) == run.templates) found_full = true;
  }
  EXPECT_TRUE(found_full) << "no catalog entry holds the evolved set";

  // Satellite regression: a finished checkpoint cycle must not litter the
  // directory with .lock sidecars.
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".lock")
        << "stray lock sidecar: " << entry.path();
  }
  std::filesystem::remove_all(dir);
}

// ------------------------------------- (c) chunk-boundary determinism ---

/// A corpus that plants every boundary hazard: CRLF terminators (so a
/// chunk can split between '\r' and '\n'), multi-byte UTF-8 field bytes
/// (so a chunk can split mid-code-point), and enough lines to cross
/// several segment cadences.
std::string HazardCorpus() {
  std::string bytes;
  uint64_t seed = 0x5EED;
  auto rng = [&seed]() {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    return seed >> 33;
  };
  for (int i = 0; i < 600; ++i) {
    bytes += StrFormat("%llu,caf\xC3\xA9%llu,%llu",
                       static_cast<unsigned long long>(100 + rng() % 900),
                       static_cast<unsigned long long>(rng() % 10),
                       static_cast<unsigned long long>(10 + rng() % 90));
    bytes += "\r\n";
  }
  return bytes;
}

TEST(StreamChunks, EveryDeliveryScheduleIsByteIdentical) {
  const std::string bytes = HazardCorpus();
  DatamaranOptions options;
  options.num_threads = 1;
  StreamOptions stream_options;
  stream_options.window_lines = 128;

  const StreamRun oneshot = RunStream(bytes, options, stream_options, 0);
  ASSERT_FALSE(oneshot.templates.empty());
  // 1-byte chunks split every CRLF pair and every UTF-8 sequence; 7 is
  // coprime with the line length so splits drift through every offset;
  // 64KiB exceeds the whole corpus after the first chunk.
  for (size_t chunk : {size_t{1}, size_t{7}, size_t{4096}, size_t{64 * 1024}}) {
    SCOPED_TRACE(chunk);
    const StreamRun run = RunStream(bytes, options, stream_options, chunk);
    EXPECT_EQ(oneshot.templates, run.templates);
    EXPECT_EQ(oneshot.transcript, run.transcript);
  }
  // Randomized schedule: chunk sizes from a fixed-seed LCG.
  uint64_t seed = 12345;
  TranscriptSink sink;
  StreamingSession session(options, stream_options, &sink);
  size_t off = 0;
  while (off < bytes.size()) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    const size_t n = 1 + (seed >> 33) % 97;
    session.FeedBytes(std::string_view(bytes).substr(off, n));
    off += n;
  }
  ASSERT_TRUE(session.Finish().ok());
  EXPECT_EQ(oneshot.transcript, sink.log);
}

// The incremental framer alone (no discovery): every chunk schedule frames
// the same lines as the one-shot pass, CRLF decisions included.
TEST(StreamChunks, FramerEqualsOneShotFraming) {
  const std::string bytes = HazardCorpus();
  auto frame = [&](size_t chunk) {
    StreamFramer framer(CrlfPolicy::kAuto);
    std::string out;
    auto on_line = [&out](std::string_view line, bool /*oversized*/) {
      out.append(line.data(), line.size());
      out += '\x1f';
    };
    if (chunk == 0) {
      framer.Feed(bytes, on_line);
    } else {
      for (size_t off = 0; off < bytes.size(); off += chunk) {
        framer.Feed(std::string_view(bytes).substr(off, chunk), on_line);
      }
    }
    framer.Finish(on_line);
    return out;
  };
  const std::string oneshot = frame(0);
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{3}, size_t{1000}}) {
    SCOPED_TRACE(chunk);
    EXPECT_EQ(oneshot, frame(chunk));
  }
}

// Oversized-line containment: a line over the cap is truncated by the
// framer (bounded carry), flagged, and decided as noise; later lines are
// unaffected.
TEST(StreamChunks, OversizedLineDegradesToBoundedNoise)
{
  std::string bytes;
  for (int i = 0; i < 200; ++i) {
    bytes += StrFormat("%d,%d,%d\n", 100 + i, 1000 + i, 10 + i % 90);
  }
  bytes += std::string(1 << 20, 'x');  // one 1MiB monster line
  bytes += '\n';
  for (int i = 0; i < 200; ++i) {
    bytes += StrFormat("%d,%d,%d\n", 300 + i, 2000 + i, 10 + i % 90);
  }
  DatamaranOptions options;
  options.num_threads = 1;
  options.max_line_bytes = 4096;
  StreamOptions stream_options;
  stream_options.window_lines = 64;
  // Feed in small chunks so the monster line crosses many Feed calls; the
  // carry must stay bounded at the cap, not grow to 1MiB.
  const StreamRun run = RunStream(bytes, options, stream_options, 512);
  EXPECT_EQ(run.stats.oversized_lines, 1u);
  EXPECT_EQ(run.stats.lines_in, 401u);
  EXPECT_EQ(run.stats.lines_decided, 401u);
  EXPECT_GE(run.stats.records, 390u);  // both halves keep matching
  // The oversized line itself was decided as noise, truncated to cap+1.
  const size_t noise_pos = run.transcript.find(":xxxx");
  ASSERT_NE(noise_pos, std::string::npos);
}

}  // namespace
}  // namespace datamaran
