#include <gtest/gtest.h>

#include <string>

#include "core/datamaran.h"
#include "datagen/manual_datasets.h"
#include "evalharness/accuracy.h"
#include "evalharness/criterion.h"
#include "evalharness/wrangle.h"
#include "evalharness/wrangle_search.h"

namespace datamaran {
namespace {

// ------------------------------------------------------------- criterion --

GeneratedDataset TinyDataset() {
  DatasetBuilder b;
  // IPs of different lengths, so a merged "ip code" field admits no
  // constant-Trim reconstruction of either target.
  const char* ips[] = {"10.0.0.1", "10.0.0.222", "10.22.33.44"};
  for (int i = 0; i < 3; ++i) {
    b.BeginRecord(0);
    b.Target("ip", ips[i]);
    b.Append(" ");
    b.Target("code", std::to_string(200 + i));
    b.Append("\n");
    b.EndRecord();
  }
  return b.Build("tiny", DatasetLabel::kSingleNonInterleaved);
}

RecordUnits MakeUnits(const GroundTruthRecord& gt,
                      std::vector<std::pair<size_t, size_t>> units,
                      int type = 0) {
  RecordUnits r;
  r.type = type;
  r.begin = gt.begin;
  r.end = gt.end;
  r.units = std::move(units);
  return r;
}

TEST(CriterionTest, PerfectExtractionSucceeds) {
  GeneratedDataset ds = TinyDataset();
  std::vector<RecordUnits> extracted;
  for (const auto& gt : ds.records()) {
    extracted.push_back(MakeUnits(
        gt, {{gt.targets[0].begin, gt.targets[0].end},
             {gt.targets[1].begin, gt.targets[1].end}}));
  }
  auto report = CheckExtraction(ds, extracted);
  EXPECT_TRUE(report.success) << report.failure_reason;
}

TEST(CriterionTest, FinerGranularitySucceeds) {
  // The IP split into 4 fields with constant '.' gaps reconstructs fine
  // (Figure 13's successful example).
  GeneratedDataset ds = TinyDataset();
  std::vector<RecordUnits> extracted;
  for (const auto& gt : ds.records()) {
    const TargetSpan& ip = gt.targets[0];
    std::vector<std::pair<size_t, size_t>> units;
    size_t start = ip.begin;
    for (size_t p = ip.begin; p <= ip.end; ++p) {
      if (p == ip.end || ds.text[p] == '.') {
        units.emplace_back(start, p);
        start = p + 1;
      }
    }
    units.emplace_back(gt.targets[1].begin, gt.targets[1].end);
    extracted.push_back(MakeUnits(gt, std::move(units)));
  }
  auto report = CheckExtraction(ds, extracted);
  EXPECT_TRUE(report.success) << report.failure_reason;
}

TEST(CriterionTest, MergedTargetsFail) {
  // One unit covering "ip code" merged: the Figure 13 unsuccessful case —
  // the boundary inside varies (IP length differs), so no constant Trim
  // reconstructs the code.
  GeneratedDataset ds = TinyDataset();
  std::vector<RecordUnits> extracted;
  for (const auto& gt : ds.records()) {
    extracted.push_back(
        MakeUnits(gt, {{gt.targets[0].begin, gt.targets[1].end}}));
  }
  auto report = CheckExtraction(ds, extracted);
  EXPECT_FALSE(report.success);
}

TEST(CriterionTest, WrongBoundariesFail) {
  GeneratedDataset ds = TinyDataset();
  std::vector<RecordUnits> extracted;
  for (const auto& gt : ds.records()) {
    RecordUnits r = MakeUnits(gt, {});
    r.end -= 1;  // cut off the newline
    extracted.push_back(r);
  }
  auto report = CheckExtraction(ds, extracted);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(report.boundaries_ok);
}

TEST(CriterionTest, TypeSplitFails) {
  GeneratedDataset ds = TinyDataset();
  std::vector<RecordUnits> extracted;
  int t = 0;
  for (const auto& gt : ds.records()) {
    extracted.push_back(MakeUnits(
        gt, {{gt.targets[0].begin, gt.targets[0].end}}, t++ % 2));
  }
  auto report = CheckExtraction(ds, extracted);
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure_reason.find("split"), std::string::npos);
}

TEST(CriterionTest, TrimModeSucceedsWithConstantOverhang) {
  // Unit = "[code]" while the target is just "code": constant 1-char
  // overhangs are reconstructable via Trim.
  DatasetBuilder b;
  for (int i = 0; i < 3; ++i) {
    b.BeginRecord(0);
    b.Append("[");
    b.Target("code", std::to_string(100 + i));
    b.Append("]\n");
    b.EndRecord();
  }
  GeneratedDataset ds = b.Build("trim", DatasetLabel::kSingleNonInterleaved);
  std::vector<RecordUnits> extracted;
  for (const auto& gt : ds.records()) {
    extracted.push_back(
        MakeUnits(gt, {{gt.targets[0].begin - 1, gt.targets[0].end + 1}}));
  }
  auto report = CheckExtraction(ds, extracted);
  EXPECT_TRUE(report.success) << report.failure_reason;
}

TEST(CriterionTest, NoStructureWantsNothing) {
  DatasetBuilder b;
  b.NoiseLine("random stuff");
  GeneratedDataset ds = b.Build("ns", DatasetLabel::kNoStructure);
  EXPECT_TRUE(CheckExtraction(ds, {}).success);
  RecordUnits junk;
  junk.begin = 0;
  junk.end = 5;
  EXPECT_FALSE(CheckExtraction(ds, {junk}).success);
}

// --------------------------------------------- end-to-end with Datamaran --

TEST(CriterionIntegrationTest, DatamaranPassesOnWebServerLog) {
  GeneratedDataset ds = BuildManualDataset(2, 48 * 1024);  // web server log
  DatamaranOptions opts;
  opts.max_special_chars = 8;
  Datamaran dm(opts);
  PipelineResult result = dm.ExtractText(std::string(ds.text));
  auto report = CheckExtraction(ds, UnitsFromPipeline(result, ds.text));
  EXPECT_TRUE(report.success) << report.failure_reason;
}

TEST(CriterionIntegrationTest, RecordBreakerFailsOnMultiLine) {
  GeneratedDataset ds = BuildManualDataset(15, 32 * 1024);  // Thailand
  RecordBreaker rb;
  Dataset data{std::string(ds.text)};
  auto report =
      CheckExtraction(ds, UnitsFromRecordBreaker(rb.Extract(data), data));
  EXPECT_FALSE(report.success);
}

TEST(CriterionIntegrationTest, EvaluateDatasetRunsAllTools) {
  GeneratedDataset ds = BuildManualDataset(1, 24 * 1024);  // comma-sep
  DatamaranOptions opts;
  opts.max_special_chars = 6;
  EvalTools tools;
  tools.run_exhaustive = true;
  tools.run_greedy = true;
  tools.run_recordbreaker = true;
  DatasetOutcome outcome = EvaluateDataset(ds, opts, tools);
  EXPECT_TRUE(outcome.dm_exhaustive) << outcome.dm_exhaustive_reason;
  EXPECT_TRUE(outcome.dm_greedy) << outcome.dm_greedy_reason;
  EXPECT_TRUE(outcome.rb) << outcome.rb_reason;
  EXPECT_GT(outcome.dm_exhaustive_seconds, 0);
}

// ---------------------------------------------------------------- wrangle --

Table LinesTable(const std::vector<std::string>& lines) {
  Table t;
  t.name = "raw";
  t.columns = {"line"};
  for (const auto& l : lines) t.rows.push_back({l});
  return t;
}

TEST(WrangleTest, ConcatenateWithGlue) {
  Table t;
  t.columns = {"a", "b"};
  t.rows = {{"1", "2"}, {"3", "4"}};
  ASSERT_TRUE(OpConcatenate(&t, {0, 1}, {"", ".", ""}, "c"));
  EXPECT_EQ(t.rows[0][2], "1.2");
  EXPECT_EQ(t.rows[1][2], "3.4");
}

TEST(WrangleTest, SplitRagged) {
  Table t;
  t.columns = {"x"};
  t.rows = {{"a,b,c"}, {"d,e"}};
  ASSERT_TRUE(OpSplit(&t, 0, ','));
  ASSERT_EQ(t.columns.size(), 4u);
  EXPECT_EQ(t.rows[0][3], "c");
  EXPECT_EQ(t.rows[1][3], "");
}

TEST(WrangleTest, FlashFillTrims) {
  Table t;
  t.columns = {"x"};
  t.rows = {{"[42]"}, {"[7]"}};
  ASSERT_TRUE(OpFlashFill(&t, 0, 1, 1, "y"));
  EXPECT_EQ(t.rows[0][1], "42");
  EXPECT_EQ(t.rows[1][1], "7");
}

TEST(WrangleTest, OffsetReshape) {
  Table t = LinesTable({"a1", "b1", "a2", "b2"});
  auto r = OpOffsetReshape(t, 2);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[1][0], "a2");
  EXPECT_EQ(r->rows[1][1], "b2");
  EXPECT_FALSE(OpOffsetReshape(t, 3).has_value());
}

// ----------------------------------------------------------- plan search --

TEST(PlanTest, ExactColumnsCostZero) {
  Table start;
  start.columns = {"a", "b"};
  start.rows = {{"1", "x"}, {"2", "y"}};
  Table target;
  target.columns = {"a"};
  target.rows = {{"1"}, {"2"}};
  auto plan = PlanTransformation({start}, target);
  ASSERT_TRUE(plan.feasible) << plan.failure_reason;
  EXPECT_EQ(plan.ops, 0);
}

TEST(PlanTest, ConcatNeeded) {
  Table start;
  start.columns = {"a", "b"};
  start.rows = {{"192", "168"}, {"10", "0"}};
  Table target;
  target.columns = {"ip"};
  target.rows = {{"192.168"}, {"10.0"}};
  auto plan = PlanTransformation({start}, target);
  ASSERT_TRUE(plan.feasible) << plan.failure_reason;
  EXPECT_GE(plan.ops, 1);
}

TEST(PlanTest, OffsetForMultiLine) {
  Table start = LinesTable({"k: a", "v: 1", "k: b", "v: 2"});
  Table target;
  target.columns = {"key", "val"};
  target.rows = {{"a", "1"}, {"b", "2"}};
  auto plan = PlanTransformation({start}, target);
  ASSERT_TRUE(plan.feasible) << plan.failure_reason;
  EXPECT_GE(plan.ops, 2);  // at least the two Offset formulas
}

TEST(PlanTest, NoiseBreaksOffset) {
  // 5 lines for 2 records: not divisible -> infeasible, like participants
  // failing on the noisy multi-line dataset.
  Table start = LinesTable({"k: a", "v: 1", "NOISE", "k: b", "v: 2"});
  Table target;
  target.columns = {"key"};
  target.rows = {{"a"}, {"b"}};
  auto plan = PlanTransformation({start}, target);
  EXPECT_FALSE(plan.feasible);
}

TEST(PlanTest, SplitThenPick) {
  Table start = LinesTable({"a,1", "b,2"});
  Table target;
  target.columns = {"id"};
  target.rows = {{"1"}, {"2"}};
  auto plan = PlanTransformation({start}, target);
  ASSERT_TRUE(plan.feasible) << plan.failure_reason;
  EXPECT_GE(plan.ops, 1);
}

}  // namespace
}  // namespace datamaran
